//! Seeded pseudo-random sources.
//!
//! All simulator randomness (workload addresses, device jitter, crash
//! points) flows through [`SimRng`], a thin deterministic wrapper around a
//! fixed-algorithm PRNG. Components derive independent child streams via
//! [`SimRng::fork`], so adding a random draw in one component never
//! perturbs another component's sequence.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source for one simulator component.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a source from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream.
    ///
    /// The child is keyed off a fresh draw so that sibling forks are
    /// decorrelated even when created back to back.
    pub fn fork(&mut self) -> SimRng {
        let seed: u64 = self.inner.gen();
        SimRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Uniform draw in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.inner.gen_range(0..bound)
        }
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            self.inner.gen_range(lo..=hi)
        }
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Multiplicative jitter: a value in `[1 - amp, 1 + amp]`.
    ///
    /// Used to perturb device service times so that completions across
    /// independent queues interleave non-trivially (the reordering the
    /// paper attributes to SSD internal parallelism and the NIC).
    pub fn jitter(&mut self, amp: f64) -> f64 {
        1.0 + (self.inner.gen::<f64>() * 2.0 - 1.0) * amp.clamp(0.0, 0.99)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks one element index uniformly; `None` for an empty slice length.
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.inner.gen_range(0..len))
        }
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = SimRng::seed_from_u64(1);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        let s1: Vec<u64> = (0..32).map(|_| c1.below(1 << 30)).collect();
        let s2: Vec<u64> = (0..32).map(|_| c2.below(1 << 30)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn below_zero_bound_is_zero() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn between_degenerate_range() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.between(9, 9), 9);
        assert_eq!(r.between(10, 5), 10);
        for _ in 0..100 {
            let v = r.between(4, 6);
            assert!((4..=6).contains(&v));
        }
    }

    #[test]
    fn jitter_within_amplitude() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            let j = r.jitter(0.25);
            assert!((0.75..=1.25).contains(&j), "jitter out of range: {j}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_index_bounds() {
        let mut r = SimRng::seed_from_u64(17);
        assert_eq!(r.pick_index(0), None);
        for _ in 0..100 {
            assert!(r.pick_index(5).unwrap() < 5);
        }
    }
}
