//! A generational slab arena for hot-path object storage.
//!
//! The simulation engine keys in-flight objects (commands, dispatch
//! units) by dense ids carried inside event payloads. A `HashMap` on
//! that path pays a hash plus a probe per event; this slab replaces it
//! with a direct `Vec` index. Keys are `u64`s that pack a 32-bit slot
//! index with a 32-bit generation, so a stale key — one whose slot has
//! been freed and reused — is detected instead of silently aliasing the
//! new occupant.

/// One slab entry: the current generation plus the payload, if live.
#[derive(Debug, Clone)]
struct Entry<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab arena keyed by packed `u64` ids.
///
/// # Examples
///
/// ```
/// use rio_sim::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("alpha");
/// let b = slab.insert("beta");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(b), Some("beta"));
/// // The freed slot is reused under a new generation; the old key
/// // no longer resolves.
/// let c = slab.insert("gamma");
/// assert_eq!(slab.get(b), None);
/// assert_eq!(slab.get(c), Some(&"gamma"));
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn split(key: u64) -> (usize, u32) {
    ((key & u32::MAX as u64) as usize, (key >> 32) as u32)
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab pre-sized for `capacity` live entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` and returns its key.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        match self.free.pop() {
            Some(idx) => {
                let e = &mut self.entries[idx as usize];
                debug_assert!(e.value.is_none());
                e.value = Some(value);
                (e.generation as u64) << 32 | idx as u64
            }
            None => {
                let idx = self.entries.len() as u32;
                assert!(idx < u32::MAX, "slab exhausted its 32-bit index space");
                self.entries.push(Entry {
                    generation: 0,
                    value: Some(value),
                });
                idx as u64
            }
        }
    }

    /// Returns the live entry for `key`, or `None` if the key is stale
    /// or was never issued.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&T> {
        let (idx, generation) = split(key);
        let e = self.entries.get(idx)?;
        if e.generation != generation {
            return None;
        }
        e.value.as_ref()
    }

    /// Mutable access to the live entry for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let (idx, generation) = split(key);
        let e = self.entries.get_mut(idx)?;
        if e.generation != generation {
            return None;
        }
        e.value.as_mut()
    }

    /// Removes and returns the entry for `key`. The slot is recycled
    /// under a bumped generation, so `key` stops resolving.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (idx, generation) = split(key);
        let e = self.entries.get_mut(idx)?;
        if e.generation != generation {
            return None;
        }
        let value = e.value.take()?;
        e.generation = e.generation.wrapping_add(1);
        self.free.push(idx as u32);
        self.len -= 1;
        Some(value)
    }

    /// Drops every live entry and recycles all slots.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let k = s.insert(7u32);
        assert_eq!(s.get(k), Some(&7));
        *s.get_mut(k).unwrap() = 8;
        assert_eq!(s.remove(k), Some(8));
        assert_eq!(s.get(k), None);
        assert_eq!(s.remove(k), None);
        assert!(s.is_empty());
    }

    #[test]
    fn stale_keys_do_not_alias_reused_slots() {
        let mut s = Slab::new();
        let a = s.insert("a");
        assert_eq!(s.remove(a), Some("a"));
        let b = s.insert("b");
        // Same slot, different generation.
        assert_eq!(a & u32::MAX as u64, b & u32::MAX as u64);
        assert_ne!(a, b);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn len_tracks_live_entries() {
        let mut s = Slab::with_capacity(4);
        let keys: Vec<u64> = (0..10).map(|i| s.insert(i)).collect();
        assert_eq!(s.len(), 10);
        for k in &keys[..5] {
            s.remove(*k);
        }
        assert_eq!(s.len(), 5);
        s.clear();
        assert!(s.is_empty());
    }

    proptest! {
        /// The slab agrees with a reference map under random workloads.
        #[test]
        fn prop_matches_reference_map(
            ops in proptest::collection::vec((0u8..3, 0usize..16), 1..200),
        ) {
            let mut slab = Slab::new();
            let mut live: Vec<(u64, usize)> = Vec::new();
            let mut next_val = 0usize;
            for &(op, pick) in &ops {
                match op {
                    0 => {
                        let k = slab.insert(next_val);
                        live.push((k, next_val));
                        next_val += 1;
                    }
                    1 if !live.is_empty() => {
                        let (k, v) = live.remove(pick % live.len());
                        prop_assert_eq!(slab.remove(k), Some(v));
                        prop_assert_eq!(slab.get(k), None);
                    }
                    _ if !live.is_empty() => {
                        let (k, v) = live[pick % live.len()];
                        prop_assert_eq!(slab.get(k), Some(&v));
                    }
                    _ => {}
                }
                prop_assert_eq!(slab.len(), live.len());
            }
        }
    }
}
