//! Virtual time: integer nanoseconds since simulation start.
//!
//! Integer (rather than float) time keeps event ordering exact and the
//! simulation deterministic across platforms.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A sentinel far in the future, used for "no deadline".
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this instant in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to ns.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Returns the raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Scales the duration by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn add_and_since() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!(t1.since(t0).as_nanos(), 50);
        // `since` saturates rather than underflowing.
        assert_eq!(t0.since(t1).as_nanos(), 0);
    }

    #[test]
    fn saturating_arithmetic_at_extremes() {
        let far = SimTime::FAR_FUTURE;
        assert_eq!(far + SimDuration::from_secs(1), SimTime::FAR_FUTURE);
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!(big.saturating_mul(3).as_nanos(), u64::MAX);
    }

    #[test]
    fn fractional_conversions() {
        assert!((SimDuration::from_micros_f64(1.5).as_nanos() as i64 - 1500).abs() <= 1);
        assert_eq!(SimDuration::from_micros_f64(-4.0).as_nanos(), 0);
        let t = SimTime::from_nanos(2_500_000_000);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn max_of_instants() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
