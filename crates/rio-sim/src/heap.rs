//! A time-ordered event heap with stable FIFO tie-breaking.
//!
//! Determinism requires that two events scheduled for the same instant
//! pop in the order they were pushed, so every entry carries a
//! monotonically increasing sequence number as a tiebreaker.
//!
//! # Hot-path layout
//!
//! The heap is the single busiest structure in the simulator, so it is
//! split into two arrays:
//!
//! * the *heap* itself holds only fixed-size keys — `(time, seq)`
//!   packed into one `u128` plus a `u32` slot index — so every sift
//!   compares a single integer and moves 24 bytes, independent of the
//!   event payload type;
//! * the *slab* stores the payloads at stable slot indices with a free
//!   list, so pushing and popping never moves an `E` more than once and
//!   steady-state operation performs no allocation at all.
//!
//! Because `seq` is unique, the packed key is unique too and the
//! comparison never falls back to the payload.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One heap node: the packed `(time, seq)` ordering key and the slab
/// slot holding the payload.
#[derive(Clone, Copy)]
struct Node {
    /// `(time << 64) | seq`: a single integer compare orders by time,
    /// then FIFO among ties.
    key: u128,
    slot: u32,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.key.cmp(&self.key)
    }
}

#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

/// A deterministic min-heap of timed events.
///
/// # Examples
///
/// ```
/// use rio_sim::{EventHeap, SimTime};
///
/// let mut heap = EventHeap::new();
/// heap.push(SimTime::from_nanos(20), "late");
/// heap.push(SimTime::from_nanos(10), "early");
/// assert_eq!(heap.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(heap.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(heap.pop(), None);
/// ```
pub struct EventHeap<E> {
    heap: BinaryHeap<Node>,
    /// Slab of payloads; `None` marks a free slot.
    slots: Vec<Option<E>>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    next_seq: u64,
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventHeap<E> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty heap pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventHeap {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserves space for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.slots.reserve(additional);
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(event);
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Some(event));
                s
            }
        };
        self.heap.push(Node {
            key: pack(at, seq),
            slot,
        });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let node = self.heap.pop()?;
        Some((unpack_time(node.key), self.take_slot(node.slot)))
    }

    /// Removes and returns the earliest event only when it is scheduled
    /// at or before `deadline`; leaves the heap untouched otherwise.
    ///
    /// This is the single-probe form of `peek_time` + `pop` that the
    /// engine's bounded-run loop uses.
    pub fn pop_if_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let key = self.heap.peek()?.key;
        if unpack_time(key) > deadline {
            return None;
        }
        let node = self.heap.pop().expect("peeked");
        Some((unpack_time(node.key), self.take_slot(node.slot)))
    }

    /// Returns the earliest pending event without removing it.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        let node = self.heap.peek()?;
        let event = self.slots[node.slot as usize]
            .as_ref()
            .expect("heap node points at live slot");
        Some((unpack_time(node.key), event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|n| unpack_time(n.key))
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }

    fn take_slot(&mut self, slot: u32) -> E {
        let event = self.slots[slot as usize]
            .take()
            .expect("heap node points at live slot");
        self.free.push(slot);
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            h.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = h.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut h = EventHeap::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            h.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(h.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_nanos(9), 'a');
        h.push(SimTime::from_nanos(3), 'b');
        assert_eq!(h.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(h.peek(), Some((SimTime::from_nanos(3), &'b')));
        let (t, e) = h.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_nanos(3), 'b'));
        assert_eq!(h.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn len_and_clear() {
        let mut h = EventHeap::new();
        assert!(h.is_empty());
        h.push(SimTime::ZERO, ());
        h.push(SimTime::ZERO, ());
        assert_eq!(h.len(), 2);
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn pop_if_at_or_before_respects_deadline() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_nanos(10), 'a');
        h.push(SimTime::from_nanos(20), 'b');
        assert_eq!(h.pop_if_at_or_before(SimTime::from_nanos(5)), None);
        assert_eq!(h.len(), 2, "a refused probe must not consume");
        assert_eq!(
            h.pop_if_at_or_before(SimTime::from_nanos(10)),
            Some((SimTime::from_nanos(10), 'a'))
        );
        assert_eq!(h.pop_if_at_or_before(SimTime::from_nanos(15)), None);
        assert_eq!(
            h.pop_if_at_or_before(SimTime::from_nanos(20)),
            Some((SimTime::from_nanos(20), 'b'))
        );
        assert_eq!(h.pop_if_at_or_before(SimTime::FAR_FUTURE), None);
    }

    #[test]
    fn slots_are_reused_without_growth() {
        let mut h = EventHeap::with_capacity(4);
        for round in 0..1000u64 {
            h.push(SimTime::from_nanos(round), round);
            h.push(SimTime::from_nanos(round), round + 1);
            assert_eq!(h.pop().unwrap().1, round);
            assert_eq!(h.pop().unwrap().1, round + 1);
        }
        // Steady-state push/pop cycles at depth 2 never need more than
        // two payload slots.
        assert!(h.slots.len() <= 2, "slab grew to {}", h.slots.len());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut h = EventHeap::with_capacity(64);
        h.push(SimTime::from_nanos(2), 'x');
        h.push(SimTime::from_nanos(1), 'y');
        assert_eq!(h.pop(), Some((SimTime::from_nanos(1), 'y')));
        assert_eq!(h.pop(), Some((SimTime::from_nanos(2), 'x')));
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and ties
        /// preserve push order.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut h = EventHeap::new();
            for (i, &t) in times.iter().enumerate() {
                h.push(SimTime::from_nanos(t), (t, i));
            }
            let mut prev: Option<(u64, usize)> = None;
            while let Some((at, (t, i))) = h.pop() {
                prop_assert_eq!(at.as_nanos(), t);
                if let Some((pt, pi)) = prev {
                    prop_assert!(pt <= t);
                    if pt == t {
                        prop_assert!(pi < i, "FIFO violated among ties");
                    }
                }
                prev = Some((t, i));
            }
        }

        /// Interleaved pushes and pops match a reference model.
        #[test]
        fn prop_matches_reference_model(
            ops in proptest::collection::vec((0u64..40, 0u8..2), 1..300),
        ) {
            let mut h = EventHeap::new();
            let mut model: Vec<(u64, u64, u64)> = Vec::new(); // (t, seq, val)
            let mut seq = 0u64;
            for &(t, is_pop) in &ops {
                if is_pop == 1 {
                    model.sort();
                    let want = if model.is_empty() { None } else { Some(model.remove(0)) };
                    let got = h.pop();
                    match (want, got) {
                        (None, None) => {}
                        (Some((wt, _, wv)), Some((gt, gv))) => {
                            prop_assert_eq!(wt, gt.as_nanos());
                            prop_assert_eq!(wv, gv);
                        }
                        (w, g) => prop_assert!(false, "model {w:?} vs heap {g:?}"),
                    }
                } else {
                    h.push(SimTime::from_nanos(t), seq);
                    model.push((t, seq, seq));
                    seq += 1;
                }
            }
        }
    }
}
