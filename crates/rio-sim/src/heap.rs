//! A time-ordered event heap with stable FIFO tie-breaking.
//!
//! Determinism requires that two events scheduled for the same instant pop
//! in the order they were pushed; a plain [`std::collections::BinaryHeap`]
//! over `(time, payload)` does not guarantee this, so every entry carries
//! a monotonically increasing sequence number as a tiebreaker.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One scheduled entry: ordered by time, then by insertion sequence.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of timed events.
///
/// # Examples
///
/// ```
/// use rio_sim::{EventHeap, SimTime};
///
/// let mut heap = EventHeap::new();
/// heap.push(SimTime::from_nanos(20), "late");
/// heap.push(SimTime::from_nanos(10), "early");
/// assert_eq!(heap.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(heap.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(heap.pop(), None);
/// ```
pub struct EventHeap<E> {
    inner: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventHeap<E> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        EventHeap {
            inner: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inner.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.inner.pop().map(|e| (e.at, e.event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.inner.peek().map(|e| e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            h.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = h.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut h = EventHeap::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            h.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(h.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_nanos(9), 'a');
        h.push(SimTime::from_nanos(3), 'b');
        assert_eq!(h.peek_time(), Some(SimTime::from_nanos(3)));
        let (t, e) = h.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_nanos(3), 'b'));
        assert_eq!(h.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn len_and_clear() {
        let mut h = EventHeap::new();
        assert!(h.is_empty());
        h.push(SimTime::ZERO, ());
        h.push(SimTime::ZERO, ());
        assert_eq!(h.len(), 2);
        h.clear();
        assert!(h.is_empty());
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and ties
        /// preserve push order.
        #[test]
        fn prop_stable_time_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut h = EventHeap::new();
            for (i, &t) in times.iter().enumerate() {
                h.push(SimTime::from_nanos(t), (t, i));
            }
            let mut prev: Option<(u64, usize)> = None;
            while let Some((at, (t, i))) = h.pop() {
                prop_assert_eq!(at.as_nanos(), t);
                if let Some((pt, pi)) = prev {
                    prop_assert!(pt <= t);
                    if pt == t {
                        prop_assert!(pi < i, "FIFO violated among ties");
                    }
                }
                prev = Some((t, i));
            }
        }
    }
}
