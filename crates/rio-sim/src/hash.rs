//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std`'s default SipHash is keyed per process for HashDoS resistance
//! — protection simulator-internal maps keyed by block numbers don't
//! need, and whose per-lookup cost shows up directly in engine
//! throughput. This is the FxHash multiply-and-rotate scheme (as used
//! by rustc): unkeyed, platform-independent, and a handful of cycles
//! per word.
//!
//! Use it only for maps whose *contents* are never iterated in an
//! order-sensitive way, or iterate sorted.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn byte_stream_is_deterministic() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(&[1, 2, 3]), hash(&[1, 2, 3]));
        assert_ne!(hash(&[1, 2, 3]), hash(&[3, 2, 1]));
        assert_ne!(hash(b"0123456789abcdef"), hash(b"0123456789abcdeg"));
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
