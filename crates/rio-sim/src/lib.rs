//! Deterministic discrete-event simulation engine for the Rio storage stack.
//!
//! Every performance experiment in this repository runs on a virtual
//! nanosecond clock driven by a stable event heap. All randomness flows
//! from a single seeded PRNG, so a simulation run is a pure function of
//! `(configuration, seed)` — re-running an experiment reproduces every
//! event, including injected crashes, bit for bit.
//!
//! The engine is deliberately small and single-threaded:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time.
//! * [`EventHeap`] — a time-ordered heap with FIFO tie-breaking, the
//!   ordering backbone of the whole simulator.
//! * [`rng`] — seeded pseudo-random sources for workloads and jitter.
//! * [`slab`] — a generational slab arena keying in-flight objects by
//!   dense ids, replacing hot-path hash maps.
//! * [`stats`] — counters, mean accumulators and log-bucketed latency
//!   histograms used by the benchmark harness.
//! * [`resource`] — tiny analytic models of serial resources (a DMA
//!   engine, a flash channel, a link) used by the device models.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod hash;
pub mod heap;
pub mod resource;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;

pub use hash::{FxHashMap, FxHashSet};
pub use heap::EventHeap;
pub use resource::{BandwidthLink, FifoResource, MultiServer};
pub use rng::SimRng;
pub use slab::Slab;
pub use stats::{Counter, Histogram, MeanAccum};
pub use time::{SimDuration, SimTime};
