//! Analytic models of serial and parallel resources.
//!
//! Device models express contention through these primitives instead of
//! carrying their own queue bookkeeping:
//!
//! * [`FifoResource`] — a single server (one flash channel, one DMA
//!   engine, one CPU core): jobs serialize; each admission returns the
//!   completion instant.
//! * [`MultiServer`] — `k` identical servers (SSD internal channels):
//!   jobs go to the earliest-free server.
//! * [`BandwidthLink`] — a store-and-forward link: transfer time is
//!   `bytes / bandwidth`, transfers serialize on the wire.

use crate::time::{SimDuration, SimTime};

/// A single serially-shared resource.
#[derive(Debug, Clone)]
pub struct FifoResource {
    free_at: SimTime,
    busy: SimDuration,
}

impl Default for FifoResource {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        FifoResource {
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
        }
    }

    /// Admits a job arriving at `now` needing `service` time; returns its
    /// completion instant. Jobs queue FIFO behind earlier admissions.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.free_at.max(now);
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        done
    }

    /// The instant at which the resource next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated (for utilisation accounting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Forgets all queued work (used on simulated crash).
    pub fn reset(&mut self, now: SimTime) {
        self.free_at = now;
    }
}

/// `k` identical servers fed from one queue (join the earliest-free one).
#[derive(Debug, Clone)]
pub struct MultiServer {
    free_at: Vec<SimTime>,
    busy: SimDuration,
}

impl MultiServer {
    /// Creates `k` idle servers. `k` is clamped to at least 1.
    pub fn new(k: usize) -> Self {
        MultiServer {
            free_at: vec![SimTime::ZERO; k.max(1)],
            busy: SimDuration::ZERO,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Admits a job arriving at `now` with `service` demand; returns its
    /// completion instant on the earliest-free server.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .expect("at least one server");
        let start = self.free_at[idx].max(now);
        let done = start + service;
        self.free_at[idx] = done;
        self.busy += service;
        done
    }

    /// Admits a job to a *specific* server (hash-affinity models).
    pub fn admit_to(&mut self, server: usize, now: SimTime, service: SimDuration) -> SimTime {
        let idx = server % self.free_at.len();
        let start = self.free_at[idx].max(now);
        let done = start + service;
        self.free_at[idx] = done;
        self.busy += service;
        done
    }

    /// Earliest instant any server becomes idle.
    pub fn earliest_free(&self) -> SimTime {
        *self.free_at.iter().min().expect("at least one server")
    }

    /// Total busy time across all servers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Forgets all queued work (used on simulated crash).
    pub fn reset(&mut self, now: SimTime) {
        for t in &mut self.free_at {
            *t = now;
        }
    }
}

/// A store-and-forward link with finite bandwidth.
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    bytes_per_sec: f64,
    wire: FifoResource,
}

impl BandwidthLink {
    /// Creates a link with the given bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        BandwidthLink {
            bytes_per_sec,
            wire: FifoResource::new(),
        }
    }

    /// Serialization delay of `bytes` on an idle wire.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        let secs = bytes as f64 / self.bytes_per_sec;
        SimDuration::from_nanos((secs * 1e9).round() as u64)
    }

    /// Admits a transfer of `bytes` arriving at `now`; returns the instant
    /// the last byte leaves the wire.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let ser = self.serialization(bytes);
        self.wire.admit(now, ser)
    }

    /// Total wire-busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.wire.busy_time()
    }

    /// Configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serializes_back_to_back() {
        let mut r = FifoResource::new();
        let t1 = r.admit(SimTime::from_nanos(0), SimDuration::from_nanos(100));
        let t2 = r.admit(SimTime::from_nanos(10), SimDuration::from_nanos(100));
        assert_eq!(t1.as_nanos(), 100);
        assert_eq!(t2.as_nanos(), 200, "second job queues behind first");
        assert_eq!(r.busy_time().as_nanos(), 200);
    }

    #[test]
    fn fifo_idle_gap_not_counted_busy() {
        let mut r = FifoResource::new();
        r.admit(SimTime::from_nanos(0), SimDuration::from_nanos(50));
        let t = r.admit(SimTime::from_nanos(1_000), SimDuration::from_nanos(50));
        assert_eq!(t.as_nanos(), 1_050);
        assert_eq!(r.busy_time().as_nanos(), 100);
    }

    #[test]
    fn fifo_reset_discards_backlog() {
        let mut r = FifoResource::new();
        r.admit(SimTime::ZERO, SimDuration::from_secs(10));
        r.reset(SimTime::from_nanos(5));
        let t = r.admit(SimTime::from_nanos(5), SimDuration::from_nanos(1));
        assert_eq!(t.as_nanos(), 6);
    }

    #[test]
    fn multi_server_runs_k_in_parallel() {
        let mut m = MultiServer::new(4);
        let done: Vec<u64> = (0..4)
            .map(|_| {
                m.admit(SimTime::ZERO, SimDuration::from_nanos(100))
                    .as_nanos()
            })
            .collect();
        assert_eq!(done, vec![100, 100, 100, 100]);
        // The fifth job queues behind one of them.
        let fifth = m.admit(SimTime::ZERO, SimDuration::from_nanos(100));
        assert_eq!(fifth.as_nanos(), 200);
    }

    #[test]
    fn multi_server_affinity_serializes_per_server() {
        let mut m = MultiServer::new(4);
        let a = m.admit_to(1, SimTime::ZERO, SimDuration::from_nanos(100));
        let b = m.admit_to(1, SimTime::ZERO, SimDuration::from_nanos(100));
        let c = m.admit_to(2, SimTime::ZERO, SimDuration::from_nanos(100));
        assert_eq!(a.as_nanos(), 100);
        assert_eq!(b.as_nanos(), 200);
        assert_eq!(c.as_nanos(), 100);
    }

    #[test]
    fn multi_server_clamps_zero() {
        let m = MultiServer::new(0);
        assert_eq!(m.servers(), 1);
    }

    #[test]
    fn link_serialization_time() {
        // 25 GB/s (200 Gbps): 4 KiB should take ~164 ns.
        let link = BandwidthLink::new(25e9);
        let ns = link.serialization(4096).as_nanos();
        assert!((160..=170).contains(&ns), "got {ns}");
    }

    #[test]
    fn link_transfers_serialize() {
        let mut link = BandwidthLink::new(1e9); // 1 GB/s: 1 byte = 1 ns.
        let t1 = link.transfer(SimTime::ZERO, 1_000);
        let t2 = link.transfer(SimTime::ZERO, 1_000);
        assert_eq!(t1.as_nanos(), 1_000);
        assert_eq!(t2.as_nanos(), 2_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn link_rejects_zero_bandwidth() {
        let _ = BandwidthLink::new(0.0);
    }
}
