//! Measurement primitives used by the benchmark harness.
//!
//! The histogram is log-bucketed (HdrHistogram-style, base-2 with linear
//! sub-buckets) so that latency quantiles from sub-microsecond MMIO
//! persists up to multi-millisecond FLUSHes are captured with bounded
//! relative error and O(1) memory.

use crate::time::SimDuration;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.n += 1;
    }

    /// Adds `k`.
    pub fn add(&mut self, k: u64) {
        self.n += k;
    }

    /// Returns the current count.
    pub fn get(&self) -> u64 {
        self.n
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.n = 0;
    }
}

/// Streaming mean/min/max accumulator over `f64` samples.
///
/// `PartialEq` compares the raw accumulator state; deterministic
/// replays of the same simulation produce bit-identical samples, so
/// equality is exact there.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MeanAccum {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeanAccum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MeanAccum {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

const SUB_BUCKET_BITS: u32 = 5; // 32 linear sub-buckets per power of two.
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const MAX_EXP: usize = 40; // Covers up to ~2^40 ns ≈ 18 minutes.

/// A log-bucketed latency histogram over nanosecond values.
///
/// Relative quantile error is bounded by `1 / 32` (~3%), plenty for
/// reproducing the paper's average and 99th-percentile figures.
///
/// # Examples
///
/// ```
/// use rio_sim::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for us in 1..=100u64 {
///     h.record(SimDuration::from_micros(us));
/// }
/// let p50 = h.quantile(0.50).as_micros_f64();
/// assert!((45.0..=56.0).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; MAX_EXP * SUB_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn index_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let exp = 63 - ns.leading_zeros(); // floor(log2(ns)), >= SUB_BUCKET_BITS
        let top = (exp - SUB_BUCKET_BITS) as usize;
        let sub = (ns >> (exp - SUB_BUCKET_BITS)) as usize & (SUB_BUCKETS - 1);
        ((top + 1) * SUB_BUCKETS + sub).min(MAX_EXP * SUB_BUCKETS - 1)
    }

    fn value_of(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let top = index / SUB_BUCKETS - 1;
        let sub = index % SUB_BUCKETS;
        // Upper edge of the bucket: representative value with bounded error.
        ((SUB_BUCKETS + sub + 1) as u64) << top
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.buckets[Self::index_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        if ns > self.max_ns {
            self.max_ns = ns;
        }
        if ns < self.min_ns {
            self.min_ns = ns;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples; zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Exact maximum sample; zero when empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Exact minimum sample; zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), within ~3% relative error.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_nanos(Self::value_of(i).min(self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn mean_accum_tracks_extremes() {
        let mut m = MeanAccum::new();
        assert_eq!(m.mean(), 0.0);
        for v in [3.0, 1.0, 2.0] {
            m.record(v);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99).as_nanos(), 0);
        assert_eq!(h.mean().as_nanos(), 0);
        assert_eq!(h.min().as_nanos(), 0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for ns in 0..SUB_BUCKETS as u64 {
            h.record(SimDuration::from_nanos(ns));
        }
        // Values below the sub-bucket count land in exact unit buckets.
        assert_eq!(h.quantile(0.0).as_nanos(), 0);
        assert_eq!(h.count(), SUB_BUCKETS as u64);
    }

    #[test]
    fn histogram_quantile_bounded_error() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        for &(q, expect_us) in &[(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).as_micros_f64();
            let err = (got - expect_us).abs() / expect_us;
            assert!(err < 0.05, "q={q}: got {got}, want ~{expect_us}");
        }
    }

    #[test]
    fn histogram_merge_equals_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..1000u64 {
            let d = SimDuration::from_nanos(i * 37 % 100_000);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            all.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(0.5).as_nanos(), all.quantile(0.5).as_nanos());
        assert_eq!(a.max().as_nanos(), all.max().as_nanos());
    }

    proptest! {
        /// Quantile is monotone in q and bounded by min/max.
        #[test]
        fn prop_quantile_monotone(samples in proptest::collection::vec(0u64..10_000_000, 1..300)) {
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(SimDuration::from_nanos(s));
            }
            let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = 0u64;
            for &q in &qs {
                let v = h.quantile(q).as_nanos();
                prop_assert!(v >= prev, "quantile not monotone");
                prop_assert!(v <= h.max().as_nanos());
                prev = v;
            }
        }

        /// The recorded max is exact and the p100 equals it.
        #[test]
        fn prop_p100_is_max(samples in proptest::collection::vec(1u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            let mut true_max = 0;
            for &s in &samples {
                h.record(SimDuration::from_nanos(s));
                true_max = true_max.max(s);
            }
            prop_assert_eq!(h.max().as_nanos(), true_max);
            prop_assert_eq!(h.quantile(1.0).as_nanos(), true_max);
        }
    }
}
