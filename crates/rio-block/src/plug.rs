//! Plug-based batching (`blk_start_plug` / `blk_finish_plug`).
//!
//! The motivation experiment of Fig. 3 controls "the number of 4 KB
//! data blocks that can be potentially merged" exactly through this
//! mechanism: bios accumulate in a per-thread plug and adjacent ones
//! merge when the plug is flushed. This module implements the
//! *orderless* merge (plain LBA adjacency); ordered merging with its
//! stricter whole-group rules lives in `rio_order::scheduler`.

use rio_order::attr::BlockRange;

use crate::bio::Bio;

/// A merged run of bios dispatched as one request.
#[derive(Debug, Clone)]
pub struct MergedRun {
    /// Covering range.
    pub range: BlockRange,
    /// The constituent bios in submission order.
    pub bios: Vec<Bio>,
}

/// A per-thread plug list.
#[derive(Debug, Default)]
pub struct Plug {
    bios: Vec<Bio>,
}

impl Plug {
    /// Starts an empty plug.
    pub fn new() -> Self {
        Plug::default()
    }

    /// Number of plugged bios.
    pub fn len(&self) -> usize {
        self.bios.len()
    }

    /// Whether the plug is empty.
    pub fn is_empty(&self) -> bool {
        self.bios.is_empty()
    }

    /// Adds a bio to the plug.
    pub fn add(&mut self, bio: Bio) {
        self.bios.push(bio);
    }

    /// Flushes the plug, merging adjacent orderless writes up to
    /// `max_blocks` per merged request (`blk_finish_plug`).
    ///
    /// Ordered bios and reads pass through unmerged — they take the
    /// ORDER-queue path instead.
    pub fn finish(&mut self, max_blocks: u32) -> Vec<MergedRun> {
        let mut out: Vec<MergedRun> = Vec::new();
        for bio in self.bios.drain(..) {
            let mergeable = bio.flags.write && !bio.is_ordered() && !bio.flags.flush;
            if mergeable {
                if let Some(last) = out.last_mut() {
                    let last_mergeable = last
                        .bios
                        .last()
                        .map(|b| b.flags.write && !b.is_ordered() && !b.flags.flush)
                        .unwrap_or(false);
                    if last_mergeable
                        && last.range.abuts(&bio.range)
                        && last.range.blocks + bio.range.blocks <= max_blocks
                    {
                        last.range = last.range.join(&bio.range);
                        last.bios.push(bio);
                        continue;
                    }
                }
            }
            out.push(MergedRun {
                range: bio.range,
                bios: vec![bio],
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rio_order::attr::{OrderingAttr, Seq, StreamId};

    fn w(id: u64, lba: u64, blocks: u32) -> Bio {
        Bio::write(id, BlockRange::new(lba, blocks), id)
    }

    #[test]
    fn adjacent_writes_merge() {
        let mut p = Plug::new();
        for i in 0..4 {
            p.add(w(i, i * 2, 2));
        }
        let runs = p.finish(32);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].range, BlockRange::new(0, 8));
        assert_eq!(runs[0].bios.len(), 4);
    }

    #[test]
    fn gap_breaks_merge() {
        let mut p = Plug::new();
        p.add(w(0, 0, 2));
        p.add(w(1, 10, 2));
        let runs = p.finish(32);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn cap_breaks_merge() {
        let mut p = Plug::new();
        for i in 0..4 {
            p.add(w(i, i * 2, 2));
        }
        let runs = p.finish(4);
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| r.range.blocks == 4));
    }

    #[test]
    fn ordered_bios_pass_through() {
        let mut p = Plug::new();
        p.add(w(0, 0, 2));
        let attr = OrderingAttr::single(StreamId(0), Seq(1), BlockRange::new(2, 2));
        p.add(Bio::ordered_write(1, attr, 0));
        p.add(w(2, 4, 2));
        let runs = p.finish(32);
        assert_eq!(runs.len(), 3, "ordered bio must not merge here");
    }

    #[test]
    fn flush_bios_pass_through() {
        let mut p = Plug::new();
        p.add(w(0, 0, 2));
        let mut f = w(1, 2, 2);
        f.flags.flush = true;
        p.add(f);
        p.add(w(2, 4, 2));
        let runs = p.finish(32);
        assert_eq!(runs.len(), 3, "a FLUSH barrier never merges");
    }

    #[test]
    fn finish_empties_plug() {
        let mut p = Plug::new();
        p.add(w(0, 0, 1));
        assert_eq!(p.len(), 1);
        let _ = p.finish(32);
        assert!(p.is_empty());
    }

    proptest! {
        /// Merging preserves the exact multiset of bios and covers the
        /// same blocks.
        #[test]
        fn prop_merge_preserves_bios(
            starts in proptest::collection::vec(0u64..100, 1..30),
        ) {
            let mut p = Plug::new();
            let mut ids = Vec::new();
            for (i, &s) in starts.iter().enumerate() {
                p.add(w(i as u64, s * 64, 2)); // Disjoint 2-block writes.
                ids.push(i as u64);
            }
            let runs = p.finish(32);
            let mut got: Vec<u64> = runs.iter().flat_map(|r| r.bios.iter().map(|b| b.id.0)).collect();
            got.sort_unstable();
            let mut want = ids;
            want.sort_unstable();
            prop_assert_eq!(got, want);
            for r in &runs {
                let sum: u32 = r.bios.iter().map(|b| b.range.blocks).sum();
                prop_assert_eq!(sum, r.range.blocks);
            }
        }
    }
}
