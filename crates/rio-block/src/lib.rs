//! The block layer: bios, plug batching, and striped logical volumes.
//!
//! This crate models the pieces of the Linux block layer that Rio's
//! evaluation interacts with:
//!
//! * [`bio::Bio`] — the unit of block I/O, carrying an optional
//!   ordering context (the `bi_private` field Rio reuses, §5).
//! * [`plug::Plug`] — `blk_start_plug`/`blk_finish_plug` batching, the
//!   knob Figures 3 and 12 sweep; orderless merging happens here.
//! * [`volume::StripedVolume`] — the logical volume that round-robins
//!   4 KB blocks across remote SSDs (§6.2.1) and therefore decides how
//!   requests split across targets.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bio;
pub mod plug;
pub mod volume;

pub use bio::{Bio, BioFlags, BioId};
pub use plug::Plug;
pub use volume::{Extent, StripedVolume};
