//! Striped logical volumes over remote SSDs.
//!
//! The paper's multi-device experiments organize SSDs "as a single
//! logical volume and ... distribute 4 KB data blocks to individual
//! physical SSDs in a round-robin fashion" (§6.2.1). With a stripe unit
//! of `stripe_blocks`, logical block `L` maps to:
//!
//! ```text
//! chunk  = L / stripe_blocks
//! device = chunk % n_devices
//! plba   = (chunk / n_devices) * stripe_blocks + L % stripe_blocks
//! ```
//!
//! [`StripedVolume::map`] turns a logical range into per-device
//! physically-contiguous extents — the split points Rio tags with
//! `split_idx` (Fig. 8b).

use rio_order::attr::{BlockRange, ServerId};

/// A physically contiguous piece of a logical range on one device.
///
/// With fine-grained striping the logical blocks inside one extent may
/// interleave with other legs' blocks — the transport gathers them with
/// a scatter list, exactly as dm-stripe + NVMe PRP lists do. What makes
/// an extent one I/O is *physical* contiguity on its device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Target server owning the device.
    pub server: ServerId,
    /// Device index within the server.
    pub ssd: usize,
    /// Physical range on that device.
    pub range: BlockRange,
    /// Offset of this extent's first block within the logical request
    /// (fragment payload slicing).
    pub logical_offset: u64,
}

/// A round-robin striped volume.
#[derive(Debug, Clone)]
pub struct StripedVolume {
    /// (server, ssd) per stripe leg, in round-robin order.
    legs: Vec<(ServerId, usize)>,
    stripe_blocks: u64,
    capacity_blocks: u64,
}

impl StripedVolume {
    /// Creates a volume striping over `legs` with `stripe_blocks`-block
    /// chunks; each leg contributes `per_leg_blocks` of capacity.
    ///
    /// # Panics
    ///
    /// Panics on empty legs or a zero stripe size.
    pub fn new(legs: Vec<(ServerId, usize)>, stripe_blocks: u32, per_leg_blocks: u64) -> Self {
        assert!(!legs.is_empty(), "volume needs at least one device");
        assert!(stripe_blocks > 0, "stripe unit must be positive");
        let capacity_blocks = per_leg_blocks * legs.len() as u64;
        StripedVolume {
            legs,
            stripe_blocks: stripe_blocks as u64,
            capacity_blocks,
        }
    }

    /// A single-device "volume" (the 1-SSD configurations).
    pub fn single(server: ServerId, ssd: usize, capacity_blocks: u64) -> Self {
        StripedVolume::new(vec![(server, ssd)], 1, capacity_blocks)
    }

    /// Total capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Number of stripe legs.
    pub fn n_legs(&self) -> usize {
        self.legs.len()
    }

    /// The legs (server, ssd) in round-robin order.
    pub fn legs(&self) -> &[(ServerId, usize)] {
        &self.legs
    }

    /// Maps one logical block.
    pub fn map_block(&self, lba: u64) -> (ServerId, usize, u64) {
        let chunk = lba / self.stripe_blocks;
        let leg = (chunk % self.legs.len() as u64) as usize;
        let plba = (chunk / self.legs.len() as u64) * self.stripe_blocks + lba % self.stripe_blocks;
        let (server, ssd) = self.legs[leg];
        (server, ssd, plba)
    }

    /// Inverse of [`Self::map_block`]: the logical block that stripe
    /// leg `leg` stores at physical address `plba`. Recovery scrubbing
    /// uses this to attribute a corrupt media block back to the
    /// workload group that wrote it.
    ///
    /// # Panics
    ///
    /// Panics if `leg` is out of range.
    pub fn logical_of(&self, leg: usize, plba: u64) -> u64 {
        assert!(leg < self.legs.len(), "leg out of range");
        let chunk_in_leg = plba / self.stripe_blocks;
        let chunk = chunk_in_leg * self.legs.len() as u64 + leg as u64;
        chunk * self.stripe_blocks + plba % self.stripe_blocks
    }

    /// Maps a logical range into per-device physically contiguous
    /// extents, ordered by first logical block.
    ///
    /// Blocks of one extent may interleave logically with other legs'
    /// blocks (fine-grained striping): each extent is a maximal
    /// physically contiguous run on one device, dispatched as a single
    /// scatter-gather I/O.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the volume capacity.
    pub fn map(&self, range: BlockRange) -> Vec<Extent> {
        let mut extents = Vec::new();
        self.map_into(range, &mut extents);
        extents
    }

    /// Allocation-free form of [`Self::map`]: appends the extents to
    /// `extents` (which is *not* cleared). The hot path — a write that
    /// stays inside one stripe chunk, e.g. every 4 KB write on a 4 KB
    /// stripe — takes a direct arithmetic shortcut.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the volume capacity.
    pub fn map_into(&self, range: BlockRange, extents: &mut Vec<Extent>) {
        assert!(
            range.end() <= self.capacity_blocks,
            "range beyond volume capacity"
        );
        // Fast path: the whole range sits inside one stripe chunk, so
        // it is one physically contiguous extent on one device.
        if range.lba % self.stripe_blocks + range.blocks as u64 <= self.stripe_blocks {
            let (server, ssd, plba) = self.map_block(range.lba);
            extents.push(Extent {
                server,
                ssd,
                range: BlockRange::new(plba, range.blocks),
                logical_offset: 0,
            });
            return;
        }
        let base = extents.len();
        // Index of the open extent per leg (relative to `base`), or
        // usize::MAX. Legs counts are small; a stack-avoiding scan of
        // the freshly appended extents would also do, but this keeps
        // the general path identical to the original algorithm.
        let mut open: Vec<usize> = vec![usize::MAX; self.legs.len()];
        for i in 0..range.blocks as u64 {
            let lba = range.lba + i;
            let chunk = lba / self.stripe_blocks;
            let leg = (chunk % self.legs.len() as u64) as usize;
            let (server, ssd, plba) = self.map_block(lba);
            let slot = open[leg];
            if slot != usize::MAX && extents[base + slot].range.end() == plba {
                extents[base + slot].range.blocks += 1;
                continue;
            }
            open[leg] = extents.len() - base;
            extents.push(Extent {
                server,
                ssd,
                range: BlockRange::new(plba, 1),
                logical_offset: i,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn volume4() -> StripedVolume {
        // Two servers with two SSDs each, 4 KB round-robin (§6.2.1).
        StripedVolume::new(
            vec![
                (ServerId(0), 0),
                (ServerId(0), 1),
                (ServerId(1), 0),
                (ServerId(1), 1),
            ],
            1,
            1 << 20,
        )
    }

    #[test]
    fn single_volume_is_identity() {
        let v = StripedVolume::single(ServerId(0), 0, 100);
        let e = v.map(BlockRange::new(10, 5));
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].range, BlockRange::new(10, 5));
        assert_eq!(e[0].logical_offset, 0);
    }

    #[test]
    fn round_robin_4k_mapping() {
        let v = volume4();
        // Blocks 0,1,2,3 land on legs 0,1,2,3 at physical 0.
        for lba in 0..4 {
            let (server, ssd, plba) = v.map_block(lba);
            assert_eq!(plba, 0);
            let leg = (lba % 4) as usize;
            assert_eq!((server, ssd), v.legs()[leg]);
        }
        // Blocks 4..8 land at physical 1.
        assert_eq!(v.map_block(4).2, 1);
    }

    #[test]
    fn sequential_run_gathers_per_leg() {
        let v = volume4();
        // 16 sequential logical blocks = 4 per leg, physically 0..4:
        // one gathered extent per leg (the dm-stripe scatter-gather).
        let e = v.map(BlockRange::new(0, 16));
        assert_eq!(e.len(), 4, "one extent per leg");
        for (leg, x) in e.iter().enumerate() {
            let (srv, ssd) = v.legs()[leg];
            assert_eq!((x.server, x.ssd), (srv, ssd));
            assert_eq!(x.range, BlockRange::new(0, 4));
            assert_eq!(x.logical_offset, leg as u64);
        }
    }

    #[test]
    fn gap_on_a_leg_starts_new_extent() {
        // Two disjoint logical runs hitting the same leg produce two
        // extents when the physical addresses do not abut.
        let v = StripedVolume::new(vec![(ServerId(0), 0), (ServerId(1), 0)], 1, 1 << 20);
        let e = v.map(BlockRange::new(0, 2));
        assert_eq!(e.len(), 2);
        let e2 = v.map(BlockRange::new(6, 2));
        assert_eq!(e2[0].range.lba, 3, "physical address advances");
    }

    #[test]
    fn large_stripe_keeps_extents_whole() {
        let v = StripedVolume::new(vec![(ServerId(0), 0), (ServerId(1), 0)], 8, 1 << 20);
        let e = v.map(BlockRange::new(0, 20));
        // Leg 0 gets blocks 0-7 (p0-7) and 16-19 (p8-11): physically
        // contiguous, so they gather into one 12-block extent; leg 1
        // gets blocks 8-15 (p0-7).
        assert_eq!(e.len(), 2);
        assert_eq!(
            e[0],
            Extent {
                server: ServerId(0),
                ssd: 0,
                range: BlockRange::new(0, 12),
                logical_offset: 0
            }
        );
        assert_eq!(
            e[1],
            Extent {
                server: ServerId(1),
                ssd: 0,
                range: BlockRange::new(0, 8),
                logical_offset: 8
            }
        );
    }

    #[test]
    #[should_panic(expected = "beyond volume capacity")]
    fn oversized_range_rejected() {
        let v = StripedVolume::single(ServerId(0), 0, 10);
        let _ = v.map(BlockRange::new(8, 4));
    }

    proptest! {
        /// `logical_of` inverts `map_block` for every logical block.
        #[test]
        fn prop_logical_of_inverts_map_block(
            lba in 0u64..100_000,
            legs in 1usize..6,
            stripe in 1u32..16,
        ) {
            let legs_v: Vec<(ServerId, usize)> = (0..legs).map(|i| (ServerId(i as u16), 0)).collect();
            let v = StripedVolume::new(legs_v, stripe, 1 << 20);
            let (srv, _, plba) = v.map_block(lba);
            prop_assert_eq!(v.logical_of(srv.0 as usize, plba), lba);
        }

        /// Mapping covers every logical block exactly once: the extent
        /// block counts tile the request and every (device, physical
        /// block) of the request appears in exactly one extent.
        #[test]
        fn prop_mapping_is_a_tiling(
            lba in 0u64..10_000,
            blocks in 1u32..200,
            legs in 1usize..6,
            stripe in 1u32..16,
        ) {
            let legs_v: Vec<(ServerId, usize)> = (0..legs).map(|i| (ServerId(i as u16), 0)).collect();
            let v = StripedVolume::new(legs_v, stripe, 1 << 20);
            let e = v.map(BlockRange::new(lba, blocks));
            let total: u64 = e.iter().map(|x| x.range.blocks as u64).sum();
            prop_assert_eq!(total, blocks as u64);
            // Collect the expected physical blocks per device.
            let mut expect = std::collections::BTreeSet::new();
            for i in 0..blocks as u64 {
                let (srv, ssd, plba) = v.map_block(lba + i);
                expect.insert((srv.0, ssd, plba));
            }
            let mut got = std::collections::BTreeSet::new();
            for x in &e {
                for j in 0..x.range.blocks as u64 {
                    prop_assert!(
                        got.insert((x.server.0, x.ssd, x.range.lba + j)),
                        "physical block covered twice"
                    );
                }
            }
            prop_assert_eq!(got, expect);
            // Extents are maximal: no two extents on the same leg abut.
            for (i, a) in e.iter().enumerate() {
                for b in e.iter().skip(i + 1) {
                    if (a.server, a.ssd) == (b.server, b.ssd) {
                        prop_assert!(
                            a.range.end() != b.range.lba && b.range.end() != a.range.lba,
                            "extents on one leg should have been gathered"
                        );
                    }
                }
            }
        }
    }
}
