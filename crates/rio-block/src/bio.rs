//! The block I/O descriptor.

use rio_order::attr::{BlockRange, OrderingAttr};

/// Unique identifier of a bio within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BioId(pub u64);

/// Request flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BioFlags {
    /// Write (false = read).
    pub write: bool,
    /// Issue a FLUSH after the data (journal commit records).
    pub flush: bool,
    /// Force unit access.
    pub fua: bool,
}

/// One block I/O request as it flows through the stack.
///
/// `ordering` plays the role of the `bi_private` field the Rio
/// implementation reuses to carry the ordering attribute (§5): `None`
/// means an orderless request.
#[derive(Debug, Clone)]
pub struct Bio {
    /// Identifier (completion matching).
    pub id: BioId,
    /// Logical range on the volume.
    pub range: BlockRange,
    /// Flags.
    pub flags: BioFlags,
    /// Rio ordering attribute, when the request is ordered.
    pub ordering: Option<OrderingAttr>,
    /// Payload tag for benchmark writes (media stores tags, not bytes).
    pub tag: u64,
}

impl Bio {
    /// Creates an orderless write bio.
    pub fn write(id: u64, range: BlockRange, tag: u64) -> Self {
        Bio {
            id: BioId(id),
            range,
            flags: BioFlags {
                write: true,
                ..Default::default()
            },
            ordering: None,
            tag,
        }
    }

    /// Creates an ordered write bio carrying `attr`.
    pub fn ordered_write(id: u64, attr: OrderingAttr, tag: u64) -> Self {
        Bio {
            id: BioId(id),
            range: attr.range,
            flags: BioFlags {
                write: true,
                flush: attr.flush,
                ..Default::default()
            },
            ordering: Some(attr),
            tag,
        }
    }

    /// Whether this bio is ordered.
    pub fn is_ordered(&self) -> bool {
        self.ordering.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_order::attr::{Seq, StreamId};

    #[test]
    fn orderless_constructor() {
        let b = Bio::write(1, BlockRange::new(0, 8), 42);
        assert!(b.flags.write);
        assert!(!b.is_ordered());
        assert_eq!(b.range.blocks, 8);
    }

    #[test]
    fn ordered_constructor_carries_attr_and_flush() {
        let mut attr = OrderingAttr::single(StreamId(0), Seq(1), BlockRange::new(4, 2));
        attr.flush = true;
        let b = Bio::ordered_write(2, attr, 7);
        assert!(b.is_ordered());
        assert!(b.flags.flush, "attribute FLUSH surfaces as a bio flag");
        assert_eq!(b.range, BlockRange::new(4, 2));
    }
}
