//! Randomized crash-consistency property test for RioFS.
//!
//! Generates random operation histories (create / write / fsync /
//! unlink), runs them over the ordered device, and mounts the file
//! system at *every* admissible post-crash prefix:
//!
//! * recovery (journal replay) must always produce an fsck-clean image;
//! * every file whose last fsync happened before the final FLUSH point
//!   must be present with exactly its fsync'ed content.

use proptest::prelude::*;
use rio_fs::{OrderedDev, RioFs, BLOCK_SIZE};
use rio_proto::payload;
use std::collections::HashMap;

/// Reads every block of every visible file and checks it is either
/// still unwritten (all zero) or bit-exact to the payload block its
/// embedded seed regenerates — i.e. no crash prefix ever exposes a
/// torn or mangled data block.
fn assert_blocks_verify<D: rio_fs::BlockDev>(fs: &RioFs<D>, ctx: &str) {
    for (name, _) in fs.readdir() {
        let size = fs.stat(&name).unwrap_or(0) as usize;
        let mut off = 0;
        while off < size {
            let want = (size - off).min(BLOCK_SIZE);
            let block = fs
                .read(&name, off as u64, want)
                .unwrap_or_else(|e| panic!("{ctx}: read {name}@{off}: {e:?}"));
            if block.iter().any(|&b| b != 0) {
                assert!(
                    block.len() == BLOCK_SIZE && payload::verify_block(&block),
                    "{ctx}: torn or corrupt data block in {name} at offset {off}"
                );
            }
            off += BLOCK_SIZE;
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write { file: u8, block: u8, byte: u8 },
    Fsync(u8),
    Unlink(u8),
}

fn gen_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..6).prop_map(Op::Create),
            (0u8..6, 0u8..4, any::<u8>()).prop_map(|(file, block, byte)| Op::Write {
                file,
                block,
                byte
            }),
            (0u8..6).prop_map(Op::Fsync),
            (0u8..6).prop_map(Op::Unlink),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_crash_prefix_recovers_consistently(ops in gen_ops()) {
        let mut fs = RioFs::mkfs(OrderedDev::new(2048), 2);
        // Reference model: content of each file at its last fsync.
        let mut synced: HashMap<String, Vec<u8>> = HashMap::new();
        let mut live: HashMap<String, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Create(f) => {
                    let name = format!("f{f}");
                    if fs.create(&name).is_ok() {
                        live.insert(name, Vec::new());
                    }
                }
                Op::Write { file, block, byte } => {
                    let name = format!("f{file}");
                    // Full 4 KB of distinct, self-verifying payload bytes:
                    // the seed mixes (file, version, block) so every write
                    // to every slot is a unique recognisable image.
                    let seed = payload::seed_for(*file as u16, *byte as u64, *block as u64);
                    let data = payload::block_for(seed);
                    let off = *block as u64 * BLOCK_SIZE as u64;
                    if fs.write(&name, off, &data).is_ok() {
                        let content = live.entry(name).or_default();
                        let end = off as usize + data.len();
                        if content.len() < end {
                            content.resize(end, 0);
                        }
                        content[off as usize..end].copy_from_slice(&data);
                    }
                }
                Op::Fsync(f) => {
                    let name = format!("f{f}");
                    if fs.fsync(&name, *f as usize).is_ok() {
                        synced.insert(name.clone(), live.get(&name).cloned().unwrap_or_default());
                    }
                }
                Op::Unlink(f) => {
                    let name = format!("f{f}");
                    if fs.unlink(&name).is_ok() {
                        live.remove(&name);
                        // An unlink before the next FLUSH may or may not
                        // survive; drop the expectation entirely.
                        synced.remove(&name);
                    }
                }
            }
        }
        let dev = fs.into_device();
        let groups = dev.groups();
        // Sample crash points: edges plus a spread.
        let step = (groups / 6).max(1);
        let mut points: Vec<u64> = (0..=groups).step_by(step as usize).collect();
        points.push(groups);
        for keep in points {
            let img = dev.crash_image(keep);
            let recovered = RioFs::mount(img).expect("superblock survives (flushed at mkfs)");
            let problems = recovered.fsck();
            prop_assert!(
                problems.is_empty(),
                "fsck at prefix {keep}/{groups}: {problems:?}"
            );
            // Every readable data block must be a bit-exact submitted
            // payload — a crash may lose writes, never mangle them.
            assert_blocks_verify(&recovered, &format!("prefix {keep}/{groups}"));
        }
        // The worst-case crash (keep = 0, only FLUSH-pinned groups)
        // must still contain every fsync'ed file with its content.
        let worst = RioFs::mount(dev.crash_image(0)).expect("mount worst case");
        for (name, content) in &synced {
            let size = worst.stat(name);
            prop_assert!(
                size.is_some(),
                "fsync'ed file {name} lost in worst-case crash"
            );
            if !content.is_empty() {
                let got = worst
                    .read(name, 0, content.len())
                    .expect("read fsync'ed file");
                prop_assert_eq!(
                    &got, content,
                    "fsync'ed content of {} differs", name
                );
            }
        }
    }
}

/// Deterministic smoke: interleaved fsyncs on two journal areas with a
/// crash between them.
#[test]
fn interleaved_journal_areas_recover() {
    let mut fs = RioFs::mkfs(OrderedDev::new(2048), 2);
    fs.create("a").expect("create a");
    fs.create("b").expect("create b");
    fs.write("a", 0, b"alpha").expect("write a");
    fs.fsync("a", 0).expect("fsync a via area 0");
    fs.write("b", 0, b"beta").expect("write b");
    fs.fsync("b", 1).expect("fsync b via area 1");
    fs.write("a", 0, b"ALPHA").expect("rewrite a");
    fs.fsync("a", 0).expect("fsync a again");
    let dev = fs.into_device();
    for keep in 0..=dev.groups() {
        let recovered = RioFs::mount(dev.crash_image(keep)).expect("mount");
        assert!(recovered.fsck().is_empty(), "prefix {keep}");
        // Both files' last-fsync contents are pinned by the final FLUSH.
        assert_eq!(recovered.read("a", 0, 5).expect("a"), b"ALPHA");
        assert_eq!(recovered.read("b", 0, 4).expect("b"), b"beta");
    }
}

/// Deterministic end-to-end payload check: multi-block files of
/// splitmix64 payload bytes, fsync'ed, then remounted at every crash
/// prefix. Fsync'ed bytes must read back exactly as submitted, and no
/// prefix may surface a block that differs from any submitted image.
#[test]
fn fsynced_payload_reads_back_exactly_after_every_crash() {
    let mut fs = RioFs::mkfs(OrderedDev::new(2048), 2);
    let mut submitted: HashMap<String, Vec<u8>> = HashMap::new();
    for f in 0..3u16 {
        let name = format!("p{f}");
        fs.create(&name).expect("create");
        let mut content = Vec::new();
        for blk in 0..4u64 {
            let data = payload::block_for(payload::seed_for(f, 1, blk));
            fs.write(&name, blk * BLOCK_SIZE as u64, &data)
                .expect("write");
            content.extend_from_slice(&data);
        }
        fs.fsync(&name, f as usize % 2).expect("fsync");
        submitted.insert(name, content);
    }
    let dev = fs.into_device();
    for keep in 0..=dev.groups() {
        let recovered = RioFs::mount(dev.crash_image(keep)).expect("mount");
        assert!(recovered.fsck().is_empty(), "prefix {keep}");
        assert_blocks_verify(&recovered, &format!("prefix {keep}"));
    }
    // Everything was fsync'ed before the crash: the worst-case image
    // must hold every byte of every file exactly as submitted.
    let worst = RioFs::mount(dev.crash_image(0)).expect("mount worst case");
    for (name, content) in &submitted {
        let got = worst
            .read(name, 0, content.len())
            .expect("read fsync'ed payload");
        assert_eq!(&got, content, "payload of {name} differs after recovery");
    }
}
