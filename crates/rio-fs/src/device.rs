//! Block devices for the file system: a plain memory device and an
//! *ordered* device that reproduces Rio's crash semantics.

/// Block size in bytes.
pub const BLOCK_SIZE: usize = 4096;

/// A synchronous block device as the file system sees it.
pub trait BlockDev {
    /// Device capacity in blocks.
    fn n_blocks(&self) -> u64;
    /// Reads one block.
    fn read_block(&self, lba: u64) -> Vec<u8>;
    /// Writes one block.
    fn write_block(&mut self, lba: u64, data: &[u8]);
    /// Makes all prior writes durable.
    fn flush(&mut self);
    /// Ends the current ordered group (`rio_submit` boundary). A no-op
    /// on devices without ordering semantics.
    fn end_group(&mut self) {}
}

/// A plain in-memory device (always "durable").
#[derive(Debug, Clone)]
pub struct MemDev {
    blocks: Vec<Option<Box<[u8]>>>,
}

impl MemDev {
    /// Creates a zeroed device of `n_blocks`.
    pub fn new(n_blocks: u64) -> Self {
        MemDev {
            blocks: vec![None; n_blocks as usize],
        }
    }
}

impl BlockDev for MemDev {
    fn n_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read_block(&self, lba: u64) -> Vec<u8> {
        match &self.blocks[lba as usize] {
            Some(b) => b.to_vec(),
            None => vec![0; BLOCK_SIZE],
        }
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) {
        assert!(data.len() <= BLOCK_SIZE, "oversized block write");
        let mut full = vec![0u8; BLOCK_SIZE];
        full[..data.len()].copy_from_slice(data);
        self.blocks[lba as usize] = Some(full.into_boxed_slice());
    }

    fn flush(&mut self) {}
}

/// Rio's ordered block device: writes belong to *groups* (one
/// `rio_submit` each); a crash may lose any suffix of groups but never
/// an interior one — the prefix semantics of §4.8. A FLUSH (group
/// carrying `flush`) pins everything before it.
///
/// `OrderedDev` implements this by journaling every write with its
/// group number and materialising post-crash images on demand.
#[derive(Debug, Clone)]
pub struct OrderedDev {
    n_blocks: u64,
    /// Durable base image (pre-crash checkpoint).
    base: MemDev,
    /// Writes since the base, tagged with their group ordinal.
    log: Vec<(u64, u64, Box<[u8]>)>,
    /// Current group ordinal.
    group: u64,
    /// Highest group pinned durable by a FLUSH.
    flushed_through: u64,
}

impl OrderedDev {
    /// Creates a zeroed ordered device.
    pub fn new(n_blocks: u64) -> Self {
        OrderedDev {
            n_blocks,
            base: MemDev::new(n_blocks),
            log: Vec::new(),
            group: 0,
            flushed_through: 0,
        }
    }

    /// Current group ordinal (groups completed so far).
    pub fn groups(&self) -> u64 {
        self.group
    }

    /// Number of logged (un-checkpointed) writes.
    pub fn logged_writes(&self) -> usize {
        self.log.len()
    }

    /// Materialises the device image as it would look after a crash
    /// that persisted exactly groups `0..keep_groups` (plus the
    /// FLUSH-pinned prefix, whichever is larger).
    ///
    /// Rio's guarantee is that `keep_groups` can be *any* value between
    /// the last FLUSH point and the submitted total — the crash tests
    /// iterate over all of them.
    pub fn crash_image(&self, keep_groups: u64) -> MemDev {
        let keep = keep_groups.max(self.flushed_through);
        let mut img = self.base.clone();
        for (group, lba, data) in &self.log {
            if *group < keep {
                img.write_block(*lba, data);
            }
        }
        img
    }

    /// The fully-applied (no crash) image.
    pub fn settled_image(&self) -> MemDev {
        self.crash_image(self.group)
    }
}

impl BlockDev for OrderedDev {
    fn n_blocks(&self) -> u64 {
        self.n_blocks
    }

    fn read_block(&self, lba: u64) -> Vec<u8> {
        // Reads observe submission order (the logical view).
        for (_, l, data) in self.log.iter().rev() {
            if *l == lba {
                return data.to_vec();
            }
        }
        self.base.read_block(lba)
    }

    fn write_block(&mut self, lba: u64, data: &[u8]) {
        assert!(data.len() <= BLOCK_SIZE, "oversized block write");
        let mut full = vec![0u8; BLOCK_SIZE];
        full[..data.len()].copy_from_slice(data);
        self.log.push((self.group, lba, full.into_boxed_slice()));
    }

    fn flush(&mut self) {
        // A FLUSH ends the current group and pins everything submitted
        // so far.
        if !self.log.is_empty() {
            self.group += 1;
        }
        self.flushed_through = self.group;
    }

    fn end_group(&mut self) {
        self.group += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdev_read_write_round_trip() {
        let mut d = MemDev::new(8);
        assert_eq!(d.read_block(3), vec![0; BLOCK_SIZE]);
        d.write_block(3, &[7; 16]);
        assert_eq!(&d.read_block(3)[..16], &[7; 16]);
        assert_eq!(d.read_block(3)[16], 0, "short writes zero-pad");
    }

    #[test]
    fn ordered_dev_reads_see_submission_order() {
        let mut d = OrderedDev::new(8);
        d.write_block(1, &[1]);
        d.end_group();
        d.write_block(1, &[2]);
        d.end_group();
        assert_eq!(d.read_block(1)[0], 2);
    }

    #[test]
    fn crash_keeps_prefix_of_groups() {
        let mut d = OrderedDev::new(8);
        d.write_block(0, &[10]);
        d.end_group(); // group 0
        d.write_block(1, &[20]);
        d.end_group(); // group 1
        d.write_block(2, &[30]);
        d.end_group(); // group 2

        let img0 = d.crash_image(0);
        assert_eq!(img0.read_block(0)[0], 0);
        let img2 = d.crash_image(2);
        assert_eq!(img2.read_block(0)[0], 10);
        assert_eq!(img2.read_block(1)[0], 20);
        assert_eq!(img2.read_block(2)[0], 0, "group 2 lost");
    }

    #[test]
    fn flush_pins_prefix() {
        let mut d = OrderedDev::new(8);
        d.write_block(0, &[10]);
        d.end_group();
        d.flush();
        d.write_block(1, &[20]);
        d.end_group();
        // Even a crash that "keeps zero groups" retains the flushed
        // prefix.
        let img = d.crash_image(0);
        assert_eq!(img.read_block(0)[0], 10, "flushed data survives");
        assert_eq!(img.read_block(1)[0], 0);
    }

    #[test]
    fn settled_image_applies_everything() {
        let mut d = OrderedDev::new(8);
        d.write_block(5, &[9]);
        d.end_group();
        let img = d.settled_image();
        assert_eq!(img.read_block(5)[0], 9);
    }
}
