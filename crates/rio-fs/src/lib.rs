//! RioFS: a journaling file system over an ordered block device (§4.7).
//!
//! The file system is deliberately compact but *real*: it has a
//! superblock, inode table, block bitmap, a flat root directory, and a
//! JBD2-style physical-redo journal. What the paper varies — and what
//! this crate makes pluggable — is **how the journal's ordered writes
//! reach the device**:
//!
//! * [`device::MemDev`]-style synchronous backends model Ext4's
//!   transfer-and-FLUSH,
//! * [`device::OrderedDev`] models Rio's ordered block device: groups
//!   of writes are submitted asynchronously and a crash exposes any
//!   *prefix* of the group sequence (plus the FLUSH-covered suffix
//!   rule), exactly the post-crash states Rio's recovery theorem
//!   guarantees (§4.8).
//!
//! Crash-consistency property tests mount the file system over every
//! admissible post-crash state and verify the journal-replay recovery
//! restores a consistent image containing every fsync'ed file.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod fs;
pub mod journal;
pub mod layout;

pub use device::{BlockDev, MemDev, OrderedDev, BLOCK_SIZE};
pub use fs::{FsError, RioFs};
pub use layout::Layout;
