//! The physical-redo journal (JBD2-style, with per-core areas).
//!
//! A transaction is laid out as:
//!
//! ```text
//! | descriptor | metadata image 0 | ... | image n-1 | commit |
//! ```
//!
//! The descriptor lists the home addresses of the images; the commit
//! block carries the transaction id and a checksum of the home list.
//! Ordering between the images and the commit is delegated to the
//! ordering backend (synchronous FLUSH for Ext4, `rio_submit` groups
//! for RioFS) — the journal format itself is engine-agnostic.
//!
//! Recovery scans an area, collects transactions whose descriptor and
//! commit both validate, and replays them in ascending transaction id
//! (iJournaling's conflict rule: the latest transaction wins, §4.7).

use crate::device::{BlockDev, BLOCK_SIZE};

/// Descriptor block magic.
const DESC_MAGIC: u32 = 0x4A_52_4E_4C; // "JRNL"
/// Commit block magic.
const COMMIT_MAGIC: u32 = 0x43_4D_4D_54; // "CMMT"

/// Maximum metadata images per transaction (bounded by the descriptor
/// block's home list).
pub const MAX_TX_BLOCKS: usize = (BLOCK_SIZE - 16) / 8;

/// One journal transaction to be written.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Global transaction id (monotonic across all areas).
    pub txid: u64,
    /// (home lba, block image) pairs.
    pub blocks: Vec<(u64, Vec<u8>)>,
}

fn checksum(txid: u64, homes: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ txid;
    for &lba in homes {
        h ^= lba;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Transaction {
    /// Encodes the descriptor block.
    pub fn descriptor(&self) -> Vec<u8> {
        assert!(self.blocks.len() <= MAX_TX_BLOCKS, "transaction too large");
        let mut b = vec![0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        b[4..12].copy_from_slice(&self.txid.to_le_bytes());
        b[12..16].copy_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for (i, (home, _)) in self.blocks.iter().enumerate() {
            b[16 + i * 8..24 + i * 8].copy_from_slice(&home.to_le_bytes());
        }
        b
    }

    /// Encodes the commit block.
    pub fn commit(&self) -> Vec<u8> {
        let homes: Vec<u64> = self.blocks.iter().map(|(h, _)| *h).collect();
        let mut b = vec![0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        b[4..12].copy_from_slice(&self.txid.to_le_bytes());
        b[12..20].copy_from_slice(&checksum(self.txid, &homes).to_le_bytes());
        b
    }

    /// Blocks this transaction occupies in the journal.
    pub fn journal_blocks(&self) -> u64 {
        2 + self.blocks.len() as u64
    }
}

/// Writes `tx` into the journal area at `cursor`, returning the new
/// cursor (wrapping within the area).
///
/// The caller is responsible for group boundaries around the images
/// and the commit (that is the ordering backend's job).
pub fn write_tx<D: BlockDev>(
    dev: &mut D,
    area_start: u64,
    area_len: u64,
    cursor: u64,
    tx: &Transaction,
) -> u64 {
    let need = tx.journal_blocks();
    assert!(need <= area_len, "transaction larger than the journal area");
    // Wrap if the tail would spill past the area.
    let cursor = if cursor + need > area_len { 0 } else { cursor };
    let mut at = area_start + cursor;
    dev.write_block(at, &tx.descriptor());
    at += 1;
    for (_, img) in &tx.blocks {
        dev.write_block(at, img);
        at += 1;
    }
    at
    // The commit block is written by the caller via `commit_at` so the
    // ordering backend can place a group boundary before it.
}

/// The journal block where `write_tx`'s commit block belongs.
pub fn commit_lba(area_start: u64, area_len: u64, cursor: u64, tx: &Transaction) -> u64 {
    let need = tx.journal_blocks();
    let cursor = if cursor + need > area_len { 0 } else { cursor };
    area_start + cursor + need - 1
}

/// New cursor after `tx` is fully written.
pub fn next_cursor(area_len: u64, cursor: u64, tx: &Transaction) -> u64 {
    let need = tx.journal_blocks();
    let cursor = if cursor + need > area_len { 0 } else { cursor };
    cursor + need
}

/// A transaction recovered from a journal scan.
#[derive(Debug, Clone)]
pub struct RecoveredTx {
    /// Transaction id.
    pub txid: u64,
    /// (home lba, image) pairs to replay.
    pub blocks: Vec<(u64, Vec<u8>)>,
}

/// Scans one journal area and returns every committed transaction.
pub fn scan_area<D: BlockDev>(dev: &D, area_start: u64, area_len: u64) -> Vec<RecoveredTx> {
    let mut out = Vec::new();
    let mut at = 0u64;
    while at < area_len {
        let desc = dev.read_block(area_start + at);
        if desc[0..4] != DESC_MAGIC.to_le_bytes() {
            at += 1;
            continue;
        }
        let txid = u64::from_le_bytes(desc[4..12].try_into().expect("desc field"));
        let n = u32::from_le_bytes(desc[12..16].try_into().expect("desc field")) as usize;
        if n > MAX_TX_BLOCKS || at + 2 + n as u64 > area_len {
            at += 1;
            continue;
        }
        let mut homes = Vec::with_capacity(n);
        for i in 0..n {
            homes.push(u64::from_le_bytes(
                desc[16 + i * 8..24 + i * 8].try_into().expect("desc field"),
            ));
        }
        // Validate the commit block.
        let commit = dev.read_block(area_start + at + 1 + n as u64);
        let valid = commit[0..4] == COMMIT_MAGIC.to_le_bytes()
            && u64::from_le_bytes(commit[4..12].try_into().expect("commit field")) == txid
            && u64::from_le_bytes(commit[12..20].try_into().expect("commit field"))
                == checksum(txid, &homes);
        if valid {
            let mut blocks = Vec::with_capacity(n);
            for (i, &home) in homes.iter().enumerate() {
                blocks.push((home, dev.read_block(area_start + at + 1 + i as u64)));
            }
            out.push(RecoveredTx { txid, blocks });
            at += 2 + n as u64;
        } else {
            at += 1;
        }
    }
    out
}

/// Replays committed transactions from all areas in ascending txid
/// (the latest image of a home block wins).
pub fn replay<D: BlockDev>(dev: &mut D, areas: &[(u64, u64)]) -> usize {
    let mut txns: Vec<RecoveredTx> = Vec::new();
    for &(start, len) in areas {
        txns.extend(scan_area(dev, start, len));
    }
    txns.sort_by_key(|t| t.txid);
    let count = txns.len();
    for tx in txns {
        for (home, img) in tx.blocks {
            dev.write_block(home, &img);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDev;

    fn tx(txid: u64, homes: &[u64]) -> Transaction {
        Transaction {
            txid,
            blocks: homes
                .iter()
                .map(|&h| (h, vec![(txid % 251) as u8; BLOCK_SIZE]))
                .collect(),
        }
    }

    #[test]
    fn write_scan_round_trip() {
        let mut d = MemDev::new(128);
        let t = tx(7, &[100, 101]);
        write_tx(&mut d, 10, 20, 0, &t);
        d.write_block(commit_lba(10, 20, 0, &t), &t.commit());
        let found = scan_area(&d, 10, 20);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].txid, 7);
        assert_eq!(found[0].blocks.len(), 2);
        assert_eq!(found[0].blocks[0].0, 100);
    }

    #[test]
    fn uncommitted_tx_is_ignored() {
        let mut d = MemDev::new(128);
        let t = tx(7, &[100]);
        write_tx(&mut d, 10, 20, 0, &t);
        // No commit block written: crash before JC.
        assert!(scan_area(&d, 10, 20).is_empty());
    }

    #[test]
    fn corrupt_commit_is_ignored() {
        let mut d = MemDev::new(128);
        let t = tx(7, &[100]);
        write_tx(&mut d, 10, 20, 0, &t);
        let mut bad = t.commit();
        bad[12] ^= 0xff; // Break the checksum.
        d.write_block(commit_lba(10, 20, 0, &t), &bad);
        assert!(scan_area(&d, 10, 20).is_empty());
    }

    #[test]
    fn replay_applies_latest_txid() {
        let mut d = MemDev::new(256);
        // Two txns updating the same home block, written to two areas.
        let t1 = tx(1, &[200]);
        let t2 = tx(2, &[200]);
        write_tx(&mut d, 10, 20, 0, &t1);
        d.write_block(commit_lba(10, 20, 0, &t1), &t1.commit());
        write_tx(&mut d, 30, 20, 0, &t2);
        d.write_block(commit_lba(30, 20, 0, &t2), &t2.commit());
        let n = replay(&mut d, &[(10, 20), (30, 20)]);
        assert_eq!(n, 2);
        assert_eq!(d.read_block(200)[0], 2, "tx 2 wins");
    }

    #[test]
    fn wrap_when_area_full() {
        let mut d = MemDev::new(256);
        let t = tx(1, &[99]);
        // Area of 8 blocks; cursor 6 cannot fit 3 blocks -> wraps to 0.
        let cur = next_cursor(8, 6, &t);
        assert_eq!(cur, 3, "wrapped to the start");
        write_tx(&mut d, 10, 8, 6, &t);
        d.write_block(commit_lba(10, 8, 6, &t), &t.commit());
        let found = scan_area(&d, 10, 8);
        assert_eq!(found.len(), 1);
    }

    #[test]
    #[should_panic(expected = "transaction too large")]
    fn oversized_tx_rejected() {
        let homes: Vec<u64> = (0..MAX_TX_BLOCKS as u64 + 1).collect();
        let t = tx(1, &homes);
        let _ = t.descriptor();
    }
}
