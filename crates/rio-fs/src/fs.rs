//! The file system proper: a flat-namespace, journaling FS.
//!
//! Write path (ordered mode, metadata journaling):
//!
//! 1. `write` buffers data in the page cache;
//! 2. `fsync` writes the file's dirty **D**ata blocks in place (one
//!    ordered group), then the **JM** journal record (descriptor +
//!    metadata images, a second group), then the **JC** commit block
//!    (a third group carrying the FLUSH) — the exact triplet of
//!    Figs. 9/14 — and finally checkpoints metadata home.
//! 3. `mount` replays committed journal transactions (ascending txid)
//!    before loading metadata, restoring consistency after any crash.
//!
//! Per-core journal areas (iJournaling) let concurrent fsyncs commit
//! independently; the global txid resolves conflicts at replay (§4.7).

use std::collections::BTreeMap;

use crate::device::{BlockDev, BLOCK_SIZE};
use crate::journal::{self, Transaction};
use crate::layout::{Inode, Layout, DIRENT_SIZE, INODE_SIZE, NAME_MAX};

/// File-system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The file name already exists.
    Exists,
    /// No such file.
    NotFound,
    /// File or device capacity exhausted.
    NoSpace,
    /// Name too long or empty.
    BadName,
    /// Write beyond the maximum file size.
    TooLarge,
}

/// The mounted file system.
pub struct RioFs<D: BlockDev> {
    dev: D,
    layout: Layout,
    /// In-memory inode table.
    inodes: Vec<Inode>,
    /// Block allocation bitmap (one bool per device block).
    bitmap: Vec<bool>,
    /// name -> inode number. A `BTreeMap` so that directory iteration
    /// (readdir, fsck, dirent-block materialisation) has one stable,
    /// name-sorted order on every run — std's `HashMap` is seeded per
    /// process and would reorder it.
    dir: BTreeMap<String, u64>,
    /// Dirty data pages: (ino, file block index) -> bytes.
    pages: BTreeMap<(u64, u64), Vec<u8>>,
    /// Metadata blocks dirtied since the last fsync of any file.
    dirty_meta: BTreeMap<u64, ()>,
    /// Per-area journal cursors.
    cursors: Vec<u64>,
    /// Global transaction id.
    next_txid: u64,
    /// fsyncs performed (stats).
    pub fsyncs: u64,
}

impl<D: BlockDev> RioFs<D> {
    /// Formats `dev` with `journal_areas` per-core journals and mounts
    /// it.
    pub fn mkfs(mut dev: D, journal_areas: u64) -> Self {
        let layout = Layout::compute(dev.n_blocks(), journal_areas);
        dev.write_block(0, &layout.encode_superblock());
        // Zero metadata regions.
        let zero = vec![0u8; BLOCK_SIZE];
        for b in layout.bitmap_start..layout.data_start {
            dev.write_block(b, &zero);
        }
        dev.flush();
        Self::mount(dev).expect("freshly formatted device mounts")
    }

    /// Mounts a formatted device, running journal recovery first.
    ///
    /// Returns `None` when the superblock is missing or corrupt.
    pub fn mount(mut dev: D) -> Option<Self> {
        let layout = Layout::decode_superblock(&dev.read_block(0))?;
        // Crash recovery: replay committed journal transactions.
        let areas: Vec<(u64, u64)> = (0..layout.journal_areas)
            .map(|a| layout.journal_area(a))
            .collect();
        journal::replay(&mut dev, &areas);

        // Load metadata.
        let mut inodes = Vec::with_capacity(layout.n_inodes as usize);
        for i in 0..layout.n_inodes {
            let blk = layout.itable_start + (i as usize * INODE_SIZE / BLOCK_SIZE) as u64;
            let off = (i as usize * INODE_SIZE) % BLOCK_SIZE;
            let b = dev.read_block(blk);
            inodes.push(Inode::decode(&b[off..off + INODE_SIZE]));
        }
        let mut bitmap = vec![false; layout.total_blocks as usize];
        for b in 0..layout.bitmap_blocks {
            let img = dev.read_block(layout.bitmap_start + b);
            for (i, byte) in img.iter().enumerate() {
                for bit in 0..8 {
                    let idx = (b as usize * BLOCK_SIZE + i) * 8 + bit;
                    if idx < bitmap.len() {
                        bitmap[idx] = byte & (1 << bit) != 0;
                    }
                }
            }
        }
        let mut dir = BTreeMap::new();
        for ino in 0..layout.n_inodes {
            let blk = layout.dir_start + (ino as usize * DIRENT_SIZE / BLOCK_SIZE) as u64;
            let off = (ino as usize * DIRENT_SIZE) % BLOCK_SIZE;
            let b = dev.read_block(blk);
            let entry = &b[off..off + DIRENT_SIZE];
            let name_len = entry[..NAME_MAX]
                .iter()
                .position(|&c| c == 0)
                .unwrap_or(NAME_MAX);
            if name_len > 0 {
                let name = String::from_utf8_lossy(&entry[..name_len]).into_owned();
                let ino_no = u64::from_le_bytes(entry[NAME_MAX..NAME_MAX + 8].try_into().ok()?);
                if inodes.get(ino_no as usize).map(|i| i.used).unwrap_or(false) {
                    dir.insert(name, ino_no);
                }
            }
        }
        let next_txid = 1 + Self::max_txid(&dev, &areas);
        Some(RioFs {
            dev,
            inodes,
            bitmap,
            dir,
            pages: BTreeMap::new(),
            dirty_meta: BTreeMap::new(),
            cursors: vec![0; layout.journal_areas as usize],
            next_txid,
            fsyncs: 0,
            layout,
        })
    }

    fn max_txid(dev: &D, areas: &[(u64, u64)]) -> u64 {
        let mut max = 0;
        for &(start, len) in areas {
            for tx in journal::scan_area(dev, start, len) {
                max = max.max(tx.txid);
            }
        }
        max
    }

    /// The device layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Consumes the file system, returning the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Borrows the underlying device (integrity inspection in tests).
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Lists every directory entry as a `(name, inode)` pair.
    ///
    /// Iteration order is the directory `BTreeMap`'s name order —
    /// stable across runs, insertion orders and journal-replay
    /// remounts, so recovery scans and tooling that walk the
    /// namespace replay deterministically (no sort step needed).
    pub fn readdir(&self) -> Vec<(String, u64)> {
        self.dir.iter().map(|(n, &ino)| (n.clone(), ino)).collect()
    }

    /// File size, or `None` when absent.
    pub fn stat(&self, name: &str) -> Option<u64> {
        self.dir
            .get(name)
            .map(|&ino| self.inodes[ino as usize].size)
    }

    /// Creates an empty file.
    pub fn create(&mut self, name: &str) -> Result<u64, FsError> {
        if name.is_empty() || name.len() > NAME_MAX {
            return Err(FsError::BadName);
        }
        if self.dir.contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = self
            .inodes
            .iter()
            .position(|i| !i.used)
            .ok_or(FsError::NoSpace)? as u64;
        let generation = self.inodes[ino as usize].generation + 1;
        self.inodes[ino as usize] = Inode {
            used: true,
            size: 0,
            direct: [0; crate::layout::DIRECT_PTRS],
            generation,
        };
        self.dir.insert(name.to_string(), ino);
        self.mark_inode_dirty(ino);
        self.mark_dirent_dirty(ino);
        Ok(ino)
    }

    /// Removes a file, freeing its blocks.
    pub fn unlink(&mut self, name: &str) -> Result<(), FsError> {
        let ino = *self.dir.get(name).ok_or(FsError::NotFound)?;
        for d in self.inodes[ino as usize].direct {
            if d != 0 {
                self.bitmap[d as usize] = false;
                self.mark_bitmap_dirty(d);
            }
        }
        self.inodes[ino as usize].used = false;
        self.inodes[ino as usize].size = 0;
        self.inodes[ino as usize].direct = [0; crate::layout::DIRECT_PTRS];
        self.dir.remove(name);
        self.pages.retain(|&(i, _), _| i != ino);
        self.mark_inode_dirty(ino);
        self.mark_dirent_dirty(ino);
        Ok(())
    }

    /// Writes `data` at byte `offset` (buffered until fsync).
    pub fn write(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let ino = *self.dir.get(name).ok_or(FsError::NotFound)?;
        if offset + data.len() as u64 > Inode::max_size() {
            return Err(FsError::TooLarge);
        }
        let mut written = 0usize;
        while written < data.len() {
            let pos = offset + written as u64;
            let blk_idx = pos / BLOCK_SIZE as u64;
            let blk_off = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - blk_off).min(data.len() - written);
            let page = self.page_for_update(ino, blk_idx);
            page[blk_off..blk_off + take].copy_from_slice(&data[written..written + take]);
            written += take;
        }
        let ino_ref = &mut self.inodes[ino as usize];
        ino_ref.size = ino_ref.size.max(offset + data.len() as u64);
        self.mark_inode_dirty(ino);
        Ok(())
    }

    fn page_for_update(&mut self, ino: u64, blk_idx: u64) -> &mut Vec<u8> {
        if !self.pages.contains_key(&(ino, blk_idx)) {
            // Read-modify-write from the existing block, if any.
            let existing = self.inodes[ino as usize].direct[blk_idx as usize];
            let init = if existing != 0 {
                self.dev.read_block(existing)
            } else {
                vec![0u8; BLOCK_SIZE]
            };
            self.pages.insert((ino, blk_idx), init);
        }
        self.pages.get_mut(&(ino, blk_idx)).expect("just inserted")
    }

    /// Reads `len` bytes at `offset`, observing buffered writes.
    pub fn read(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let ino = *self.dir.get(name).ok_or(FsError::NotFound)?;
        let size = self.inodes[ino as usize].size;
        let end = (offset + len as u64).min(size);
        let mut out = Vec::new();
        let mut pos = offset;
        while pos < end {
            let blk_idx = pos / BLOCK_SIZE as u64;
            let blk_off = (pos % BLOCK_SIZE as u64) as usize;
            let take = (BLOCK_SIZE - blk_off).min((end - pos) as usize);
            let page = if let Some(p) = self.pages.get(&(ino, blk_idx)) {
                p.clone()
            } else {
                let lba = self.inodes[ino as usize].direct[blk_idx as usize];
                if lba == 0 {
                    vec![0u8; BLOCK_SIZE]
                } else {
                    self.dev.read_block(lba)
                }
            };
            out.extend_from_slice(&page[blk_off..blk_off + take]);
            pos += take as u64;
        }
        Ok(out)
    }

    fn alloc_block(&mut self) -> Result<u64, FsError> {
        let start = self.layout.data_start as usize;
        for (i, used) in self.bitmap.iter_mut().enumerate().skip(start) {
            if !*used {
                *used = true;
                self.mark_bitmap_dirty(i as u64);
                return Ok(i as u64);
            }
        }
        Err(FsError::NoSpace)
    }

    fn mark_inode_dirty(&mut self, ino: u64) {
        let blk = self.layout.itable_start + (ino as usize * INODE_SIZE / BLOCK_SIZE) as u64;
        self.dirty_meta.insert(blk, ());
    }

    fn mark_dirent_dirty(&mut self, ino: u64) {
        let blk = self.layout.dir_start + (ino as usize * DIRENT_SIZE / BLOCK_SIZE) as u64;
        self.dirty_meta.insert(blk, ());
    }

    fn mark_bitmap_dirty(&mut self, lba: u64) {
        let blk = self.layout.bitmap_start + lba / (BLOCK_SIZE as u64 * 8);
        self.dirty_meta.insert(blk, ());
    }

    /// Materialises the current in-memory image of a metadata block.
    fn meta_image(&self, blk: u64) -> Vec<u8> {
        let l = &self.layout;
        let mut img = vec![0u8; BLOCK_SIZE];
        if blk >= l.itable_start && blk < l.itable_start + l.itable_blocks {
            let first = ((blk - l.itable_start) as usize * BLOCK_SIZE) / INODE_SIZE;
            for i in 0..(BLOCK_SIZE / INODE_SIZE) {
                if first + i < self.inodes.len() {
                    let enc = self.inodes[first + i].encode();
                    img[i * INODE_SIZE..(i + 1) * INODE_SIZE].copy_from_slice(&enc);
                }
            }
        } else if blk >= l.dir_start && blk < l.dir_start + l.dir_blocks {
            let first = ((blk - l.dir_start) as usize * BLOCK_SIZE) / DIRENT_SIZE;
            // Invert the dir map for the inode slots in this block.
            let mut by_ino: BTreeMap<u64, &str> = BTreeMap::new();
            for (name, &ino) in &self.dir {
                by_ino.insert(ino, name);
            }
            for i in 0..(BLOCK_SIZE / DIRENT_SIZE) {
                let ino = (first + i) as u64;
                if let Some(name) = by_ino.get(&ino) {
                    let off = i * DIRENT_SIZE;
                    img[off..off + name.len()].copy_from_slice(name.as_bytes());
                    img[off + NAME_MAX..off + NAME_MAX + 8].copy_from_slice(&ino.to_le_bytes());
                }
            }
        } else if blk >= l.bitmap_start && blk < l.bitmap_start + l.bitmap_blocks {
            let first_bit = (blk - l.bitmap_start) as usize * BLOCK_SIZE * 8;
            for (i, byte) in img.iter_mut().enumerate() {
                for bit in 0..8 {
                    let idx = first_bit + i * 8 + bit;
                    if idx < self.bitmap.len() && self.bitmap[idx] {
                        *byte |= 1 << bit;
                    }
                }
            }
        }
        img
    }

    /// Flushes a file durably: the D/JM/JC ordered triplet (§4.7).
    ///
    /// `core` selects the per-core journal area (iJournaling).
    pub fn fsync(&mut self, name: &str, core: usize) -> Result<(), FsError> {
        let ino = *self.dir.get(name).ok_or(FsError::NotFound)?;
        // --- D: write dirty data blocks in place (one ordered group).
        let dirty: Vec<(u64, Vec<u8>)> = self
            .pages
            .range((ino, 0)..(ino + 1, 0))
            .map(|(&(_, b), v)| (b, v.clone()))
            .collect();
        let mut wrote_data = false;
        for (blk_idx, data) in &dirty {
            let lba = {
                let existing = self.inodes[ino as usize].direct[*blk_idx as usize];
                if existing != 0 {
                    existing
                } else {
                    let lba = self.alloc_block()?;
                    self.inodes[ino as usize].direct[*blk_idx as usize] = lba;
                    self.mark_inode_dirty(ino);
                    lba
                }
            };
            self.dev.write_block(lba, data);
            wrote_data = true;
        }
        if wrote_data {
            self.dev.end_group();
        }
        self.pages.retain(|&(i, _), _| i != ino);

        // --- JM: journal the dirty metadata images (second group).
        let metas: Vec<u64> = self.dirty_meta.keys().copied().collect();
        self.dirty_meta.clear();
        let tx = Transaction {
            txid: self.next_txid,
            blocks: metas.iter().map(|&b| (b, self.meta_image(b))).collect(),
        };
        self.next_txid += 1;
        let area = core as u64 % self.layout.journal_areas;
        let (a_start, a_len) = self.layout.journal_area(area);
        let cursor = self.cursors[area as usize];
        journal::write_tx(&mut self.dev, a_start, a_len, cursor, &tx);
        self.dev.end_group();

        // --- JC: the commit record carries the FLUSH (third group).
        let commit_at = journal::commit_lba(a_start, a_len, cursor, &tx);
        self.dev.write_block(commit_at, &tx.commit());
        self.dev.flush();
        self.cursors[area as usize] = journal::next_cursor(a_len, cursor, &tx);

        // --- Checkpoint metadata home (recoverable from the journal).
        for &blk in &metas {
            let img = self.meta_image(blk);
            self.dev.write_block(blk, &img);
        }
        self.dev.end_group();
        self.fsyncs += 1;
        Ok(())
    }

    /// fsck: structural consistency check. Returns a list of problems
    /// (empty = consistent).
    pub fn fsck(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // Dirents point at used inodes.
        for (name, &ino) in &self.dir {
            if !self
                .inodes
                .get(ino as usize)
                .map(|i| i.used)
                .unwrap_or(false)
            {
                problems.push(format!("dirent {name} -> unused inode {ino}"));
            }
        }
        // No shared data blocks; pointers in range and allocated.
        let mut owners: BTreeMap<u64, u64> = BTreeMap::new();
        for (ino, inode) in self.inodes.iter().enumerate() {
            if !inode.used {
                continue;
            }
            for d in inode.direct {
                if d == 0 {
                    continue;
                }
                if d < self.layout.data_start || d >= self.layout.total_blocks {
                    problems.push(format!("inode {ino} points outside data region: {d}"));
                    continue;
                }
                if let Some(prev) = owners.insert(d, ino as u64) {
                    problems.push(format!("block {d} owned by inodes {prev} and {ino}"));
                }
                if !self.bitmap[d as usize] {
                    problems.push(format!("inode {ino} uses unallocated block {d}"));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{MemDev, OrderedDev};

    fn fresh() -> RioFs<MemDev> {
        RioFs::mkfs(MemDev::new(1024), 2)
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = fresh();
        fs.create("hello").expect("create");
        fs.write("hello", 0, b"storage order!").expect("write");
        assert_eq!(fs.read("hello", 0, 14).expect("read"), b"storage order!");
        assert_eq!(fs.stat("hello"), Some(14));
    }

    #[test]
    fn readdir_order_stable_across_insertion_orders_and_remount() {
        let names = |fs: &RioFs<MemDev>| -> Vec<String> {
            fs.readdir().into_iter().map(|(n, _)| n).collect()
        };
        // Same files, opposite creation orders: identical scan order.
        let mut a = fresh();
        for n in ["zeta", "alpha", "mid"] {
            a.create(n).expect("create");
        }
        let mut b = fresh();
        for n in ["mid", "zeta", "alpha"] {
            b.create(n).expect("create");
        }
        assert_eq!(
            names(&a),
            vec!["alpha", "mid", "zeta"],
            "readdir is name-sorted, not insertion-ordered"
        );
        assert_eq!(names(&a), names(&b));
        // fsck's recovery-scan report walks the same map: same order.
        assert_eq!(a.fsck(), b.fsck());
        // A journal replay (remount) rebuilds the same ordering.
        for n in ["zeta", "alpha", "mid"] {
            a.write(n, 0, b"x").expect("write");
            a.fsync(n, 0).expect("fsync");
        }
        let re = RioFs::mount(a.into_device()).expect("remount");
        assert_eq!(names(&re), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn create_duplicate_rejected() {
        let mut fs = fresh();
        fs.create("a").expect("create");
        assert_eq!(fs.create("a"), Err(FsError::Exists));
        assert_eq!(fs.create(""), Err(FsError::BadName));
    }

    #[test]
    fn unlink_frees_blocks() {
        let mut fs = fresh();
        fs.create("f").expect("create");
        fs.write("f", 0, &[1; 8192]).expect("write");
        fs.fsync("f", 0).expect("fsync");
        let used_before = fs.bitmap.iter().filter(|&&b| b).count();
        fs.unlink("f").expect("unlink");
        let used_after = fs.bitmap.iter().filter(|&&b| b).count();
        assert_eq!(used_before - used_after, 2, "two data blocks freed");
        assert_eq!(fs.read("f", 0, 1), Err(FsError::NotFound));
        assert!(fs.fsck().is_empty());
    }

    #[test]
    fn data_survives_remount_after_fsync() {
        let mut fs = fresh();
        fs.create("f").expect("create");
        fs.write("f", 0, b"persist me").expect("write");
        fs.fsync("f", 0).expect("fsync");
        let dev = fs.into_device();
        let fs2 = RioFs::mount(dev).expect("remount");
        assert_eq!(fs2.read("f", 0, 10).expect("read"), b"persist me");
        assert!(fs2.fsck().is_empty());
    }

    #[test]
    fn unsynced_data_lives_only_in_cache() {
        let mut fs = fresh();
        fs.create("f").expect("create");
        fs.write("f", 0, b"volatile").expect("write");
        // Readable now...
        assert_eq!(fs.read("f", 0, 8).expect("read"), b"volatile");
        // ...but a remount without fsync does not see the file's data
        // (create was never journaled either).
        let dev = fs.into_device();
        let fs2 = RioFs::mount(dev).expect("remount");
        assert_eq!(fs2.stat("f"), None, "uncommitted create lost");
    }

    #[test]
    fn offset_writes_and_rmw() {
        let mut fs = fresh();
        fs.create("f").expect("create");
        fs.write("f", 0, &[0xAA; 4096]).expect("write");
        fs.fsync("f", 0).expect("fsync");
        // Overwrite 16 bytes in the middle (read-modify-write path).
        fs.write("f", 100, &[0xBB; 16]).expect("write");
        fs.fsync("f", 0).expect("fsync");
        let data = fs.read("f", 96, 24).expect("read");
        assert_eq!(&data[..4], &[0xAA; 4]);
        assert_eq!(&data[4..20], &[0xBB; 16]);
        assert_eq!(&data[20..], &[0xAA; 4]);
    }

    #[test]
    fn too_large_write_rejected() {
        let mut fs = fresh();
        fs.create("f").expect("create");
        let max = Inode::max_size();
        assert_eq!(fs.write("f", max, b"x"), Err(FsError::TooLarge));
    }

    #[test]
    fn many_files_readdir() {
        let mut fs = fresh();
        for i in 0..20 {
            fs.create(&format!("file{i:02}")).expect("create");
        }
        fs.fsync("file00", 0).expect("fsync");
        let names: Vec<String> = fs.readdir().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 20);
        assert_eq!(names[0], "file00");
        assert!(fs.fsck().is_empty());
    }

    #[test]
    fn fsync_on_ordered_dev_survives_any_crash_point() {
        // The core crash-consistency property: after fsync returns, the
        // file must be recoverable from EVERY admissible post-crash
        // prefix (the FLUSH pins it).
        let mut fs = RioFs::mkfs(OrderedDev::new(1024), 2);
        fs.create("mail").expect("create");
        fs.write("mail", 0, b"important").expect("write");
        fs.fsync("mail", 0).expect("fsync");
        let dev = fs.into_device();
        for keep in 0..=dev.groups() {
            let img = dev.crash_image(keep);
            let fs2 = RioFs::mount(img).expect("mount crash image");
            assert!(fs2.fsck().is_empty(), "inconsistent at prefix {keep}");
            assert_eq!(
                fs2.read("mail", 0, 9).expect("fsynced file present"),
                b"important",
                "fsync'ed data lost at prefix {keep}"
            );
        }
    }

    #[test]
    fn partial_fsync_crash_never_corrupts() {
        // Crash at every prefix DURING a second fsync: the first file
        // must always survive; the FS must always be consistent.
        let mut fs = RioFs::mkfs(OrderedDev::new(1024), 2);
        fs.create("a").expect("create");
        fs.write("a", 0, b"first").expect("write");
        fs.fsync("a", 0).expect("fsync");
        fs.create("b").expect("create");
        fs.write("b", 0, b"second").expect("write");
        fs.fsync("b", 1).expect("fsync");
        let dev = fs.into_device();
        for keep in 0..=dev.groups() {
            let img = dev.crash_image(keep);
            let fs2 = RioFs::mount(img).expect("mount");
            assert!(fs2.fsck().is_empty(), "fsck failed at prefix {keep}");
            assert_eq!(fs2.read("a", 0, 5).expect("a survives"), b"first");
        }
        // And the fully-settled image has both.
        let fs3 = RioFs::mount(dev.settled_image()).expect("mount settled");
        assert_eq!(fs3.read("b", 0, 6).expect("b present"), b"second");
    }
}
