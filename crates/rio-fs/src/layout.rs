//! On-disk layout: superblock, inodes, bitmap, directory, journal.
//!
//! ```text
//! | 0: superblock | bitmap | inode table | root dir | journal | data |
//! ```
//!
//! Little-endian throughout; one block is 4 KB.

use crate::device::BLOCK_SIZE;

/// Superblock magic.
pub const SB_MAGIC: u32 = 0x52_49_4F_46; // "RIOF"

/// Direct block pointers per inode.
pub const DIRECT_PTRS: usize = 12;

/// Bytes per inode on disk.
pub const INODE_SIZE: usize = 128;

/// Bytes per directory entry (name + inode number).
pub const DIRENT_SIZE: usize = 32;

/// Maximum file name length.
pub const NAME_MAX: usize = 24;

/// Computed region layout for a formatted device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total device blocks.
    pub total_blocks: u64,
    /// First block of the block bitmap.
    pub bitmap_start: u64,
    /// Bitmap blocks.
    pub bitmap_blocks: u64,
    /// First inode-table block.
    pub itable_start: u64,
    /// Inode-table blocks.
    pub itable_blocks: u64,
    /// Number of inodes.
    pub n_inodes: u64,
    /// First root-directory block.
    pub dir_start: u64,
    /// Directory blocks.
    pub dir_blocks: u64,
    /// First journal block.
    pub journal_start: u64,
    /// Journal blocks (all per-core areas together).
    pub journal_blocks: u64,
    /// Number of per-core journal areas (iJournaling, §4.7).
    pub journal_areas: u64,
    /// First data block.
    pub data_start: u64,
}

impl Layout {
    /// Computes the layout for a device of `total_blocks` with
    /// `journal_areas` per-core journals.
    ///
    /// # Panics
    ///
    /// Panics if the device is too small (< 64 blocks).
    pub fn compute(total_blocks: u64, journal_areas: u64) -> Layout {
        assert!(total_blocks >= 64, "device too small for a file system");
        assert!(journal_areas >= 1, "need at least one journal area");
        let bitmap_start = 1;
        let bitmap_blocks = total_blocks.div_ceil(BLOCK_SIZE as u64 * 8).max(1);
        let n_inodes = (total_blocks / 8).clamp(64, 4096);
        let itable_start = bitmap_start + bitmap_blocks;
        let itable_blocks = (n_inodes * INODE_SIZE as u64).div_ceil(BLOCK_SIZE as u64);
        let dir_start = itable_start + itable_blocks;
        let dir_blocks = (n_inodes * DIRENT_SIZE as u64).div_ceil(BLOCK_SIZE as u64);
        let journal_start = dir_start + dir_blocks;
        // Journal gets ~1/8 of the device, at least 8 blocks per area.
        let journal_blocks = (total_blocks / 8).max(8 * journal_areas);
        let data_start = journal_start + journal_blocks;
        assert!(
            data_start < total_blocks,
            "device too small: metadata would consume it entirely"
        );
        Layout {
            total_blocks,
            bitmap_start,
            bitmap_blocks,
            itable_start,
            itable_blocks,
            n_inodes,
            dir_start,
            dir_blocks,
            journal_start,
            journal_blocks,
            journal_areas,
            data_start,
        }
    }

    /// Blocks of journal area `area` (disjoint per-core slices).
    pub fn journal_area(&self, area: u64) -> (u64, u64) {
        let per = self.journal_blocks / self.journal_areas;
        (self.journal_start + area * per, per)
    }

    /// Serializes the superblock into a block image.
    pub fn encode_superblock(&self) -> Vec<u8> {
        let mut b = vec![0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&SB_MAGIC.to_le_bytes());
        b[4..12].copy_from_slice(&self.total_blocks.to_le_bytes());
        b[12..20].copy_from_slice(&self.n_inodes.to_le_bytes());
        b[20..28].copy_from_slice(&self.journal_start.to_le_bytes());
        b[28..36].copy_from_slice(&self.journal_blocks.to_le_bytes());
        b[36..44].copy_from_slice(&self.journal_areas.to_le_bytes());
        b
    }

    /// Parses and validates a superblock; `None` if unformatted.
    pub fn decode_superblock(block: &[u8]) -> Option<Layout> {
        if block.len() < 44 || block[0..4] != SB_MAGIC.to_le_bytes() {
            return None;
        }
        let total = u64::from_le_bytes(block[4..12].try_into().ok()?);
        let areas = u64::from_le_bytes(block[36..44].try_into().ok()?);
        Some(Layout::compute(total, areas))
    }
}

/// An on-disk inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inode {
    /// Whether this inode is allocated.
    pub used: bool,
    /// File size in bytes.
    pub size: u64,
    /// Direct data-block pointers (0 = hole).
    pub direct: [u64; DIRECT_PTRS],
    /// Generation counter (bumped per reuse; detects stale dirents).
    pub generation: u32,
}

impl Inode {
    /// An empty inode.
    pub fn empty() -> Self {
        Inode {
            used: false,
            size: 0,
            direct: [0; DIRECT_PTRS],
            generation: 0,
        }
    }

    /// Maximum file size.
    pub fn max_size() -> u64 {
        (DIRECT_PTRS * BLOCK_SIZE) as u64
    }

    /// Serializes to the 128-byte on-disk form.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut b = [0u8; INODE_SIZE];
        b[0] = self.used as u8;
        b[8..16].copy_from_slice(&self.size.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            b[16 + i * 8..24 + i * 8].copy_from_slice(&d.to_le_bytes());
        }
        b[112..116].copy_from_slice(&self.generation.to_le_bytes());
        b
    }

    /// Parses the on-disk form.
    pub fn decode(b: &[u8]) -> Inode {
        let mut direct = [0u64; DIRECT_PTRS];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u64::from_le_bytes(b[16 + i * 8..24 + i * 8].try_into().expect("inode field"));
        }
        Inode {
            used: b[0] != 0,
            size: u64::from_le_bytes(b[8..16].try_into().expect("inode field")),
            direct,
            generation: u32::from_le_bytes(b[112..116].try_into().expect("inode field")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let l = Layout::compute(4096, 4);
        assert!(l.bitmap_start >= 1);
        assert!(l.itable_start >= l.bitmap_start + l.bitmap_blocks);
        assert!(l.dir_start >= l.itable_start + l.itable_blocks);
        assert!(l.journal_start >= l.dir_start + l.dir_blocks);
        assert!(l.data_start >= l.journal_start + l.journal_blocks);
        assert!(l.data_start < l.total_blocks);
    }

    #[test]
    fn journal_areas_are_disjoint() {
        let l = Layout::compute(4096, 4);
        let mut prev_end = l.journal_start;
        for a in 0..4 {
            let (start, len) = l.journal_area(a);
            assert!(start >= prev_end);
            assert!(len >= 8);
            prev_end = start + len;
        }
        assert!(prev_end <= l.journal_start + l.journal_blocks);
    }

    #[test]
    fn superblock_round_trip() {
        let l = Layout::compute(4096, 4);
        let sb = l.encode_superblock();
        assert_eq!(Layout::decode_superblock(&sb), Some(l));
        assert_eq!(Layout::decode_superblock(&[0u8; 64]), None);
    }

    #[test]
    fn inode_round_trip() {
        let mut ino = Inode::empty();
        ino.used = true;
        ino.size = 12345;
        ino.direct[0] = 99;
        ino.direct[11] = 1234;
        ino.generation = 7;
        assert_eq!(Inode::decode(&ino.encode()), ino);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_device_rejected() {
        let _ = Layout::compute(32, 1);
    }
}
