//! `rio-lint`: workspace-wide determinism & safety static analysis.
//!
//! Determinism is this repository's standing invariant — every feature
//! ships with byte-identical replay snapshots — but snapshots only
//! catch a nondeterminism bug *after* it reaches the event path. This
//! crate enforces the invariant statically, before a run ever
//! executes, with a hand-rolled comment/string/raw-string-aware lexer
//! (the workspace is offline-vendored, so no external parser) and a
//! small rule engine:
//!
//! | Rule | What it enforces |
//! |------|------------------|
//! | D1 | no raw `std::collections::HashMap`/`HashSet` in event-path crates |
//! | D2 | no `Instant::now`/`SystemTime::now` outside rio-bench's sweep module |
//! | D3 | no `rand`/`thread_rng`/`from_entropy` outside `rio_sim::SimRng` |
//! | D4 | no wall-clock date formatting in deterministic output |
//! | S1 | every `unsafe` block carries a `// SAFETY:` comment |
//! | S2 | no `panic!`/`todo!`/`unimplemented!` in non-test event-path code |
//! | S3 | every crate root carries `#![deny(missing_docs)]` |
//! | S4 | inline suppressions must name a real rule, give a reason, and be used |
//!
//! A violation may be excused with a line comment starting
//! `rio-lint: allow(<rule>) <reason>` placed on the offending line or
//! the line above; S4 reports any allow that stops matching, so
//! suppressions cannot rot. Run `cargo run -p rio-lint` to lint the
//! workspace (exit 0 = clean); CI runs it on every push.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{check, FileMeta, Finding, EVENT_PATH_CRATES, RULES};

use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, vendored
/// third-party shims, VCS state, and the intentionally-violating rule
/// fixtures under `crates/rio-lint/tests/fixtures/`.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Returns the workspace root, resolved relative to this crate's
/// manifest so the binary works from any working directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/rio-lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Classifies a workspace-relative `/`-separated path for the rules.
pub fn classify(rel: &str) -> FileMeta {
    let parts: Vec<&str> = rel.split('/').collect();
    let krate = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "rio".to_string()
    };
    let in_test_dir = parts.iter().any(|p| *p == "tests" || *p == "benches");
    let is_crate_root = rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (parts.len() == 4
            && parts[0] == "crates"
            && parts[2] == "src"
            && (parts[3] == "lib.rs" || parts[3] == "main.rs"))
        || (parts.len() == 5 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "bin")
        || (parts.len() == 3 && parts[0] == "src" && parts[1] == "bin");
    FileMeta {
        rel: rel.to_string(),
        krate,
        is_crate_root,
        in_test_dir,
    }
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every Rust source file under `root` (skipping build output,
/// vendored shims, VCS state and the lint's own fixtures).
///
/// Returns `(files scanned, findings)`; findings are sorted by path,
/// line, then rule, so output (and CI logs) are stable.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Finding>)> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    let mut findings = Vec::new();
    for path in &files {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(path)?;
        findings.extend(check(&src, &classify(&rel)));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok((files.len(), findings))
}
