//! Command-line entry point: `cargo run -p rio-lint [root]`.
//!
//! Lints every Rust source file in the workspace (or under the given
//! root), printing one `file:line: RULE: message` per finding. Exits 0
//! when clean, 1 on findings, 2 on I/O errors — the same contract the
//! CI `Lint` step relies on.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(rio_lint::workspace_root);
    match rio_lint::lint_workspace(&root) {
        Ok((files, findings)) => {
            for f in &findings {
                println!("{}", f.render());
            }
            if findings.is_empty() {
                println!("rio-lint: {files} files clean");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "rio-lint: {} finding(s) across {} scanned files",
                    findings.len(),
                    files
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("rio-lint: error scanning {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
