//! The rule engine: determinism (D1–D4) and safety (S1–S4) rules.
//!
//! Rules operate on the token stream produced by [`crate::lexer`], so
//! comments, string literals and raw strings can never hide or fake a
//! violation. Each rule reports `file:line:rule`; inline suppressions
//! (see [`check`]) excuse a single line with a recorded reason, and
//! suppressions that no longer excuse anything are themselves reported
//! so allows cannot rot.

use crate::lexer::{lex, Tok, TokKind};

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// Rule id (`D1` … `S4`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl Finding {
    /// Renders the canonical `file:line: RULE: message` form.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Per-file classification fed to the rules by the workspace walker.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Owning workspace crate (`rio-order`, …). Files under the root
    /// `src/`, `tests/` and `examples/` trees belong to the facade
    /// crate `rio`.
    pub krate: String,
    /// Whether this file is a crate root (`src/lib.rs`, `src/main.rs`,
    /// `src/bin/*.rs`) and must carry `#![deny(missing_docs)]` (S3).
    pub is_crate_root: bool,
    /// Whether the file lives under a `tests/` or `benches/` tree.
    /// Test code is exempt from D1, D3 and S2.
    pub in_test_dir: bool,
}

/// Crates whose code runs on the deterministic event path. D1 and S2
/// apply only here; everything in a replay must be a pure function of
/// `(configuration, seed)`.
pub const EVENT_PATH_CRATES: &[&str] = &[
    "rio-sim",
    "rio-order",
    "rio-net",
    "rio-ssd",
    "rio-stack",
    "rio-fs",
];

/// The one file allowed to name raw `HashMap`/`HashSet`: the
/// deterministic `FxHashMap` aliases are defined there.
const D1_ALLOWED: &[&str] = &["crates/rio-sim/src/hash.rs"];

/// rio-bench's wall-clock measurement module: the only place allowed
/// to read `Instant::now` (engine events/s is real elapsed time).
const D2_ALLOWED: &[&str] = &["crates/rio-bench/src/sweep.rs"];

/// The `SimRng` implementation itself wraps the vendored `rand`.
const D3_ALLOWED: &[&str] = &["crates/rio-sim/src/rng.rs"];

/// Every rule id, in report order. Suppressions naming anything else
/// are flagged by S4.
pub const RULES: &[&str] = &["D1", "D2", "D3", "D4", "S1", "S2", "S3", "S4"];

/// An inline suppression parsed from a line comment of the form
/// `rio-lint: allow(<rule>) <reason>` (the comment must start with the
/// marker). It excuses findings of `<rule>` on its own line and the
/// line immediately below.
#[derive(Debug)]
struct Suppression {
    rule: String,
    line: u32,
    reason: String,
    used: bool,
}

fn finding(meta: &FileMeta, line: u32, rule: &'static str, msg: String) -> Finding {
    Finding {
        path: meta.rel.clone(),
        line,
        rule,
        msg,
    }
}

/// Lints one file's source text under the given classification.
///
/// This is the whole engine; the binary and the golden tests both call
/// it, so fixtures exercise exactly the code CI runs.
pub fn check(src: &str, meta: &FileMeta) -> Vec<Finding> {
    let toks = lex(src);
    let in_test = test_regions(&toks);
    let mut sups = collect_suppressions(&toks);
    let safety = safety_comment_lines(&toks);

    // Indices of non-comment tokens, for sequence matching.
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();

    let event_path = EVENT_PATH_CRATES.contains(&meta.krate.as_str());
    let rel = meta.rel.as_str();
    let mut raw: Vec<Finding> = Vec::new();

    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        if t.kind != TokKind::Ident {
            continue;
        }
        let test = meta.in_test_dir || in_test[ti];

        // D1: raw std hash collections on the event path.
        if event_path
            && !test
            && !D1_ALLOWED.contains(&rel)
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            raw.push(finding(
                meta,
                t.line,
                "D1",
                format!(
                    "raw std {} has nondeterministic iteration order on the event path; \
                     use rio_sim::FxHashMap/FxHashSet or BTreeMap/BTreeSet",
                    t.text
                ),
            ));
        }

        // D2: wall-clock reads. Applies to test code too — virtual
        // time is the only clock a deterministic replay may observe.
        if !D2_ALLOWED.contains(&rel)
            && (t.text == "Instant" || t.text == "SystemTime")
            && path_call_is(&toks, &code, ci, "now")
        {
            raw.push(finding(
                meta,
                t.line,
                "D2",
                format!(
                    "{}::now() reads the wall clock; simulation code must use virtual \
                     SimTime (wall-clock measurement lives in rio-bench's sweep module)",
                    t.text
                ),
            ));
        }

        // D3: randomness outside SimRng.
        if !test && !D3_ALLOWED.contains(&rel) {
            if t.text == "thread_rng" || t.text == "from_entropy" {
                raw.push(finding(
                    meta,
                    t.line,
                    "D3",
                    format!(
                        "{} seeds from the OS; all simulator randomness must flow \
                         through rio_sim::SimRng",
                        t.text
                    ),
                ));
            } else if t.text == "rand" && rand_is_path_or_use(&toks, &code, ci) {
                raw.push(finding(
                    meta,
                    t.line,
                    "D3",
                    "direct use of the rand crate outside rio_sim::SimRng breaks the \
                     single-seed determinism contract"
                        .to_string(),
                ));
            }
        }

        // D4: wall-clock date/time formatting in deterministic output.
        if !test {
            let date_now = (t.text == "Local" || t.text == "Utc")
                && path_call_is(&toks, &code, ci, "now");
            let date_ident = matches!(
                t.text.as_str(),
                "chrono" | "strftime" | "asctime" | "OffsetDateTime"
            );
            if date_now || date_ident {
                raw.push(finding(
                    meta,
                    t.line,
                    "D4",
                    format!(
                        "`{}` formats wall-clock dates; deterministic output must not \
                         embed the time of the run",
                        t.text
                    ),
                ));
            }
        }

        // S1: every unsafe block needs a SAFETY comment.
        if t.text == "unsafe" {
            let covered = safety.contains(&t.line) || (t.line > 1 && covered_above(&safety, &toks, t.line));
            if !covered {
                raw.push(finding(
                    meta,
                    t.line,
                    "S1",
                    "unsafe block without a `// SAFETY:` comment on the line above \
                     (or at the end of a contiguous SAFETY comment block)"
                        .to_string(),
                ));
            }
        }

        // S2: lazy failure modes on the event path.
        if event_path
            && !test
            && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && next_punct_is(&toks, &code, ci, "!")
        {
            raw.push(finding(
                meta,
                t.line,
                "S2",
                format!(
                    "{}! in non-test event-path code; return a Result, use \
                     unreachable! for provably impossible states, or suppress with a \
                     recorded reason",
                    t.text
                ),
            ));
        }
    }

    // S3: crate roots must deny missing docs.
    if meta.is_crate_root && !has_deny_missing_docs(&toks, &code) {
        raw.push(finding(
            meta,
            1,
            "S3",
            "crate root lacks #![deny(missing_docs)]".to_string(),
        ));
    }

    // Apply suppressions: a matching allow on the same line or the
    // line above excuses the finding and is marked used.
    let mut out: Vec<Finding> = Vec::new();
    'findings: for f in raw {
        for s in sups.iter_mut() {
            if s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line) {
                s.used = true;
                continue 'findings;
            }
        }
        out.push(f);
    }

    // S4: suppression hygiene.
    for s in &sups {
        if !RULES.contains(&s.rule.as_str()) {
            out.push(finding(
                meta,
                s.line,
                "S4",
                format!("suppression names unknown rule `{}`", s.rule),
            ));
        } else if s.reason.is_empty() {
            out.push(finding(
                meta,
                s.line,
                "S4",
                format!(
                    "suppression of {} lacks a reason; write \
                     `rio-lint: allow({}) <why this is sound>`",
                    s.rule, s.rule
                ),
            ));
        } else if !s.used {
            out.push(finding(
                meta,
                s.line,
                "S4",
                format!(
                    "unused suppression of {} — the violation it excused is gone; \
                     delete the allow",
                    s.rule
                ),
            ));
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// True when the ident at `code[ci]` is followed by `::name` (a path
/// call like `Instant::now`).
fn path_call_is(toks: &[Tok], code: &[usize], ci: usize, name: &str) -> bool {
    let p = |k: usize| code.get(ci + k).map(|&i| &toks[i]);
    matches!(
        (p(1), p(2), p(3)),
        (Some(a), Some(b), Some(c))
            if a.text == ":" && b.text == ":" && c.kind == TokKind::Ident && c.text == name
    )
}

/// True when the `rand` ident at `code[ci]` is used as a crate path
/// (`rand::…`) or imported (`use rand…`), rather than being an
/// unrelated local named `rand`.
fn rand_is_path_or_use(toks: &[Tok], code: &[usize], ci: usize) -> bool {
    let next_is_path = code
        .get(ci + 1)
        .map(|&i| toks[i].text == ":")
        .unwrap_or(false);
    let prev_is_use = ci > 0 && toks[code[ci - 1]].text == "use";
    next_is_path || prev_is_use
}

/// True when `code[ci + 1]` is the punctuation `want` (e.g. the `!` of
/// a macro invocation).
fn next_punct_is(toks: &[Tok], code: &[usize], ci: usize, want: &str) -> bool {
    code.get(ci + 1)
        .map(|&i| toks[i].kind == TokKind::Punct && toks[i].text == want)
        .unwrap_or(false)
}

/// Lines on which a comment containing `SAFETY:` starts.
fn safety_comment_lines(toks: &[Tok]) -> Vec<u32> {
    toks.iter()
        .filter(|t| {
            matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                && t.text.contains("SAFETY:")
        })
        .map(|t| t.line)
        .collect()
}

/// Walks upward from the line above `line` through contiguous comment
/// lines, accepting if any of them starts a SAFETY comment. This lets
/// a multi-line SAFETY explanation cover the unsafe block beneath it.
fn covered_above(safety: &[u32], toks: &[Tok], line: u32) -> bool {
    let comment_lines: Vec<u32> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| t.line)
        .collect();
    let mut l = line - 1;
    while l >= 1 && comment_lines.contains(&l) {
        if safety.contains(&l) {
            return true;
        }
        if l == 1 {
            break;
        }
        l -= 1;
    }
    false
}

/// True when the token stream contains the inner attribute
/// `#![deny(missing_docs)]`.
fn has_deny_missing_docs(toks: &[Tok], code: &[usize]) -> bool {
    for w in 0..code.len().saturating_sub(7) {
        let t = |k: usize| &toks[code[w + k]];
        if t(0).text == "#"
            && t(1).text == "!"
            && t(2).text == "["
            && t(3).text == "deny"
            && t(4).text == "("
            && t(5).text == "missing_docs"
            && t(6).text == ")"
            && t(7).text == "]"
        {
            return true;
        }
    }
    false
}

/// Parses inline suppressions from line comments. Only comments that
/// *start* with the marker count, so prose mentioning the syntax in a
/// doc comment is never misread as an allow.
fn collect_suppressions(toks: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = body.strip_prefix("rio-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            out.push(Suppression {
                rule: String::new(),
                line: t.line,
                reason: String::new(),
                used: false,
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Suppression {
                rule: String::new(),
                line: t.line,
                reason: String::new(),
                used: false,
            });
            continue;
        };
        out.push(Suppression {
            rule: rest[..close].trim().to_string(),
            line: t.line,
            reason: rest[close + 1..].trim().to_string(),
            used: false,
        });
    }
    out
}

/// Marks every token inside a `#[cfg(test)]` / `#[test]` item body.
///
/// The scan is syntactic: an attribute group whose idents include
/// `test` (and not `not`, so `#[cfg(not(test))]` stays non-test)
/// marks the attached item's brace-delimited body, found by walking to
/// the first `{` before any top-level `;`, then to its matching `}`.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut flag = vec![false; toks.len()];
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();

    let mut ci = 0usize;
    while ci < code.len() {
        if toks[code[ci]].text != "#" {
            ci += 1;
            continue;
        }
        // Inner attributes (`#![…]`) never attach to a following item.
        if ci + 1 < code.len() && toks[code[ci + 1]].text == "!" {
            ci += 1;
            continue;
        }
        if ci + 1 >= code.len() || toks[code[ci + 1]].text != "[" {
            ci += 1;
            continue;
        }
        // Collect the bracket group.
        let mut depth = 0usize;
        let mut j = ci + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < code.len() {
            let t = &toks[code[j]];
            if t.text == "[" {
                depth += 1;
            } else if t.text == "]" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                if t.text == "test" {
                    has_test = true;
                } else if t.text == "not" {
                    has_not = true;
                }
            }
            j += 1;
        }
        if !(has_test && !has_not) {
            ci = j + 1;
            continue;
        }
        // Skip any further outer attributes on the same item.
        let mut k = j + 1;
        while k + 1 < code.len() && toks[code[k]].text == "#" && toks[code[k + 1]].text == "[" {
            let mut d = 0usize;
            k += 1;
            while k < code.len() {
                if toks[code[k]].text == "[" {
                    d += 1;
                } else if toks[code[k]].text == "]" {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        // Find the item body: the first `{` before a top-level `;`.
        let mut open = None;
        let mut b = k;
        while b < code.len() {
            let t = &toks[code[b]];
            if t.text == ";" {
                break;
            }
            if t.text == "{" {
                open = Some(b);
                break;
            }
            b += 1;
        }
        let Some(open) = open else {
            ci = j + 1;
            continue;
        };
        // Match the closing brace.
        let mut d = 0usize;
        let mut e = open;
        while e < code.len() {
            let t = &toks[code[e]];
            if t.text == "{" {
                d += 1;
            } else if t.text == "}" {
                d -= 1;
                if d == 0 {
                    break;
                }
            }
            e += 1;
        }
        let end_ti = code[e.min(code.len() - 1)];
        for f in flag.iter_mut().take(end_ti + 1).skip(code[ci]) {
            *f = true;
        }
        ci = e + 1;
    }
    flag
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(krate: &str) -> FileMeta {
        FileMeta {
            rel: format!("crates/{krate}/src/sample.rs"),
            krate: krate.to_string(),
            is_crate_root: false,
            in_test_dir: false,
        }
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\npub fn f() { let m = std::collections::HashMap::<u8, u8>::new(); let _ = m; }\n";
        let f = check(src, &meta("rio-order"));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D1");
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(check(src, &meta("rio-order")).is_empty());
    }

    #[test]
    fn non_event_path_crates_may_hash() {
        let src = "use std::collections::HashMap;\n";
        assert!(check(src, &meta("rio-bench")).is_empty());
        assert_eq!(check(src, &meta("rio-stack")).len(), 1);
    }

    #[test]
    fn suppression_requires_exact_comment_start() {
        // Prose in a doc comment mentioning the marker mid-sentence is
        // not a suppression (and so cannot be flagged unused).
        let src = "/// Suppressions look like \"rio-lint: allow(D1) reason\".\npub fn f() {}\n";
        assert!(check(src, &meta("rio-bench")).is_empty());
    }

    #[test]
    fn multi_line_safety_comment_covers_unsafe() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: p is valid for reads,\n    // which the caller guarantees.\n    unsafe { *p }\n}\n";
        assert!(check(src, &meta("rio-bench")).is_empty());
    }
}
