//! A small, self-contained Rust lexer for static analysis.
//!
//! The workspace is offline-vendored, so `rio-lint` cannot lean on an
//! external parser; instead this module hand-rolls the one piece of
//! Rust lexical structure the rules genuinely need to get right:
//! telling *code* apart from *comments and string literals*. It
//! understands
//!
//! * line comments (including `///` and `//!` doc comments),
//! * nested block comments (`/* a /* b */ c */`),
//! * string literals with escapes (`"\""`), byte strings (`b"…"`),
//! * raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char literals vs lifetimes (`'a'` vs `'a`), and
//! * raw identifiers (`r#type`).
//!
//! Everything else is an identifier, a number, or a single-character
//! punctuation token. Each token carries the 1-based line it starts
//! on, which is all the rule engine needs to report `file:line:rule`.

/// The coarse token classes the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `fn`).
    Ident,
    /// A numeric literal (`42`, `0x1f`, `1.5e3`).
    Num,
    /// A `"…"` or `b"…"` string literal, escapes handled.
    Str,
    /// A raw string literal: `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStr,
    /// A `'x'` / `b'\n'` character literal.
    CharLit,
    /// A `'a` lifetime.
    Lifetime,
    /// A `// …` line comment, doc comments included.
    LineComment,
    /// A `/* … */` block comment, nesting handled.
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Which class of token this is.
    pub kind: TokKind,
    /// The source text of the token (for `Punct`, one character).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream, preserving comments.
///
/// The lexer never fails: malformed input (an unterminated string or
/// comment) simply consumes to end of file. That is the right behavior
/// for a linter — the compiler will report the real error.
pub fn lex(src: &str) -> Vec<Tok> {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut toks: Vec<Tok> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Appends cs[start..end] as one token starting on `tl`.
    let push = |toks: &mut Vec<Tok>, kind: TokKind, cs: &[char], start: usize, end: usize, tl: u32| {
        toks.push(Tok {
            kind,
            text: cs[start..end].iter().collect(),
            line: tl,
        });
    };

    while i < n {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && cs[i + 1] == '/' {
            let start = i;
            let tl = line;
            while i < n && cs[i] != '\n' {
                i += 1;
            }
            push(&mut toks, TokKind::LineComment, &cs, start, i, tl);
            continue;
        }
        if c == '/' && i + 1 < n && cs[i + 1] == '*' {
            let start = i;
            let tl = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if cs[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if cs[i] == '/' && i + 1 < n && cs[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && i + 1 < n && cs[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            push(&mut toks, TokKind::BlockComment, &cs, start, i, tl);
            continue;
        }

        // Raw strings, byte strings, byte chars: r" r#" br" br#" b" b'.
        if c == 'r' || c == 'b' {
            // Position of the first char after the r/b/br prefix.
            let after = if c == 'b' && i + 1 < n && cs[i + 1] == 'r' {
                i + 2
            } else {
                i + 1
            };
            let raw_prefixed = c == 'r' || (c == 'b' && after == i + 2);
            if raw_prefixed {
                // Count hashes, then require an opening quote.
                let mut h = after;
                while h < n && cs[h] == '#' {
                    h += 1;
                }
                if h < n && cs[h] == '"' {
                    let hashes = h - after;
                    let start = i;
                    let tl = line;
                    i = h + 1;
                    // Scan for `"` followed by `hashes` hash marks.
                    loop {
                        if i >= n {
                            break;
                        }
                        if cs[i] == '\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if cs[i] == '"' && i + hashes < n && cs[i + 1..i + 1 + hashes].iter().all(|&x| x == '#')
                        {
                            i += 1 + hashes;
                            break;
                        }
                        i += 1;
                    }
                    push(&mut toks, TokKind::RawStr, &cs, start, i, tl);
                    continue;
                }
                if c == 'r' && after < n && cs[after] == '#' {
                    // `r#ident` raw identifier: consume as an Ident.
                    let start = i;
                    let tl = line;
                    i = after + 1;
                    while i < n && is_ident_continue(cs[i]) {
                        i += 1;
                    }
                    push(&mut toks, TokKind::Ident, &cs, start, i, tl);
                    continue;
                }
            }
            if c == 'b' && i + 1 < n && cs[i + 1] == '"' {
                // Byte string: fall through to the shared escape scanner.
                let start = i;
                let tl = line;
                i += 2;
                scan_str_body(&cs, n, &mut i, &mut line);
                push(&mut toks, TokKind::Str, &cs, start, i, tl);
                continue;
            }
            if c == 'b' && i + 1 < n && cs[i + 1] == '\'' {
                let start = i;
                let tl = line;
                i += 2;
                scan_char_body(&cs, n, &mut i);
                push(&mut toks, TokKind::CharLit, &cs, start, i, tl);
                continue;
            }
            // Plain identifier starting with r/b.
        }

        if c == '"' {
            let start = i;
            let tl = line;
            i += 1;
            scan_str_body(&cs, n, &mut i, &mut line);
            push(&mut toks, TokKind::Str, &cs, start, i, tl);
            continue;
        }

        if c == '\'' {
            // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'('`).
            let next = cs.get(i + 1).copied();
            let over = cs.get(i + 2).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(x) if is_ident_continue(x) => over == Some('\''),
                Some(_) => true, // '(' etc.
                None => true,
            };
            if is_char {
                let start = i;
                let tl = line;
                i += 1;
                scan_char_body(&cs, n, &mut i);
                push(&mut toks, TokKind::CharLit, &cs, start, i, tl);
            } else {
                let start = i;
                let tl = line;
                i += 1;
                while i < n && is_ident_continue(cs[i]) {
                    i += 1;
                }
                push(&mut toks, TokKind::Lifetime, &cs, start, i, tl);
            }
            continue;
        }

        if is_ident_start(c) {
            let start = i;
            let tl = line;
            while i < n && is_ident_continue(cs[i]) {
                i += 1;
            }
            push(&mut toks, TokKind::Ident, &cs, start, i, tl);
            continue;
        }

        if c.is_ascii_digit() {
            let start = i;
            let tl = line;
            while i < n
                && (is_ident_continue(cs[i]) || (cs[i] == '.' && cs.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                i += 1;
            }
            push(&mut toks, TokKind::Num, &cs, start, i, tl);
            continue;
        }

        push(&mut toks, TokKind::Punct, &cs, i, i + 1, line);
        i += 1;
    }
    toks
}

/// Consumes a (byte) string body after the opening quote, escapes and
/// embedded newlines included, leaving `i` just past the closing quote.
fn scan_str_body(cs: &[char], n: usize, i: &mut usize, line: &mut u32) {
    while *i < n {
        match cs[*i] {
            '\\' => *i += 2,
            '"' => {
                *i += 1;
                return;
            }
            '\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Consumes a char-literal body after the opening quote, leaving `i`
/// just past the closing quote.
fn scan_char_body(cs: &[char], n: usize, i: &mut usize) {
    while *i < n {
        match cs[*i] {
            '\\' => *i += 2,
            '\'' => {
                *i += 1;
                return;
            }
            '\n' => return, // unterminated; let the compiler complain
            _ => *i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn nested_block_comments_hide_code() {
        let src = "/* outer /* HashMap inner */ still comment */ Visible";
        assert_eq!(idents(src), vec!["Visible"]);
        assert_eq!(kinds(src), vec![TokKind::BlockComment, TokKind::Ident]);
    }

    #[test]
    fn raw_strings_hide_quotes_and_comment_markers() {
        let src = r####"let s = r#"HashMap "quoted" // not a comment"#; After"####;
        let ids = idents(src);
        assert!(ids.contains(&"After".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        // The raw string is one token.
        assert_eq!(
            lex(src).iter().filter(|t| t.kind == TokKind::RawStr).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_deeper_hashes() {
        let src = r#####"r##"ends "# not yet"## Tail"#####;
        assert_eq!(idents(src), vec!["Tail"]);
    }

    #[test]
    fn comment_marker_inside_string_does_not_hide_code() {
        let src = "let s = \"// not a comment\"; HashMap";
        assert_eq!(idents(src), vec!["let", "s", "HashMap"]);
        assert!(lex(src).iter().all(|t| t.kind != TokKind::LineComment));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = "let s = \"a \\\" b // c\"; End";
        assert_eq!(idents(src), vec!["let", "s", "End"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let p = '('; }";
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::CharLit).count(),
            3
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "b\"bytes // x\" br#\"raw HashMap\"# b'q' Done";
        assert_eq!(idents(src), vec!["Done"]);
    }

    #[test]
    fn multiline_string_advances_line_numbers() {
        let src = "let s = \"line one\nline two\";\nNext";
        let toks = lex(src);
        let next = toks.iter().find(|t| t.text == "Next").unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn line_comment_carries_its_line() {
        let src = "fn a() {}\n// rio-lint marker\nfn b() {}";
        let c = lex(src)
            .into_iter()
            .find(|t| t.kind == TokKind::LineComment)
            .unwrap();
        assert_eq!(c.line, 2);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let src = "let r#type = 1; Next";
        let ids = idents(src);
        assert!(ids.contains(&"r#type".to_string()));
        assert!(ids.contains(&"Next".to_string()));
    }
}
