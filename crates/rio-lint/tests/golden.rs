//! Golden tests: every rule fires on its fixture at the expected
//! lines, suppression hygiene is enforced, the binary reports
//! `file:line:rule` and exits nonzero, and the real workspace is
//! lint-clean.

use rio_lint::{check, classify, FileMeta};
use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints a fixture as if it were non-test source inside an event-path
/// crate, returning `(line, rule)` pairs in report order.
fn lint_fixture(name: &str, is_crate_root: bool) -> Vec<(u32, &'static str)> {
    let src = std::fs::read_to_string(fixture_path(name)).expect("read fixture");
    let meta = FileMeta {
        rel: format!("crates/rio-order/src/{name}"),
        krate: "rio-order".to_string(),
        is_crate_root,
        in_test_dir: false,
    };
    check(&src, &meta).iter().map(|f| (f.line, f.rule)).collect()
}

#[test]
fn d1_fires_on_raw_hash_collections() {
    // Line 12 declares and constructs a HashMap: two findings. The
    // comment, the string, the suppressed HashSet and the #[cfg(test)]
    // module must all stay silent.
    assert_eq!(
        lint_fixture("d1_hashmap.rs", false),
        vec![(3, "D1"), (4, "D1"), (12, "D1"), (12, "D1")]
    );
}

#[test]
fn d2_fires_on_wall_clock_reads() {
    // The `use` on line 3 is fine (only `::now()` call sites are
    // banned); the suppressed read on line 12 is excused.
    assert_eq!(
        lint_fixture("d2_wallclock.rs", false),
        vec![(7, "D2"), (8, "D2")]
    );
}

#[test]
fn d3_fires_on_rand_outside_simrng() {
    // Line 7 hits twice: the `rand::` path and the thread_rng call.
    assert_eq!(
        lint_fixture("d3_rand.rs", false),
        vec![(3, "D3"), (7, "D3"), (7, "D3"), (8, "D3")]
    );
}

#[test]
fn d4_fires_on_date_formatting() {
    // Line 5 hits twice: the `chrono` path and `Local::now`.
    assert_eq!(
        lint_fixture("d4_datefmt.rs", false),
        vec![(5, "D4"), (5, "D4"), (11, "D4")]
    );
}

#[test]
fn s1_fires_on_unsafe_without_safety_comment() {
    // Line 6 is covered by the SAFETY comment above it; line 7 is not.
    assert_eq!(lint_fixture("s1_unsafe.rs", false), vec![(7, "S1")]);
}

#[test]
fn s2_fires_on_panics_in_event_path_code() {
    assert_eq!(
        lint_fixture("s2_panic.rs", false),
        vec![(7, "S2"), (8, "S2"), (9, "S2")]
    );
}

#[test]
fn s3_fires_on_crate_root_without_missing_docs_gate() {
    assert_eq!(lint_fixture("s3_missing_docs.rs", true), vec![(1, "S3")]);
    // The same file not classified as a crate root is clean.
    assert_eq!(lint_fixture("s3_missing_docs.rs", false), vec![]);
}

#[test]
fn s4_unused_suppression_golden() {
    // Line 7: the allow excuses nothing (BTreeMap is fine) — unused.
    // Line 9: allow names a rule that does not exist.
    // Line 10: allow(D2) matches the read on line 11 but gives no
    // reason — the violation is excused, the hygiene failure reported.
    assert_eq!(
        lint_fixture("s4_unused_suppression.rs", false),
        vec![(7, "S4"), (9, "S4"), (10, "S4")]
    );
}

#[test]
fn non_event_path_crate_is_exempt_from_d1_and_s2() {
    let src = std::fs::read_to_string(fixture_path("s2_panic.rs")).unwrap();
    let meta = FileMeta {
        rel: "crates/rio-bench/src/s2_panic.rs".to_string(),
        krate: "rio-bench".to_string(),
        is_crate_root: false,
        in_test_dir: false,
    };
    assert!(check(&src, &meta).is_empty());
}

#[test]
fn test_dir_files_are_exempt_from_d1_d3_s2() {
    let src = std::fs::read_to_string(fixture_path("d1_hashmap.rs")).unwrap();
    let mut meta = classify("crates/rio-order/tests/d1_hashmap.rs");
    assert!(meta.in_test_dir);
    // The suppression in the fixture now excuses nothing — drop that
    // line so the exemption itself is what's under test.
    let src: String = src
        .lines()
        .filter(|l| !l.contains("allow(D1)"))
        .collect::<Vec<_>>()
        .join("\n");
    meta.krate = "rio-order".to_string();
    assert!(check(&src, &meta).is_empty());
}

#[test]
fn classify_knows_crate_roots_and_test_dirs() {
    assert!(classify("src/lib.rs").is_crate_root);
    assert!(classify("crates/rio-sim/src/lib.rs").is_crate_root);
    assert!(classify("crates/rio-lint/src/main.rs").is_crate_root);
    assert!(classify("crates/rio-bench/src/bin/bench_gate.rs").is_crate_root);
    assert!(!classify("crates/rio-sim/src/heap.rs").is_crate_root);
    assert!(classify("crates/rio-order/tests/pipeline.rs").in_test_dir);
    assert!(classify("crates/rio-bench/benches/micro.rs").in_test_dir);
    assert_eq!(classify("crates/rio-ssd/src/media.rs").krate, "rio-ssd");
    assert_eq!(classify("tests/full_stack.rs").krate, "rio");
}

// ---------------------------------------------------------------------
// Binary end-to-end: a synthetic workspace with one dirty and one
// clean crate, linted through the real walker + CLI.
// ---------------------------------------------------------------------

const CLEAN_LIB: &str = "//! A synthetic crate root for the golden test.\n\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n\n/// Does nothing, deterministically.\npub fn noop() {}\n";

fn scratch_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rio-lint-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/rio-order/src")).unwrap();
    std::fs::write(dir.join("crates/rio-order/src/lib.rs"), CLEAN_LIB).unwrap();
    dir
}

#[test]
fn binary_names_file_line_rule_and_exits_nonzero() {
    let dir = scratch_workspace("dirty");
    std::fs::copy(
        fixture_path("d1_hashmap.rs"),
        dir.join("crates/rio-order/src/hazards.rs"),
    )
    .unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_rio-lint"))
        .arg(&dir)
        .output()
        .expect("run rio-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "dirty workspace must fail the lint");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stdout.contains("crates/rio-order/src/hazards.rs:3: D1:"),
        "findings must name file:line:rule, got:\n{stdout}"
    );
    assert!(stdout.contains("crates/rio-order/src/hazards.rs:12: D1:"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let dir = scratch_workspace("clean");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_rio-lint"))
        .arg(&dir)
        .output()
        .expect("run rio-lint");
    assert!(
        out.status.success(),
        "clean workspace must pass, got:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Self-lint: the workspace this crate ships in must be clean. This is
// the static half of the determinism invariant — the dynamic half is
// the replay-snapshot suite in tests/full_stack.rs.
// ---------------------------------------------------------------------

#[test]
fn workspace_is_lint_clean() {
    let root = rio_lint::workspace_root();
    let (files, findings) = rio_lint::lint_workspace(&root).expect("walk workspace");
    assert!(
        files > 80,
        "walked suspiciously few files ({files}) — did the walker break?"
    );
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
