//! S3 fixture: a crate root without the missing-docs gate.

#![forbid(unsafe_code)]

/// Nothing else is wrong with this file.
pub fn fine() {}
