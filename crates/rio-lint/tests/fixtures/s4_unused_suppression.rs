//! S4 fixture: suppression hygiene.

use std::collections::BTreeMap;

/// Everything below is already deterministic.
pub fn build() -> BTreeMap<u32, u32> {
    // rio-lint: allow(D1) nothing on the next line actually violates D1
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    // rio-lint: allow(D9) unknown rule ids are reported
    // rio-lint: allow(D2)
    let _t = std::time::Instant::now();
    m
}
