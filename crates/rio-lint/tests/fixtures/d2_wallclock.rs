//! D2 fixture: wall-clock reads in simulation code.

use std::time::{Instant, SystemTime};

/// `Instant::now` named inside a doc comment must not fire.
pub fn measure() -> u64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let s = "Instant::now() in a string must not fire";
    let _ = (t0, wall, s);
    // rio-lint: allow(D2) fixture: real elapsed time for an offline report
    let ok = std::time::Instant::now();
    let _ = ok;
    0
}
