//! D3 fixture: OS-seeded or direct rand usage.

use rand::Rng;

/// Draws doomed randomness.
pub fn draw() -> u64 {
    let mut r = rand::thread_rng();
    let another = SmallRng::from_entropy();
    let _ = another;
    r.gen()
}
