//! S1 fixture: unsafe blocks must carry SAFETY comments.

/// Reads a byte with and without justification.
pub fn peek(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees p points at a live byte (fixture).
    let a = unsafe { *p };
    let b = unsafe { *p };
    a + b
}
