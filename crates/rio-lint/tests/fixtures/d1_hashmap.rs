//! D1 fixture: raw hash collections on the event path.

use std::collections::HashMap;
use std::collections::HashSet;
use std::collections::BTreeMap;

/// A comment may say HashMap freely; strings may too.
const NOTE: &str = "HashMap here must not fire";

/// Builds the maps.
pub fn build() {
    let mut banned: HashMap<u32, u32> = HashMap::new();
    banned.insert(1, 2);
    let fine: BTreeMap<u32, u32> = BTreeMap::new();
    let _ = (banned, fine, NOTE);
    // rio-lint: allow(D1) fixture: scratch set is built and drained, never iterated
    let suppressed: HashSet<u32> = HashSet::new();
    let _ = suppressed;
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let _: HashMap<u8, u8> = HashMap::new();
    }
}
