//! S2 fixture: lazy failure modes on the event path.

/// Dispatches one opcode.
pub fn dispatch(op: u8) {
    match op {
        0 => {}
        1 => todo!(),
        2 => unimplemented!(),
        _ => panic!("bad opcode {op}"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        panic!("test code is exempt");
    }
}
