//! D4 fixture: wall-clock date formatting in deterministic output.

/// Stamps a banner with the local date.
pub fn banner() -> String {
    let stamp = chrono::Local::now();
    format!("run at {stamp:?}")
}

/// OffsetDateTime is banned too.
pub fn banner2() -> String {
    let t = OffsetDateTime::now_utc();
    format!("{t:?}")
}
