//! End-to-end data-integrity sweep: corruption × crash × ordering
//! modes.
//!
//! With integrity on, every command carries real payload bytes (a
//! splitmix64 stream per 4 KB block) and a CRC-32C digest stamped at
//! submission; the fabric corrupts packets at a configurable rate;
//! receivers catch every corruption by digest and NAK it into the
//! go-back-N window, so corrupted payloads are re-fetched and never
//! reach media. Part 1 sweeps the wire corruption rate through every
//! ordering engine and reports the goodput cost plus the full
//! detection ledger.
//!
//! Part 2 composes corruption with crashes: a power failure that tears
//! the in-flight media write, then at-rest bit rot, both under ongoing
//! wire corruption. The post-quiesce scrub detects every bad record by
//! its media seal, repairs what a durable-but-unacked group still
//! covers (discard + redeliver, exactly-once preserved), and reports
//! the rest as honest data loss. The run survives and completes every
//! group exactly once.
//!
//! Usage:
//!
//! ```sh
//! cargo bench -p rio-bench --bench fig_integrity            # full sweep
//! cargo bench -p rio-bench --bench fig_integrity -- --smoke # CI-sized
//! ```

use rio_bench::{all_modes, header, kiops, row, run};
use rio_sim::SimTime;
use rio_ssd::SsdProfile;
use rio_stack::{
    Cluster, ClusterConfig, FabricConfig, FaultEvent, FaultKind, FaultPlan, OrderingMode,
    RunMetrics, TargetConfig, Workload,
};

const THREADS: usize = 4;

fn config(mode: OrderingMode, corrupt: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), THREADS);
    cfg.max_inflight_per_stream = 64;
    cfg.net = FabricConfig::lossy(0.0, 2);
    cfg.net.corrupt_rate = corrupt;
    // corrupt == 0 still runs with payload bytes and digests: the
    // integrity flag isolates the checksum machinery's cost from the
    // corruption-recovery cost.
    cfg.integrity = true;
    cfg
}

fn groups_for(mode: &OrderingMode, smoke: bool) -> u64 {
    let scale = if smoke { 10 } else { 1 };
    match mode {
        OrderingMode::LinuxNvmf => 600 / scale,
        _ => 8_000 / scale,
    }
}

/// Part 1: wire corruption rate × ordering engine.
fn corruption_sweep(smoke: bool) {
    let rates: &[f64] = if smoke {
        &[0.0, 1e-3]
    } else {
        &[0.0, 1e-5, 1e-3]
    };
    header(&format!(
        "Wire corruption sweep: KIOPS of 4 KB ordered writes ({THREADS} threads, \
         2 paths, payload bytes + CRC-32C digests end to end)"
    ));
    row(
        "mode \\ rate",
        &rates.iter().map(|r| format!("{r}")).collect::<Vec<_>>(),
    );
    let mut results: Vec<(String, Vec<RunMetrics>)> = Vec::new();
    for mode in all_modes() {
        let series: Vec<RunMetrics> = rates
            .iter()
            .map(|&rate| {
                let cfg = config(mode.clone(), rate);
                let wl = Workload::random_4k(THREADS, groups_for(&mode, smoke));
                let m = run(cfg, wl);
                assert_eq!(
                    m.integrity.wire_injected, m.integrity.wire_detected,
                    "an injected corruption escaped the digest check"
                );
                assert!(m.integrity.balanced(), "integrity ledger out of balance");
                m
            })
            .collect();
        row(
            mode.label(),
            &series
                .iter()
                .map(|m| kiops(m.block_iops()))
                .collect::<Vec<_>>(),
        );
        results.push((mode.label().to_string(), series));
    }
    println!("--- goodput retained vs corruption-free (same mode) ---");
    for (label, series) in &results {
        let base = series[0].block_iops();
        let cells: Vec<String> = series
            .iter()
            .map(|m| format!("{:.1}%", 100.0 * m.block_iops() / base.max(1e-12)))
            .collect();
        row(label, &cells);
    }
    println!("--- detection ledger at the highest rate (per mode) ---");
    row(
        "mode",
        &[
            "injected".into(),
            "detected".into(),
            "refetched".into(),
            "retx rounds".into(),
        ],
    );
    for (label, series) in &results {
        let worst = &series.last().expect("at least one rate").integrity;
        let rounds = series.last().expect("non-empty").net.retx_rounds;
        row(
            label,
            &[
                format!("{}", worst.wire_injected),
                format!("{}", worst.wire_detected),
                format!("{}", worst.wire_refetched),
                format!("{rounds}"),
            ],
        );
    }
}

fn crash_cfg(mode: OrderingMode, corrupt: f64, ssd: fn() -> SsdProfile) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        seed: 77,
        mode,
        initiator_cores: 8,
        targets: vec![
            TargetConfig {
                ssds: vec![ssd()],
                cores: 8,
            },
            TargetConfig {
                ssds: vec![ssd()],
                cores: 8,
            },
        ],
        fabric: rio_net::FabricProfile::connectx6(),
        net: FabricConfig::lossy(0.0, 2),
        cpu: Default::default(),
        streams: THREADS,
        qps_per_target: 8,
        stripe_blocks: 1,
        max_inflight_per_stream: 64,
        plug_merge: true,
        pin_stream_to_qp: true,
        integrity: true,
        faults: Default::default(),
        trace: None,
        telemetry: None,
        initiators: Vec::new(),
    };
    cfg.net.corrupt_rate = corrupt;
    cfg
}

/// Part 2: corruption × crash (Rio only: recovery needs the persisted
/// attributes). Two media-fault cells per corruption rate:
///
/// * **torn write** on volatile-cache SSDs (`pm981`) — the cache is
///   essentially never empty mid-run, so the power cut reliably tears
///   the in-flight media write; the torn block usually backed an
///   already-acknowledged group, so the scrub reports honest loss.
/// * **bit rot** on PLP SSDs (`optane905p`) — media fills quickly, so
///   at-rest flips land on sealed blocks and the scrub catches every
///   single-bit error by its CRC-32C seal.
fn crash_sweep(smoke: bool) {
    let rates: &[f64] = if smoke { &[1e-3] } else { &[0.0, 1e-3] };
    let modes = if smoke {
        vec![OrderingMode::Rio { merge: true }]
    } else {
        vec![
            OrderingMode::Rio { merge: true },
            OrderingMode::Rio { merge: false },
        ]
    };
    let groups: u64 = if smoke { 400 } else { 2_000 };
    type FaultCell = (&'static str, fn() -> SsdProfile, FaultKind);
    let cells: &[FaultCell] = &[
        (
            "torn write",
            SsdProfile::pm981,
            FaultKind::TornWrite {
                targets: Vec::new(),
            },
        ),
        (
            "bit rot",
            SsdProfile::optane905p,
            FaultKind::BitRot {
                targets: Vec::new(),
                flips: 3,
            },
        ),
    ];
    for mode in modes {
        header(&format!(
            "Corruption × crash, {}: media fault at half span, survivable, \
             {THREADS} threads",
            mode.label()
        ));
        row(
            "rate / fault",
            &[
                "rebuild".into(),
                "scrub+disc".into(),
                "injected".into(),
                "detected".into(),
                "repaired".into(),
                "lost".into(),
                "retention".into(),
            ],
        );
        for &rate in rates {
            for (label, ssd, kind) in cells {
                let baseline = Cluster::new(
                    crash_cfg(mode.clone(), rate, *ssd),
                    Workload::seq_batched(THREADS, groups, 4, 1),
                )
                .run();
                let crash_at = SimTime::from_nanos(baseline.finished_at.as_nanos() / 2);
                let mut cfg = crash_cfg(mode.clone(), rate, *ssd);
                cfg.faults = FaultPlan {
                    events: vec![FaultEvent {
                        at: crash_at,
                        kind: kind.clone(),
                        resume: true,
                    }],
                };
                let m = Cluster::new(cfg, Workload::seq_batched(THREADS, groups, 4, 1)).run();
                assert_eq!(
                    m.groups_done,
                    THREADS as u64 * groups,
                    "{label}: corruption or crash broke exactly-once"
                );
                assert!(
                    m.integrity.balanced(),
                    "{label}: integrity ledger out of balance"
                );
                let i = &m.integrity;
                let r = &m.recoveries[0];
                let e0 = m.epochs.first().expect("epoch 0").block_iops();
                let e_last = m.epochs.last().expect("final epoch").block_iops();
                row(
                    &format!("{rate:.0e} {label}"),
                    &[
                        format!("{:.1} ms", r.order_rebuild.as_secs_f64() * 1e3),
                        format!("{:.2} ms", r.data_recovery.as_secs_f64() * 1e3),
                        format!("{}", i.torn_injected + i.rot_injected),
                        format!("{}", i.media_detected),
                        format!("{}", i.media_repaired),
                        format!("{}", i.media_unrepairable),
                        format!(
                            "{:.1}%",
                            if e0 > 0.0 { e_last / e0 * 100.0 } else { 0.0 }
                        ),
                    ],
                );
            }
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "End-to-end integrity sweep ({} run): corruption x crash x ordering modes.",
        if smoke { "smoke" } else { "full" }
    );
    corruption_sweep(smoke);
    crash_sweep(smoke);
}
