//! Ablation: scheduler Principle 2 — pin each stream to one NIC queue.
//!
//! §4.3.1/§4.5: Rio dispatches a stream's requests to the same RC queue
//! pair so the network's in-order delivery makes the target's in-order
//! submission gate free. This ablation scatters commands round-robin
//! across queue pairs instead: the gate must then buffer out-of-order
//! arrivals, adding latency and memory pressure at the target.
//!
//! (The paper asserts the optimization in prose; this bench quantifies
//! it in the model.)

use rio_bench::{header, kiops, row, run, us};
use rio_ssd::SsdProfile;
use rio_stack::{ClusterConfig, OrderingMode, Workload};

fn main() {
    println!("Ablation: stream-to-QP pinning (scheduler Principle 2).");
    header("4 KB random ordered writes, 8 threads, 1 Optane target");
    row(
        "policy",
        &["KIOPS".into(), "avg lat".into(), "gate buffered".into()],
    );
    for (label, pinned) in [("pinned (Rio)", true), ("scattered", false)] {
        let mut cfg = ClusterConfig::single_ssd(
            OrderingMode::Rio { merge: true },
            SsdProfile::optane905p(),
            8,
        );
        cfg.pin_stream_to_qp = pinned;
        let m = run(cfg, Workload::random_4k(8, 10_000));
        row(
            label,
            &[
                kiops(m.block_iops()),
                us(m.group_latency.mean().as_micros_f64()),
                format!("{}", m.gate_buffered),
            ],
        );
    }
    println!("\nWith pinning, RC in-order delivery means the gate never");
    println!("buffers; scattering forces it to reorder arrivals instead.");

    header("Same workload over kernel TCP (Principle 2 applies per socket)");
    row(
        "fabric",
        &["KIOPS".into(), "avg lat".into(), "gate buffered".into()],
    );
    for (label, fabric) in [
        ("RDMA 200G", rio_net::FabricProfile::connectx6()),
        ("TCP 200G", rio_net::FabricProfile::tcp_200g()),
    ] {
        let mut cfg = ClusterConfig::single_ssd(
            OrderingMode::Rio { merge: true },
            SsdProfile::optane905p(),
            8,
        );
        cfg.fabric = fabric;
        let m = run(cfg, Workload::random_4k(8, 10_000));
        row(
            label,
            &[
                kiops(m.block_iops()),
                us(m.group_latency.mean().as_micros_f64()),
                format!("{}", m.gate_buffered),
            ],
        );
    }
    println!("\nHigher socket latency stretches the pipeline but Rio stays");
    println!("asynchronous; per-socket FIFO keeps the gate idle on TCP too.");
}
