//! Figure 10: block device performance — 4 KB random ordered writes.
//!
//! Four configurations: (a) one flash SSD, (b) one Optane SSD, (c) two
//! SSDs on one target, (d) four SSDs across two targets. Each thread
//! submits to its own stream. The paper reports throughput and CPU
//! efficiency normalised to the orderless stack.
//!
//! Paper's headline numbers: on flash Rio beats Linux by two orders of
//! magnitude and Horae by 2.8x on average; on Optane by 9.4x and 3.3x;
//! Rio's throughput and efficiency come close to orderless everywhere.

use rio_bench::trace_export::{trace_out_arg, write_chrome_trace};
use rio_bench::{all_modes, geomean, header, kiops, ratio, row, run};
use rio_ssd::SsdProfile;
use rio_stack::{
    ClusterConfig, OrderingMode, RunMetrics, TargetConfig, TelemetryConfig, TraceConfig, Workload,
};

const THREADS: [usize; 4] = [2, 4, 8, 12];

fn config(part: char, mode: OrderingMode, streams: usize) -> ClusterConfig {
    match part {
        'a' => ClusterConfig::single_ssd(mode, SsdProfile::pm981(), streams),
        'b' => ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), streams),
        'c' => {
            let mut cfg = ClusterConfig::single_ssd(mode, SsdProfile::pm981(), streams);
            cfg.targets = vec![TargetConfig {
                ssds: vec![SsdProfile::pm981(), SsdProfile::optane905p()],
                cores: 36,
            }];
            cfg
        }
        'd' => ClusterConfig::four_ssd_two_targets(mode, streams),
        _ => unreachable!(),
    }
}

fn groups_for(mode: &OrderingMode, threads: usize, ssds: usize) -> u64 {
    match mode {
        OrderingMode::LinuxNvmf => 600,
        // Long enough that the sustained rate dominates the initial
        // cache burst on every device.
        _ => (ssds as u64 * 40_000 / threads as u64).max(8_000),
    }
}

fn part(part_id: char, title: &str) {
    header(&format!(
        "Figure 10({part_id}): {title} — KIOPS of 4 KB ordered writes"
    ));
    row(
        "mode \\ threads",
        &THREADS.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
    );
    let mut results: Vec<(String, Vec<RunMetrics>)> = Vec::new();
    for mode in all_modes() {
        let mut series = Vec::new();
        for &threads in &THREADS {
            let cfg = config(part_id, mode.clone(), threads);
            let ssds = cfg.total_ssds();
            let wl = Workload::random_4k(threads, groups_for(&mode, threads, ssds));
            series.push(run(cfg, wl));
        }
        row(
            mode.label(),
            &series
                .iter()
                .map(|m| kiops(m.block_iops()))
                .collect::<Vec<_>>(),
        );
        results.push((mode.label().to_string(), series));
    }
    // CPU efficiency normalised to orderless (paper's lower panels).
    let orderless = results
        .iter()
        .find(|(l, _)| l == "orderless")
        .expect("orderless run")
        .1
        .clone();
    println!("--- normalised initiator CPU efficiency ---");
    for (label, series) in &results {
        let cells: Vec<String> = series
            .iter()
            .zip(orderless.iter())
            .map(|(m, o)| format!("{:.2}", m.initiator_efficiency() / o.initiator_efficiency()))
            .collect();
        row(label, &cells);
    }
    println!("--- normalised target CPU efficiency ---");
    for (label, series) in &results {
        let cells: Vec<String> = series
            .iter()
            .zip(orderless.iter())
            .map(|(m, o)| format!("{:.2}", m.target_efficiency() / o.target_efficiency()))
            .collect();
        row(label, &cells);
    }
    // Paper-style average ratios.
    let find = |l: &str| &results.iter().find(|(x, _)| x == l).expect("mode ran").1;
    let rio = find("RIO");
    let linux = find("Linux");
    let horae = find("HORAE");
    let rio_vs_linux = geomean(
        &rio.iter()
            .zip(linux.iter())
            .map(|(r, l)| r.block_iops() / l.block_iops())
            .collect::<Vec<_>>(),
    );
    let rio_vs_horae = geomean(
        &rio.iter()
            .zip(horae.iter())
            .map(|(r, h)| r.block_iops() / h.block_iops())
            .collect::<Vec<_>>(),
    );
    row(
        "avg RIO/Linux",
        &[
            ratio(rio_vs_linux),
            String::new(),
            String::new(),
            String::new(),
        ],
    );
    row(
        "avg RIO/HORAE",
        &[
            ratio(rio_vs_horae),
            String::new(),
            String::new(),
            String::new(),
        ],
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = trace_out_arg(&args) {
        // One representative traced run (RIO on Optane, part b) instead
        // of the whole sweep: the Chrome trace is per-command, so a
        // single cell is already thousands of spans.
        let mut cfg = config('b', OrderingMode::Rio { merge: true }, 2);
        cfg.trace = Some(TraceConfig::default());
        cfg.telemetry = Some(TelemetryConfig::default());
        let m = run(cfg, Workload::random_4k(2, 2_000));
        write_chrome_trace(&path, &m).expect("write Chrome trace");
        println!("wrote Chrome trace of fig10(b) RIO t=2 to {path}");
        return;
    }
    println!("Reproduction of paper Figure 10 (block device performance).");
    part('a', "1 flash SSD, 1 target");
    part('b', "1 Optane SSD, 1 target");
    part('c', "2 SSDs, 1 target");
    part('d', "4 SSDs, 2 targets");
}
