//! Multi-initiator scaling sweep: initiators × streams × targets.
//!
//! The ROADMAP's "millions of users" direction in miniature: M
//! initiators — each with its own sequencer, NIC, completer and stream
//! slice, one tenant per initiator — converge on a shared set of
//! targets. Every target NIC serializes the incast on its egress link
//! and a deficit-round-robin scheduler arbitrates SSD admission across
//! tenants, so this sweep shows (a) how aggregate throughput scales
//! with initiators until the shared targets saturate, (b) where the
//! per-target gate stops scaling (adding initiators beyond the target
//! capacity only grows the DRR admission wait), and (c) that equal
//! QoS weights keep the tenants inside a Jain fairness index ≥ 0.95
//! while a skewed weight reorders throughput.
//!
//! Usage:
//!
//! ```sh
//! cargo bench -p rio-bench --bench fig_multi_initiator            # full sweep
//! cargo bench -p rio-bench --bench fig_multi_initiator -- --smoke # CI-sized
//! ```

use rio_bench::trace_export::{trace_out_arg, write_chrome_trace};
use rio_bench::{header, kiops, row, run, us};
use rio_stack::{
    ClusterConfig, FabricConfig, OrderingMode, RunMetrics, TelemetryConfig, TraceConfig, Workload,
};

fn multi(initiators: usize, streams_each: usize, targets: usize, groups: u64) -> RunMetrics {
    let mut cfg = ClusterConfig::multi_initiator(
        OrderingMode::Rio { merge: true },
        initiators,
        streams_each,
        targets,
    );
    cfg.net = FabricConfig::lossy(1e-3, 2);
    let threads = initiators * streams_each;
    run(cfg, Workload::random_4k(threads, groups))
}

fn scaling_sweep(smoke: bool) {
    let init_axis: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let stream_axis: &[usize] = if smoke { &[1] } else { &[1, 2] };
    let target_axis: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let groups: u64 = if smoke { 400 } else { 2_000 };

    for &streams_each in stream_axis {
        header(&format!(
            "Multi-initiator scaling, {streams_each} stream(s)/initiator: aggregate KIOPS \
             (RIO, loss=1e-3, 2 paths)"
        ));
        row(
            "targets \\ inits",
            &init_axis.iter().map(|i| format!("{i}")).collect::<Vec<_>>(),
        );
        for &targets in target_axis {
            let series: Vec<RunMetrics> = init_axis
                .iter()
                .map(|&m| multi(m, streams_each, targets, groups))
                .collect();
            row(
                &format!("{targets} target(s)"),
                &series
                    .iter()
                    .map(|m| kiops(m.block_iops()))
                    .collect::<Vec<_>>(),
            );
            // The saturation tell: mean DRR admission wait per tenant.
            // Once the shared targets are the bottleneck, piling on
            // initiators stops raising KIOPS and starts raising this.
            let waits: Vec<String> = series
                .iter()
                .map(|m| {
                    let t = &m.tenants;
                    let mean_ns: f64 = if t.is_empty() {
                        0.0
                    } else {
                        t.iter().map(|t| t.gate_wait.mean().as_nanos() as f64).sum::<f64>()
                            / t.len() as f64
                    };
                    us(mean_ns / 1e3)
                })
                .collect();
            row("  drr wait", &waits);
            let fairness: Vec<String> = series
                .iter()
                .map(|m| format!("{:.3}", m.tenant_fairness()))
                .collect();
            row("  jain", &fairness);
            for m in &series {
                assert!(
                    m.tenants.len() < 2 || m.tenant_fairness() >= 0.95,
                    "equal-weight tenants fell out of fairness: {}",
                    m.tenant_fairness()
                );
            }
        }
    }
}

fn weight_sweep(smoke: bool) {
    header("QoS weights: 2 initiators, 1 shared target, equal demand");
    let groups: u64 = if smoke { 400 } else { 2_000 };
    row("weights", &["1:1".into(), "2:1".into(), "4:1".into()]);
    let mut iops_rows: Vec<(String, Vec<String>)> =
        vec![("tenant 0".into(), Vec::new()), ("tenant 1".into(), Vec::new())];
    for &w in &[1u32, 2, 4] {
        let mut cfg =
            ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 2, 2, 1);
        cfg.initiators[0] = cfg.initiators[0].clone().with_weight(w);
        let m = run(cfg, Workload::random_4k(4, groups));
        for (i, (_, cells)) in iops_rows.iter_mut().enumerate() {
            let t = &m.tenants[i];
            cells.push(kiops(t.block_iops()));
        }
        if w > 1 {
            let heavy = m.tenants.iter().find(|t| t.weight == w).expect("heavy");
            let light = m.tenants.iter().find(|t| t.weight == 1).expect("light");
            assert!(
                heavy.block_iops() > light.block_iops(),
                "weight {w} must outrun weight 1"
            );
        }
    }
    for (label, cells) in &iops_rows {
        row(label, cells);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = trace_out_arg(&args) {
        // Three initiators incast onto two shared targets over a lossy
        // fabric — the trace shows per-tenant lanes plus DRR waits.
        let mut cfg =
            ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 3, 1, 2);
        cfg.net = FabricConfig::lossy(1e-3, 2);
        cfg.trace = Some(TraceConfig::default());
        cfg.telemetry = Some(TelemetryConfig::default());
        let m = run(cfg, Workload::random_4k(3, 400));
        write_chrome_trace(&path, &m).expect("write Chrome trace");
        println!("wrote Chrome trace of multi-initiator RIO 3x2 to {path}");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    println!(
        "Multi-initiator / multi-tenant sweep ({} run).",
        if smoke { "smoke" } else { "full" }
    );
    scaling_sweep(smoke);
    weight_sweep(smoke);
}
