//! Figure 15: application performance — Filebench Varmail and RocksDB
//! `fillsync`.
//!
//! Varmail is metadata- and fsync-intensive (creates/appends/unlinks
//! with fsync); `fillsync` is a random-write-dominant key-value load
//! (16 B keys, 1 KB values, WAL append + fsync per put) that also burns
//! application CPU on in-memory indexing.
//!
//! Paper: RioFS raises Varmail throughput 2.3x/1.3x and RocksDB
//! fillsync 1.9x/1.5x over Ext4/HoraeFS on average.

use rio_bench::{geomean, header, kiops, ratio, row, run};
use rio_ssd::SsdProfile;
use rio_stack::workload::Pattern;
use rio_stack::{ClusterConfig, OrderingMode, RunMetrics, Workload};

fn fs_label(mode: &OrderingMode) -> &'static str {
    match mode {
        OrderingMode::LinuxNvmf => "Ext4",
        OrderingMode::Horae => "HORAEFS",
        OrderingMode::Rio { .. } => "RIOFS",
        OrderingMode::Orderless => "orderless",
    }
}

/// Varmail: mail files of 1–4 blocks, ~40% metadata-only ops
/// (create/unlink + fsync), little application CPU.
fn varmail(threads: usize, ops: u64) -> Workload {
    Workload {
        threads,
        groups_per_thread: ops,
        pattern: Pattern::FsyncJournal {
            data_blocks: (1, 4),
            meta_blocks: 2,
            meta_only_permille: 400,
            app_cpu_ns: 1_500,
        },
        batch: 3,
    }
}

/// RocksDB fillsync: 1 KB values -> 1-block WAL appends, metadata
/// journaling per fsync, plus memtable/index CPU per put.
fn fillsync(threads: usize, ops: u64) -> Workload {
    Workload {
        threads,
        groups_per_thread: ops,
        pattern: Pattern::FsyncJournal {
            data_blocks: (1, 1),
            meta_blocks: 2,
            meta_only_permille: 0,
            app_cpu_ns: 9_000,
        },
        batch: 3,
    }
}

fn series(name: &str, make: fn(usize, u64) -> Workload, threads_axis: &[usize]) {
    header(&format!("Figure 15 {name}: throughput (K ops/s)"));
    row(
        "series \\ thr",
        &threads_axis
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>(),
    );
    let mut results: Vec<(OrderingMode, Vec<RunMetrics>)> = Vec::new();
    for mode in [
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
    ] {
        let mut cells = Vec::new();
        let mut series = Vec::new();
        for &threads in threads_axis {
            let ops = match mode {
                OrderingMode::LinuxNvmf => 400,
                _ => 1_500,
            };
            let cfg = ClusterConfig::single_ssd(mode.clone(), SsdProfile::optane905p(), threads);
            let m = run(cfg, make(threads, ops));
            cells.push(kiops(m.op_iops()));
            series.push(m);
        }
        row(fs_label(&mode), &cells);
        results.push((mode, series));
    }
    let find = |want: &str| {
        &results
            .iter()
            .find(|(m, _)| fs_label(m) == want)
            .expect("mode ran")
            .1
    };
    let rio = find("RIOFS");
    let ext4 = find("Ext4");
    let horae = find("HORAEFS");
    let vs_ext4 = geomean(
        &rio.iter()
            .zip(ext4.iter())
            .map(|(r, e)| r.op_iops() / e.op_iops())
            .collect::<Vec<_>>(),
    );
    let vs_horae = geomean(
        &rio.iter()
            .zip(horae.iter())
            .map(|(r, h)| r.op_iops() / h.op_iops())
            .collect::<Vec<_>>(),
    );
    row("avg RIOFS/Ext4", &[ratio(vs_ext4)]);
    row("avg RIOFS/HORAEFS", &[ratio(vs_horae)]);
}

fn main() {
    println!("Reproduction of paper Figure 15 (application performance).");
    println!("Paper: Varmail 2.3x/1.3x and RocksDB fillsync 1.9x/1.5x over");
    println!("Ext4/HoraeFS on average.");
    series("(a) Varmail", varmail, &[1, 4, 8, 16, 24, 32, 40]);
    series("(b) RocksDB fillsync", fillsync, &[1, 4, 8, 16, 24, 36]);
}
