//! Criterion microbenchmarks of the ordering core's hot paths.
//!
//! These measure the *real* CPU cost of the data structures the paper's
//! design leans on: attribute stamping, whole-group merging, PMR log
//! append/scan, recovery's global merge, and wire encoding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rio_order::attr::{BlockRange, StreamId};
use rio_order::pmrlog::PmrLog;
use rio_order::recovery::{RecoveryInput, RecoveryMode, RecoveryPlan, ServerScan};
use rio_order::scheduler::{OrderQueue, OrderQueueConfig};
use rio_order::sequencer::{Sequencer, SubmitOpts};
use rio_order::{attr::Seq, attr::ServerId};
use rio_proto::{RioExt, Sqe};

fn bench_sequencer(c: &mut Criterion) {
    c.bench_function("sequencer_stamp", |b| {
        let mut seq = Sequencer::new(1, 2);
        let mut i = 0u64;
        b.iter(|| {
            let mut attr = seq.submit(
                StreamId(0),
                BlockRange::new(i % 100_000, 1),
                SubmitOpts {
                    end_group: true,
                    ..Default::default()
                },
            );
            seq.stamp_dispatch(&mut attr, ServerId((i % 2) as u16));
            i += 1;
            attr
        });
    });
}

fn bench_merge(c: &mut Criterion) {
    c.bench_function("order_queue_merge_16", |b| {
        b.iter_batched(
            || {
                let mut seq = Sequencer::new(1, 1);
                let mut q = OrderQueue::new(StreamId(0), OrderQueueConfig::default());
                for i in 0..16u64 {
                    let attr = seq.submit(
                        StreamId(0),
                        BlockRange::new(i, 1),
                        SubmitOpts {
                            end_group: true,
                            ..Default::default()
                        },
                    );
                    q.push(attr, i);
                }
                q
            },
            |mut q| q.flush(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_pmr_log(c: &mut Criterion) {
    c.bench_function("pmr_log_append", |b| {
        let (mut log, _) = PmrLog::format(2 * 1024 * 1024, 24);
        let mut seq = Sequencer::new(1, 1);
        let attr = seq.submit(
            StreamId(0),
            BlockRange::new(0, 8),
            SubmitOpts {
                end_group: true,
                ..Default::default()
            },
        );
        let rec = attr.to_pmr_record(0);
        let mut appended = Vec::new();
        b.iter(|| {
            if log.is_full() {
                for s in appended.drain(..) {
                    log.free(s);
                }
            }
            let (slot, w) = log.append(&rec).expect("space");
            appended.push(slot);
            w
        });
    });

    c.bench_function("pmr_scan_2mb", |b| {
        let mut region = vec![0u8; 2 * 1024 * 1024];
        let (mut log, writes) = PmrLog::format(region.len(), 24);
        for w in &writes {
            region[w.offset..w.offset + w.bytes.len()].copy_from_slice(&w.bytes);
        }
        let mut seq = Sequencer::new(1, 1);
        for i in 0..10_000u64 {
            let attr = seq.submit(
                StreamId(0),
                BlockRange::new(i, 1),
                SubmitOpts {
                    end_group: true,
                    ..Default::default()
                },
            );
            let (_, w) = log.append(&attr.to_pmr_record(0)).expect("space");
            region[w.offset..w.offset + w.bytes.len()].copy_from_slice(&w.bytes);
        }
        b.iter(|| PmrLog::scan(&region).expect("formatted").records.len());
    });
}

fn bench_recovery(c: &mut Criterion) {
    c.bench_function("recovery_merge_10k", |b| {
        let mut seq = Sequencer::new(1, 2);
        let mut records = Vec::new();
        for i in 0..10_000u64 {
            let mut attr = seq.submit(
                StreamId(0),
                BlockRange::new(i * 8, 8),
                SubmitOpts {
                    end_group: true,
                    ..Default::default()
                },
            );
            seq.stamp_dispatch(&mut attr, ServerId((i % 2) as u16));
            attr.persist = i % 7 != 0;
            records.push((attr.server, attr.to_pmr_record(0)));
        }
        let scans: Vec<ServerScan> = (0..2u16)
            .map(|s| ServerScan {
                server: ServerId(s),
                plp: true,
                head_seqs: vec![(StreamId(0), Seq(0))],
                records: records
                    .iter()
                    .filter(|(srv, _)| srv.0 == s)
                    .map(|(_, r)| *r)
                    .collect(),
            })
            .collect();
        let input = RecoveryInput {
            scans,
            mode: RecoveryMode::InitiatorRestart,
        };
        b.iter(|| RecoveryPlan::compute(&input).streams.len());
    });
}

fn bench_wire(c: &mut Criterion) {
    c.bench_function("sqe_encode_decode", |b| {
        let mut seq = Sequencer::new(1, 1);
        let attr = seq.submit(
            StreamId(0),
            BlockRange::new(77, 8),
            SubmitOpts {
                end_group: true,
                ..Default::default()
            },
        );
        let ext = attr.to_wire();
        b.iter(|| {
            let mut sqe = Sqe::write(3, 77, 8);
            ext.embed(&mut sqe);
            let bytes = sqe.encode();
            let back = Sqe::decode(&bytes);
            RioExt::extract(&back).expect("rio command")
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sequencer, bench_merge, bench_pmr_log, bench_recovery, bench_wire
);
criterion_main!(benches);
