//! Criterion microbenchmarks of the ordering core's hot paths.
//!
//! These measure the *real* CPU cost of the data structures the paper's
//! design leans on: attribute stamping, whole-group merging, PMR log
//! append/scan, recovery's global merge, and wire encoding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rio_order::attr::{BlockRange, OrderingAttr, StreamId};
use rio_order::pmrlog::PmrLog;
use rio_order::recovery::{RecoveryInput, RecoveryMode, RecoveryPlan, ServerScan};
use rio_order::scheduler::{OrderQueue, OrderQueueConfig};
use rio_order::sequencer::{Sequencer, SubmitOpts};
use rio_order::{attr::Seq, attr::ServerId, InOrderCompleter, SubmissionGate};
use rio_proto::{RioExt, Sqe};
use rio_sim::{EventHeap, SimTime};

fn bench_sequencer(c: &mut Criterion) {
    c.bench_function("sequencer_stamp", |b| {
        let mut seq = Sequencer::new(1, 2);
        let mut i = 0u64;
        b.iter(|| {
            let mut attr = seq.submit(
                StreamId(0),
                BlockRange::new(i % 100_000, 1),
                SubmitOpts {
                    end_group: true,
                    ..Default::default()
                },
            );
            seq.stamp_dispatch(&mut attr, ServerId((i % 2) as u16));
            i += 1;
            attr
        });
    });
}

fn bench_merge(c: &mut Criterion) {
    c.bench_function("order_queue_merge_16", |b| {
        b.iter_batched(
            || {
                let mut seq = Sequencer::new(1, 1);
                let mut q = OrderQueue::new(StreamId(0), OrderQueueConfig::default());
                for i in 0..16u64 {
                    let attr = seq.submit(
                        StreamId(0),
                        BlockRange::new(i, 1),
                        SubmitOpts {
                            end_group: true,
                            ..Default::default()
                        },
                    );
                    q.push(attr, i);
                }
                q
            },
            |mut q| q.flush(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_pmr_log(c: &mut Criterion) {
    c.bench_function("pmr_log_append", |b| {
        let (mut log, _) = PmrLog::format(2 * 1024 * 1024, 24);
        let mut seq = Sequencer::new(1, 1);
        let attr = seq.submit(
            StreamId(0),
            BlockRange::new(0, 8),
            SubmitOpts {
                end_group: true,
                ..Default::default()
            },
        );
        let rec = attr.to_pmr_record(0);
        let mut appended = Vec::new();
        b.iter(|| {
            if log.is_full() {
                for s in appended.drain(..) {
                    log.free(s);
                }
            }
            let (slot, w) = log.append(&rec).expect("space");
            appended.push(slot);
            w
        });
    });

    c.bench_function("pmr_scan_2mb", |b| {
        let mut region = vec![0u8; 2 * 1024 * 1024];
        let (mut log, writes) = PmrLog::format(region.len(), 24);
        for w in &writes {
            region[w.offset..w.offset + w.bytes.len()].copy_from_slice(&w.bytes);
        }
        let mut seq = Sequencer::new(1, 1);
        for i in 0..10_000u64 {
            let attr = seq.submit(
                StreamId(0),
                BlockRange::new(i, 1),
                SubmitOpts {
                    end_group: true,
                    ..Default::default()
                },
            );
            let (_, w) = log.append(&attr.to_pmr_record(0)).expect("space");
            region[w.offset..w.offset + w.bytes.len()].copy_from_slice(&w.bytes);
        }
        b.iter(|| PmrLog::scan(&region).expect("formatted").records.len());
    });
}

fn bench_recovery(c: &mut Criterion) {
    c.bench_function("recovery_merge_10k", |b| {
        let mut seq = Sequencer::new(1, 2);
        let mut records = Vec::new();
        for i in 0..10_000u64 {
            let mut attr = seq.submit(
                StreamId(0),
                BlockRange::new(i * 8, 8),
                SubmitOpts {
                    end_group: true,
                    ..Default::default()
                },
            );
            seq.stamp_dispatch(&mut attr, ServerId((i % 2) as u16));
            attr.persist = i % 7 != 0;
            records.push((attr.server, attr.to_pmr_record(0)));
        }
        let scans: Vec<ServerScan> = (0..2u16)
            .map(|s| ServerScan {
                server: ServerId(s),
                plp: true,
                head_seqs: vec![(StreamId(0), Seq(0))],
                records: records
                    .iter()
                    .filter(|(srv, _)| srv.0 == s)
                    .map(|(_, r)| *r)
                    .collect(),
            })
            .collect();
        let input = RecoveryInput {
            scans,
            mode: RecoveryMode::InitiatorRestart,
        };
        b.iter(|| RecoveryPlan::compute(&input).streams.len());
    });
}

/// Hot-path data structures of the engine and ordering core: the event
/// heap's push/pop cycle, the completion ring's buffered release, and
/// the submission gate's in-order admit.
fn bench_structures(c: &mut Criterion) {
    c.bench_function("event_heap_push_pop", |b| {
        // Steady-state engine rhythm: a 64-deep heap cycling one event
        // per step, the slab reusing slots with no allocation.
        let mut heap = EventHeap::with_capacity(64);
        let mut now = 0u64;
        for i in 0..64u64 {
            heap.push(SimTime::from_nanos(i), i);
        }
        b.iter(|| {
            let (t, v) = heap.pop().expect("non-empty");
            now += 1;
            heap.push(SimTime::from_nanos(t.as_nanos() + 64), v ^ now);
            v
        });
    });

    c.bench_function("completion_ring_release", |b| {
        // Out-of-order internal completions over a 16-group window:
        // 15 buffer, the 16th releases the whole prefix.
        let mk = |seq: u32| {
            let mut a = OrderingAttr::single(StreamId(0), Seq(seq), BlockRange::new(0, 1));
            a.boundary = true;
            a.num = 1;
            a
        };
        let mut base = 0u32;
        let mut released = Vec::with_capacity(16);
        let mut completer = InOrderCompleter::with_window(1, 32);
        b.iter(|| {
            for seq in (base + 2..=base + 16).rev() {
                completer.on_done_into(&mk(seq), &mut released);
            }
            completer.on_done_into(&mk(base + 1), &mut released);
            base += 16;
            let n = released.len();
            released.clear();
            n
        });
    });

    c.bench_function("gate_admit", |b| {
        // The pinned-stream fast path: every arrival is in dispatch
        // order and passes straight through without buffering.
        let mut gate = SubmissionGate::with_streams(1);
        let mut idx = 0u64;
        let mut released = Vec::with_capacity(4);
        let proto = OrderingAttr::single(StreamId(0), Seq(1), BlockRange::new(0, 1));
        b.iter(|| {
            let mut attr = proto;
            attr.dispatch_idx = idx;
            gate.arrive_into(attr, idx, &mut released);
            idx += 1;
            let n = released.len();
            released.clear();
            n
        });
    });
}

fn bench_wire(c: &mut Criterion) {
    c.bench_function("sqe_encode_decode", |b| {
        let mut seq = Sequencer::new(1, 1);
        let attr = seq.submit(
            StreamId(0),
            BlockRange::new(77, 8),
            SubmitOpts {
                end_group: true,
                ..Default::default()
            },
        );
        let ext = attr.to_wire();
        b.iter(|| {
            let mut sqe = Sqe::write(3, 77, 8);
            ext.embed(&mut sqe);
            let bytes = sqe.encode();
            let back = Sqe::decode(&bytes);
            RioExt::extract(&back).expect("rio command")
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sequencer, bench_merge, bench_pmr_log, bench_recovery, bench_structures, bench_wire
);
criterion_main!(benches);
