//! §6.5: recovery time after a target crash, plus the survivable
//! fault-injection sweep.
//!
//! Part 1 reproduces the paper's table: 36 threads issue 4 KB ordered
//! writes continuously; a fault crashes the target servers; the
//! initiator reconnects and recovers. The paper reports ~55 ms for Rio
//! to reconstruct the global order (dominated by reading the 2 MB PMR)
//! plus ~125 ms of data recovery (discarding the out-of-order blocks),
//! over 30 trials; Horae reloads its smaller metadata in ~38 ms and
//! repairs data in ~101 ms.
//!
//! Part 2 goes beyond the paper: the crash composes with the lossy
//! multi-path fabric and the run *survives* it. For every loss rate ×
//! crash pattern × Rio mode cell, one target subset (or a single NIC)
//! fails mid-flight, recovery runs inside the event loop, and the
//! workload resumes — the table reports both recovery phases, the
//! groups rolled back and re-queued, and the post-crash throughput
//! retention (epoch-1 KIOPS ÷ epoch-0 KIOPS).
//!
//! Usage:
//!
//! ```sh
//! cargo bench -p rio-bench --bench t65_recovery_time            # full
//! cargo bench -p rio-bench --bench t65_recovery_time -- --smoke # CI-sized
//! cargo bench -p rio-bench --bench t65_recovery_time -- --out BENCH_recovery.json
//! # regenerate the recovery-time trajectory baseline (bench_gate input)
//! ```

use rio_bench::{header, kiops, row};
use rio_sim::SimTime;
use rio_ssd::SsdProfile;
use rio_stack::crash::run_crash_recovery;
use rio_stack::{
    Cluster, ClusterConfig, FabricConfig, FaultEvent, FaultKind, FaultPlan, OrderingMode,
    TargetConfig, Workload,
};

fn paper_cfg(seed: u64, threads: usize) -> ClusterConfig {
    ClusterConfig {
        seed,
        mode: OrderingMode::Rio { merge: true },
        initiator_cores: threads,
        targets: vec![
            TargetConfig {
                ssds: vec![SsdProfile::pm981(), SsdProfile::optane905p()],
                cores: threads,
            },
            TargetConfig {
                ssds: vec![SsdProfile::pm981(), SsdProfile::p4800x()],
                cores: threads,
            },
        ],
        fabric: rio_net::FabricProfile::connectx6(),
        net: Default::default(),
        cpu: Default::default(),
        streams: threads,
        qps_per_target: threads,
        stripe_blocks: 1,
        // "continuously without explicitly waiting": deep windows.
        max_inflight_per_stream: 96,
        plug_merge: true,
        pin_stream_to_qp: true,
        integrity: false,
        faults: Default::default(),
        trace: None,
        telemetry: None,
        initiators: Vec::new(),
    }
}

/// Part 1: the paper's one-shot recovery-time table.
fn paper_table(smoke: bool) {
    let threads = if smoke { 8 } else { 36 };
    let trials: u64 = if smoke { 3 } else { 30 };
    header(&format!(
        "§6.5: mean over {trials} crash trials, {threads} threads, 4 SSDs, 2 targets"
    ));

    let mut rebuild_ms = 0.0;
    let mut data_ms = 0.0;
    let mut records = 0usize;
    let mut discards = 0usize;
    for trial in 0..trials {
        let cfg = paper_cfg(1000 + trial, threads);
        let wl = Workload::random_4k(threads, 1_000_000);
        // Crash at a pseudo-random instant in [2, 6] ms of steady state.
        let crash_ns = 2_000_000 + (trial * 137_911) % 4_000_000;
        let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(crash_ns));
        rebuild_ms += report.order_rebuild.as_secs_f64() * 1e3;
        data_ms += report.data_recovery.as_secs_f64() * 1e3;
        records += report.records_scanned;
        discards += report.discards;
    }
    let n = trials as f64;
    row(
        "RIO (sim)",
        &[
            format!("order rebuild {:.1} ms", rebuild_ms / n),
            format!("data recovery {:.1} ms", data_ms / n),
            format!("{} records", records / trials as usize),
            format!("{} discards", discards / trials as usize),
        ],
    );
    row(
        "RIO (paper)",
        &[
            "order rebuild ~55 ms".into(),
            "data recovery ~125 ms".into(),
        ],
    );
    // Horae's ordering metadata is smaller (~60% of Rio's attribute,
    // per the paper's relative reload times); its scan scales with the
    // same PMR region. We report the scaled estimate for reference.
    row(
        "HORAE (model)",
        &[
            format!("order rebuild {:.1} ms", rebuild_ms / n * 38.0 / 55.0),
            format!("data recovery {:.1} ms", data_ms / n * 101.0 / 125.0),
        ],
    );
    row(
        "HORAE (paper)",
        &[
            "order rebuild ~38 ms".into(),
            "data recovery ~101 ms".into(),
        ],
    );
}

fn sweep_cfg(mode: OrderingMode, loss: f64, threads: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        seed: 77,
        mode,
        initiator_cores: 8,
        targets: vec![
            TargetConfig {
                ssds: vec![SsdProfile::optane905p()],
                cores: 8,
            },
            TargetConfig {
                ssds: vec![SsdProfile::optane905p()],
                cores: 8,
            },
        ],
        fabric: rio_net::FabricProfile::connectx6(),
        net: FabricConfig::lossy(loss, 2),
        cpu: Default::default(),
        streams: threads,
        qps_per_target: 8,
        stripe_blocks: 1,
        max_inflight_per_stream: 64,
        plug_merge: true,
        pin_stream_to_qp: true,
        integrity: false,
        faults: Default::default(),
        trace: None,
        telemetry: None,
        initiators: Vec::new(),
    };
    cfg.net.migrate_every = 64;
    cfg
}

/// Part 2: the survivable loss × crash-pattern × mode sweep.
fn survivable_sweep(smoke: bool) {
    let threads = 4usize;
    let groups: u64 = if smoke { 800 } else { 4_000 };
    let losses: &[f64] = if smoke {
        &[0.0, 1e-3]
    } else {
        &[0.0, 1e-3, 1e-2]
    };
    let patterns: &[(&str, FaultKind)] = &[
        (
            "crash both",
            FaultKind::PowerFail {
                targets: Vec::new(),
            },
        ),
        ("crash one", FaultKind::PowerFail { targets: vec![1] }),
        ("nic reset", FaultKind::NicReset { target: 0 }),
    ];
    let modes = [
        OrderingMode::Rio { merge: true },
        OrderingMode::Rio { merge: false },
    ];

    for mode in modes {
        header(&format!(
            "Survivable faults, {}: mid-flight fault at half the crash-free span, \
             2 paths, {threads} threads",
            mode.label()
        ));
        row(
            "loss / fault",
            &[
                "rebuild".into(),
                "discard".into(),
                "requeued".into(),
                "epoch0".into(),
                "epoch1".into(),
                "retention".into(),
            ],
        );
        for &loss in losses {
            let baseline = Cluster::new(
                sweep_cfg(mode.clone(), loss, threads),
                Workload::seq_batched(threads, groups, 4, 1),
            )
            .run();
            let crash_at = SimTime::from_nanos(baseline.finished_at.as_nanos() / 2);
            for (label, kind) in patterns {
                let mut cfg = sweep_cfg(mode.clone(), loss, threads);
                cfg.faults = FaultPlan {
                    events: vec![FaultEvent {
                        at: crash_at,
                        kind: kind.clone(),
                        resume: true,
                    }],
                };
                let m =
                    Cluster::new(cfg, Workload::seq_batched(threads, groups, 4, 1)).run();
                assert_eq!(
                    m.groups_done,
                    threads as u64 * groups,
                    "{label}: groups lost or doubled"
                );
                let r = &m.recoveries[0];
                let requeued: u64 = r.streams.iter().map(|s| s.requeued).sum();
                let e0 = m.epochs[0].block_iops();
                let e1 = m.epochs[1].block_iops();
                row(
                    &format!("{loss:.0e} {label}"),
                    &[
                        format!("{:.1} ms", r.order_rebuild.as_secs_f64() * 1e3),
                        format!("{:.2} ms", r.data_recovery.as_secs_f64() * 1e3),
                        format!("{requeued}"),
                        kiops(e0),
                        kiops(e1),
                        format!("{:.1}%", if e0 > 0.0 { e1 / e0 * 100.0 } else { 0.0 }),
                    ],
                );
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // --out PATH: write the deterministic recovery-time trajectory
    // (the bench_gate baseline) instead of the report tables. Cargo
    // runs benches from the package directory, so a relative path is
    // resolved against the repo root — where bench_gate looks for it.
    if let Some(i) = args.iter().position(|a| a == "--out") {
        let path = args.get(i + 1).expect("--out needs a path");
        let path = if path.starts_with('/') {
            path.clone()
        } else {
            format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"))
        };
        let cells = rio_bench::recovery::trajectory();
        let json = rio_bench::recovery::render_recovery_json(&cells);
        std::fs::write(&path, json).expect("write trajectory");
        println!("wrote {} recovery cells to {path}", cells.len());
        return;
    }
    println!("Reproduction of paper §6.5 (recovery time) + survivable fault sweep.");
    println!("Paper: Rio ~55 ms order rebuild + ~125 ms data recovery;");
    println!("Horae ~38 ms + ~101 ms (smaller ordering metadata).");
    paper_table(smoke);
    survivable_sweep(smoke);
}
