//! §6.5: recovery time after a target crash.
//!
//! 36 threads issue 4 KB ordered writes continuously; a fault crashes
//! the target servers; the initiator reconnects and recovers. The paper
//! reports ~55 ms for Rio to reconstruct the global order (dominated by
//! reading the 2 MB PMR) plus ~125 ms of data recovery (discarding the
//! out-of-order blocks), over 30 trials; Horae reloads its smaller
//! metadata in ~38 ms and repairs data in ~101 ms.

use rio_bench::{header, row};
use rio_sim::SimTime;
use rio_ssd::SsdProfile;
use rio_stack::crash::run_crash_recovery;
use rio_stack::{ClusterConfig, OrderingMode, TargetConfig, Workload};

fn main() {
    println!("Reproduction of paper §6.5 (recovery time).");
    println!("Paper: Rio ~55 ms order rebuild + ~125 ms data recovery;");
    println!("Horae ~38 ms + ~101 ms (smaller ordering metadata).");
    header("§6.5: mean over 30 crash trials, 36 threads, 4 SSDs, 2 targets");

    let trials = 30;
    let mut rebuild_ms = 0.0;
    let mut data_ms = 0.0;
    let mut records = 0usize;
    let mut discards = 0usize;
    for trial in 0..trials {
        let mut cfg = ClusterConfig {
            seed: 1000 + trial,
            mode: OrderingMode::Rio { merge: true },
            initiator_cores: 36,
            targets: vec![
                TargetConfig {
                    ssds: vec![SsdProfile::pm981(), SsdProfile::optane905p()],
                    cores: 36,
                },
                TargetConfig {
                    ssds: vec![SsdProfile::pm981(), SsdProfile::p4800x()],
                    cores: 36,
                },
            ],
            fabric: rio_net::FabricProfile::connectx6(),
            net: Default::default(),
            cpu: Default::default(),
            streams: 36,
            qps_per_target: 36,
            stripe_blocks: 1,
            // "continuously without explicitly waiting": deep windows.
            max_inflight_per_stream: 96,
            plug_merge: true,
            pin_stream_to_qp: true,
        };
        cfg.seed = 1000 + trial;
        let wl = Workload::random_4k(36, 1_000_000);
        // Crash at a pseudo-random instant in [2, 6] ms of steady state.
        let crash_ns = 2_000_000 + (trial * 137_911) % 4_000_000;
        let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(crash_ns));
        rebuild_ms += report.order_rebuild.as_secs_f64() * 1e3;
        data_ms += report.data_recovery.as_secs_f64() * 1e3;
        records += report.records_scanned;
        discards += report.discards;
    }
    let n = trials as f64;
    row(
        "RIO (sim)",
        &[
            format!("order rebuild {:.1} ms", rebuild_ms / n),
            format!("data recovery {:.1} ms", data_ms / n),
            format!("{} records", records / trials as usize),
            format!("{} discards", discards / trials as usize),
        ],
    );
    row(
        "RIO (paper)",
        &[
            "order rebuild ~55 ms".into(),
            "data recovery ~125 ms".into(),
        ],
    );
    // Horae's ordering metadata is smaller (~60% of Rio's attribute,
    // per the paper's relative reload times); its scan scales with the
    // same PMR region. We report the scaled estimate for reference.
    row(
        "HORAE (model)",
        &[
            format!("order rebuild {:.1} ms", rebuild_ms / n * 38.0 / 55.0),
            format!("data recovery {:.1} ms", data_ms / n * 101.0 / 125.0),
        ],
    );
    row(
        "HORAE (paper)",
        &[
            "order rebuild ~38 ms".into(),
            "data recovery ~101 ms".into(),
        ],
    );
}
