//! Lossy multi-path fabric sweep: ordering engines under packet loss.
//!
//! RIO's central claim (§4, §6) is that ordering survives a fabric
//! that does not serialize: requests fan out across queue pairs and
//! paths, arrive out of order, and the target-side ordering attributes
//! put them back together. This sweep drives the packet-level fabric
//! model — MTU segmentation, deterministic per-packet drops, go-back-N
//! recovery, asymmetric paths with per-QP pinning — through every
//! ordering engine: loss ∈ {0, 1e-5, 1e-3, 1e-2} × paths ∈ {1, 2, 4}.
//!
//! Expected shape: RIO's deep asynchronous window overlaps per-stream
//! recovery stalls, so its throughput degrades gracefully with loss
//! (and tracks orderless), while the serial Linux NVMe-oF chain pays
//! every recovery latency on its critical path and degrades sharply.
//! Multi-path spreading adds latency asymmetry that the target gate
//! absorbs without extra cost.
//!
//! Usage:
//!
//! ```sh
//! cargo bench -p rio-bench --bench fig_lossy_fabric            # full sweep
//! cargo bench -p rio-bench --bench fig_lossy_fabric -- --smoke # CI-sized
//! ```

use rio_bench::trace_export::{trace_out_arg, write_chrome_trace};
use rio_bench::{all_modes, header, kiops, row, run};
use rio_ssd::SsdProfile;
use rio_stack::{
    ClusterConfig, FabricConfig, OrderingMode, RunMetrics, TelemetryConfig, TraceConfig, Workload,
};

const THREADS: usize = 4;

fn config(mode: OrderingMode, loss: f64, paths: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), THREADS);
    // The paper's asynchronous window: deep enough that per-stream
    // go-back-N stalls overlap instead of starving the SSD.
    cfg.max_inflight_per_stream = 64;
    cfg.net = FabricConfig::lossy(loss, paths);
    cfg
}

fn groups_for(mode: &OrderingMode, smoke: bool) -> u64 {
    let scale = if smoke { 10 } else { 1 };
    match mode {
        OrderingMode::LinuxNvmf => 600 / scale,
        _ => 20_000 / scale,
    }
}

fn sweep(smoke: bool) {
    let losses: &[f64] = if smoke {
        &[0.0, 1e-3]
    } else {
        &[0.0, 1e-5, 1e-3, 1e-2]
    };
    let paths_axis: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4] };

    for &paths in paths_axis {
        header(&format!(
            "Lossy fabric, {paths} path(s): KIOPS of 4 KB ordered writes ({THREADS} threads)"
        ));
        row(
            "mode \\ loss",
            &losses.iter().map(|l| format!("{l}")).collect::<Vec<_>>(),
        );
        let mut results: Vec<(String, Vec<RunMetrics>)> = Vec::new();
        for mode in all_modes() {
            let series: Vec<RunMetrics> = losses
                .iter()
                .map(|&loss| {
                    let cfg = config(mode.clone(), loss, paths);
                    let wl = Workload::random_4k(THREADS, groups_for(&mode, smoke));
                    run(cfg, wl)
                })
                .collect();
            row(
                mode.label(),
                &series
                    .iter()
                    .map(|m| kiops(m.block_iops()))
                    .collect::<Vec<_>>(),
            );
            results.push((mode.label().to_string(), series));
        }
        // Relative throughput vs the mode's own lossless run — the
        // graceful-vs-sharp degradation panel.
        println!("--- throughput retained vs lossless (same mode) ---");
        for (label, series) in &results {
            let base = series[0].block_iops();
            let cells: Vec<String> = series
                .iter()
                .map(|m| format!("{:.1}%", 100.0 * m.block_iops() / base.max(1e-12)))
                .collect();
            row(label, &cells);
        }
        // Fabric health counters for the highest-loss RIO cell.
        let rio = &results.iter().find(|(l, _)| l == "RIO").expect("RIO ran").1;
        let worst = rio.last().expect("at least one loss point");
        println!(
            "--- RIO @ loss={}: {} pkts, {} drops, {} retransmits, {} recovery rounds, gate buffered {} ---",
            losses.last().expect("non-empty"),
            worst.net.packets,
            worst.net.drops,
            worst.net.retransmits,
            worst.net.retx_rounds,
            worst.gate_buffered,
        );
        for (i, p) in worst.net.per_path.iter().enumerate() {
            println!(
                "    path {i}: {} pkts, {} drops, {} retransmits",
                p.packets, p.drops, p.retransmits
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = trace_out_arg(&args) {
        // The interesting cell: RIO under real loss, where retransmit
        // spans and gate stalls show up in the trace.
        let mut cfg = config(OrderingMode::Rio { merge: true }, 1e-3, 2);
        cfg.trace = Some(TraceConfig::default());
        cfg.telemetry = Some(TelemetryConfig::default());
        let m = run(cfg, Workload::random_4k(THREADS, 2_000));
        write_chrome_trace(&path, &m).expect("write Chrome trace");
        println!("wrote Chrome trace of lossy-fabric RIO loss=1e-3 paths=2 to {path}");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    println!(
        "Lossy multi-path fabric sweep ({} run).",
        if smoke { "smoke" } else { "full" }
    );
    sweep(smoke);
}
