//! Table 1: the Rio NVMe-oF command format atop the 1.4 specification.
//!
//! Prints the field placement and verifies it bit-exactly against the
//! encoder, plus the §6.1 PMR constants (2 MB region, 0.6 µs per-record
//! persist).

use rio_bench::{header, row};
use rio_proto::{RioExt, RioFlags, RioOpcode, Sqe};
use rio_ssd::SsdProfile;

fn main() {
    println!("Reproduction of paper Table 1 (Rio NVMe-oF command format).");
    header("Table 1: dword:bits -> Rio field (verified against encoder)");

    let ext = RioExt {
        op: RioOpcode::Submit,
        seq_start: 0x1111_1111,
        seq_end: 0x2222_2222,
        prev: 0x3333_3333,
        num: 0x4444,
        stream: 0x5555,
        flags: RioFlags {
            boundary: true,
            split: false,
            ipu: false,
        },
        member_idx: 7,
        split_idx: 0,
        last_split: false,
        dispatch_idx: 0x6666_6666,
    };
    let mut sqe = Sqe::write(1, 0x1000, 8);
    ext.embed(&mut sqe);

    let checks: Vec<(&str, &str, bool)> = vec![
        (
            "00:10-13",
            "Rio op code (submit)",
            (sqe.dw[0] >> 10) & 0xf == RioOpcode::Submit.as_bits() as u32,
        ),
        ("02:00-31", "start sequence (seq)", sqe.dw[2] == 0x1111_1111),
        ("03:00-31", "end sequence (seq)", sqe.dw[3] == 0x2222_2222),
        (
            "04:00-31",
            "previous group (prev)",
            sqe.dw[4] == 0x3333_3333,
        ),
        (
            "05:00-15",
            "number of requests (num)",
            sqe.dw[5] & 0xffff == 0x4444,
        ),
        ("05:16-31", "stream ID", sqe.dw[5] >> 16 == 0x5555),
        (
            "12:16-19",
            "special flags (boundary)",
            (sqe.dw[12] >> 16) & 0xf == 0b001,
        ),
        (
            "13:00-16",
            "member/split (impl. extension)",
            sqe.dw[13] & 0xff == 7,
        ),
        (
            "14:00-31",
            "dispatch ordinal (impl. extension)",
            sqe.dw[14] == 0x6666_6666,
        ),
    ];
    let mut all_ok = true;
    for (pos, field, ok) in checks {
        row(
            pos,
            &[
                field.to_string(),
                if ok { "ok".into() } else { "MISMATCH".into() },
            ],
        );
        all_ok &= ok;
    }
    // Standard fields must survive the embedding.
    assert_eq!(sqe.slba(), 0x1000, "SLBA clobbered");
    assert_eq!(sqe.nlb(), 8, "NLB clobbered");
    assert!(all_ok, "Table 1 layout mismatch");

    header("§6.1 PMR constants");
    for p in [
        SsdProfile::pm981(),
        SsdProfile::optane905p(),
        SsdProfile::p4800x(),
    ] {
        row(
            p.name,
            &[
                format!("PMR {} MB", p.pmr_bytes / (1024 * 1024)),
                format!("persist {:.1} us / 32 B", p.pmr_persist_us),
            ],
        );
    }
    println!("\nTable 1 layout verified bit-exactly.");
}
