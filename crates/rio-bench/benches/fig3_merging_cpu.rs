//! Figure 3: motivation for merging consecutive data blocks.
//!
//! Orderless NVMe over RDMA, one thread, sequential 4 KB writes; the
//! X axis is the number of blocks that can potentially merge (the plug
//! batch size). The paper reports initiator and target CPU utilisation
//! with and without merging: merging substantially reduces both.

use rio_bench::{header, pct, row, run};
use rio_ssd::SsdProfile;
use rio_stack::{ClusterConfig, OrderingMode, Workload};

fn series(ssd: fn() -> SsdProfile, label: &str) {
    header(&format!(
        "Figure 3({label}): orderless CPU utilisation vs merge batch (1 thread, seq 4 KB)"
    ));
    let batches = [1usize, 2, 4, 8, 16];
    row(
        "series \\ batch",
        &batches.iter().map(|b| b.to_string()).collect::<Vec<_>>(),
    );
    for merging in [false, true] {
        let mut init_cells = Vec::new();
        let mut tgt_cells = Vec::new();
        for &batch in &batches {
            let mut cfg = ClusterConfig::single_ssd(OrderingMode::Orderless, ssd(), 1);
            cfg.plug_merge = merging;
            let wl = Workload::seq_batched(1, 60_000, batch, 1);
            let m = run(cfg, wl);
            init_cells.push(pct(m.initiator_util * 36.0)); // single-core equivalent, paper scale
            tgt_cells.push(pct(m.target_util * 36.0));
        }
        let tag = if merging { "w/" } else { "w/o" };
        row(&format!("initiator {tag}"), &init_cells);
        row(&format!("target {tag}"), &tgt_cells);
    }
}

fn main() {
    println!("Reproduction of paper Figure 3 (merging cuts CPU overhead).");
    println!("Paper: merging reduces initiator and target CPU at every batch");
    println!("size; the gap widens as the batch grows.");
    series(SsdProfile::pm981, "a: flash");
    series(SsdProfile::optane905p, "b: Optane");
}
