//! Simulation-engine throughput harness.
//!
//! Runs a fixed Fig. 10-style sweep (every ordering mode over the
//! paper's cluster shapes) and records *host* wall-clock and simulator
//! event throughput (events/sec) for each figure cell, writing the
//! machine-readable trajectory to `BENCH_sim.json` at the repo root.
//! The simulated workload is pinned — seeds, thread counts and group
//! counts never vary — so the JSON tracks only how fast the engine
//! itself executes, PR over PR.
//!
//! Usage:
//!
//! ```sh
//! cargo bench -p rio-bench --bench sim_engine            # full sweep
//! cargo bench -p rio-bench --bench sim_engine -- --smoke # CI-sized
//! cargo bench -p rio-bench --bench sim_engine -- --out /tmp/x.json
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use rio_bench::all_modes;
use rio_ssd::SsdProfile;
use rio_stack::{Cluster, ClusterConfig, FabricConfig, OrderingMode, Workload};

/// One measured figure cell.
struct Cell {
    figure: &'static str,
    mode: &'static str,
    threads: usize,
    loss: f64,
    paths: usize,
    wall_secs: f64,
    events: u64,
    sim_span_secs: f64,
    blocks_done: u64,
}

fn config(part: char, mode: OrderingMode, streams: usize) -> ClusterConfig {
    match part {
        'a' => ClusterConfig::single_ssd(mode, SsdProfile::pm981(), streams),
        'b' => ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), streams),
        'd' => ClusterConfig::four_ssd_two_targets(mode, streams),
        _ => unreachable!(),
    }
}

fn run_cell(
    figure: &'static str,
    part: char,
    mode: OrderingMode,
    threads: usize,
    groups: u64,
) -> Cell {
    let cfg = config(part, mode.clone(), threads);
    measure(figure, mode, threads, 0.0, 1, cfg, groups)
}

fn run_lossy_cell(mode: OrderingMode, loss: f64, paths: usize, groups: u64) -> Cell {
    let mut cfg = ClusterConfig::single_ssd(mode.clone(), SsdProfile::optane905p(), 4);
    cfg.max_inflight_per_stream = 64;
    cfg.net = FabricConfig::lossy(loss, paths);
    measure("lossy_fabric", mode, 4, loss, paths, cfg, groups)
}

fn measure(
    figure: &'static str,
    mode: OrderingMode,
    threads: usize,
    loss: f64,
    paths: usize,
    cfg: ClusterConfig,
    groups: u64,
) -> Cell {
    let wl = Workload::random_4k(threads, groups);
    let started = Instant::now();
    let m = Cluster::new(cfg, wl).run();
    let wall_secs = started.elapsed().as_secs_f64();
    Cell {
        figure,
        mode: mode.label(),
        threads,
        loss,
        paths,
        wall_secs,
        events: m.events_processed,
        sim_span_secs: m.span.as_secs_f64(),
        blocks_done: m.blocks_done,
    }
}

fn sweep(smoke: bool) -> Vec<Cell> {
    // Fixed fig10-style grid: three cluster shapes x four modes x two
    // thread counts. Linux runs synchronously (one group per round
    // trip), so it gets proportionally fewer groups, exactly like the
    // figure benches do.
    let thread_axis: &[usize] = if smoke { &[2] } else { &[2, 8] };
    let scale: u64 = if smoke { 10 } else { 1 };
    let mut cells = Vec::new();
    for &(figure, part, ssds) in &[
        ("fig10a_flash", 'a', 1u64),
        ("fig10b_optane", 'b', 1),
        ("fig10d_4ssd", 'd', 4),
    ] {
        for mode in all_modes() {
            for &threads in thread_axis {
                let groups = match mode {
                    OrderingMode::LinuxNvmf => 600 / scale,
                    _ => (ssds * 120_000 / threads as u64).max(8_000) / scale,
                };
                cells.push(run_cell(figure, part, mode.clone(), threads, groups));
            }
        }
    }
    // Lossy-fabric cells: the fig_lossy_fabric sweep shape, so the
    // trajectory also tracks how fast the engine runs retransmission
    // and multi-path events.
    let lossy_grid: &[(f64, usize)] = if smoke {
        &[(1e-3, 2)]
    } else {
        &[(1e-3, 1), (1e-3, 4), (1e-2, 4)]
    };
    for &(loss, paths) in lossy_grid {
        for mode in all_modes() {
            let groups = match mode {
                OrderingMode::LinuxNvmf => 600 / scale,
                _ => 30_000 / scale,
            };
            cells.push(run_lossy_cell(mode, loss, paths, groups));
        }
    }
    cells
}

fn json_escape_free(s: &str) -> &str {
    // Labels are static identifiers without quotes or backslashes.
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

fn render_json(cells: &[Cell], smoke: bool) -> String {
    let total_wall: f64 = cells.iter().map(|c| c.wall_secs).sum();
    let total_events: u64 = cells.iter().map(|c| c.events).sum();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 2,");
    let _ = writeln!(out, "  \"harness\": \"sim_engine\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"total_wall_secs\": {total_wall:.6},");
    let _ = writeln!(out, "  \"total_events\": {total_events},");
    let _ = writeln!(
        out,
        "  \"events_per_sec\": {:.0},",
        total_events as f64 / total_wall.max(1e-12)
    );
    out.push_str("  \"figures\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"figure\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"loss\": {}, \"paths\": {}, \
             \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"sim_span_secs\": {:.6}, \"blocks_done\": {}}}",
            json_escape_free(c.figure),
            json_escape_free(c.mode),
            c.threads,
            c.loss,
            c.paths,
            c.wall_secs,
            c.events,
            c.events as f64 / c.wall_secs.max(1e-12),
            c.sim_span_secs,
            c.blocks_done,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            // crates/rio-bench -> repo root.
            format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR"))
        });

    println!(
        "sim_engine throughput harness ({} sweep)",
        if smoke { "smoke" } else { "full" }
    );
    let cells = sweep(smoke);
    for c in &cells {
        println!(
            "{:>14} {:>14} t={:<2} {:>9.3}s wall  {:>12} events  {:>11.0} ev/s",
            c.figure,
            c.mode,
            c.threads,
            c.wall_secs,
            c.events,
            c.events as f64 / c.wall_secs.max(1e-12),
        );
    }
    let total_wall: f64 = cells.iter().map(|c| c.wall_secs).sum();
    let total_events: u64 = cells.iter().map(|c| c.events).sum();
    println!(
        "total: {total_wall:.3}s wall, {total_events} events, {:.0} events/sec",
        total_events as f64 / total_wall.max(1e-12)
    );
    let json = render_json(&cells, smoke);
    // Cargo runs benches with the package dir as cwd, so a relative
    // --out like `target/BENCH_sim_smoke.json` points at a directory
    // that may not exist; create it instead of failing the smoke run.
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
