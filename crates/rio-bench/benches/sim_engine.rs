//! Simulation-engine throughput harness.
//!
//! Runs the fixed Fig. 10-style sweep defined in [`rio_bench::sweep`]
//! (every ordering mode over the paper's cluster shapes) and records
//! *host* wall-clock and simulator event throughput (events/sec) for
//! each figure cell, writing the machine-readable trajectory to
//! `BENCH_sim.json` at the repo root. The simulated workload is pinned
//! — seeds, thread counts and group counts never vary — so the JSON
//! tracks only how fast the engine itself executes, PR over PR. The
//! `bench_gate` binary compares a committed baseline against a re-run.
//!
//! Usage:
//!
//! ```sh
//! cargo bench -p rio-bench --bench sim_engine            # full sweep
//! cargo bench -p rio-bench --bench sim_engine -- --smoke # CI-sized
//! cargo bench -p rio-bench --bench sim_engine -- --out /tmp/x.json
//! ```

use rio_bench::sweep::{calibrate, render_json, sweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            // crates/rio-bench -> repo root.
            format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR"))
        });

    println!(
        "sim_engine throughput harness ({} sweep)",
        if smoke { "smoke" } else { "full" }
    );
    let cells = sweep(smoke);
    for c in &cells {
        println!(
            "{:>14} {:>14} t={:<2} {:>9.3}s wall  {:>12} events  {:>11.0} ev/s",
            c.figure,
            c.mode,
            c.threads,
            c.wall_secs,
            c.events,
            c.events_per_sec(),
        );
    }
    let total_wall: f64 = cells.iter().map(|c| c.wall_secs).sum();
    let total_events: u64 = cells.iter().map(|c| c.events).sum();
    println!(
        "total: {total_wall:.3}s wall, {total_events} events, {:.0} events/sec",
        total_events as f64 / total_wall.max(1e-12)
    );
    // Stamp the file with this machine's speed so the gate can compare
    // runs taken on different (or differently-loaded) hosts.
    let calib_secs = calibrate();
    println!("machine calibration: {calib_secs:.4}s");
    let json = render_json(&cells, smoke, calib_secs);
    // Cargo runs benches with the package dir as cwd, so a relative
    // --out like `target/BENCH_sim_smoke.json` points at a directory
    // that may not exist; create it instead of failing the smoke run.
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&out_path, json).expect("write BENCH_sim.json");
    println!("wrote {out_path}");
}
