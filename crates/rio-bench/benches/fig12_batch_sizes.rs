//! Figure 12: performance with varying batch sizes (merging ablation).
//!
//! Each batch is a run of sequential 4 KB ordered writes that *can*
//! merge. With one thread (scarce CPU) merging raises Rio's throughput
//! over "RIO w/o merge"; with 12 threads the SSDs saturate and merging
//! instead preserves CPU efficiency (the paper's normalised efficiency
//! panel shows Horae *declining* with batch size while Rio holds).

use rio_bench::{gbps, header, row, run};
use rio_stack::{ClusterConfig, OrderingMode, RunMetrics, Workload};

const BATCHES: [usize; 5] = [2, 4, 8, 12, 16];

fn modes() -> Vec<OrderingMode> {
    vec![
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
        OrderingMode::Rio { merge: false },
        OrderingMode::Orderless,
    ]
}

fn series(threads: usize, label: &str) {
    header(&format!("Figure 12({label}): batch-size sweep — GB/s"));
    row(
        "mode \\ batch",
        &BATCHES.iter().map(|b| b.to_string()).collect::<Vec<_>>(),
    );
    let mut results: Vec<(String, Vec<RunMetrics>)> = Vec::new();
    for mode in modes() {
        let mut series = Vec::new();
        for &batch in &BATCHES {
            let groups = match mode {
                OrderingMode::LinuxNvmf => 600,
                _ => (160_000 / threads as u64).max(13_000),
            };
            let cfg = ClusterConfig::four_ssd_two_targets(mode.clone(), threads);
            let wl = Workload::seq_batched(threads, groups, batch, 1);
            series.push(run(cfg, wl));
        }
        row(
            mode.label(),
            &series
                .iter()
                .map(|m| gbps(m.bandwidth()))
                .collect::<Vec<_>>(),
        );
        results.push((mode.label().to_string(), series));
    }
    let orderless = results
        .iter()
        .find(|(l, _)| l == "orderless")
        .expect("orderless")
        .1
        .clone();
    println!("--- normalised initiator CPU efficiency ---");
    for (label, series) in &results {
        let cells: Vec<String> = series
            .iter()
            .zip(orderless.iter())
            .map(|(m, o)| format!("{:.2}", m.initiator_efficiency() / o.initiator_efficiency()))
            .collect();
        row(label, &cells);
    }
}

fn main() {
    println!("Reproduction of paper Figure 12 (batch sizes / merging).");
    println!("Paper: with 1 thread merging lifts Rio's throughput; with 12");
    println!("threads it preserves CPU efficiency while Horae's declines.");
    series(1, "a: 4 SSDs, 1 thread");
    series(12, "b: 4 SSDs, 12 threads");
}
