//! Figure 14: fsync latency breakdown (single thread).
//!
//! One append + fsync is three dispatches (D user data, JM journaled
//! metadata, JC commit record) plus the I/O wait. The paper's table:
//!
//! | system  | D    | JM    | JC    | wait  | fsync |
//! |---------|------|-------|-------|-------|-------|
//! | HoraeFS | 5861 | 19327 | 16658 | 34899 | 76745 |
//! | RioFS   | 5861 |  1440 |  1107 | 34796 | 43204 |
//!
//! (nanoseconds). HoraeFS pays a synchronous control-path round trip
//! before each of JM and JC; RioFS dispatches them back to back.

use rio_bench::{header, row, run};
use rio_ssd::SsdProfile;
use rio_stack::{ClusterConfig, OrderingMode, Workload};

fn main() {
    println!("Reproduction of paper Figure 14 (fsync latency breakdown, ns).");
    header("Figure 14: 1 thread, append + fsync on remote Optane");
    row(
        "system",
        &["D", "JM", "JC", "wait IO", "fsync"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let paper = [
        (
            "HORAEFS(paper)",
            [5861.0, 19327.0, 16658.0, 34899.0, 76745.0],
        ),
        ("RIOFS(paper)", [5861.0, 1440.0, 1107.0, 34796.0, 43204.0]),
    ];
    for (label, vals) in paper {
        row(
            label,
            &vals.iter().map(|v| format!("{v:.0}")).collect::<Vec<_>>(),
        );
    }
    for (mode, label) in [
        (OrderingMode::Horae, "HORAEFS(sim)"),
        (OrderingMode::Rio { merge: true }, "RIOFS(sim)"),
        (OrderingMode::LinuxNvmf, "Ext4(sim)"),
    ] {
        let cfg = ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), 1);
        let wl = Workload::fsync_append(1, 2_000);
        let m = run(cfg, wl);
        let d = m.stage_dispatch[0].mean();
        let jm = m.stage_dispatch[1].mean();
        let jc = m.stage_dispatch[2].mean();
        let wait = m.stage_dispatch[3].mean();
        let total = m.op_latency.mean().as_nanos() as f64;
        row(
            label,
            &[d, jm, jc, wait, total]
                .iter()
                .map(|v| format!("{v:.0}"))
                .collect::<Vec<_>>(),
        );
    }
}
