//! Figure 14: fsync latency breakdown (single thread), plus the
//! per-command stage breakdown the `StageTrace` subsystem records for
//! *any* cluster configuration.
//!
//! One append + fsync is three dispatches (D user data, JM journaled
//! metadata, JC commit record) plus the I/O wait. The paper's table:
//!
//! | system  | D    | JM    | JC    | wait  | fsync |
//! |---------|------|-------|-------|-------|-------|
//! | HoraeFS | 5861 | 19327 | 16658 | 34899 | 76745 |
//! | RioFS   | 5861 |  1440 |  1107 | 34796 | 43204 |
//!
//! (nanoseconds). HoraeFS pays a synchronous control-path round trip
//! before each of JM and JC; RioFS dispatches them back to back.
//!
//! The second half renders the fig. 14-style *stage* breakdown from
//! [`rio_stack::LatencyBreakdown`] — where each microsecond of a
//! command goes (dispatch, network, gate, PMR, media, completion,
//! in-order delivery) with deterministic p50/p99/p999 per stage — for
//! three fabrics: lossless, 1% loss, and a survivable crash mid-run.

use rio_bench::trace_export::{trace_out_arg, write_chrome_trace};
use rio_bench::{header, row, run};
use rio_sim::SimTime;
use rio_ssd::SsdProfile;
use rio_stack::{
    ClusterConfig, FabricConfig, FaultPlan, LatencyBreakdown, OrderingMode, TelemetryConfig,
    TraceConfig, Workload,
};

fn paper_table() {
    header("Figure 14: 1 thread, append + fsync on remote Optane");
    row(
        "system",
        &["D", "JM", "JC", "wait IO", "fsync"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let paper = [
        (
            "HORAEFS(paper)",
            [5861.0, 19327.0, 16658.0, 34899.0, 76745.0],
        ),
        ("RIOFS(paper)", [5861.0, 1440.0, 1107.0, 34796.0, 43204.0]),
    ];
    for (label, vals) in paper {
        row(
            label,
            &vals.iter().map(|v| format!("{v:.0}")).collect::<Vec<_>>(),
        );
    }
    for (mode, label) in [
        (OrderingMode::Horae, "HORAEFS(sim)"),
        (OrderingMode::Rio { merge: true }, "RIOFS(sim)"),
        (OrderingMode::LinuxNvmf, "Ext4(sim)"),
    ] {
        let cfg = ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), 1);
        let wl = Workload::fsync_append(1, 2_000);
        let m = run(cfg, wl);
        let d = m.stage_dispatch[0].mean();
        let jm = m.stage_dispatch[1].mean();
        let jc = m.stage_dispatch[2].mean();
        let wait = m.stage_dispatch[3].mean();
        let total = m.op_latency.mean().as_nanos() as f64;
        row(
            label,
            &[d, jm, jc, wait, total]
                .iter()
                .map(|v| format!("{v:.0}"))
                .collect::<Vec<_>>(),
        );
    }
}

fn stage_table(b: &LatencyBreakdown) {
    row(
        "stage",
        &["p50 ns", "p99 ns", "p999 ns"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for (seg, label) in LatencyBreakdown::SEGMENT_LABELS.iter().enumerate() {
        if b.stages[seg].count() == 0 {
            continue;
        }
        let (p50, p99, p999) = b.segment_quantiles(seg);
        row(
            label,
            &[p50, p99, p999]
                .iter()
                .map(|d| format!("{}", d.as_nanos()))
                .collect::<Vec<_>>(),
        );
    }
    let (p50, p99, p999) = b.total_quantiles();
    row(
        "total",
        &[p50, p99, p999]
            .iter()
            .map(|d| format!("{}", d.as_nanos()))
            .collect::<Vec<_>>(),
    );
    println!(
        "{:>16} completed={} aborted={} retx pkts={} completer held peak={}",
        "", b.completed, b.aborted, b.retx_pkts, b.completer_held_peak
    );
    // A truncated trace must be visible: the ring keeps the newest
    // closed records and silently dropping the rest would skew the
    // span view in ways the quantiles above do not show.
    println!(
        "{:>16} trace ring: {} record(s) kept, {} evicted",
        "",
        b.records.len(),
        b.records_dropped
    );
}

fn traced_config(loss: f64, crash: bool) -> ClusterConfig {
    let mut cfg = if crash {
        ClusterConfig::four_ssd_two_targets(OrderingMode::Rio { merge: true }, 3)
    } else {
        ClusterConfig::single_ssd(
            OrderingMode::Rio { merge: true },
            SsdProfile::optane905p(),
            3,
        )
    };
    cfg.initiator_cores = 8;
    for t in &mut cfg.targets {
        t.cores = 8;
    }
    cfg.qps_per_target = 8;
    cfg.max_inflight_per_stream = 16;
    if loss > 0.0 {
        cfg.net = FabricConfig::lossy(loss, 2);
    }
    if crash {
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![1]);
    }
    cfg.trace = Some(TraceConfig::default());
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = trace_out_arg(&args) {
        // The crash-mid-run cell: spans, retransmits, the recovery
        // band and the watchdog's stall windows all in one trace.
        let mut cfg = traced_config(1e-3, true);
        cfg.telemetry = Some(TelemetryConfig::default());
        let m = run(cfg, Workload::random_4k(3, 2_000));
        write_chrome_trace(&path, &m).expect("write Chrome trace");
        println!("wrote Chrome trace of the crash-mid-run stage breakdown to {path}");
        return;
    }
    println!("Reproduction of paper Figure 14 (fsync latency breakdown, ns).");
    paper_table();

    println!();
    println!("Per-command stage breakdown (StageTrace, RIO, 3 threads):");
    for (title, loss, crash) in [
        ("lossless fabric", 0.0, false),
        ("1% loss, 2 paths", 0.01, false),
        ("crash mid-run (1e-3 loss, survivable)", 1e-3, true),
    ] {
        header(title);
        let m = run(traced_config(loss, crash), Workload::random_4k(3, 2_000));
        let b = m.breakdown.as_ref().expect("tracing enabled");
        stage_table(b);
    }
}
