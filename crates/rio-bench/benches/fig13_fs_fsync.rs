//! Figure 13: file system performance (fsync latency vs throughput).
//!
//! Up to 16 threads each append 4 KB to a private file and fsync,
//! always triggering metadata journaling, on a remote Optane 905P.
//! Ext4 maps to the synchronous Linux engine, HoraeFS to the Horae
//! engine, RioFS to Rio.
//!
//! Paper: RioFS lifts throughput 3.0x / 1.2x over Ext4 / HoraeFS,
//! cuts average latency 67% / 18%, and p99 by 50% / 20%.

use rio_bench::trace_export::{trace_out_arg, write_chrome_trace};
use rio_bench::{header, kiops, row, run, us};
use rio_ssd::SsdProfile;
use rio_stack::{ClusterConfig, OrderingMode, TelemetryConfig, TraceConfig, Workload};

const THREADS: [usize; 6] = [1, 2, 4, 8, 12, 16];

fn fs_label(mode: &OrderingMode) -> &'static str {
    match mode {
        OrderingMode::LinuxNvmf => "Ext4",
        OrderingMode::Horae => "HORAEFS",
        OrderingMode::Rio { .. } => "RIOFS",
        OrderingMode::Orderless => "orderless",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = trace_out_arg(&args) {
        let mut cfg =
            ClusterConfig::single_ssd(OrderingMode::Rio { merge: true }, SsdProfile::optane905p(), 4);
        cfg.trace = Some(TraceConfig::default());
        cfg.telemetry = Some(TelemetryConfig::default());
        let m = run(cfg, Workload::fsync_append(4, 500));
        write_chrome_trace(&path, &m).expect("write Chrome trace");
        println!("wrote Chrome trace of fig13 RIOFS t=4 to {path}");
        return;
    }
    println!("Reproduction of paper Figure 13 (file system fsync).");
    println!("Paper: RioFS saturates the Optane SSD with fewer cores, with");
    println!("3.0x/1.2x the throughput of Ext4/HoraeFS and lower tails.");
    header("Figure 13: fsync throughput (K ops/s), avg and p99 latency (us)");
    row(
        "series \\ thr",
        &THREADS.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
    );
    for mode in [
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
    ] {
        let mut thr = Vec::new();
        let mut avg = Vec::new();
        let mut p99 = Vec::new();
        for &threads in &THREADS {
            let ops = match mode {
                OrderingMode::LinuxNvmf => 500,
                _ => 2_000,
            };
            let cfg = ClusterConfig::single_ssd(mode.clone(), SsdProfile::optane905p(), threads);
            let wl = Workload::fsync_append(threads, ops);
            let m = run(cfg, wl);
            thr.push(kiops(m.op_iops()));
            avg.push(us(m.op_latency.mean().as_micros_f64()));
            p99.push(us(m.op_latency.quantile(0.99).as_micros_f64()));
        }
        row(&format!("{} kops", fs_label(&mode)), &thr);
        row(&format!("{} avg", fs_label(&mode)), &avg);
        row(&format!("{} p99", fs_label(&mode)), &p99);
    }
}
