//! Figure 11: performance with varying write sizes (4–64 KB).
//!
//! One thread, 4 SSDs over 2 targets, random and sequential ordered
//! writes. Paper: Rio beats Linux by up to two orders of magnitude and
//! Horae by up to 6.1x; asynchronous execution matters even for large
//! writes (at 64 KB Horae still reaches only half of Rio).

use rio_bench::{all_modes, gbps, header, row, run};
use rio_stack::workload::Pattern;
use rio_stack::{ClusterConfig, OrderingMode, Workload};

const SIZES_KB: [u32; 5] = [4, 8, 16, 32, 64];

fn series(random: bool, label: &str) {
    header(&format!("Figure 11({label}): 1 thread, 4 SSDs — GB/s"));
    row(
        "mode \\ KB",
        &SIZES_KB.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    for mode in all_modes() {
        let mut cells = Vec::new();
        for &kb in &SIZES_KB {
            let blocks = kb / 4;
            let groups = match mode {
                OrderingMode::LinuxNvmf => 500,
                _ => (200_000 / kb as u64).max(2_000),
            };
            let cfg = ClusterConfig::four_ssd_two_targets(mode.clone(), 1);
            let wl = Workload {
                threads: 1,
                groups_per_thread: groups,
                pattern: if random {
                    Pattern::RandomWrite { blocks }
                } else {
                    Pattern::SeqWrite { blocks }
                },
                batch: 1,
            };
            let m = run(cfg, wl);
            cells.push(gbps(m.bandwidth()));
        }
        row(mode.label(), &cells);
    }
}

fn main() {
    println!("Reproduction of paper Figure 11 (varying write sizes).");
    println!("Paper: asynchronous execution is vital even for 64 KB writes;");
    println!("Horae reaches only half of Rio at 64 KB.");
    series(true, "a: random write");
    series(false, "b: sequential write");
}
