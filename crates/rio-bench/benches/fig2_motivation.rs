//! Figure 2: motivation — the cost of storage order on flash and
//! Optane SSDs.
//!
//! Workload (§3.1): each thread issues an ordered write of 2 contiguous
//! 4 KB blocks followed by a consecutive 4 KB ordered write (the
//! metadata-journaling pattern), to a private SSD area.
//!
//! Paper's shape: orderless saturates either SSD with one thread;
//! ordered Linux NVMe-oF is two orders of magnitude slower on flash
//! (FLUSH-bound) and far below orderless on Optane (synchronous
//! execution); Horae sits in between and needs many cores to approach
//! the device limit.

use rio_bench::{header, kiops, row, run};
use rio_ssd::SsdProfile;
use rio_stack::{ClusterConfig, OrderingMode, Workload};

fn series(ssd: fn() -> SsdProfile, label: &str) {
    header(&format!(
        "Figure 2({label}) ordered-write throughput, KIOPS of 4 KB blocks"
    ));
    let threads_axis = [1usize, 4, 8, 12];
    row(
        "mode \\ threads",
        &threads_axis
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>(),
    );
    for mode in [
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Orderless,
    ] {
        let mut cells = Vec::new();
        for &threads in &threads_axis {
            // Long enough that the sustained (post-cache-burst) rate
            // dominates; synchronous Linux needs far fewer.
            let triplets = match mode {
                OrderingMode::LinuxNvmf => 400,
                _ => (24_000 / threads as u64).max(4_000),
            };
            let cfg = ClusterConfig::single_ssd(mode.clone(), ssd(), threads);
            let wl = Workload::journal_triplet(threads, triplets);
            let m = run(cfg, wl);
            cells.push(kiops(m.block_iops()));
        }
        row(mode.label(), &cells);
    }
}

fn main() {
    println!("Reproduction of paper Figure 2 (motivation experiments).");
    println!("Paper: orderless saturates with 1 thread; Linux NVMe-oF is");
    println!("~100x slower on flash, and all ordered systems trail orderless.");
    series(SsdProfile::pm981, "a: Samsung PM981 flash");
    series(SsdProfile::optane905p, "b: Intel 905P Optane");
}
