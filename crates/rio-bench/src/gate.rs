//! The `BENCH_sim.json` regression gate.
//!
//! Loads the committed baseline, obtains a current measurement of the
//! same grid (re-run or ingested), and fails with a per-cell report
//! when the engine got slower: a >10% drop in wall-clock events/s or a
//! >15% rise in the deterministic virtual-time group p99. Drift in the
//! deterministic event count is reported as a warning — it means the
//! engine's *behavior* changed and the baseline should be regenerated
//! deliberately, but it is not by itself a performance regression.
//!
//! The parser is a purpose-built scanner for the flat document
//! [`crate::sweep::render_json`] writes (the build vendors no JSON
//! dependency); it tolerates whitespace and field reordering but not
//! nested objects inside cells.

use crate::sweep::{Cell, SCHEMA};

/// Maximum tolerated drop in events per wall-clock second.
pub const MAX_EPS_DROP: f64 = 0.10;

/// Maximum tolerated rise in the deterministic group p99.
pub const MAX_P99_RISE: f64 = 0.15;

/// A parsed `BENCH_sim.json` document.
#[derive(Debug, Clone)]
pub struct BenchFile {
    /// Schema version (always [`SCHEMA`]; older files are rejected).
    pub schema: u64,
    /// Whether the file was written by a `--smoke` (scaled-down) sweep.
    pub smoke: bool,
    /// Wall seconds of the fixed CPU calibration loop
    /// ([`crate::sweep::calibrate`]) on the machine that wrote the file.
    pub calib_secs: f64,
    /// The measured cells.
    pub cells: Vec<Cell>,
}

/// One `"key": value` pair scanned out of a JSON object body.
fn next_pair(s: &str) -> Option<(String, String, &str)> {
    let start = s.find('"')? + 1;
    let rest = &s[start..];
    let key_end = rest.find('"')?;
    let key = rest[..key_end].to_string();
    let rest = rest[key_end + 1..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    if let Some(body) = rest.strip_prefix('"') {
        let val_end = body.find('"')?;
        Some((key, body[..val_end].to_string(), &body[val_end + 1..]))
    } else {
        let val_end = rest
            .find([',', '}', '\n'])
            .unwrap_or(rest.len());
        Some((key, rest[..val_end].trim().to_string(), &rest[val_end..]))
    }
}

/// All pairs of one flat JSON object body.
pub(crate) fn object_pairs(mut s: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    while let Some((k, v, rest)) = next_pair(s) {
        pairs.push((k, v));
        s = rest;
    }
    pairs
}

pub(crate) fn lookup<'a>(pairs: &'a [(String, String)], key: &str, ctx: &str) -> Result<&'a str, String> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field \"{key}\" in {ctx}"))
}

pub(crate) fn parse_u64(pairs: &[(String, String)], key: &str, ctx: &str) -> Result<u64, String> {
    let v = lookup(pairs, key, ctx)?;
    v.parse()
        .map_err(|_| format!("field \"{key}\" in {ctx} is not an integer: {v:?}"))
}

pub(crate) fn parse_f64(pairs: &[(String, String)], key: &str, ctx: &str) -> Result<f64, String> {
    let v = lookup(pairs, key, ctx)?;
    v.parse()
        .map_err(|_| format!("field \"{key}\" in {ctx} is not a number: {v:?}"))
}

pub(crate) fn parse_usize(pairs: &[(String, String)], key: &str, ctx: &str) -> Result<usize, String> {
    Ok(parse_u64(pairs, key, ctx)? as usize)
}

/// Parses a `BENCH_sim.json` document, rejecting unknown schemas.
pub fn parse(json: &str) -> Result<BenchFile, String> {
    let (head, figures) = json
        .split_once("\"figures\"")
        .ok_or("no \"figures\" array in document")?;
    let head_pairs = object_pairs(head);
    let schema = parse_u64(&head_pairs, "schema", "document header")?;
    if schema != SCHEMA {
        return Err(format!(
            "schema mismatch: file has schema {schema}, this gate reads schema {SCHEMA} \
             (regenerate the baseline with `cargo bench -p rio-bench --bench sim_engine`)"
        ));
    }
    let smoke = lookup(&head_pairs, "smoke", "document header")? == "true";
    let calib_secs = parse_f64(&head_pairs, "calib_secs", "document header")?;
    if !(calib_secs > 0.0) {
        return Err(format!("calib_secs must be positive, got {calib_secs}"));
    }
    let figures = figures
        .trim_start()
        .strip_prefix(':')
        .ok_or("malformed \"figures\" array")?
        .trim_start()
        .strip_prefix('[')
        .ok_or("malformed \"figures\" array")?;

    let mut cells = Vec::new();
    let mut rest = figures;
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or("unterminated cell object in \"figures\"")?;
        let body = &rest[open + 1..open + close];
        let pairs = object_pairs(body);
        let ctx = format!("cell {}", cells.len());
        cells.push(Cell {
            figure: lookup(&pairs, "figure", &ctx)?.to_string(),
            mode: lookup(&pairs, "mode", &ctx)?.to_string(),
            threads: parse_usize(&pairs, "threads", &ctx)?,
            initiators: parse_usize(&pairs, "initiators", &ctx)?,
            loss: parse_f64(&pairs, "loss", &ctx)?,
            paths: parse_usize(&pairs, "paths", &ctx)?,
            wall_secs: parse_f64(&pairs, "wall_secs", &ctx)?,
            events: parse_u64(&pairs, "events", &ctx)?,
            sim_span_secs: parse_f64(&pairs, "sim_span_secs", &ctx)?,
            blocks_done: parse_u64(&pairs, "blocks_done", &ctx)?,
            groups: parse_u64(&pairs, "groups", &ctx)?,
            group_p99_us: parse_f64(&pairs, "group_p99_us", &ctx)?,
        });
        rest = &rest[open + close + 1..];
    }
    if cells.is_empty() {
        return Err("no cells in \"figures\"".to_string());
    }
    Ok(BenchFile {
        schema,
        smoke,
        calib_secs,
        cells,
    })
}

/// Verdict on one baseline cell.
#[derive(Debug, Clone)]
pub struct CellVerdict {
    /// Human-readable cell identity.
    pub key: String,
    /// Hard failures (any non-empty entry fails the gate).
    pub failures: Vec<String>,
    /// Non-gating observations (event-count drift, improvements).
    pub notes: Vec<String>,
}

/// The whole gate outcome.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    /// One verdict per compared baseline cell.
    pub verdicts: Vec<CellVerdict>,
    /// Baseline cells the current measurement did not cover.
    pub uncovered: Vec<String>,
}

impl GateOutcome {
    /// Whether any compared cell regressed.
    pub fn failed(&self) -> bool {
        self.verdicts.iter().any(|v| !v.failures.is_empty())
    }
}

/// Compares current cells against the baseline. Baseline cells absent
/// from `current` are listed as uncovered; with `require_all` they fail
/// the gate (a full run must cover the whole grid; a `--smoke` subset
/// legitimately covers less).
///
/// `machine_factor` is current-machine calibration time over baseline
/// calibration time (>1 = the current host is slower); the events/s
/// check compares against the baseline scaled by it, so host speed
/// differences don't masquerade as engine regressions. Pass 1.0 to
/// compare raw.
pub fn compare(
    baseline: &[Cell],
    current: &[Cell],
    require_all: bool,
    machine_factor: f64,
) -> GateOutcome {
    let machine_factor = if machine_factor.is_finite() && machine_factor > 0.0 {
        machine_factor
    } else {
        1.0
    };
    let mut out = GateOutcome::default();
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.key() == base.key()) else {
            out.uncovered.push(base.key_label());
            if require_all {
                out.verdicts.push(CellVerdict {
                    key: base.key_label(),
                    failures: vec!["cell missing from current run".to_string()],
                    notes: Vec::new(),
                });
            }
            continue;
        };
        let mut v = CellVerdict {
            key: base.key_label(),
            failures: Vec::new(),
            notes: Vec::new(),
        };
        if cur.groups != base.groups {
            // Different workload size: nothing below is comparable.
            v.failures.push(format!(
                "cell shape drift: {} groups vs baseline {} (was the baseline written by --smoke?)",
                cur.groups, base.groups
            ));
            out.verdicts.push(v);
            continue;
        }
        // The baseline machine may not be this machine: judge events/s
        // against the baseline scaled to this machine's speed.
        let (raw_base_eps, cur_eps) = (base.events_per_sec(), cur.events_per_sec());
        let base_eps = raw_base_eps / machine_factor;
        if cur_eps < base_eps * (1.0 - MAX_EPS_DROP) {
            let scaled = if (machine_factor - 1.0).abs() > 1e-9 {
                format!(" (raw baseline {raw_base_eps:.0} x machine factor {machine_factor:.3})")
            } else {
                String::new()
            };
            v.failures.push(format!(
                "events/s regression: {cur_eps:.0} vs baseline {base_eps:.0}{scaled} \
                 ({:+.1}%, tolerance -{:.0}%)",
                (cur_eps / base_eps - 1.0) * 100.0,
                MAX_EPS_DROP * 100.0
            ));
        }
        if base.group_p99_us > 0.0 && cur.group_p99_us > base.group_p99_us * (1.0 + MAX_P99_RISE) {
            v.failures.push(format!(
                "group p99 regression: {:.1}us vs baseline {:.1}us ({:+.1}%, tolerance +{:.0}%)",
                cur.group_p99_us,
                base.group_p99_us,
                (cur.group_p99_us / base.group_p99_us - 1.0) * 100.0,
                MAX_P99_RISE * 100.0
            ));
        }
        if cur.events != base.events {
            v.notes.push(format!(
                "event-count drift: expected {} events, measured {} — engine behavior \
                 changed; regenerate the baseline deliberately",
                base.events, cur.events
            ));
        }
        out.verdicts.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::render_json;

    fn cell(figure: &str, mode: &str, wall: f64, events: u64, p99: f64) -> Cell {
        Cell {
            figure: figure.into(),
            mode: mode.into(),
            threads: 2,
            initiators: 1,
            loss: 0.0,
            paths: 1,
            wall_secs: wall,
            events,
            sim_span_secs: 0.2,
            blocks_done: 1_000,
            groups: 1_000,
            group_p99_us: p99,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let cells = vec![
            cell("fig10b_optane", "RIO", 0.2, 500_000, 45.5),
            cell("fig10b_optane", "Linux", 0.001, 9_602, 20.25),
        ];
        let parsed = parse(&render_json(&cells, false, 0.0625)).expect("parse");
        assert_eq!(parsed.schema, SCHEMA);
        assert!(!parsed.smoke);
        assert!((parsed.calib_secs - 0.0625).abs() < 1e-9);
        assert_eq!(parsed.cells.len(), 2);
        assert_eq!(parsed.cells[0].events, 500_000);
        assert_eq!(parsed.cells[1].mode, "Linux");
        assert!((parsed.cells[0].group_p99_us - 45.5).abs() < 1e-9);
    }

    #[test]
    fn old_schema_is_rejected_with_guidance() {
        let err = parse("{\n \"schema\": 2,\n \"figures\": [\n{\"figure\": \"x\"}\n]\n}")
            .expect_err("schema 2 must be rejected");
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn thresholds_gate_regressions_only() {
        let base = vec![cell("fig10b_optane", "RIO", 0.2, 500_000, 100.0)];
        // 9% slower and 14% worse p99: inside tolerance.
        let ok = vec![cell("fig10b_optane", "RIO", 0.2 / 0.91, 500_000, 114.0)];
        assert!(!compare(&base, &ok, true, 1.0).failed());
        // 20% slower: events/s gate fires.
        let slow = vec![cell("fig10b_optane", "RIO", 0.25, 500_000, 100.0)];
        let out = compare(&base, &slow, true, 1.0);
        assert!(out.failed());
        assert!(out.verdicts[0].failures[0].contains("events/s"));
        // 30% worse p99: tail gate fires.
        let tail = vec![cell("fig10b_optane", "RIO", 0.2, 500_000, 130.0)];
        let out = compare(&base, &tail, true, 1.0);
        assert!(out.failed());
        assert!(out.verdicts[0].failures[0].contains("p99"));
        // Faster and tighter: improvements pass.
        let better = vec![cell("fig10b_optane", "RIO", 0.1, 500_000, 50.0)];
        assert!(!compare(&base, &better, true, 1.0).failed());
    }

    #[test]
    fn machine_factor_rescales_the_events_per_sec_gate() {
        let base = vec![cell("fig10b_optane", "RIO", 0.2, 500_000, 100.0)];
        // 25% slower wall clock: a raw comparison fails...
        let slow = vec![cell("fig10b_optane", "RIO", 0.25, 500_000, 100.0)];
        assert!(compare(&base, &slow, true, 1.0).failed());
        // ...but if calibration says this machine is 25% slower, it passes.
        assert!(!compare(&base, &slow, true, 1.25).failed());
        // A real regression on top of the slow machine still fails:
        // machine is 25% slower, but the run is 60% slower.
        let worse = vec![cell("fig10b_optane", "RIO", 0.32, 500_000, 100.0)];
        let out = compare(&base, &worse, true, 1.25);
        assert!(out.failed());
        assert!(out.verdicts[0].failures[0].contains("machine factor"));
        // The factor never loosens the deterministic p99 gate.
        let tail = vec![cell("fig10b_optane", "RIO", 0.2, 500_000, 130.0)];
        assert!(compare(&base, &tail, true, 1.25).failed());
        // Degenerate factors fall back to a raw comparison.
        assert!(compare(&base, &slow, true, 0.0).failed());
        assert!(compare(&base, &slow, true, f64::NAN).failed());
    }

    #[test]
    fn event_drift_warns_but_does_not_fail() {
        let base = vec![cell("fig10b_optane", "RIO", 0.2, 500_000, 100.0)];
        let drifted = vec![cell("fig10b_optane", "RIO", 0.2, 490_000, 100.0)];
        let out = compare(&base, &drifted, true, 1.0);
        assert!(!out.failed());
        assert!(out.verdicts[0].notes[0].contains("drift"));
    }

    #[test]
    fn missing_cells_fail_only_full_runs() {
        let base = vec![
            cell("fig10b_optane", "RIO", 0.2, 500_000, 100.0),
            cell("fig10b_optane", "Linux", 0.001, 9_602, 20.0),
        ];
        let partial = vec![cell("fig10b_optane", "RIO", 0.2, 500_000, 100.0)];
        assert!(compare(&base, &partial, true, 1.0).failed());
        let out = compare(&base, &partial, false, 1.0);
        assert!(!out.failed());
        assert_eq!(out.uncovered.len(), 1);
    }

    #[test]
    fn group_mismatch_is_incomparable() {
        let base = vec![cell("fig10b_optane", "RIO", 0.2, 500_000, 100.0)];
        let mut shrunk = base.clone();
        shrunk[0].groups = 100;
        let out = compare(&base, &shrunk, true, 1.0);
        assert!(out.failed());
        assert!(out.verdicts[0].failures[0].contains("shape drift"));
    }
}
