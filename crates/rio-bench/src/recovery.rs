//! The `BENCH_recovery.json` recovery-time regression gate.
//!
//! §6.5 recovery time is pure virtual time — `(config, seed)` fixes
//! both phases to the nanosecond — so unlike the wall-clock engine
//! gate there is no machine factor and no retry logic: the trajectory
//! either reproduces or the recovery path's *cost model* changed. The
//! gate fails on a >15% rise in either phase of any cell; drops
//! (improvements) and sub-threshold drift only warn, flagging that the
//! baseline should be regenerated deliberately.
//!
//! The trajectory covers four crash trials at staggered instants plus
//! two integrity cells (a torn write and at-rest bit rot, both with
//! the post-quiesce scrub), so a regression in the scrub/repair pass
//! is gated alongside the classic scan/merge/discard phases.
//!
//! Regenerate with:
//!
//! ```sh
//! cargo bench -p rio-bench --bench t65_recovery_time -- --out BENCH_recovery.json
//! ```

use std::fmt::Write;

use rio_sim::SimTime;
use rio_ssd::SsdProfile;
use rio_stack::crash::run_crash_recovery;
use rio_stack::{
    Cluster, ClusterConfig, FaultEvent, FaultKind, FaultPlan, OrderingMode, TargetConfig, Workload,
};

use crate::gate::{lookup, object_pairs, parse_f64, parse_u64, parse_usize};
use crate::gate::{CellVerdict, GateOutcome};

/// Schema version of `BENCH_recovery.json`.
pub const RECOVERY_SCHEMA: u64 = 1;

/// Maximum tolerated rise in either deterministic recovery phase.
pub const MAX_RECOVERY_RISE: f64 = 0.15;

/// One measured recovery in the trajectory.
#[derive(Debug, Clone)]
pub struct RecoveryCell {
    /// Cell identity (`trial0`..`trial3`, `integrity`).
    pub label: String,
    /// Initiator threads during the crash.
    pub threads: usize,
    /// Phase 1 (scan + transfer + merge), virtual ms.
    pub order_rebuild_ms: f64,
    /// Phase 2 (discards; plus the scrub on integrity cells), virtual ms.
    pub data_recovery_ms: f64,
    /// PMR records scanned.
    pub records: u64,
    /// Discard commands issued.
    pub discards: u64,
}

impl RecoveryCell {
    /// Stable comparison key.
    pub fn key(&self) -> (&str, usize) {
        (&self.label, self.threads)
    }

    /// Human-readable identity.
    pub fn key_label(&self) -> String {
        format!("recovery {} t={}", self.label, self.threads)
    }
}

/// A parsed `BENCH_recovery.json` document.
#[derive(Debug, Clone)]
pub struct RecoveryFile {
    /// Schema version (always [`RECOVERY_SCHEMA`]).
    pub schema: u64,
    /// The measured cells.
    pub cells: Vec<RecoveryCell>,
}

fn trial_cfg(seed: u64, threads: usize) -> ClusterConfig {
    ClusterConfig {
        seed,
        mode: OrderingMode::Rio { merge: true },
        initiator_cores: threads,
        targets: vec![
            TargetConfig {
                ssds: vec![SsdProfile::pm981(), SsdProfile::optane905p()],
                cores: threads,
            },
            TargetConfig {
                ssds: vec![SsdProfile::pm981(), SsdProfile::p4800x()],
                cores: threads,
            },
        ],
        fabric: rio_net::FabricProfile::connectx6(),
        net: Default::default(),
        cpu: Default::default(),
        streams: threads,
        qps_per_target: threads,
        stripe_blocks: 1,
        max_inflight_per_stream: 96,
        plug_merge: true,
        pin_stream_to_qp: true,
        integrity: false,
        faults: Default::default(),
        trace: None,
        telemetry: None,
        initiators: Vec::new(),
    }
}

/// Runs the deterministic recovery trajectory: four one-shot crash
/// trials at staggered instants, then one survivable integrity run
/// with a torn-write crash followed by at-rest bit rot, whose
/// data-recovery phases include the post-quiesce scrub and any
/// payload repairs.
pub fn trajectory() -> Vec<RecoveryCell> {
    let threads = 8;
    let mut cells = Vec::new();
    for trial in 0..4u64 {
        let cfg = trial_cfg(1000 + trial, threads);
        let wl = Workload::random_4k(threads, 1_000_000);
        let crash_ns = 2_000_000 + (trial * 137_911) % 4_000_000;
        let r = run_crash_recovery(cfg, wl, SimTime::from_nanos(crash_ns));
        cells.push(RecoveryCell {
            label: format!("trial{trial}"),
            threads,
            order_rebuild_ms: r.order_rebuild.as_secs_f64() * 1e3,
            data_recovery_ms: r.data_recovery.as_secs_f64() * 1e3,
            records: r.records_scanned as u64,
            discards: r.discards as u64,
        });
    }
    // The integrity cell: payload bytes on the wire and on media, a
    // power failure that tears the in-flight write, bit rot injected
    // at rest, and a recovery that scrubs and repairs — survivable, so
    // the workload completes after the crash.
    let mut cfg = trial_cfg(9000, threads);
    cfg.integrity = true;
    cfg.faults = FaultPlan {
        events: vec![
            FaultEvent {
                at: SimTime::from_nanos(2_500_000),
                kind: FaultKind::TornWrite {
                    targets: Vec::new(),
                },
                resume: true,
            },
            FaultEvent {
                at: SimTime::from_nanos(5_000_000),
                kind: FaultKind::BitRot {
                    targets: Vec::new(),
                    flips: 2,
                },
                resume: true,
            },
        ],
    };
    let m = Cluster::new(cfg, Workload::fsync_append(threads, 1_500)).run();
    let named = [
        ("integrity-torn", &m.recoveries[0]),
        ("integrity-rot", &m.recoveries[1]),
    ];
    for (label, r) in named {
        cells.push(RecoveryCell {
            label: label.to_string(),
            threads,
            order_rebuild_ms: r.order_rebuild.as_secs_f64() * 1e3,
            data_recovery_ms: r.data_recovery.as_secs_f64() * 1e3,
            records: r.records_scanned as u64,
            discards: r.discards as u64,
        });
    }
    cells
}

/// Renders the cells as the `BENCH_recovery.json` document.
pub fn render_recovery_json(cells: &[RecoveryCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {RECOVERY_SCHEMA},");
    let _ = writeln!(out, "  \"harness\": \"t65_recovery_time\",");
    out.push_str("  \"recoveries\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"threads\": {}, \
             \"order_rebuild_ms\": {:.6}, \"data_recovery_ms\": {:.6}, \
             \"records\": {}, \"discards\": {}}}",
            c.label, c.threads, c.order_rebuild_ms, c.data_recovery_ms, c.records, c.discards,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_recovery.json` document, rejecting unknown schemas.
pub fn parse_recovery(json: &str) -> Result<RecoveryFile, String> {
    let (head, recoveries) = json
        .split_once("\"recoveries\"")
        .ok_or("no \"recoveries\" array in document")?;
    let head_pairs = object_pairs(head);
    let schema = parse_u64(&head_pairs, "schema", "document header")?;
    if schema != RECOVERY_SCHEMA {
        return Err(format!(
            "schema mismatch: file has schema {schema}, this gate reads schema \
             {RECOVERY_SCHEMA} (regenerate with `cargo bench -p rio-bench --bench \
             t65_recovery_time -- --out BENCH_recovery.json`)"
        ));
    }
    let recoveries = recoveries
        .trim_start()
        .strip_prefix(':')
        .ok_or("malformed \"recoveries\" array")?
        .trim_start()
        .strip_prefix('[')
        .ok_or("malformed \"recoveries\" array")?;
    let mut cells = Vec::new();
    let mut rest = recoveries;
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or("unterminated cell object in \"recoveries\"")?;
        let body = &rest[open + 1..open + close];
        let pairs = object_pairs(body);
        let ctx = format!("recovery cell {}", cells.len());
        cells.push(RecoveryCell {
            label: lookup(&pairs, "label", &ctx)?.to_string(),
            threads: parse_usize(&pairs, "threads", &ctx)?,
            order_rebuild_ms: parse_f64(&pairs, "order_rebuild_ms", &ctx)?,
            data_recovery_ms: parse_f64(&pairs, "data_recovery_ms", &ctx)?,
            records: parse_u64(&pairs, "records", &ctx)?,
            discards: parse_u64(&pairs, "discards", &ctx)?,
        });
        rest = &rest[open + close + 1..];
    }
    if cells.is_empty() {
        return Err("no cells in \"recoveries\"".to_string());
    }
    Ok(RecoveryFile { schema, cells })
}

fn check_phase(v: &mut CellVerdict, phase: &str, cur: f64, base: f64) {
    if base > 0.0 && cur > base * (1.0 + MAX_RECOVERY_RISE) {
        v.failures.push(format!(
            "{phase} regression: {cur:.3} ms vs baseline {base:.3} ms \
             ({:+.1}%, tolerance +{:.0}%)",
            (cur / base - 1.0) * 100.0,
            MAX_RECOVERY_RISE * 100.0
        ));
    } else if (cur - base).abs() > 1e-6 {
        v.notes.push(format!(
            "{phase} drift: {cur:.3} ms vs baseline {base:.3} ms — recovery is \
             deterministic; regenerate the baseline deliberately"
        ));
    }
}

/// Compares current recovery cells against the baseline. Recovery is
/// deterministic virtual time: every baseline cell must be covered,
/// and a >[`MAX_RECOVERY_RISE`] rise in either phase fails.
pub fn compare_recovery(baseline: &[RecoveryCell], current: &[RecoveryCell]) -> GateOutcome {
    let mut out = GateOutcome::default();
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.key() == base.key()) else {
            out.uncovered.push(base.key_label());
            out.verdicts.push(CellVerdict {
                key: base.key_label(),
                failures: vec!["cell missing from current trajectory".to_string()],
                notes: Vec::new(),
            });
            continue;
        };
        let mut v = CellVerdict {
            key: base.key_label(),
            failures: Vec::new(),
            notes: Vec::new(),
        };
        check_phase(&mut v, "order rebuild", cur.order_rebuild_ms, base.order_rebuild_ms);
        check_phase(&mut v, "data recovery", cur.data_recovery_ms, base.data_recovery_ms);
        if (cur.records, cur.discards) != (base.records, base.discards) {
            v.notes.push(format!(
                "workload drift: {} records / {} discards vs baseline {} / {}",
                cur.records, cur.discards, base.records, base.discards
            ));
        }
        out.verdicts.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(label: &str, rebuild: f64, data: f64) -> RecoveryCell {
        RecoveryCell {
            label: label.into(),
            threads: 8,
            order_rebuild_ms: rebuild,
            data_recovery_ms: data,
            records: 1000,
            discards: 40,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let cells = vec![cell("trial0", 52.125, 110.5), cell("integrity", 12.0, 30.25)];
        let parsed = parse_recovery(&render_recovery_json(&cells)).expect("parse");
        assert_eq!(parsed.schema, RECOVERY_SCHEMA);
        assert_eq!(parsed.cells.len(), 2);
        assert_eq!(parsed.cells[1].label, "integrity");
        assert!((parsed.cells[0].order_rebuild_ms - 52.125).abs() < 1e-9);
        assert!((parsed.cells[1].data_recovery_ms - 30.25).abs() < 1e-9);
    }

    #[test]
    fn wrong_schema_is_rejected_with_guidance() {
        let err = parse_recovery("{\n \"schema\": 99,\n \"recoveries\": [\n{}\n]\n}")
            .expect_err("unknown schema must be rejected");
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn gate_fails_only_beyond_the_rise_tolerance() {
        let base = vec![cell("trial0", 50.0, 100.0)];
        // 14% slower rebuild: tolerated, but noted as drift.
        let ok = vec![cell("trial0", 57.0, 100.0)];
        let out = compare_recovery(&base, &ok);
        assert!(!out.failed());
        assert!(out.verdicts[0].notes[0].contains("drift"));
        // 20% slower data recovery: fails.
        let slow = vec![cell("trial0", 50.0, 120.0)];
        let out = compare_recovery(&base, &slow);
        assert!(out.failed());
        assert!(out.verdicts[0].failures[0].contains("data recovery"));
        // Faster: an improvement passes (with a drift note).
        let better = vec![cell("trial0", 40.0, 80.0)];
        assert!(!compare_recovery(&base, &better).failed());
    }

    #[test]
    fn missing_cells_always_fail() {
        let base = vec![cell("trial0", 50.0, 100.0), cell("integrity", 10.0, 20.0)];
        let partial = vec![cell("trial0", 50.0, 100.0)];
        let out = compare_recovery(&base, &partial);
        assert!(out.failed());
        assert_eq!(out.uncovered.len(), 1);
    }
}
