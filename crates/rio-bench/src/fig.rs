//! The `BENCH_fig.json` per-figure throughput regression gate.
//!
//! The figure benches (fig10, fig13, the lossy-fabric and
//! multi-initiator sweeps) are pure virtual time: `(config, seed)`
//! fixes every cell's KIOPS exactly, so like the recovery gate there
//! is no machine factor and no retry logic. The trajectory runs a
//! smoke-sized slice of each figure and the gate fails on a >10% drop
//! in any cell's delivered KIOPS; rises (improvements) and
//! sub-threshold drift only warn, flagging that the baseline should be
//! regenerated deliberately.
//!
//! Regenerate with:
//!
//! ```sh
//! cargo run --release -p rio-bench --bin bench_gate -- --write-fig BENCH_fig.json
//! ```

use std::fmt::Write;

use rio_ssd::SsdProfile;
use rio_stack::{ClusterConfig, FabricConfig, OrderingMode, Workload};

use crate::gate::{lookup, object_pairs, parse_f64, parse_u64, parse_usize};
use crate::gate::{CellVerdict, GateOutcome};
use crate::{all_modes, run};

/// Schema version of `BENCH_fig.json`.
pub const FIG_SCHEMA: u64 = 1;

/// Maximum tolerated drop in any cell's deterministic KIOPS.
pub const MAX_FIG_DROP: f64 = 0.10;

/// One measured figure cell in the trajectory.
#[derive(Debug, Clone)]
pub struct FigCell {
    /// Which figure sweep the cell belongs to (`fig10a`, `fig13`, ...).
    pub figure: String,
    /// Ordering-mode label (`Linux`, `HORAE`, `RIO`, `orderless`).
    pub mode: String,
    /// Submitting threads (streams across all initiators).
    pub threads: usize,
    /// Initiator machines.
    pub initiators: usize,
    /// Target machines.
    pub targets: usize,
    /// Per-packet fabric loss probability.
    pub loss: f64,
    /// Fabric paths per initiator-target pair.
    pub paths: usize,
    /// Delivered KIOPS (block KIOPS, or op KIOPS for the fsync figure).
    pub kiops: f64,
    /// Ordered groups delivered, pinning the workload size.
    pub groups: u64,
}

impl FigCell {
    /// Stable comparison key (loss scaled to ppm so it hashes exactly).
    pub fn key(&self) -> (&str, &str, usize, usize, usize, u64, usize) {
        (
            &self.figure,
            &self.mode,
            self.threads,
            self.initiators,
            self.targets,
            (self.loss * 1e6).round() as u64,
            self.paths,
        )
    }

    /// Human-readable identity.
    pub fn key_label(&self) -> String {
        format!(
            "{} {} t={} init={} tgt={} loss={} paths={}",
            self.figure, self.mode, self.threads, self.initiators, self.targets, self.loss,
            self.paths
        )
    }
}

/// A parsed `BENCH_fig.json` document.
#[derive(Debug, Clone)]
pub struct FigFile {
    /// Schema version (always [`FIG_SCHEMA`]).
    pub schema: u64,
    /// The measured cells.
    pub cells: Vec<FigCell>,
}

fn fig10_cfg(part: char, mode: OrderingMode, streams: usize) -> ClusterConfig {
    match part {
        'a' => ClusterConfig::single_ssd(mode, SsdProfile::pm981(), streams),
        'b' => ClusterConfig::single_ssd(mode, SsdProfile::optane905p(), streams),
        'd' => ClusterConfig::four_ssd_two_targets(mode, streams),
        _ => unreachable!("trajectory only samples fig10 parts a/b/d"),
    }
}

/// Runs the deterministic figure trajectory: a smoke-sized slice of
/// fig10 (block device, parts a/b/d), fig13 (fsync append), the lossy
/// fabric sweep and the multi-initiator incast, every cell pinned by
/// `(config, seed)` to an exact KIOPS value.
pub fn trajectory() -> Vec<FigCell> {
    let mut cells = Vec::new();

    // Figure 10 slice: every mode on flash, Optane, and the four-SSD
    // two-target topology at two threads.
    for part in ['a', 'b', 'd'] {
        for mode in all_modes() {
            let threads = 2;
            let groups: u64 = match mode {
                OrderingMode::LinuxNvmf => 300,
                _ => 3_000,
            };
            let cfg = fig10_cfg(part, mode.clone(), threads);
            let targets = cfg.targets.len();
            let m = run(cfg, Workload::random_4k(threads, groups));
            cells.push(FigCell {
                figure: format!("fig10{part}"),
                mode: mode.label().to_string(),
                threads,
                initiators: 1,
                targets,
                loss: 0.0,
                paths: 1,
                kiops: m.block_iops() / 1e3,
                groups: m.groups_done,
            });
        }
    }

    // Figure 13 slice: fsync-append op rate on Optane for the three
    // filesystem modes across the thread axis.
    for mode in [
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
    ] {
        for threads in [1usize, 4, 16] {
            let ops: u64 = match mode {
                OrderingMode::LinuxNvmf => 60,
                _ => 300,
            };
            let cfg = ClusterConfig::single_ssd(mode.clone(), SsdProfile::optane905p(), threads);
            let m = run(cfg, Workload::fsync_append(threads, ops));
            cells.push(FigCell {
                figure: "fig13".to_string(),
                mode: mode.label().to_string(),
                threads,
                initiators: 1,
                targets: 1,
                loss: 0.0,
                paths: 1,
                kiops: m.op_iops() / 1e3,
                groups: m.groups_done,
            });
        }
    }

    // Lossy-fabric slice: every mode under two loss rates on two
    // paths, with the deep asynchronous window the sweep uses.
    for mode in all_modes() {
        for loss in [1e-3f64, 1e-2] {
            let threads = 4;
            let groups: u64 = match mode {
                OrderingMode::LinuxNvmf => 60,
                _ => 2_000,
            };
            let mut cfg =
                ClusterConfig::single_ssd(mode.clone(), SsdProfile::optane905p(), threads);
            cfg.max_inflight_per_stream = 64;
            cfg.net = FabricConfig::lossy(loss, 2);
            let m = run(cfg, Workload::random_4k(threads, groups));
            cells.push(FigCell {
                figure: "fig_lossy".to_string(),
                mode: mode.label().to_string(),
                threads,
                initiators: 1,
                targets: 1,
                loss,
                paths: 2,
                kiops: m.block_iops() / 1e3,
                groups: m.groups_done,
            });
        }
    }

    // Multi-initiator slice: RIO incast onto two shared targets over
    // a lossy two-path fabric.
    for initiators in [2usize, 4] {
        let mut cfg = ClusterConfig::multi_initiator(
            OrderingMode::Rio { merge: true },
            initiators,
            1,
            2,
        );
        cfg.net = FabricConfig::lossy(1e-3, 2);
        let m = run(cfg, Workload::random_4k(initiators, 400));
        cells.push(FigCell {
            figure: "fig_multi".to_string(),
            mode: "RIO".to_string(),
            threads: initiators,
            initiators,
            targets: 2,
            loss: 1e-3,
            paths: 2,
            kiops: m.block_iops() / 1e3,
            groups: m.groups_done,
        });
    }

    cells
}

/// Renders the cells as the `BENCH_fig.json` document.
pub fn render_fig_json(cells: &[FigCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {FIG_SCHEMA},");
    let _ = writeln!(out, "  \"harness\": \"fig_trajectory\",");
    out.push_str("  \"figures\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"figure\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"initiators\": {}, \"targets\": {}, \"loss\": {:.6}, \"paths\": {}, \
             \"kiops\": {:.6}, \"groups\": {}}}",
            c.figure, c.mode, c.threads, c.initiators, c.targets, c.loss, c.paths, c.kiops,
            c.groups,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_fig.json` document, rejecting unknown schemas.
pub fn parse_fig(json: &str) -> Result<FigFile, String> {
    let (head, figures) = json
        .split_once("\"figures\"")
        .ok_or("no \"figures\" array in document")?;
    let head_pairs = object_pairs(head);
    let schema = parse_u64(&head_pairs, "schema", "document header")?;
    if schema != FIG_SCHEMA {
        return Err(format!(
            "schema mismatch: file has schema {schema}, this gate reads schema \
             {FIG_SCHEMA} (regenerate with `cargo run --release -p rio-bench --bin \
             bench_gate -- --write-fig BENCH_fig.json`)"
        ));
    }
    let figures = figures
        .trim_start()
        .strip_prefix(':')
        .ok_or("malformed \"figures\" array")?
        .trim_start()
        .strip_prefix('[')
        .ok_or("malformed \"figures\" array")?;
    let mut cells = Vec::new();
    let mut rest = figures;
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or("unterminated cell object in \"figures\"")?;
        let body = &rest[open + 1..open + close];
        let pairs = object_pairs(body);
        let ctx = format!("figure cell {}", cells.len());
        cells.push(FigCell {
            figure: lookup(&pairs, "figure", &ctx)?.to_string(),
            mode: lookup(&pairs, "mode", &ctx)?.to_string(),
            threads: parse_usize(&pairs, "threads", &ctx)?,
            initiators: parse_usize(&pairs, "initiators", &ctx)?,
            targets: parse_usize(&pairs, "targets", &ctx)?,
            loss: parse_f64(&pairs, "loss", &ctx)?,
            paths: parse_usize(&pairs, "paths", &ctx)?,
            kiops: parse_f64(&pairs, "kiops", &ctx)?,
            groups: parse_u64(&pairs, "groups", &ctx)?,
        });
        rest = &rest[open + close + 1..];
    }
    if cells.is_empty() {
        return Err("no cells in \"figures\"".to_string());
    }
    Ok(FigFile { schema, cells })
}

/// Compares current figure cells against the baseline. The figures are
/// deterministic virtual time: every baseline cell must be covered,
/// and a >[`MAX_FIG_DROP`] KIOPS drop fails.
pub fn compare_fig(baseline: &[FigCell], current: &[FigCell]) -> GateOutcome {
    let mut out = GateOutcome::default();
    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.key() == base.key()) else {
            out.uncovered.push(base.key_label());
            out.verdicts.push(CellVerdict {
                key: base.key_label(),
                failures: vec!["cell missing from current trajectory".to_string()],
                notes: Vec::new(),
            });
            continue;
        };
        let mut v = CellVerdict {
            key: base.key_label(),
            failures: Vec::new(),
            notes: Vec::new(),
        };
        if base.kiops > 0.0 && cur.kiops < base.kiops * (1.0 - MAX_FIG_DROP) {
            v.failures.push(format!(
                "kiops regression: {:.3} vs baseline {:.3} ({:+.1}%, tolerance -{:.0}%)",
                cur.kiops,
                base.kiops,
                (cur.kiops / base.kiops - 1.0) * 100.0,
                MAX_FIG_DROP * 100.0
            ));
        } else if (cur.kiops - base.kiops).abs() > 1e-6 {
            v.notes.push(format!(
                "kiops drift: {:.3} vs baseline {:.3} — the figures are deterministic; \
                 regenerate the baseline deliberately",
                cur.kiops, base.kiops
            ));
        }
        if cur.groups != base.groups {
            v.notes.push(format!(
                "workload drift: {} groups vs baseline {}",
                cur.groups, base.groups
            ));
        }
        out.verdicts.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(figure: &str, mode: &str, kiops: f64) -> FigCell {
        FigCell {
            figure: figure.into(),
            mode: mode.into(),
            threads: 2,
            initiators: 1,
            targets: 1,
            loss: 0.001,
            paths: 2,
            kiops,
            groups: 3_000,
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let cells = vec![cell("fig10a", "RIO", 512.125), cell("fig13", "Linux", 1.5)];
        let parsed = parse_fig(&render_fig_json(&cells)).expect("parse");
        assert_eq!(parsed.schema, FIG_SCHEMA);
        assert_eq!(parsed.cells.len(), 2);
        assert_eq!(parsed.cells[0].figure, "fig10a");
        assert_eq!(parsed.cells[1].mode, "Linux");
        assert!((parsed.cells[0].kiops - 512.125).abs() < 1e-9);
        assert!((parsed.cells[0].loss - 0.001).abs() < 1e-12);
    }

    #[test]
    fn wrong_schema_is_rejected_with_guidance() {
        let err = parse_fig("{\n \"schema\": 99,\n \"figures\": [\n{}\n]\n}")
            .expect_err("unknown schema must be rejected");
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn gate_fails_only_beyond_the_drop_tolerance() {
        let base = vec![cell("fig10a", "RIO", 500.0)];
        // 8% slower: tolerated, but noted as drift.
        let ok = vec![cell("fig10a", "RIO", 460.0)];
        let out = compare_fig(&base, &ok);
        assert!(!out.failed());
        assert!(out.verdicts[0].notes[0].contains("drift"));
        // 20% slower: fails.
        let slow = vec![cell("fig10a", "RIO", 400.0)];
        let out = compare_fig(&base, &slow);
        assert!(out.failed());
        assert!(out.verdicts[0].failures[0].contains("kiops regression"));
        // Faster: an improvement passes (with a drift note).
        let better = vec![cell("fig10a", "RIO", 600.0)];
        assert!(!compare_fig(&base, &better).failed());
    }

    #[test]
    fn missing_cells_always_fail() {
        let base = vec![cell("fig10a", "RIO", 500.0), cell("fig13", "Linux", 2.0)];
        let partial = vec![cell("fig10a", "RIO", 500.0)];
        let out = compare_fig(&base, &partial);
        assert!(out.failed());
        assert_eq!(out.uncovered.len(), 1);
    }
}
