//! Chrome `trace_event` JSON export: renders a run's `StageTrace`
//! closed-record ring as duration spans and its telemetry series as
//! counter tracks, loadable in Perfetto or `chrome://tracing`.
//!
//! The format is the Trace Event Format's JSON-object flavor:
//! `{"traceEvents": [...]}` where each event carries `ph` (phase),
//! `ts`/`dur` in microseconds, and `pid`/`tid` lanes. Spans (`"X"`)
//! come from consecutive reached stages of each traced command —
//! one span per [`LatencyBreakdown::SEGMENT_LABELS`] segment — laid
//! out with the initiator as the process and the stream as the
//! thread. Counters (`"C"`) come from the telemetry buckets. Stall
//! windows and crash/recovery spans render on a dedicated watchdog
//! process so they are visible as a band across the timeline. When
//! the trace ring evicted records, a metadata event (`"M"`) reports
//! the eviction count so a truncated view is never mistaken for the
//! whole run.
//!
//! Everything is hand-rolled `core::fmt` — the workspace vendors no
//! JSON dependency — and [`validate_json`] provides the structural
//! well-formedness check CI and the example run on the output.

use std::fmt::Write as _;

use rio_stack::trace::STAGES;
use rio_stack::{LatencyBreakdown, RunMetrics, Telemetry};

/// The `pid` lane used for watchdog annotations (stall windows and
/// recovery spans), far away from real initiator indices.
pub const WATCHDOG_PID: u32 = 999;

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn push_event(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Renders `m` as a Chrome `trace_event` JSON document.
pub fn chrome_trace(m: &RunMetrics) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n");
    let mut first = true;
    if let Some(b) = &m.breakdown {
        render_spans(&mut out, &mut first, b);
    }
    if let Some(t) = &m.telemetry {
        render_counters(&mut out, &mut first, t);
        render_watchdog(&mut out, &mut first, t);
    }
    out.push_str("\n]\n}\n");
    out
}

fn render_spans(out: &mut String, first: &mut bool, b: &LatencyBreakdown) {
    for r in &b.records {
        let mut prev: Option<u64> = r.stages[0].map(|t| t.as_nanos());
        for i in 1..STAGES {
            let Some(t) = r.stages[i] else { continue };
            let t = t.as_nanos();
            if let Some(p) = prev {
                push_event(out, first);
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                     \"pid\": {}, \"tid\": {}, \"args\": {{\"seq_start\": {}, \"seq_end\": {}, \
                     \"server\": {}, \"ssd\": {}, \"lba\": {}, \"epoch\": {}, \
                     \"retx_pkts\": {}, \"gate_depth\": {}}}}}",
                    LatencyBreakdown::SEGMENT_LABELS[i - 1],
                    us(p),
                    us(t.saturating_sub(p)),
                    r.initiator,
                    r.stream,
                    r.seq_start,
                    r.seq_end,
                    r.server,
                    r.ssd,
                    r.lba,
                    r.epoch,
                    r.retx_pkts,
                    r.gate_depth,
                );
            }
            prev = Some(t);
        }
        if let Some(fault) = r.aborted_by {
            // Mark where the crash killed the command.
            let at = prev.unwrap_or(0);
            push_event(out, first);
            let _ = write!(
                out,
                "{{\"name\": \"aborted\", \"ph\": \"i\", \"ts\": {:.3}, \"s\": \"t\", \
                 \"pid\": {}, \"tid\": {}, \"args\": {{\"fault\": {}}}}}",
                us(at),
                r.initiator,
                r.stream,
                fault,
            );
        }
    }
    if b.records_dropped > 0 {
        // The ring evicted closed records: the spans above are the
        // *most recent* window of the run, not all of it.
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"stage_trace_ring\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
             \"args\": {{\"records_dropped\": {}, \"records_kept\": {}}}}}",
            b.records_dropped,
            b.records.len(),
        );
    }
}

fn render_counters(out: &mut String, first: &mut bool, t: &Telemetry) {
    for (i, b) in t.buckets.iter().enumerate() {
        let ts = us(t.bucket_start(i).as_nanos());
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"delivered KIOPS\", \"ph\": \"C\", \"ts\": {ts:.3}, \"pid\": 0, \
             \"args\": {{\"kiops\": {:.3}}}}}",
            t.delivered_kiops(i),
        );
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"inflight cmds\", \"ph\": \"C\", \"ts\": {ts:.3}, \"pid\": 0, \
             \"args\": {{\"cmds\": {}}}}}",
            b.inflight_peak,
        );
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"pending groups\", \"ph\": \"C\", \"ts\": {ts:.3}, \"pid\": 0, \
             \"args\": {{\"groups\": {}}}}}",
            b.pending_end,
        );
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"gate occupancy\", \"ph\": \"C\", \"ts\": {ts:.3}, \"pid\": 0, \
             \"args\": {{\"fragments\": {}}}}}",
            b.gate_peak,
        );
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"completer pending\", \"ph\": \"C\", \"ts\": {ts:.3}, \"pid\": 0, \
             \"args\": {{\"groups\": {}}}}}",
            b.completer_peak,
        );
        push_event(out, first);
        let _ = write!(out, "{{\"name\": \"ssd queue\", \"ph\": \"C\", \"ts\": {ts:.3}, \"pid\": 0, \"args\": {{");
        for (j, q) in b.ssd_queue_peak.iter().enumerate() {
            let _ = write!(out, "{}\"t{j}\": {q}", if j > 0 { ", " } else { "" });
        }
        out.push_str("}}");
        push_event(out, first);
        let _ = write!(out, "{{\"name\": \"retx pkts\", \"ph\": \"C\", \"ts\": {ts:.3}, \"pid\": 0, \"args\": {{");
        for (j, p) in b.retx_pkts.iter().enumerate() {
            let _ = write!(out, "{}\"nic{j}\": {p}", if j > 0 { ", " } else { "" });
        }
        out.push_str("}}");
        push_event(out, first);
        let _ = write!(out, "{{\"name\": \"corrupt pkts\", \"ph\": \"C\", \"ts\": {ts:.3}, \"pid\": 0, \"args\": {{");
        for (j, p) in b.corrupt_pkts.iter().enumerate() {
            let _ = write!(out, "{}\"nic{j}\": {p}", if j > 0 { ", " } else { "" });
        }
        out.push_str("}}");
    }
    if t.clamped > 0 {
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"telemetry_buckets\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
             \"args\": {{\"clamped_samples\": {}}}}}",
            t.clamped,
        );
    }
}

fn render_watchdog(out: &mut String, first: &mut bool, t: &Telemetry) {
    push_event(out, first);
    let _ = write!(
        out,
        "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {WATCHDOG_PID}, \"tid\": 0, \
         \"args\": {{\"name\": \"watchdog\"}}}}",
    );
    for s in &t.recovery_spans {
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"recovery\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
             \"pid\": {WATCHDOG_PID}, \"tid\": 0, \"args\": {{\"fault\": {}}}}}",
            us(s.from.as_nanos()),
            us(s.to.since(s.from).as_nanos()),
            s.fault,
        );
    }
    for w in &t.stalls {
        push_event(out, first);
        let _ = write!(
            out,
            "{{\"name\": \"stall\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
             \"pid\": {WATCHDOG_PID}, \"tid\": 1, \"args\": {{\"pending\": {}",
            us(w.from.as_nanos()),
            us(w.to.since(w.from).as_nanos()),
            w.pending,
        );
        if let Some(f) = w.recovery {
            let _ = write!(out, ", \"recovery_of_fault\": {f}");
        }
        out.push_str("}}");
    }
}

/// Writes [`chrome_trace`] to `path`, creating parent directories.
pub fn write_chrome_trace(path: &str, m: &RunMetrics) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, chrome_trace(m))
}

/// Structural JSON well-formedness check: strings terminate, escapes
/// are consumed, braces/brackets balance and match. Self-contained so
/// CI can validate the exported trace without `jq`/`python`.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut stack: Vec<u8> = Vec::new();
    let mut in_str = false;
    let mut esc = false;
    let mut saw_value = false;
    for (i, &c) in b.iter().enumerate() {
        if in_str {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_str = false;
            }
            continue;
        }
        match c {
            b'"' => {
                in_str = true;
                saw_value = true;
            }
            b'{' | b'[' => stack.push(c),
            b'}' => {
                if stack.pop() != Some(b'{') {
                    return Err(format!("unmatched '}}' at byte {i}"));
                }
            }
            b']' => {
                if stack.pop() != Some(b'[') {
                    return Err(format!("unmatched ']' at byte {i}"));
                }
            }
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed bracket(s)", stack.len()));
    }
    if !saw_value {
        return Err("empty document".into());
    }
    Ok(())
}

/// Counts duration spans named `name` in a document rendered by
/// [`chrome_trace`] (which always emits `"name"` directly before
/// `"ph": "X"`).
pub fn count_spans(json: &str, name: &str) -> usize {
    let needle = format!("\"name\": \"{name}\", \"ph\": \"X\"");
    json.matches(&needle).count()
}

/// Parses `--trace-out <path>` from a bench's argument list.
pub fn trace_out_arg(args: &[String]) -> Option<String> {
    args.windows(2)
        .find(|w| w[0] == "--trace-out")
        .map(|w| w[1].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_sim::SimTime;
    use rio_ssd::SsdProfile;
    use rio_stack::{
        Cluster, ClusterConfig, FabricConfig, FaultPlan, OrderingMode, TelemetryConfig,
        TraceConfig, Workload,
    };

    fn traced_run(ring: usize) -> RunMetrics {
        let mut cfg = ClusterConfig::single_ssd(
            OrderingMode::Rio { merge: true },
            SsdProfile::optane905p(),
            2,
        );
        cfg.trace = Some(TraceConfig { ring });
        cfg.telemetry = Some(TelemetryConfig::default());
        Cluster::new(cfg, Workload::random_4k(2, 120)).run()
    }

    #[test]
    fn export_is_valid_json_with_spans_for_every_traced_stage() {
        let m = traced_run(4096);
        let json = chrome_trace(&m);
        validate_json(&json).expect("well-formed");
        // A Rio run reaches every stage, so every segment label must
        // have at least one span.
        for label in LatencyBreakdown::SEGMENT_LABELS {
            assert!(
                count_spans(&json, label) >= 1,
                "no span for stage segment {label}"
            );
        }
        // Counters rendered from the telemetry series.
        assert!(json.contains("\"delivered KIOPS\""));
        assert!(json.contains("\"ssd queue\""));
        // Nothing evicted: no truncation metadata.
        assert!(!json.contains("stage_trace_ring"));
    }

    #[test]
    fn ring_eviction_is_reported_as_metadata() {
        let m = traced_run(4);
        assert!(m.breakdown.as_ref().unwrap().records_dropped > 0);
        let json = chrome_trace(&m);
        validate_json(&json).expect("well-formed");
        assert!(json.contains("\"stage_trace_ring\""));
        assert!(json.contains("records_dropped"));
    }

    #[test]
    fn crash_run_renders_recovery_and_stall_bands() {
        let mut cfg = ClusterConfig::single_ssd(
            OrderingMode::Rio { merge: true },
            SsdProfile::optane905p(),
            2,
        );
        cfg.net = FabricConfig::lossy(1e-3, 2);
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(400_000), vec![0]);
        cfg.telemetry = Some(TelemetryConfig::default());
        let m = Cluster::new(cfg, Workload::random_4k(2, 400)).run();
        let json = chrome_trace(&m);
        validate_json(&json).expect("well-formed");
        assert_eq!(count_spans(&json, "recovery"), 1);
        assert!(count_spans(&json, "stall") >= 1);
        assert!(json.contains("\"recovery_of_fault\": 0"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_json("{\"a\": [1, 2}").is_err());
        assert!(validate_json("{\"a\": \"unterminated").is_err());
        assert!(validate_json("   ").is_err());
        assert!(validate_json("{\"a\": [1, 2]}").is_ok());
    }

    #[test]
    fn trace_out_flag_parses() {
        let args: Vec<String> = ["bench", "--smoke", "--trace-out", "/tmp/t.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(trace_out_arg(&args).as_deref(), Some("/tmp/t.json"));
        assert_eq!(trace_out_arg(&args[..2].to_vec()), None);
    }
}
