//! The `sim_engine` sweep grid and its `BENCH_sim.json` rendering.
//!
//! The sweep runs a fixed Fig. 10-style grid (every ordering mode over
//! the paper's cluster shapes, plus lossy-fabric cells) and records
//! *host* wall-clock and simulator event throughput per cell. The
//! simulated workload is pinned — seeds, thread counts and group counts
//! never vary — so the JSON tracks only how fast the engine itself
//! executes, PR over PR. The regression gate ([`crate::gate`]) compares
//! a committed baseline against a re-run of the same grid.

use std::fmt::Write as _;
use std::time::Instant;

use rio_ssd::SsdProfile;
use rio_stack::{Cluster, ClusterConfig, FabricConfig, OrderingMode, Workload};

use crate::all_modes;

/// Schema version of `BENCH_sim.json`. Version 3 added the
/// deterministic per-cell `groups` and `group_p99_us` fields the
/// regression gate's tail-latency check reads; version 4 added the
/// per-cell `initiators` count and the `multi_initiator` cells it
/// keys.
pub const SCHEMA: u64 = 4;

/// One cell of the sweep grid: the pinned simulated experiment, before
/// it runs.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Figure family (`fig10a_flash`, `fig10b_optane`, `fig10d_4ssd`,
    /// `lossy_fabric`, `multi_initiator`) — selects the cluster shape.
    pub figure: &'static str,
    /// Ordering engine.
    pub mode: OrderingMode,
    /// Submitting threads / streams (total, across all initiators).
    pub threads: usize,
    /// Initiators sharing the targets (1 = the classic single-driver
    /// shape; `multi_initiator` cells split `threads` evenly across
    /// this many one-tenant initiators over two shared targets).
    pub initiators: usize,
    /// Fabric loss rate (0 = lossless).
    pub loss: f64,
    /// Fabric path count.
    pub paths: usize,
    /// Ordered groups per thread.
    pub groups: u64,
}

/// One measured cell: the spec's identity plus its measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Figure family of the originating [`CellSpec`].
    pub figure: String,
    /// Ordering-mode label ([`OrderingMode::label`]).
    pub mode: String,
    /// Submitting threads / streams (total, across all initiators).
    pub threads: usize,
    /// Initiators sharing the targets.
    pub initiators: usize,
    /// Fabric loss rate.
    pub loss: f64,
    /// Fabric path count.
    pub paths: usize,
    /// Host wall-clock seconds the run took (noisy; machine-dependent).
    pub wall_secs: f64,
    /// Simulation events dispatched (deterministic).
    pub events: u64,
    /// Virtual-time span of the run in seconds (deterministic).
    pub sim_span_secs: f64,
    /// 4 KB blocks completed (deterministic).
    pub blocks_done: u64,
    /// Ordered groups completed (deterministic).
    pub groups: u64,
    /// Virtual-time 99th-percentile group latency in microseconds
    /// (deterministic — the gate's tail-latency check).
    pub group_p99_us: f64,
}

impl Cell {
    /// The identity the gate matches baseline and current cells on.
    pub fn key(&self) -> (&str, &str, usize, usize, u64, usize) {
        // Loss rates are small round decimals; scale to micro-units so
        // the key is Eq/Hash-able without comparing floats.
        (
            &self.figure,
            &self.mode,
            self.threads,
            self.initiators,
            (self.loss * 1e6).round() as u64,
            self.paths,
        )
    }

    /// Human-readable cell identity for reports.
    pub fn key_label(&self) -> String {
        format!(
            "{}/{} t={} init={} loss={} paths={}",
            self.figure, self.mode, self.threads, self.initiators, self.loss, self.paths
        )
    }

    /// Host events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-12)
    }
}

/// Measures a fixed machine-speed calibration workload and returns its
/// wall-clock seconds, best of three passes.
///
/// The workload mirrors what the event-driven simulator is bound by —
/// dependent loads scattered over a working set far larger than L3 (a
/// pointer chase across a 64 MB permutation cycle) plus a short ALU
/// hash pass — without sharing any code with the engine, so engine
/// regressions do not move it but host slowness (CPU steal, frequency
/// scaling, memory-bandwidth contention from noisy neighbors) moves it
/// roughly as much as it moves the sweep cells. The gate divides
/// current events/s figures by the calibration ratio before comparing,
/// so a slower machine does not read as an engine regression.
pub fn calibrate() -> f64 {
    // A single-cycle permutation over 8M slots (64 MB): slot i points
    // at the next index to visit. Built by Sattolo's algorithm with a
    // fixed multiplicative generator so the chase is deterministic and
    // every load depends on the previous one.
    const SLOTS: usize = 1 << 23;
    let mut perm: Vec<u32> = (0..SLOTS as u32).collect();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for i in (1..SLOTS).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % i;
        perm.swap(i, j);
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        // Latency-bound leg: 2M dependent cache-missing loads.
        let mut at = 0u32;
        for _ in 0..(1 << 21) {
            at = perm[at as usize];
        }
        // ALU leg: FNV-1a over the permutation's first MB.
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &w in &perm[..(1 << 18)] {
            acc = (acc ^ w as u64).wrapping_mul(0x100_0000_01b3);
        }
        std::hint::black_box((at, acc));
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// The full (or smoke-scaled) sweep grid, in run order.
pub fn specs(smoke: bool) -> Vec<CellSpec> {
    // Fixed fig10-style grid: three cluster shapes x four modes x two
    // thread counts. Linux runs synchronously (one group per round
    // trip), so it gets proportionally fewer groups, exactly like the
    // figure benches do.
    let thread_axis: &[usize] = if smoke { &[2] } else { &[2, 8] };
    let scale: u64 = if smoke { 10 } else { 1 };
    let mut specs = Vec::new();
    for &(figure, ssds) in &[
        ("fig10a_flash", 1u64),
        ("fig10b_optane", 1),
        ("fig10d_4ssd", 4),
    ] {
        for mode in all_modes() {
            for &threads in thread_axis {
                let groups = match mode {
                    OrderingMode::LinuxNvmf => 600 / scale,
                    _ => (ssds * 120_000 / threads as u64).max(8_000) / scale,
                };
                specs.push(CellSpec {
                    figure,
                    mode: mode.clone(),
                    threads,
                    initiators: 1,
                    loss: 0.0,
                    paths: 1,
                    groups,
                });
            }
        }
    }
    // Lossy-fabric cells: the fig_lossy_fabric sweep shape, so the
    // trajectory also tracks how fast the engine runs retransmission
    // and multi-path events.
    let lossy_grid: &[(f64, usize)] = if smoke {
        &[(1e-3, 2)]
    } else {
        &[(1e-3, 1), (1e-3, 4), (1e-2, 4)]
    };
    for &(loss, paths) in lossy_grid {
        for mode in all_modes() {
            let groups = match mode {
                OrderingMode::LinuxNvmf => 600 / scale,
                _ => 30_000 / scale,
            };
            specs.push(CellSpec {
                figure: "lossy_fabric",
                mode: mode.clone(),
                threads: 4,
                initiators: 1,
                loss,
                paths,
                groups,
            });
        }
    }
    // Multi-initiator cells: M one-tenant initiators (2 streams each)
    // over two shared lossy targets, so the trajectory also tracks the
    // per-tenant DRR admission and the per-initiator ordering engines.
    let init_axis: &[usize] = if smoke { &[2] } else { &[2, 4] };
    for &initiators in init_axis {
        for mode in all_modes() {
            let groups = match mode {
                OrderingMode::LinuxNvmf => 600 / scale,
                _ => 6_000 / scale,
            };
            specs.push(CellSpec {
                figure: "multi_initiator",
                mode: mode.clone(),
                threads: initiators * 2,
                initiators,
                loss: 1e-3,
                paths: 2,
                groups,
            });
        }
    }
    specs
}

/// The CI-affordable subset of the *full-sized* grid the gate re-runs
/// in `--smoke` mode: one single-SSD figure across every mode, plus the
/// single-path lossy cells. Full-sized cells (unlike the `--smoke`
/// sweep's scaled-down ones) keep the deterministic fields comparable
/// to the committed full baseline.
pub fn smoke_subset(spec: &CellSpec) -> bool {
    (spec.figure == "fig10b_optane" && spec.threads == 2)
        || (spec.figure == "lossy_fabric" && spec.loss == 1e-3 && spec.paths == 1)
        || (spec.figure == "multi_initiator" && spec.initiators == 2)
}

/// Runs one cell and measures it: the deterministic simulation runs
/// three times and the *fastest* wall clock is kept. Host jitter
/// (scheduler stalls, CPU steal on shared machines) is one-sided — it
/// only ever makes a run slower — so the minimum over repeats is the
/// stable estimator of engine speed, on both the baseline-writing and
/// the gate-re-running side.
pub fn run_spec(spec: &CellSpec) -> Cell {
    let mut cell = run_spec_once(spec);
    for _ in 0..2 {
        let repeat = run_spec_once(spec);
        debug_assert_eq!(repeat.events, cell.events, "sim must be deterministic");
        if repeat.wall_secs < cell.wall_secs {
            cell = repeat;
        }
    }
    cell
}

fn run_spec_once(spec: &CellSpec) -> Cell {
    let mut cfg = match spec.figure {
        "fig10a_flash" => {
            ClusterConfig::single_ssd(spec.mode.clone(), SsdProfile::pm981(), spec.threads)
        }
        "fig10b_optane" => {
            ClusterConfig::single_ssd(spec.mode.clone(), SsdProfile::optane905p(), spec.threads)
        }
        "fig10d_4ssd" => ClusterConfig::four_ssd_two_targets(spec.mode.clone(), spec.threads),
        "lossy_fabric" => {
            let mut cfg =
                ClusterConfig::single_ssd(spec.mode.clone(), SsdProfile::optane905p(), spec.threads);
            cfg.max_inflight_per_stream = 64;
            cfg
        }
        "multi_initiator" => ClusterConfig::multi_initiator(
            spec.mode.clone(),
            spec.initiators,
            spec.threads / spec.initiators,
            2,
        ),
        other => panic!("unknown sweep figure {other}"),
    };
    if spec.loss > 0.0 {
        cfg.net = FabricConfig::lossy(spec.loss, spec.paths);
    }
    let wl = Workload::random_4k(spec.threads, spec.groups);
    let started = Instant::now();
    let m = Cluster::new(cfg, wl).run();
    let wall_secs = started.elapsed().as_secs_f64();
    Cell {
        figure: spec.figure.to_string(),
        mode: spec.mode.label().to_string(),
        threads: spec.threads,
        initiators: spec.initiators,
        loss: spec.loss,
        paths: spec.paths,
        wall_secs,
        events: m.events_processed,
        sim_span_secs: m.span.as_secs_f64(),
        blocks_done: m.blocks_done,
        groups: m.groups_done,
        group_p99_us: m.group_latency.quantile(0.99).as_micros_f64(),
    }
}

/// Runs the whole grid.
pub fn sweep(smoke: bool) -> Vec<Cell> {
    specs(smoke).iter().map(run_spec).collect()
}

fn json_escape_free(s: &str) -> &str {
    // Labels are static identifiers without quotes or backslashes.
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

/// Renders the cells as the `BENCH_sim.json` document (schema
/// [`SCHEMA`]). `calib_secs` is the [`calibrate`] measurement taken
/// alongside the sweep.
pub fn render_json(cells: &[Cell], smoke: bool, calib_secs: f64) -> String {
    let total_wall: f64 = cells.iter().map(|c| c.wall_secs).sum();
    let total_events: u64 = cells.iter().map(|c| c.events).sum();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {SCHEMA},");
    let _ = writeln!(out, "  \"harness\": \"sim_engine\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"calib_secs\": {calib_secs:.6},");
    let _ = writeln!(out, "  \"total_wall_secs\": {total_wall:.6},");
    let _ = writeln!(out, "  \"total_events\": {total_events},");
    let _ = writeln!(
        out,
        "  \"events_per_sec\": {:.0},",
        total_events as f64 / total_wall.max(1e-12)
    );
    out.push_str("  \"figures\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"figure\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"initiators\": {}, \"loss\": {}, \"paths\": {}, \
             \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"sim_span_secs\": {:.6}, \"blocks_done\": {}, \
             \"groups\": {}, \"group_p99_us\": {:.3}}}",
            json_escape_free(&c.figure),
            json_escape_free(&c.mode),
            c.threads,
            c.initiators,
            c.loss,
            c.paths,
            c.wall_secs,
            c.events,
            c.events_per_sec(),
            c.sim_span_secs,
            c.blocks_done,
            c.groups,
            c.group_p99_us,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_is_pinned() {
        // 3 figures x 4 modes x 2 threads + 3 lossy grids x 4 modes
        // + 2 initiator counts x 4 modes.
        assert_eq!(specs(false).len(), 44);
        // Smoke: 3 x 4 x 1 + 1 x 4 + 1 x 4.
        assert_eq!(specs(true).len(), 20);
        let subset: Vec<CellSpec> = specs(false).into_iter().filter(smoke_subset).collect();
        assert_eq!(
            subset.len(),
            12,
            "gate smoke subset: fig10b t2 + lossy 1-path + 2-initiator"
        );
        assert!(subset.iter().all(|s| s.groups >= 600), "full-sized cells only");
        assert!(
            subset.iter().any(|s| s.initiators > 1),
            "multi-initiator cells must be regression-gated in CI"
        );
    }

    #[test]
    fn render_is_valid_schema_4() {
        let cell = Cell {
            figure: "fig10b_optane".into(),
            mode: "RIO".into(),
            threads: 2,
            initiators: 1,
            loss: 0.0,
            paths: 1,
            wall_secs: 0.5,
            events: 1_000,
            sim_span_secs: 0.25,
            blocks_done: 400,
            groups: 100,
            group_p99_us: 123.456,
        };
        let json = render_json(&[cell], false, 0.05);
        assert!(json.contains("\"schema\": 4"));
        assert!(json.contains("\"calib_secs\": 0.050000"));
        assert!(json.contains("\"initiators\": 1"));
        assert!(json.contains("\"groups\": 100"));
        assert!(json.contains("\"group_p99_us\": 123.456"));
        assert!(json.contains("\"events_per_sec\": 2000"));
    }

    #[test]
    fn calibration_is_quick_and_positive() {
        let c = calibrate();
        assert!(c > 0.0 && c < 5.0, "calibration took {c}s");
    }
}
