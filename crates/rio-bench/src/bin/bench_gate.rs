//! Performance-regression gate over `BENCH_sim.json`,
//! `BENCH_recovery.json` and `BENCH_fig.json`.
//!
//! Loads the committed baselines and compares them against current
//! measurements, failing (exit 1) on a >10% events/s drop or a >15%
//! deterministic group-p99 rise in any engine cell, a >15% rise in
//! either virtual-time phase of any recovery-trajectory cell, or a
//! >10% drop in any figure-trajectory cell's deterministic KIOPS, with
//! a per-cell report. Malformed or wrong-schema files exit 2.
//!
//! Usage:
//!
//! ```sh
//! bench_gate                         # full re-run vs BENCH_sim.json
//! bench_gate --smoke                 # CI: re-run the full-sized subset
//! bench_gate --current run.json      # ingest an existing measurement
//! bench_gate --baseline other.json   # compare against another baseline
//! bench_gate --recovery other.json   # recovery trajectory baseline
//! bench_gate --no-recovery           # skip the recovery trajectory
//! bench_gate --fig other.json        # figure trajectory baseline
//! bench_gate --fig-current run.json  # ingest a figure measurement
//! bench_gate --no-fig                # skip the figure trajectory
//! bench_gate --write-fig out.json    # regenerate the figure baseline
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rio_bench::fig::{compare_fig, parse_fig, render_fig_json, trajectory as fig_trajectory};
use rio_bench::gate::{compare, parse, GateOutcome};
use rio_bench::recovery::{compare_recovery, parse_recovery, trajectory};
use rio_bench::sweep::{calibrate, run_spec, smoke_subset, specs, Cell};

fn default_baseline() -> String {
    // crates/rio-bench -> repo root.
    format!("{}/../../BENCH_sim.json", env!("CARGO_MANIFEST_DIR"))
}

fn default_recovery_baseline() -> String {
    format!("{}/../../BENCH_recovery.json", env!("CARGO_MANIFEST_DIR"))
}

fn default_fig_baseline() -> String {
    format!("{}/../../BENCH_fig.json", env!("CARGO_MANIFEST_DIR"))
}

/// Gates the deterministic §6.5 recovery-time trajectory. Returns the
/// exit code contribution: 0 pass, 1 regression, 2 malformed baseline.
fn recovery_gate(baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read recovery baseline {baseline_path}: {e}\n\
                 (generate it with `cargo bench -p rio-bench --bench t65_recovery_time \
                 -- --out BENCH_recovery.json`, or pass --no-recovery)"
            );
            return 2;
        }
    };
    let baseline = match parse_recovery(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: recovery baseline {baseline_path}: {e}");
            return 2;
        }
    };
    println!(
        "bench_gate: re-running the {}-cell recovery trajectory (virtual time, \
         no machine factor)",
        baseline.cells.len()
    );
    let current = trajectory();
    let out = compare_recovery(&baseline.cells, &current);
    report(&out);
    if out.failed() {
        println!("bench_gate: FAIL — recovery time regressed beyond tolerance");
        1
    } else {
        println!(
            "bench_gate: recovery PASS ({} cells compared)",
            out.verdicts.len()
        );
        0
    }
}

/// Gates the deterministic per-figure KIOPS trajectory. `current_path`
/// ingests a rendered figure file instead of re-running the sweeps.
/// Returns the exit code contribution: 0 pass, 1 regression, 2
/// malformed baseline or current file.
fn fig_gate(baseline_path: &str, current_path: Option<&str>) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read figure baseline {baseline_path}: {e}\n\
                 (generate it with `cargo run --release -p rio-bench --bin bench_gate -- \
                 --write-fig BENCH_fig.json`, or pass --no-fig)"
            );
            return 2;
        }
    };
    let baseline = match parse_fig(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: figure baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let current = match current_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bench_gate: cannot read figure current {path}: {e}");
                    return 2;
                }
            };
            match parse_fig(&text) {
                Ok(f) => f.cells,
                Err(e) => {
                    eprintln!("bench_gate: figure current {path}: {e}");
                    return 2;
                }
            }
        }
        None => {
            println!(
                "bench_gate: re-running the {}-cell figure trajectory (virtual time, \
                 no machine factor)",
                baseline.cells.len()
            );
            fig_trajectory()
        }
    };
    let out = compare_fig(&baseline.cells, &current);
    report(&out);
    if out.failed() {
        println!("bench_gate: FAIL — figure KIOPS regressed beyond tolerance");
        1
    } else {
        println!(
            "bench_gate: figures PASS ({} cells compared)",
            out.verdicts.len()
        );
        0
    }
}

fn load(path: &str, role: &str) -> Result<rio_bench::gate::BenchFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {role} {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{role} {path}: {e}"))
}

fn report(out: &GateOutcome) {
    for v in &out.verdicts {
        if v.failures.is_empty() {
            println!("PASS {}", v.key);
        } else {
            println!("FAIL {}", v.key);
            for f in &v.failures {
                println!("     {f}");
            }
        }
        for n in &v.notes {
            println!("     note: {n}");
        }
    }
    if !out.uncovered.is_empty() {
        println!(
            "({} baseline cells not covered by this run)",
            out.uncovered.len()
        );
    }
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let smoke = args.iter().any(|a| a == "--smoke");

    // Regeneration mode: run the figure trajectory, write the baseline,
    // and stop — nothing is gated.
    if let Some(path) = flag_val("--write-fig") {
        let cells = fig_trajectory();
        let doc = render_fig_json(&cells);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("bench_gate: cannot write figure baseline {path}: {e}");
            return 2;
        }
        println!("bench_gate: wrote {} figure cell(s) to {path}", cells.len());
        return 0;
    }

    let baseline_path = flag_val("--baseline").unwrap_or_else(default_baseline);
    let current_path = flag_val("--current");

    let baseline = match load(&baseline_path, "baseline") {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return 2;
        }
    };
    if baseline.smoke {
        eprintln!(
            "bench_gate: baseline {baseline_path} was written by a --smoke sweep; \
             commit a full `cargo bench -p rio-bench --bench sim_engine` run instead"
        );
        return 2;
    }

    // Current cells: ingest a file, or re-run the grid (the full grid,
    // or in --smoke mode its CI-affordable full-sized subset). Either
    // way the current machine's speed is measured (or read) so the
    // events/s comparison is normalized — a slow or busy CI host must
    // not read as an engine regression, and a fast host must not mask
    // one.
    let rerunning = current_path.is_none();
    let (mut current, require_all, mut machine_factor): (Vec<Cell>, bool, f64) = match current_path
    {
        Some(path) => match load(&path, "current run") {
            Ok(f) => {
                let require_all = !f.smoke && !smoke;
                (f.cells, require_all, f.calib_secs / baseline.calib_secs)
            }
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return 2;
            }
        },
        None => {
            let calib_secs = calibrate();
            let mut machine_factor = calib_secs / baseline.calib_secs;
            let grid: Vec<_> = specs(false)
                .into_iter()
                .filter(|s| !smoke || smoke_subset(s))
                .collect();
            println!(
                "bench_gate: re-running {} cell(s) ({}), machine factor {machine_factor:.3} \
                 (calibration {calib_secs:.4}s vs baseline {:.4}s)",
                grid.len(),
                if smoke { "smoke subset" } else { "full grid" },
                baseline.calib_secs
            );
            let cells: Vec<Cell> = grid
                .iter()
                .map(|s| {
                    // Wall clock is the one noisy measurement (shared CI
                    // machines stall runs; the simulation itself is
                    // deterministic), and the noise is one-sided — so a
                    // cell that looks slower than the baseline's gate
                    // threshold is re-measured a few times and the
                    // fastest run kept before calling it a regression.
                    // Each re-measure also re-runs the calibration loop:
                    // contention that develops mid-run slows the whole
                    // host, and the factor must track it or the slowdown
                    // reads as an engine regression. A real regression
                    // does not move the calibration loop, so the factor
                    // never excuses one.
                    let mut c = run_spec(s);
                    if let Some(base) = baseline.cells.iter().find(|b| b.key() == c.key()) {
                        for _ in 0..3 {
                            let floor = base.events_per_sec() / machine_factor.max(1e-9)
                                * (1.0 - rio_bench::gate::MAX_EPS_DROP);
                            if c.events_per_sec() >= floor {
                                break;
                            }
                            let now = calibrate() / baseline.calib_secs;
                            if now > machine_factor {
                                println!("  (machine factor {machine_factor:.3} -> {now:.3})");
                                machine_factor = now;
                            }
                            let retry = run_spec(s);
                            if retry.events_per_sec() > c.events_per_sec() {
                                c = retry;
                            }
                        }
                    }
                    println!(
                        "  measured {:>14} {:>14} t={:<2} {:>9.3}s wall {:>12} events",
                        c.figure, c.mode, c.threads, c.wall_secs, c.events
                    );
                    c
                })
                .collect();
            (cells, !smoke, machine_factor)
        }
    };

    let mut out = compare(&baseline.cells, &current, require_all, machine_factor);

    // Transient host stalls hit neighboring measurements together, so a
    // cell's in-place retries can all land in the same slow window. When
    // re-running live, cells whose only failure is events/s get a
    // decorrelated second look — re-measured after the rest of the
    // sweep, tens of seconds away from the window that slowed them.
    // Deterministic failures (p99, shape, missing cells) are never
    // retried.
    if rerunning {
        for _ in 0..2 {
            if !out.failed() {
                break;
            }
            let eps_only: Vec<String> = out
                .verdicts
                .iter()
                .filter(|v| {
                    !v.failures.is_empty()
                        && v.failures.iter().all(|f| f.starts_with("events/s"))
                })
                .map(|v| v.key.clone())
                .collect();
            if eps_only.is_empty() {
                break;
            }
            println!(
                "bench_gate: re-measuring {} cell(s) outside the slow window",
                eps_only.len()
            );
            machine_factor = machine_factor.max(calibrate() / baseline.calib_secs);
            for s in specs(false) {
                let probe = Cell {
                    figure: s.figure.to_string(),
                    mode: s.mode.label().to_string(),
                    threads: s.threads,
                    initiators: s.initiators,
                    loss: s.loss,
                    paths: s.paths,
                    wall_secs: 1.0,
                    events: 0,
                    sim_span_secs: 0.0,
                    blocks_done: 0,
                    groups: 0,
                    group_p99_us: 0.0,
                };
                if !eps_only.contains(&probe.key_label()) {
                    continue;
                }
                let retry = run_spec(&s);
                if let Some(c) = current.iter_mut().find(|c| c.key() == retry.key()) {
                    if retry.events_per_sec() > c.events_per_sec() {
                        *c = retry;
                    }
                }
            }
            out = compare(&baseline.cells, &current, require_all, machine_factor);
        }
    }
    report(&out);
    // The simulation is deterministic, so any event-count drift means
    // the engine's behavior changed — name every drifted cell with its
    // expected and measured counts so the change is attributable.
    let drifted: Vec<&rio_bench::gate::CellVerdict> = out
        .verdicts
        .iter()
        .filter(|v| v.notes.iter().any(|n| n.contains("event-count drift")))
        .collect();
    if !drifted.is_empty() {
        println!(
            "bench_gate: WARNING — deterministic event counts drifted in {} cell(s):",
            drifted.len()
        );
        for v in &drifted {
            for n in v.notes.iter().filter(|n| n.contains("event-count drift")) {
                println!("  {}: {n}", v.key);
            }
        }
    }
    let engine_code = if out.failed() {
        println!("bench_gate: FAIL — performance regressed beyond tolerance");
        1
    } else {
        println!("bench_gate: PASS ({} cells compared)", out.verdicts.len());
        0
    };

    // The recovery trajectory rides along on live re-runs. An ingested
    // `--current` file is an engine measurement only — there is nothing
    // recovery-shaped in it to gate — and --no-recovery skips
    // explicitly.
    let recovery_code = if args.iter().any(|a| a == "--no-recovery") || !rerunning {
        0
    } else {
        let path = flag_val("--recovery").unwrap_or_else(default_recovery_baseline);
        recovery_gate(&path)
    };

    // The figure trajectory likewise rides along on live re-runs, and
    // additionally gates an ingested --fig-current file on demand (the
    // golden tests doctor one without re-running any sweep).
    let fig_current = flag_val("--fig-current");
    let fig_code = if args.iter().any(|a| a == "--no-fig") || (fig_current.is_none() && !rerunning)
    {
        0
    } else {
        let path = flag_val("--fig").unwrap_or_else(default_fig_baseline);
        fig_gate(&path, fig_current.as_deref())
    };
    engine_code.max(recovery_code).max(fig_code)
}

fn main() {
    std::process::exit(real_main());
}
