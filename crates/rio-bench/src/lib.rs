//! Shared helpers for the figure-regeneration benches.
//!
//! Every paper figure/table has a bench target (`cargo bench -p
//! rio-bench --bench figN_...`) that runs the corresponding simulated
//! experiment and prints the series the paper reports, side by side
//! with the paper's qualitative expectation. EXPERIMENTS.md records the
//! measured numbers against the paper's.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rio_stack::{Cluster, ClusterConfig, OrderingMode, RunMetrics, Workload};

pub mod fig;
pub mod gate;
pub mod recovery;
pub mod sweep;
pub mod trace_export;

/// Standard mode list in paper legend order.
pub fn all_modes() -> Vec<OrderingMode> {
    vec![
        OrderingMode::LinuxNvmf,
        OrderingMode::Horae,
        OrderingMode::Rio { merge: true },
        OrderingMode::Orderless,
    ]
}

/// Runs one configuration and returns its metrics.
pub fn run(cfg: ClusterConfig, workload: Workload) -> RunMetrics {
    Cluster::new(cfg, workload).run()
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints one table row: a label plus formatted cells.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:>16}");
    for c in cells {
        print!(" {c:>14}");
    }
    println!();
}

/// Formats KIOPS.
pub fn kiops(v: f64) -> String {
    format!("{:.1}", v / 1e3)
}

/// Formats GB/s.
pub fn gbps(v: f64) -> String {
    format!("{:.2}", v / 1e9)
}

/// Formats a ratio.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats microseconds.
pub fn us(v: f64) -> String {
    format!("{v:.1}us")
}

/// Geometric mean of ratios (the paper's "on average" comparisons).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatters() {
        assert_eq!(kiops(150_000.0), "150.0");
        assert_eq!(gbps(2.5e9), "2.50");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(ratio(2.0), "2.00x");
        assert_eq!(us(12.34), "12.3us");
    }
}
