//! Golden-file tests for the `bench_gate` binary: a fixture baseline
//! against doctored current runs must fail naming the right cells,
//! improved runs must pass, and wrong-schema files must exit 2.

use std::path::PathBuf;
use std::process::{Command, Output};

use rio_bench::fig::{render_fig_json, FigCell};
use rio_bench::sweep::{render_json, Cell};

fn cell(figure: &str, mode: &str, wall_secs: f64, events: u64, p99: f64) -> Cell {
    Cell {
        figure: figure.into(),
        mode: mode.into(),
        threads: 2,
        initiators: 1,
        loss: 0.0,
        paths: 1,
        wall_secs,
        events,
        sim_span_secs: 0.2,
        blocks_done: 120_000,
        groups: 60_000,
        group_p99_us: p99,
    }
}

fn baseline_cells() -> Vec<Cell> {
    vec![
        cell("fig10b_optane", "RIO", 0.200, 532_029, 48.0),
        cell("fig10b_optane", "orderless", 0.150, 538_569, 30.0),
        cell("fig10b_optane", "Linux", 0.0013, 9_602, 21.5),
    ]
}

/// Renders a fixture with a fixed machine-calibration stamp, so both
/// sides claim the same machine speed and comparisons are raw.
fn render(cells: &[Cell], smoke: bool) -> String {
    render_json(cells, smoke, 0.05)
}

fn write(name: &str, text: &str) -> PathBuf {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::write(&path, text).expect("write fixture");
    path
}

fn gate(baseline: &PathBuf, current: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .arg("--baseline")
        .arg(baseline)
        .arg("--current")
        .arg(current)
        .output()
        .expect("run bench_gate")
}

#[test]
fn identical_run_passes() {
    let base = write("golden_base.json", &render(&baseline_cells(), false));
    let cur = write("golden_same.json", &render(&baseline_cells(), false));
    let out = gate(&base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert_eq!(stdout.matches("PASS fig10b_optane").count(), 3, "{stdout}");
}

#[test]
fn doctored_events_per_sec_regression_fails_naming_the_cell() {
    let base = write("golden_base_eps.json", &render(&baseline_cells(), false));
    // RIO cell 20% slower on the wall clock; others untouched.
    let mut cells = baseline_cells();
    cells[0].wall_secs *= 1.25;
    let cur = write("golden_eps_regressed.json", &render(&cells, false));
    let out = gate(&base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL fig10b_optane/RIO"), "{stdout}");
    assert!(stdout.contains("events/s regression"), "{stdout}");
    assert!(stdout.contains("PASS fig10b_optane/orderless"), "{stdout}");
    assert!(stdout.contains("PASS fig10b_optane/Linux"), "{stdout}");
}

#[test]
fn doctored_p99_regression_fails_naming_the_cell() {
    let base = write("golden_base_p99.json", &render(&baseline_cells(), false));
    // The orderless cell's tail grows 30%; throughput unchanged.
    let mut cells = baseline_cells();
    cells[1].group_p99_us *= 1.30;
    let cur = write("golden_p99_regressed.json", &render(&cells, false));
    let out = gate(&base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL fig10b_optane/orderless"), "{stdout}");
    assert!(stdout.contains("p99 regression"), "{stdout}");
    assert!(stdout.contains("PASS fig10b_optane/RIO"), "{stdout}");
}

#[test]
fn within_tolerance_and_improvements_pass() {
    let base = write("golden_base_tol.json", &render(&baseline_cells(), false));
    let mut cells = baseline_cells();
    cells[0].wall_secs /= 0.92; // 8% slower: inside the 10% tolerance.
    cells[1].group_p99_us *= 1.10; // 10% worse tail: inside 15%.
    cells[2].wall_secs *= 0.5; // 2x faster.
    cells[2].group_p99_us *= 0.5; // 2x tighter tail.
    let cur = write("golden_improved.json", &render(&cells, false));
    let out = gate(&base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
}

#[test]
fn uniformly_slower_machine_passes_when_calibration_agrees() {
    let base = write(
        "golden_base_calib.json",
        &render(&baseline_cells(), false),
    );
    // Every cell 25% slower on the wall clock — on an equal-speed
    // machine that is an engine regression...
    let mut cells = baseline_cells();
    for c in &mut cells {
        c.wall_secs *= 1.25;
    }
    let raw = write("golden_slow_raw.json", &render(&cells, false));
    let out = gate(&base, &raw);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "{stdout}");

    // ...but when the calibration loop also ran 25% slower, the gate
    // attributes the slowdown to the machine and passes.
    let normalized = write(
        "golden_slow_calibrated.json",
        &render_json(&cells, false, 0.05 * 1.25),
    );
    let out = gate(&base, &normalized);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(0), "{stdout}");

    // A genuine regression on the slow machine still fails: same
    // calibration stamp, but one cell is 60% slower rather than 25%.
    let mut worse = baseline_cells();
    for c in &mut worse {
        c.wall_secs *= 1.25;
    }
    worse[0].wall_secs = baseline_cells()[0].wall_secs * 1.60;
    let cur = write(
        "golden_slow_regressed.json",
        &render_json(&worse, false, 0.05 * 1.25),
    );
    let out = gate(&base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL fig10b_optane/RIO"), "{stdout}");
    assert!(stdout.contains("machine factor"), "{stdout}");
}

#[test]
fn missing_cell_fails_a_full_comparison() {
    let base = write("golden_base_miss.json", &render(&baseline_cells(), false));
    let cur = write(
        "golden_missing.json",
        &render(&baseline_cells()[..2], false),
    );
    let out = gate(&base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("missing from current run"), "{stdout}");
    assert!(stdout.contains("FAIL fig10b_optane/Linux"), "{stdout}");
}

#[test]
fn schema_mismatch_exits_2() {
    let old = render(&baseline_cells(), false).replace("\"schema\": 4", "\"schema\": 2");
    let base = write("golden_base_schema2.json", &old);
    let cur = write("golden_cur_ok.json", &render(&baseline_cells(), false));
    let out = gate(&base, &cur);
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("schema mismatch"), "{stderr}");

    // And a current-run schema mismatch is the same error path.
    let good_base = write("golden_base_ok.json", &render(&baseline_cells(), false));
    let bad_cur = write("golden_cur_schema2.json", &old);
    let out = gate(&good_base, &bad_cur);
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("schema mismatch"), "{stderr}");
}

#[test]
fn event_count_drift_warning_names_cells_with_expected_and_actual() {
    let base = write("golden_base_drift.json", &render(&baseline_cells(), false));
    // Event counts drift by ~1% (same wall clock): inside the events/s
    // tolerance, so the gate passes but must name the drifted cell with
    // both counts.
    let mut cells = baseline_cells();
    cells[0].events = 527_000;
    let cur = write("golden_drifted.json", &render(&cells, false));
    let out = gate(&base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(
        stdout.contains("WARNING — deterministic event counts drifted in 1 cell(s)"),
        "{stdout}"
    );
    assert!(
        stdout.contains(
            "fig10b_optane/RIO t=2 init=1 loss=0 paths=1: event-count drift: \
             expected 532029 events, measured 527000"
        ),
        "{stdout}"
    );
}

fn fig_cell(figure: &str, mode: &str, kiops: f64) -> FigCell {
    FigCell {
        figure: figure.into(),
        mode: mode.into(),
        threads: 2,
        initiators: 1,
        targets: 1,
        loss: 0.0,
        paths: 1,
        kiops,
        groups: 6_000,
    }
}

fn fig_baseline_cells() -> Vec<FigCell> {
    vec![
        fig_cell("fig10a", "RIO", 704.2),
        fig_cell("fig10a", "orderless", 761.9),
        fig_cell("fig13", "Linux", 9.1),
    ]
}

/// Runs the gate with a passing engine comparison plus the given
/// figure baseline/current pair, so the exit code reflects the figure
/// gate alone.
fn fig_gate(name: &str, fig_base: &PathBuf, fig_cur: &PathBuf) -> Output {
    let eng_base = write(
        &format!("golden_eng_base_{name}.json"),
        &render(&baseline_cells(), false),
    );
    let eng_cur = write(
        &format!("golden_eng_cur_{name}.json"),
        &render(&baseline_cells(), false),
    );
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .arg("--baseline")
        .arg(&eng_base)
        .arg("--current")
        .arg(&eng_cur)
        .arg("--fig")
        .arg(fig_base)
        .arg("--fig-current")
        .arg(fig_cur)
        .output()
        .expect("run bench_gate")
}

#[test]
fn fig_identical_trajectory_passes() {
    let base = write("golden_fig_base.json", &render_fig_json(&fig_baseline_cells()));
    let cur = write("golden_fig_same.json", &render_fig_json(&fig_baseline_cells()));
    let out = fig_gate("same", &base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("figures PASS (3 cells compared)"), "{stdout}");
}

#[test]
fn fig_doctored_kiops_regression_fails_naming_the_cell() {
    let base = write(
        "golden_fig_base_kiops.json",
        &render_fig_json(&fig_baseline_cells()),
    );
    // The RIO cell loses 20% of its KIOPS; others untouched.
    let mut cells = fig_baseline_cells();
    cells[0].kiops *= 0.80;
    let cur = write("golden_fig_regressed.json", &render_fig_json(&cells));
    let out = fig_gate("kiops", &base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("FAIL fig10a RIO"), "{stdout}");
    assert!(stdout.contains("kiops regression"), "{stdout}");
    assert!(stdout.contains("PASS fig10a orderless"), "{stdout}");
    assert!(stdout.contains("PASS fig13 Linux"), "{stdout}");
}

#[test]
fn fig_missing_cell_fails() {
    let base = write(
        "golden_fig_base_miss.json",
        &render_fig_json(&fig_baseline_cells()),
    );
    let cur = write(
        "golden_fig_missing.json",
        &render_fig_json(&fig_baseline_cells()[..2]),
    );
    let out = fig_gate("miss", &base, &cur);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("missing from current trajectory"), "{stdout}");
    assert!(stdout.contains("FAIL fig13 Linux"), "{stdout}");
}

#[test]
fn fig_schema_mismatch_exits_2() {
    let doc = render_fig_json(&fig_baseline_cells()).replace("\"schema\": 1", "\"schema\": 99");
    let base = write("golden_fig_base_schema99.json", &doc);
    let cur = write(
        "golden_fig_cur_ok.json",
        &render_fig_json(&fig_baseline_cells()),
    );
    let out = fig_gate("schema", &base, &cur);
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("schema mismatch"), "{stderr}");
}

#[test]
fn smoke_baseline_is_refused() {
    let base = write("golden_base_smoke.json", &render(&baseline_cells(), true));
    let cur = write("golden_cur_full.json", &render(&baseline_cells(), false));
    let out = gate(&base, &cur);
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(out.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("--smoke sweep"), "{stderr}");
}
