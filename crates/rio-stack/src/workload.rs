//! Block-level workload generators for the paper's microbenchmarks.
//!
//! Each thread owns a private area of the logical volume (the paper's
//! "private SSD area", §3.1) and emits a deterministic script of
//! *ordered groups*. A group is a set of write requests that may
//! reorder freely among themselves; consecutive groups are ordered.

use rio_order::attr::BlockRange;
use rio_sim::SimRng;

/// One write request inside a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberSpec {
    /// Logical range on the volume.
    pub range: BlockRange,
}

/// Journaling stage of a group within an fsync operation (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncStage {
    /// User data blocks.
    Data,
    /// Journal description + journaled metadata.
    Meta,
    /// Journal commit record.
    Commit,
}

/// One ordered group emitted by a thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    /// The member writes (issued in order; final one is the boundary).
    pub members: Vec<MemberSpec>,
    /// Whether the final member carries a FLUSH (fsync-style commit).
    pub flush: bool,
    /// The thread blocks after this group until all its in-flight
    /// groups complete (the `rio_wait` / fsync return point).
    pub sync_after: bool,
    /// Journaling stage, when this group belongs to an fsync op.
    pub stage: Option<FsyncStage>,
    /// Application CPU burned before submitting this group (RocksDB's
    /// in-memory indexing, §6.4).
    pub app_cpu_ns: u64,
}

impl GroupSpec {
    /// A plain single-write group.
    pub fn plain(range: BlockRange) -> Self {
        GroupSpec {
            members: vec![MemberSpec { range }],
            flush: false,
            sync_after: false,
            stage: None,
            app_cpu_ns: 0,
        }
    }
}

impl GroupSpec {
    /// Total blocks across members.
    pub fn blocks(&self) -> u32 {
        self.members.iter().map(|m| m.range.blocks).sum()
    }
}

/// Access pattern of the per-thread group script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Each group is one random write of `blocks` (Fig. 10/11 random).
    RandomWrite {
        /// Blocks per write.
        blocks: u32,
    },
    /// Each group is one sequential write of `blocks` (Fig. 3/11/12).
    SeqWrite {
        /// Blocks per write.
        blocks: u32,
    },
    /// The §3.1 journal pattern: a 2-block group (description +
    /// metadata) followed by a 1-block group (commit record),
    /// sequentially laid out.
    JournalTriplet,
    /// File-system fsync operations (Figs. 13–15): each op is three
    /// ordered groups — D (user data), JM (journal metadata), JC
    /// (commit, FLUSH) — followed by a blocking wait.
    FsyncJournal {
        /// Data blocks per op, chosen uniformly in this range (0 allows
        /// metadata-only ops like `creat`+fsync).
        data_blocks: (u32, u32),
        /// Journaled metadata blocks per op.
        meta_blocks: u32,
        /// Per-mille of ops that are metadata-only (Varmail's
        /// create/unlink mix).
        meta_only_permille: u32,
        /// Application CPU per op in nanoseconds (RocksDB-style).
        app_cpu_ns: u64,
    },
}

/// A block-level workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Concurrent submitter threads (each with its own stream).
    pub threads: usize,
    /// Ordered groups each thread issues.
    pub groups_per_thread: u64,
    /// Access pattern.
    pub pattern: Pattern,
    /// Groups accumulated per plug/ORDER-queue flush (the batch size
    /// axis of Figs. 3 and 12; 1 disables batching effects).
    pub batch: usize,
}

impl Workload {
    /// A Fig. 10-style workload: 4 KB random ordered writes.
    pub fn random_4k(threads: usize, groups_per_thread: u64) -> Self {
        Workload {
            threads,
            groups_per_thread,
            pattern: Pattern::RandomWrite { blocks: 1 },
            batch: 1,
        }
    }

    /// The §3.1 motivation workload (journal triplets).
    pub fn journal_triplet(threads: usize, triplets_per_thread: u64) -> Self {
        Workload {
            threads,
            groups_per_thread: triplets_per_thread * 2,
            pattern: Pattern::JournalTriplet,
            batch: 2,
        }
    }

    /// Sequential writes with a batch size (Figs. 3 and 12).
    pub fn seq_batched(threads: usize, groups_per_thread: u64, batch: usize, blocks: u32) -> Self {
        Workload {
            threads,
            groups_per_thread,
            pattern: Pattern::SeqWrite { blocks },
            batch,
        }
    }

    /// A Fig. 13-style file-system workload: 4 KB append + fsync.
    pub fn fsync_append(threads: usize, ops_per_thread: u64) -> Self {
        Workload {
            threads,
            groups_per_thread: ops_per_thread,
            pattern: Pattern::FsyncJournal {
                data_blocks: (1, 1),
                meta_blocks: 2,
                meta_only_permille: 0,
                app_cpu_ns: 0,
            },
            batch: 3,
        }
    }

    /// Generates the ordered groups of script unit `idx` for a thread
    /// owning `[area_start, area_start + area_blocks)`.
    ///
    /// Plain patterns yield one group per unit; [`Pattern::FsyncJournal`]
    /// yields the D/JM/JC stages of one fsync operation. Sequential
    /// patterns wrap within the private area; random patterns draw from
    /// `rng`.
    pub fn op(
        &self,
        idx: u64,
        area_start: u64,
        area_blocks: u64,
        rng: &mut SimRng,
    ) -> Vec<GroupSpec> {
        match self.pattern {
            Pattern::RandomWrite { blocks } => {
                let slots = (area_blocks / blocks as u64).max(1);
                let slot = rng.below(slots);
                vec![GroupSpec::plain(BlockRange::new(
                    area_start + slot * blocks as u64,
                    blocks,
                ))]
            }
            Pattern::SeqWrite { blocks } => {
                let slots = (area_blocks / blocks as u64).max(1);
                let slot = idx % slots;
                vec![GroupSpec::plain(BlockRange::new(
                    area_start + slot * blocks as u64,
                    blocks,
                ))]
            }
            Pattern::JournalTriplet => {
                // Triplet t occupies 3 consecutive blocks; units 2t
                // (2 blocks) and 2t+1 (1 block).
                let triplet = idx / 2;
                let slots = (area_blocks / 3).max(1);
                let base = area_start + (triplet % slots) * 3;
                if idx % 2 == 0 {
                    vec![GroupSpec::plain(BlockRange::new(base, 2))]
                } else {
                    vec![GroupSpec::plain(BlockRange::new(base + 2, 1))]
                }
            }
            Pattern::FsyncJournal {
                data_blocks,
                meta_blocks,
                meta_only_permille,
                app_cpu_ns,
            } => {
                // Private area: first half file data, second half the
                // per-core journal (iJournaling, §4.7).
                let data_cap = (area_blocks / 2).max(1);
                let journal_start = area_start + data_cap;
                let journal_cap = (area_blocks - data_cap).max(1);
                let meta_only =
                    meta_only_permille > 0 && rng.below(1000) < meta_only_permille as u64;
                let d_blocks = if meta_only {
                    0
                } else {
                    rng.between(data_blocks.0 as u64, data_blocks.1 as u64) as u32
                };
                let tx_blocks = (meta_blocks + 1) as u64;
                let journal_slots = (journal_cap / tx_blocks).max(1);
                let jm_lba = journal_start + (idx % journal_slots) * tx_blocks;
                let mut out = Vec::with_capacity(3);
                if d_blocks > 0 {
                    let data_slots = (data_cap / d_blocks as u64).max(1);
                    let d_lba = area_start + (idx % data_slots) * d_blocks as u64;
                    out.push(GroupSpec {
                        members: vec![MemberSpec {
                            range: BlockRange::new(d_lba, d_blocks),
                        }],
                        flush: false,
                        sync_after: false,
                        stage: Some(FsyncStage::Data),
                        app_cpu_ns,
                    });
                }
                out.push(GroupSpec {
                    members: vec![MemberSpec {
                        range: BlockRange::new(jm_lba, meta_blocks),
                    }],
                    flush: false,
                    sync_after: false,
                    stage: Some(FsyncStage::Meta),
                    app_cpu_ns: if d_blocks == 0 { app_cpu_ns } else { 0 },
                });
                out.push(GroupSpec {
                    members: vec![MemberSpec {
                        range: BlockRange::new(jm_lba + meta_blocks as u64, 1),
                    }],
                    flush: true,
                    sync_after: true,
                    stage: Some(FsyncStage::Commit),
                    app_cpu_ns: 0,
                });
                out
            }
        }
    }

    /// Total script units across all threads.
    pub fn total_groups(&self) -> u64 {
        self.threads as u64 * self.groups_per_thread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_stays_in_private_area() {
        let w = Workload::random_4k(2, 100);
        let mut rng = SimRng::seed_from_u64(1);
        for idx in 0..100 {
            let gs = w.op(idx, 1000, 500, &mut rng);
            assert_eq!(gs.len(), 1);
            assert_eq!(gs[0].members.len(), 1);
            let r = gs[0].members[0].range;
            assert!(
                r.lba >= 1000 && r.end() <= 1500,
                "escaped private area: {r:?}"
            );
        }
    }

    #[test]
    fn seq_wraps_in_area() {
        let w = Workload::seq_batched(1, 10, 4, 2);
        let mut rng = SimRng::seed_from_u64(1);
        let g0 = w.op(0, 0, 8, &mut rng);
        let g1 = w.op(1, 0, 8, &mut rng);
        assert_eq!(g0[0].members[0].range, BlockRange::new(0, 2));
        assert_eq!(g1[0].members[0].range, BlockRange::new(2, 2));
        // 4 slots of 2 blocks wrap at idx 4.
        let g4 = w.op(4, 0, 8, &mut rng);
        assert_eq!(g4[0].members[0].range, BlockRange::new(0, 2));
    }

    #[test]
    fn journal_triplet_layout() {
        let w = Workload::journal_triplet(1, 5);
        assert_eq!(w.groups_per_thread, 10);
        let mut rng = SimRng::seed_from_u64(1);
        let body = w.op(0, 100, 300, &mut rng);
        let commit = w.op(1, 100, 300, &mut rng);
        assert_eq!(body[0].members[0].range, BlockRange::new(100, 2));
        assert_eq!(commit[0].members[0].range, BlockRange::new(102, 1));
        // The pair is LBA-consecutive: the merge candidate of §4.1.
        assert!(body[0].members[0].range.abuts(&commit[0].members[0].range));
        // Next triplet moves on.
        let body2 = w.op(2, 100, 300, &mut rng);
        assert_eq!(body2[0].members[0].range, BlockRange::new(103, 2));
    }

    #[test]
    fn fsync_journal_op_shape() {
        let w = Workload::fsync_append(1, 10);
        let mut rng = SimRng::seed_from_u64(1);
        let groups = w.op(0, 0, 1000, &mut rng);
        assert_eq!(groups.len(), 3, "D, JM, JC");
        assert_eq!(groups[0].stage, Some(FsyncStage::Data));
        assert_eq!(groups[1].stage, Some(FsyncStage::Meta));
        assert_eq!(groups[2].stage, Some(FsyncStage::Commit));
        assert!(groups[2].flush, "commit carries the FLUSH");
        assert!(groups[2].sync_after, "fsync blocks after the commit");
        assert_eq!(groups[1].members[0].range.blocks, 2);
        // JM and JC are consecutive in the journal area.
        assert!(groups[1].members[0]
            .range
            .abuts(&groups[2].members[0].range));
    }

    #[test]
    fn fsync_meta_only_ops_skip_data() {
        let w = Workload {
            threads: 1,
            groups_per_thread: 10,
            pattern: Pattern::FsyncJournal {
                data_blocks: (1, 4),
                meta_blocks: 2,
                meta_only_permille: 1000,
                app_cpu_ns: 0,
            },
            batch: 3,
        };
        let mut rng = SimRng::seed_from_u64(1);
        let groups = w.op(0, 0, 1000, &mut rng);
        assert_eq!(groups.len(), 2, "metadata-only op has no D stage");
        assert_eq!(groups[0].stage, Some(FsyncStage::Meta));
    }

    #[test]
    fn totals() {
        let w = Workload::random_4k(12, 1000);
        assert_eq!(w.total_groups(), 12_000);
    }
}
