//! Per-server CPU model: cores as FIFO work servers with a busy ledger.
//!
//! Every software step in the stack (bio submission, RDMA post, RECV
//! handling, interrupt processing, MMIO waits) runs on a specific core
//! and occupies it for the step's cost. Queueing on a busy core is what
//! turns CPU *cost* into CPU *bottleneck* — the effect behind "Horae
//! needs more than 8 CPU cores to fully drive existing SSDs" (§3.1).

use rio_sim::{FifoResource, SimDuration, SimTime};

/// A set of cores on one server.
#[derive(Debug)]
pub struct CoreSet {
    cores: Vec<FifoResource>,
}

impl CoreSet {
    /// Creates `n` idle cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a server needs at least one core");
        CoreSet {
            cores: (0..n).map(|_| FifoResource::new()).collect(),
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Runs `cost_ns` of work on `core` (wrapped modulo the core
    /// count), starting no earlier than `now`; returns the finish time.
    pub fn run_on(&mut self, core: usize, now: SimTime, cost_ns: u64) -> SimTime {
        let idx = core % self.cores.len();
        self.cores[idx].admit(now, SimDuration::from_nanos(cost_ns))
    }

    /// Instant at which `core` becomes free.
    pub fn free_at(&self, core: usize) -> SimTime {
        self.cores[core % self.cores.len()].free_at()
    }

    /// Total busy time across all cores.
    pub fn busy_total(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for c in &self.cores {
            total += c.busy_time();
        }
        total
    }

    /// Utilisation over `elapsed`: busy core-seconds ÷ available
    /// core-seconds, in `[0, 1]`.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.as_nanos() == 0 {
            return 0.0;
        }
        let avail = elapsed.as_secs_f64() * self.cores.len() as f64;
        (self.busy_total().as_secs_f64() / avail).min(1.0)
    }

    /// Discards queued work (crash).
    pub fn reset(&mut self, now: SimTime) {
        for c in &mut self.cores {
            c.reset(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_on_same_core_serializes() {
        let mut cs = CoreSet::new(2);
        let a = cs.run_on(0, SimTime::ZERO, 1000);
        let b = cs.run_on(0, SimTime::ZERO, 1000);
        let c = cs.run_on(1, SimTime::ZERO, 1000);
        assert_eq!(a.as_nanos(), 1000);
        assert_eq!(b.as_nanos(), 2000, "same core queues");
        assert_eq!(c.as_nanos(), 1000, "other core parallel");
    }

    #[test]
    fn core_index_wraps() {
        let mut cs = CoreSet::new(2);
        let a = cs.run_on(0, SimTime::ZERO, 500);
        let b = cs.run_on(2, SimTime::ZERO, 500);
        assert_eq!(a.as_nanos(), 500);
        assert_eq!(b.as_nanos(), 1000, "core 2 wraps onto core 0");
    }

    #[test]
    fn utilization_accounting() {
        let mut cs = CoreSet::new(4);
        cs.run_on(0, SimTime::ZERO, 1_000_000);
        cs.run_on(1, SimTime::ZERO, 1_000_000);
        // 2 of 4 cores busy for the first millisecond.
        let u = cs.utilization(SimDuration::from_millis(1));
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn utilization_zero_elapsed() {
        let cs = CoreSet::new(1);
        assert_eq!(cs.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CoreSet::new(0);
    }
}
