//! Cluster configuration: topology, ordering mode, CPU cost model,
//! and the fault-injection plan.

use crate::telemetry::TelemetryConfig;
use crate::trace::TraceConfig;
use rio_net::FabricProfile;
use rio_sim::SimTime;
use rio_ssd::SsdProfile;

/// Which ordering engine drives the stack (§6.2's compared systems).
#[derive(Debug, Clone, PartialEq)]
pub enum OrderingMode {
    /// No ordering guarantees (the paper's "orderless" upper bound).
    Orderless,
    /// Stock Linux NVMe-oF ordering: wait for completion + FLUSH
    /// between consecutive ordered requests.
    LinuxNvmf,
    /// Horae over NVMe-oF: synchronous control path before an
    /// asynchronous data path.
    Horae,
    /// Rio's asynchronous I/O pipeline.
    Rio {
        /// Whether the ORDER-queue merges requests (Fig. 12's
        /// "RIO w/o merge" ablation disables it).
        merge: bool,
    },
}

impl OrderingMode {
    /// Display name used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match self {
            OrderingMode::Orderless => "orderless",
            OrderingMode::LinuxNvmf => "Linux",
            OrderingMode::Horae => "HORAE",
            OrderingMode::Rio { merge: true } => "RIO",
            OrderingMode::Rio { merge: false } => "RIO w/o merge",
        }
    }
}

/// Fabric transport configuration: loss, segmentation and paths.
///
/// These knobs parameterize the packet-level model in `rio-net`: the
/// cluster applies them on top of the base [`FabricProfile`] timing
/// profile when it builds the fabric (see [`FabricConfig::apply`]).
/// The default is the lossless single-path fabric earlier experiments
/// ran on.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Per-packet drop probability (clamped to `[0, 0.995]` by the
    /// fabric so go-back-N recovery terminates).
    pub loss_rate: f64,
    /// Per-packet in-flight corruption probability (clamped like
    /// `loss_rate`). A corrupted packet is delivered, caught by the
    /// receiver's payload digest check, and NAKed into the same
    /// go-back-N recovery a drop takes. Non-zero rates force
    /// integrity checking on (see [`ClusterConfig::integrity`]).
    pub corrupt_rate: f64,
    /// Maximum transmission unit in bytes; messages are segmented into
    /// packets of at most this size.
    pub mtu_bytes: u32,
    /// Go-back-N recovery latency in microseconds (NAK-triggered
    /// recovery on a busy RC queue pair; a few fabric round trips).
    pub rto_us: f64,
    /// Number of asymmetric paths per NIC. The base bandwidth is split
    /// evenly; path `i` runs at `base_latency * (1 + spread * i)`.
    pub paths: usize,
    /// Per-path latency spread factor (see [`FabricConfig::paths`]).
    pub path_latency_spread: f64,
    /// Messages per queue pair between path migrations; `0` pins each
    /// QP to its initial path. When non-zero, a retransmission timeout
    /// also fails the QP over to the next path.
    pub migrate_every: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            loss_rate: 0.0,
            corrupt_rate: 0.0,
            mtu_bytes: 4096,
            rto_us: 25.0,
            paths: 1,
            path_latency_spread: 0.15,
            migrate_every: 0,
        }
    }
}

impl FabricConfig {
    /// A lossy multi-path fabric — the `fig_lossy_fabric` sweep shape.
    pub fn lossy(loss_rate: f64, paths: usize) -> Self {
        FabricConfig {
            loss_rate,
            paths: paths.max(1),
            ..FabricConfig::default()
        }
    }

    /// Builds the `rio-net` profile: `base` timing plus this config's
    /// segmentation, loss and path layout.
    pub fn apply(&self, base: FabricProfile) -> FabricProfile {
        let mut p = base
            .with_mtu(self.mtu_bytes)
            .with_loss(self.loss_rate, self.rto_us)
            .with_corruption(self.corrupt_rate)
            .with_migration(self.migrate_every);
        if self.paths > 1 {
            p = p.with_paths(self.paths, self.path_latency_spread);
        }
        p
    }
}

/// What one injected fault physically destroys.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Power failure on the listed targets: volatile SSD caches,
    /// device queues and NIC windows die; media and PMR survive. An
    /// empty list crashes every target (the classic §6.5 experiment).
    PowerFail {
        /// Target indices to crash (empty = all).
        targets: Vec<usize>,
    },
    /// A link flap on one target's NIC. No target loses power — SSD
    /// caches and accepted commands survive and complete — but the
    /// initiator's in-flight ordering state is severed, and the §4.4
    /// recovery protocol is initiator-driven and global: every
    /// connection re-establishes and every stream re-cuts at its valid
    /// prefix. `target` records which link flapped (reported in
    /// [`crate::metrics::RecoveryMetrics::crashed_targets`]); the
    /// recovery cost is the same whichever NIC it was, and far below a
    /// power failure's, because every driver answers the scan from
    /// DRAM instead of an MMIO PMR sweep.
    NicReset {
        /// The target whose NIC resets.
        target: usize,
    },
    /// The fabric starts corrupting packets in flight at `rate` from
    /// this instant on. Nothing crashes and no recovery runs — the
    /// receiver-side digest checks catch every corrupted packet and
    /// NAK it into go-back-N retransmission; this fault only turns the
    /// corruption source on (or off, with `rate` 0) mid-run.
    PacketCorrupt {
        /// The per-packet corruption probability from now on.
        rate: f64,
    },
    /// Power failure that additionally tears the record a crashed
    /// SSD was mid-write: the first block of the oldest in-flight
    /// write lands half-old half-new under its intended checksum, so
    /// the post-recovery scrub must find and repair it. Empty list =
    /// all targets, like [`FaultKind::PowerFail`].
    TornWrite {
        /// Target indices to crash (empty = all).
        targets: Vec<usize>,
    },
    /// At-rest bit rot on the listed targets: up to `flips` sealed
    /// media records get one bit flipped each, seals kept. No power is
    /// lost — the fault runs the recovery protocol only to drive the
    /// integrity scrub that detects and repairs (or reports) the rot.
    BitRot {
        /// Target indices hit (empty = all).
        targets: Vec<usize>,
        /// Maximum records to corrupt per SSD.
        flips: u32,
    },
}

impl FaultKind {
    /// The targets this fault hits, resolved against `n_targets`.
    pub fn hit_targets(&self, n_targets: usize) -> Vec<usize> {
        match self {
            FaultKind::PowerFail { targets } | FaultKind::TornWrite { targets }
                if targets.is_empty() =>
            {
                (0..n_targets).collect()
            }
            FaultKind::PowerFail { targets } | FaultKind::TornWrite { targets } => targets.clone(),
            FaultKind::NicReset { target } => vec![*target],
            FaultKind::PacketCorrupt { .. } => Vec::new(),
            FaultKind::BitRot { targets, .. } if targets.is_empty() => (0..n_targets).collect(),
            FaultKind::BitRot { targets, .. } => targets.clone(),
        }
    }

    /// Whether SSD state dies with this fault.
    pub fn is_power_fail(&self) -> bool {
        matches!(
            self,
            FaultKind::PowerFail { .. } | FaultKind::TornWrite { .. }
        )
    }

    /// Whether this fault needs per-block integrity machinery (payload
    /// digests, media seals, post-recovery scrub) to be observable.
    pub fn needs_integrity(&self) -> bool {
        matches!(
            self,
            FaultKind::PacketCorrupt { .. } | FaultKind::TornWrite { .. } | FaultKind::BitRot { .. }
        )
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Virtual time the fault fires — even if the workload has already
    /// completed by then (an idle cluster crashes too, and the epoch
    /// that ends at the fault includes the idle stretch).
    pub at: SimTime,
    /// What the fault destroys.
    pub kind: FaultKind,
    /// Whether the run resumes after recovery. `true` re-queues every
    /// rolled-back group and drives the workload to completion (a
    /// survivable run); `false` halts after the recovery plan and
    /// discards are applied (the one-shot §6.5 report shape).
    pub resume: bool,
}

/// The fault-injection plan of a run: faults fire in order at their
/// virtual times, each followed by a full in-loop recovery (PMR scan,
/// global merge, discard) before the workload resumes.
///
/// Only Rio modes can carry a non-empty plan — recovery needs the
/// persisted ordering attributes. A fault scheduled inside an earlier
/// fault's recovery window is deferred to that recovery's resume
/// instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The faults, in strictly increasing time order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The classic §6.5 shape: power-fail every target at `at` and stop
    /// after recovery.
    pub fn crash_all_at(at: SimTime) -> Self {
        FaultPlan {
            events: vec![FaultEvent {
                at,
                kind: FaultKind::PowerFail {
                    targets: Vec::new(),
                },
                resume: false,
            }],
        }
    }

    /// A survivable mid-flight crash of a target subset at `at`.
    pub fn survivable_crash(at: SimTime, targets: Vec<usize>) -> Self {
        FaultPlan {
            events: vec![FaultEvent {
                at,
                kind: FaultKind::PowerFail { targets },
                resume: true,
            }],
        }
    }
}

/// One initiator server in a multi-initiator cluster.
///
/// Each initiator owns its own NIC, [`rio_order`] sequencer, in-order
/// completer and a contiguous slice of the global stream-id space; a
/// global stream id is `stream_base + local stream`, so target-side
/// structures keyed by stream (submission gate, PMR log, ORDER slots)
/// are implicitly keyed by `(initiator, stream)` without collisions.
#[derive(Debug, Clone, PartialEq)]
pub struct InitiatorConfig {
    /// Cores available to this initiator's driver.
    pub cores: usize,
    /// Ordered streams this initiator opens; each stream is driven by
    /// one workload thread (the global workload thread count must equal
    /// the sum of all initiators' `streams`).
    pub streams: usize,
    /// Tenant this initiator belongs to. Targets schedule SSD
    /// admissions fairly *across tenants* (deficit round-robin) when a
    /// run has more than one distinct tenant.
    pub tenant: u32,
    /// QoS weight of this initiator's tenant: under contention a
    /// tenant's share of target service is proportional to the sum of
    /// its initiators' weights. Must be at least 1.
    pub weight: u32,
}

impl InitiatorConfig {
    /// An initiator with `streams` streams, tenant `tenant`, weight 1
    /// and the canned 36-core driver.
    pub fn new(streams: usize, tenant: u32) -> Self {
        InitiatorConfig {
            cores: 36,
            streams,
            tenant,
            weight: 1,
        }
    }

    /// Sets the QoS weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// One target server.
#[derive(Debug, Clone)]
pub struct TargetConfig {
    /// SSDs installed on this target.
    pub ssds: Vec<SsdProfile>,
    /// Cores available to the target driver.
    pub cores: usize,
}

/// CPU cost model, nanoseconds per software step.
///
/// Values are in the range kernel-bypass studies report for NVMe-oF
/// software overheads; the ratios between paths matter more than the
/// absolute numbers, and EXPERIMENTS.md documents the calibration.
#[derive(Debug, Clone)]
pub struct CpuCosts {
    /// Block-layer submission work per bio (bio alloc, checks, queue).
    pub submit_bio: u64,
    /// ORDER-queue bookkeeping per bio (attribute stamping, push).
    pub order_queue: u64,
    /// Extra work to merge one additional bio into a request.
    pub merge_per_bio: u64,
    /// Building one NVMe-oF command + posting the RDMA SEND.
    pub cmd_post: u64,
    /// Target-side two-sided RECV handling per command.
    pub target_recv: u64,
    /// Submitting one command to the local SSD (doorbell path).
    pub ssd_submit: u64,
    /// Persistent MMIO append of a 32 B ordering attribute (§6.1).
    pub pmr_append: u64,
    /// Single-byte persist toggle (posted MMIO).
    pub pmr_toggle: u64,
    /// Interrupt + completion handling per command (either side).
    pub irq: u64,
    /// Blocking wait / wakeup (context switch pair) on the initiator.
    pub ctx_switch: u64,
    /// Horae: initiator-side control-path post.
    pub horae_ctrl_post: u64,
    /// Horae: target-side control handling (RECV + ordering-layer
    /// bookkeeping + PMR MMIO).
    pub horae_ctrl_handle: u64,
    /// Horae: serialization gap of the control path beyond raw wire and
    /// CPU costs — kernel wakeups, doorbells and ordering-layer locking
    /// on the synchronous path. Calibrated so Horae needs many cores to
    /// drive an SSD, as in §3.1 (see EXPERIMENTS.md).
    pub horae_ctrl_gap: u64,
    /// CRC-32C digest work per 4 KB payload block (hardware CRC32
    /// instructions stream ~2-3 bytes/cycle; 4 KB lands around 1.5 µs
    /// on one core). Charged at submission stamping and target-side
    /// verification, only when integrity checking is on.
    pub crc_per_block: u64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            submit_bio: 900,
            order_queue: 150,
            merge_per_bio: 150,
            cmd_post: 650,
            target_recv: 700,
            ssd_submit: 400,
            pmr_append: 600,
            pmr_toggle: 250,
            irq: 850,
            ctx_switch: 2_200,
            horae_ctrl_post: 650,
            horae_ctrl_handle: 2_000,
            horae_ctrl_gap: 14_000,
            crc_per_block: 1_500,
        }
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Seed for all simulator randomness.
    pub seed: u64,
    /// Ordering engine.
    pub mode: OrderingMode,
    /// Cores on the initiator server.
    pub initiator_cores: usize,
    /// Target servers.
    pub targets: Vec<TargetConfig>,
    /// Fabric timing profile (latency, bandwidth, jitter).
    pub fabric: FabricProfile,
    /// Fabric transport behavior: loss, MTU, paths, migration.
    pub net: FabricConfig,
    /// CPU cost model.
    pub cpu: CpuCosts,
    /// Number of ordered streams (`rio_setup`; default = threads).
    /// Ignored when [`ClusterConfig::initiators`] is non-empty — the
    /// stream space is then the concatenation of every initiator's
    /// streams.
    pub streams: usize,
    /// Initiator servers. Empty (the default everywhere) means the
    /// classic single-initiator cluster derived from
    /// [`ClusterConfig::initiator_cores`] and [`ClusterConfig::streams`]
    /// — that path is byte-identical to builds without this field.
    /// Non-empty lists build one NIC + sequencer + completer per entry
    /// over a shared global stream space.
    pub initiators: Vec<InitiatorConfig>,
    /// NIC queue pairs per (initiator, target) connection.
    pub qps_per_target: usize,
    /// Stripe unit in blocks for multi-SSD volumes (4 KB round-robin
    /// in the paper, §6.2.1).
    pub stripe_blocks: u32,
    /// Maximum in-flight ordered groups per stream before the submitter
    /// backs off (asynchronous modes).
    pub max_inflight_per_stream: usize,
    /// Whether the orderless plug merges adjacent writes (the Fig. 3
    /// "w/ merging" vs "w/o merging" toggle).
    pub plug_merge: bool,
    /// Scheduler Principle 2 (§4.5): pin each stream to one NIC send
    /// queue so RC in-order delivery makes the target gate free.
    /// Disabling it scatters commands across queue pairs — an ablation
    /// that shows the gate absorbing network reordering.
    pub pin_stream_to_qp: bool,
    /// End-to-end data integrity checking: per-command payload
    /// digests stamped at submission and verified at the target, real
    /// payload bytes (not compact tags) landing on media under
    /// CRC-32C seals, and a post-recovery scrub pass. Forced on when
    /// the fabric corrupts packets or the fault plan injects
    /// torn-write/bit-rot/corruption faults; when off (the default)
    /// the machinery draws no RNG, charges no CPU and allocates no
    /// payload bytes, so runs replay byte-identically to builds
    /// without it.
    pub integrity: bool,
    /// Fault-injection plan (empty = no faults). Requires a Rio mode
    /// when non-empty.
    pub faults: FaultPlan,
    /// Per-command stage tracing (`None` = off, zero overhead). When
    /// set, [`crate::metrics::RunMetrics::breakdown`] carries the
    /// fig. 14-style [`crate::trace::LatencyBreakdown`].
    pub trace: Option<TraceConfig>,
    /// Virtual-time telemetry sampling (`None` = off, zero overhead).
    /// When set, [`crate::metrics::RunMetrics::telemetry`] carries the
    /// bucketed [`crate::telemetry::Telemetry`] series plus the stall
    /// watchdog's findings. Like tracing, the sampler schedules no
    /// events and draws no randomness, so enabling it never perturbs
    /// the simulated run.
    pub telemetry: Option<TelemetryConfig>,
}

impl ClusterConfig {
    /// A single-target, single-SSD cluster — the Fig. 2/10(a,b) shape.
    pub fn single_ssd(mode: OrderingMode, ssd: SsdProfile, streams: usize) -> Self {
        ClusterConfig {
            seed: 42,
            mode,
            initiator_cores: 36,
            targets: vec![TargetConfig {
                ssds: vec![ssd],
                cores: 36,
            }],
            fabric: FabricProfile::connectx6(),
            net: FabricConfig::default(),
            cpu: CpuCosts::default(),
            streams,
            initiators: Vec::new(),
            qps_per_target: 36,
            stripe_blocks: 1,
            max_inflight_per_stream: 48,
            plug_merge: true,
            pin_stream_to_qp: true,
            integrity: false,
            faults: FaultPlan::none(),
            trace: None,
            telemetry: None,
        }
    }

    /// The 4-SSD / 2-target configuration of Fig. 10(d)–12.
    pub fn four_ssd_two_targets(mode: OrderingMode, streams: usize) -> Self {
        ClusterConfig {
            seed: 42,
            mode,
            initiator_cores: 36,
            targets: vec![
                TargetConfig {
                    ssds: vec![SsdProfile::pm981(), SsdProfile::optane905p()],
                    cores: 36,
                },
                TargetConfig {
                    ssds: vec![SsdProfile::pm981(), SsdProfile::p4800x()],
                    cores: 36,
                },
            ],
            fabric: FabricProfile::connectx6(),
            net: FabricConfig::default(),
            cpu: CpuCosts::default(),
            streams,
            initiators: Vec::new(),
            qps_per_target: 36,
            stripe_blocks: 1,
            max_inflight_per_stream: 48,
            plug_merge: true,
            pin_stream_to_qp: true,
            integrity: false,
            faults: FaultPlan::none(),
            trace: None,
            telemetry: None,
        }
    }

    /// A multi-initiator cluster: `n_initiators` equal-weight tenants
    /// (tenant id = initiator index), `streams_each` streams per
    /// initiator, one Optane 905P target per `n_targets`.
    pub fn multi_initiator(
        mode: OrderingMode,
        n_initiators: usize,
        streams_each: usize,
        n_targets: usize,
    ) -> Self {
        let mut cfg = ClusterConfig::single_ssd(
            mode,
            SsdProfile::optane905p(),
            n_initiators * streams_each,
        );
        cfg.targets = (0..n_targets.max(1))
            .map(|_| TargetConfig {
                ssds: vec![SsdProfile::optane905p()],
                cores: 36,
            })
            .collect();
        cfg.initiators = (0..n_initiators)
            .map(|i| InitiatorConfig::new(streams_each, i as u32))
            .collect();
        cfg
    }

    /// The effective initiator list: the configured
    /// [`ClusterConfig::initiators`], or the implicit single initiator
    /// the legacy `initiator_cores` / `streams` fields describe.
    pub fn effective_initiators(&self) -> Vec<InitiatorConfig> {
        if self.initiators.is_empty() {
            vec![InitiatorConfig {
                cores: self.initiator_cores,
                streams: self.streams,
                tenant: 0,
                weight: 1,
            }]
        } else {
            self.initiators.clone()
        }
    }

    /// Total streams across all effective initiators — the size of the
    /// global stream-id space every per-stream structure is sized for.
    pub fn total_streams(&self) -> usize {
        if self.initiators.is_empty() {
            self.streams
        } else {
            self.initiators.iter().map(|i| i.streams).sum()
        }
    }

    /// Total SSDs across targets.
    pub fn total_ssds(&self) -> usize {
        self.targets.iter().map(|t| t.ssds.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(OrderingMode::Orderless.label(), "orderless");
        assert_eq!(OrderingMode::LinuxNvmf.label(), "Linux");
        assert_eq!(OrderingMode::Horae.label(), "HORAE");
        assert_eq!(OrderingMode::Rio { merge: true }.label(), "RIO");
        assert_eq!(OrderingMode::Rio { merge: false }.label(), "RIO w/o merge");
    }

    #[test]
    fn canned_configs_shape() {
        let c = ClusterConfig::single_ssd(OrderingMode::Orderless, SsdProfile::pm981(), 4);
        assert_eq!(c.total_ssds(), 1);
        let c = ClusterConfig::four_ssd_two_targets(OrderingMode::Rio { merge: true }, 12);
        assert_eq!(c.total_ssds(), 4);
        assert_eq!(c.targets.len(), 2);
    }

    #[test]
    fn empty_initiators_derive_the_legacy_single_initiator() {
        let c = ClusterConfig::single_ssd(OrderingMode::Orderless, SsdProfile::pm981(), 4);
        assert!(c.initiators.is_empty());
        assert_eq!(c.total_streams(), 4);
        let eff = c.effective_initiators();
        assert_eq!(
            eff,
            vec![InitiatorConfig {
                cores: c.initiator_cores,
                streams: 4,
                tenant: 0,
                weight: 1
            }]
        );
    }

    #[test]
    fn multi_initiator_concatenates_stream_spaces() {
        let c = ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 3, 2, 2);
        assert_eq!(c.initiators.len(), 3);
        assert_eq!(c.targets.len(), 2);
        assert_eq!(c.total_streams(), 6);
        let eff = c.effective_initiators();
        assert_eq!(eff.len(), 3);
        assert_eq!(eff[1].tenant, 1);
        assert_eq!(eff[2].weight, 1);
        assert_eq!(InitiatorConfig::new(2, 0).with_weight(4).weight, 4);
    }
}
