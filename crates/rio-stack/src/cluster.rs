//! The event-driven cluster: initiator, targets, and the four ordering
//! engines over one shared data path.
//!
//! Every software step charges a per-core FIFO resource; every wire and
//! device time comes from the passive `rio-net`/`rio-ssd` models. The
//! event heap only sequences *causality*: command arrival at the
//! target, SSD completion, completion arrival back at the initiator,
//! and thread wake-ups.
//!
//! Data path of one ordered write under Rio (Fig. 4):
//!
//! ```text
//! thread: sequencer.submit → ORDER queue → [batch flush] → merge →
//!         stripe/split → stamp_dispatch → SEND (stream-pinned QP) ───┐
//! target: RECV ─ gate.arrive ─ PMR append ─ RDMA READ data ─ SSD    │
//!         write [─ FLUSH] ─ persist toggle ─ completion SEND ───────┘
//! initiator: IRQ → fragment rejoin → in-order completer → deliver
//! ```

use std::collections::VecDeque;

use rio_block::{Plug, StripedVolume};
use rio_net::{Fabric, Nic};
use rio_order::attr::{BlockRange, OrderingAttr, Seq, ServerId, StreamId};
use rio_order::pmrlog::{PmrLog, SlotRef};
use rio_order::recovery::{RecoveryInput, RecoveryMode, RecoveryPlan, ServerScan};
use rio_order::scheduler::{split_attr_into, OrderQueue, OrderQueueConfig};
use rio_order::sequencer::SubmitOpts;
use rio_order::{InOrderCompleter, Sequencer, SubmissionGate};
use rio_proto::{payload, PayloadDigest};
use rio_sim::{EventHeap, Histogram, SimDuration, SimRng, SimTime, Slab};
use rio_ssd::{BlockImage, Ssd};

use crate::config::{ClusterConfig, FaultKind, OrderingMode};
use crate::cpu::CoreSet;
use crate::crash::{
    DISCARD_US, DRAM_SCAN_US_PER_RECORD, MERGE_NS_PER_RECORD, PMR_SCAN_US_PER_SLOT,
    SCRUB_US_PER_BLOCK,
};
use crate::metrics::{EpochMetrics, IntegrityMetrics, RecoveryMetrics, RunMetrics, StreamRecovery};
use crate::telemetry::TelemetrySampler;
use crate::trace::{Stage, StageTrace, TRACE_NONE};
use crate::workload::{FsyncStage, GroupSpec, Workload};

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A thread (re)considers submitting work.
    Resume(usize),
    /// A command SEND was delivered at its target.
    CmdArrive(u64),
    /// A command capsule's go-back-N timeout fired; resend the window.
    CmdResend(u64),
    /// A command's data pull timeout fired; resend the window.
    DataResend(u64),
    /// A command's completion capsule timeout fired; resend the window.
    CompResend(u64),
    /// A command is ready for SSD submission (gate passed + data in).
    SsdSubmit(u64),
    /// A command's embedded FLUSH may be submitted.
    SsdFlushSubmit(u64),
    /// A command's SSD write finished.
    SsdWriteDone(u64),
    /// A command's embedded FLUSH finished.
    SsdFlushDone(u64),
    /// A completion SEND was delivered at the initiator.
    CmdComplete(u64),
    /// A Horae control message was delivered at its target.
    CtrlArrive { target: usize, thread: usize },
    /// A Horae control acknowledgement reached the initiator.
    CtrlAck { thread: usize },
    /// A scheduled fault fires (index into the config's `FaultPlan`).
    Fault(u32),
}

/// NVMe-oF command capsule size on the wire (64 B SQE + headers).
const CMD_CAPSULE_BYTES: u64 = 96;
/// Completion capsule size on the wire.
const COMPLETION_BYTES: u64 = 32;

/// Command kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmdKind {
    Write,
    Flush,
}

/// One in-flight NVMe-oF command.
#[derive(Debug)]
struct Cmd {
    kind: CmdKind,
    thread: usize,
    target: usize,
    ssd: usize,
    qp: usize,
    phys: BlockRange,
    tag: u64,
    /// Rio ordering attribute (None on baseline paths).
    attr: Option<OrderingAttr>,
    /// Embedded FLUSH (fsync-style final request).
    flush_embedded: bool,
    /// Initiator-side unit this command belongs to.
    unit: u64,
    /// When the pulled data is in target memory (`FAR_FUTURE` until the
    /// pull — including any retransmissions — completes).
    data_ready: SimTime,
    /// When the target driver finished its CPU work and, for Rio, the
    /// gate released the command (`FAR_FUTURE` until then). The SSD
    /// submission fires once both this and `data_ready` are known.
    driver_ready: SimTime,
    /// Go-back-N bookkeeping for the leg currently on the wire
    /// (capsule → data pull → completion run strictly in sequence):
    /// packets still undelivered, and the leg's total message size.
    retx_pkts: u32,
    retx_bytes: u64,
    /// Whether the parked leg's failure was a detected corruption (as
    /// opposed to a plain drop) — the latest failure wins.
    retx_corrupt: bool,
    /// CRC-32C over the command's payload seeds, stamped at submission
    /// on integrity runs ([`PayloadDigest::NONE`] otherwise).
    digest: PayloadDigest,
    /// PMR log slot holding this command's ordering record.
    slot: Option<SlotRef>,
    /// Stage-trace slot of this command ([`TRACE_NONE`] when tracing
    /// is off; assigned by `send_cmd`).
    trace: u32,
}

/// One logical dispatch unit: a (possibly merged) request whose
/// fragments all must complete before the unit completes.
#[derive(Debug)]
struct Unit {
    /// Original logical attributes to unroll into the completer (Rio).
    parts: Vec<OrderingAttr>,
    /// Orderless/baseline accounting: groups and blocks this unit
    /// represents.
    plain_groups: u64,
    blocks: u32,
    fragments_total: usize,
    fragments_done: usize,
    submitted: SimTime,
}

/// Per-group bookkeeping for latency and window accounting (Rio).
#[derive(Debug, Clone, Copy)]
struct GroupInfo {
    blocks: u32,
    submitted: SimTime,
    thread: usize,
    stage: Option<FsyncStage>,
}

/// Dense per-stream store of [`GroupInfo`].
///
/// Group sequence numbers are allocated contiguously per stream and
/// both inserted (at submit) and removed (at in-order delivery) in
/// ascending order, so the map `(stream, seq) -> GroupInfo` collapses
/// into one ring per stream: `buf[0]` is group `head_seq`, lookups are
/// index arithmetic, and no hashing happens on the event path.
#[derive(Debug, Default)]
struct GroupInfoRing {
    /// Sequence number of `buf[0]` (meaningful only when non-empty).
    head_seq: u32,
    buf: VecDeque<GroupInfo>,
}

impl GroupInfoRing {
    /// Inserts the info for `seq`; sequences arrive in order.
    fn insert(&mut self, seq: u32, info: GroupInfo) {
        if self.buf.is_empty() {
            self.head_seq = seq;
        } else {
            debug_assert_eq!(seq, self.head_seq + self.buf.len() as u32);
        }
        self.buf.push_back(info);
    }

    /// Looks up the info for `seq`, if still live.
    fn get(&self, seq: u32) -> Option<&GroupInfo> {
        if self.buf.is_empty() || seq < self.head_seq {
            return None;
        }
        self.buf.get((seq - self.head_seq) as usize)
    }

    /// Removes the info for `seq`. Delivery is in-order per stream, so
    /// `seq` is always the ring head.
    fn remove(&mut self, seq: u32) -> Option<GroupInfo> {
        if self.buf.is_empty() || seq != self.head_seq {
            return None;
        }
        self.head_seq += 1;
        self.buf.pop_front()
    }
}

/// Stage-mark slot order (mirrors `RunMetrics::stage_dispatch`).
const STAGE_BY_INDEX: [FsyncStage; 3] = [FsyncStage::Data, FsyncStage::Meta, FsyncStage::Commit];

/// Slot index of an fsync stage in `stage_marks` / `stage_dispatch`.
fn stage_index(stage: FsyncStage) -> usize {
    match stage {
        FsyncStage::Data => 0,
        FsyncStage::Meta => 1,
        FsyncStage::Commit => 2,
    }
}

/// Synchronous-mode thread stage (Linux NVMe-oF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncStage {
    Idle,
    AwaitWrite,
    AwaitFlush { remaining: usize },
}

/// Per-thread state.
struct ThreadState {
    /// Owning initiator (index into `Cluster::initiators`).
    init: usize,
    core: usize,
    stream: StreamId,
    /// Next script unit (op) index to generate.
    next_op: u64,
    /// Generated-but-unsubmitted groups of the current/pending ops.
    queue: VecDeque<GroupSpec>,
    inflight: usize,
    area_start: u64,
    area_blocks: u64,
    rng: SimRng,
    parked: bool,
    done_submitting: bool,
    sync_stage: SyncStage,
    /// The thread issued a sync point and waits for inflight == 0.
    syncing: bool,
    /// Start of the current fsync op (D submission).
    op_start: SimTime,
    /// Dispatch timestamps of the current op's stages.
    stage_marks: [Option<SimTime>; 3],
    /// Linux mode: whether the in-flight group needs a FLUSH leg and
    /// whether it ends an op.
    cur_flush_leg: bool,
    cur_sync_after: bool,
    /// Horae: group specs whose control ack is pending / data not yet
    /// dispatched.
    ctrl_pending: VecDeque<(GroupSpec, SimTime)>,
    ctrl_outstanding: bool,
    /// Horae: earliest instant the next control post may issue (the
    /// serialized ordering-layer gap).
    ctrl_gate_until: SimTime,
    /// Rio under fault injection: submitted-but-undelivered groups, in
    /// sequence order, so a recovery can redeliver the durable prefix
    /// and re-queue the rolled-back tail. Empty when no faults are
    /// configured.
    replay: VecDeque<(u32, GroupSpec)>,
}

/// One initiator host: its driver cores, fabric NIC, sequencer and
/// in-order completer, plus the slice of the global stream space it
/// owns. Stream ids are global — initiator `i` owns
/// `[stream_base, stream_base + n_streams)` — so every structure
/// keyed by (global) stream is implicitly keyed by (initiator,
/// stream) with no id translation anywhere on the event path.
struct Initiator {
    cores: CoreSet,
    nic: Nic,
    sequencer: Sequencer,
    completer: InOrderCompleter,
    /// Tenant this initiator bills to.
    tenant: u32,
    /// QoS weight its tenant share carries in the target DRR.
    weight: u32,
    /// First global stream id of this initiator's slice.
    stream_base: usize,
    /// Streams in this initiator's slice.
    n_streams: usize,
    // Per-initiator accounting for the RunMetrics breakdown.
    groups_done: u64,
    blocks_done: u64,
    commands_sent: u64,
    gate_buffered: u64,
    group_latency: Histogram,
    finished_at: SimTime,
}

/// Blocks of SSD service one DRR weight unit earns per round.
const DRR_QUANTUM_BLOCKS: u64 = 8;
/// Admitted-but-incomplete writes one target sustains before its DRR
/// holds commands back. Small on purpose: fairness needs the backlog
/// to queue *here*, where the scheduler arbitrates, not inside the
/// device.
const DRR_OUTSTANDING_CAP: usize = 4;

/// Target-side deficit-round-robin scheduler over per-tenant queues
/// at the SSD admission point. Only instantiated when more than one
/// distinct tenant shares the cluster — single-tenant runs never
/// construct it, keeping them byte-identical to the pre-tenancy path.
struct DrrSched {
    /// Per-tenant DRR weight, indexed like `Cluster::tenants`.
    weights: Vec<u32>,
    /// Per-tenant deficit counters, in blocks.
    deficits: Vec<u64>,
    /// Per-tenant FIFO of (command id, enqueue instant, blocks).
    queues: Vec<VecDeque<(u64, SimTime, u32)>>,
    /// Round-robin cursor over tenants.
    cursor: usize,
    /// Whether the cursor just arrived at its queue (quantum not yet
    /// granted for this visit). A visit spans many pump calls — the
    /// outstanding cap rations slots, not rounds — so the flag keeps
    /// one quantum per visit no matter how the pumping interleaves.
    fresh: bool,
    /// Writes admitted to this target's SSDs and not yet completed.
    outstanding: usize,
}

impl DrrSched {
    fn new(weights: Vec<u32>) -> Self {
        let n = weights.len();
        DrrSched {
            weights,
            deficits: vec![0; n],
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            fresh: true,
            outstanding: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Forgets every queued command and outstanding write (a crash
    /// killed them all; their slab ids must never resolve again).
    fn clear(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        for d in &mut self.deficits {
            *d = 0;
        }
        self.fresh = true;
        self.outstanding = 0;
    }
}

/// One target server.
struct Target {
    cores: CoreSet,
    nic: Nic,
    gate: SubmissionGate,
    ssds: Vec<Ssd>,
    log: Option<PmrLog>,
    /// Per-tenant fair scheduler at the SSD admission point (`None`
    /// unless the run has more than one distinct tenant).
    drr: Option<DrrSched>,
    /// Live PMR slots per stream (indexed by stream id), append order.
    slots: Vec<VecDeque<(u32, SlotRef)>>,
    /// Whether a stream ever appended a PMR slot on this target; the
    /// superblock head mark is only maintained for such streams.
    slot_seen: Vec<bool>,
    /// Last release (head-seq) applied per stream.
    applied_release: Vec<u32>,
}

impl Target {
    fn apply_pmr_write(&mut self, w: &rio_order::pmrlog::PmrWrite) {
        self.ssds[0].pmr_mut().mmio_write(w.offset, &w.bytes);
    }
}

/// Copy-able discriminant of [`OrderingMode`], hoisted out of the
/// per-event dispatch so handlers never touch (or clone) the config
/// enum on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeKind {
    Rio,
    Orderless,
    Horae,
    Linux,
}

impl ModeKind {
    fn of(mode: &OrderingMode) -> Self {
        match mode {
            OrderingMode::Rio { .. } => ModeKind::Rio,
            OrderingMode::Orderless => ModeKind::Orderless,
            OrderingMode::Horae => ModeKind::Horae,
            OrderingMode::LinuxNvmf => ModeKind::Linux,
        }
    }
}

/// The simulated cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    mode_kind: ModeKind,
    workload: Workload,
    events: EventHeap<Event>,
    fabric: Fabric,
    /// The initiator hosts (exactly one on the legacy single-initiator
    /// path, which is byte-identical to the pre-multi-initiator code).
    initiators: Vec<Initiator>,
    volume: StripedVolume,
    /// Distinct tenant ids, in order of first appearance across the
    /// effective initiator list.
    tenants: Vec<u32>,
    /// Per-tenant DRR admission-wait histograms (indexed like
    /// `tenants`; all empty when the scheduler is inert).
    tenant_gate_wait: Vec<Histogram>,
    order_queues: Vec<OrderQueue>,
    released_through: Vec<u32>,
    threads: Vec<ThreadState>,
    targets: Vec<Target>,
    /// In-flight commands, keyed by generational slab ids carried in
    /// event payloads — no hashing on the event path.
    cmds: Slab<Cmd>,
    /// In-flight dispatch units, same keying scheme as `cmds`.
    units: Slab<Unit>,
    /// Per-stream group bookkeeping rings.
    group_info: Vec<GroupInfoRing>,
    /// Scratch buffer for gate releases (reused across events).
    gate_scratch: Vec<(OrderingAttr, u64)>,
    /// Scratch buffer for completer deliveries (reused across events).
    delivered_scratch: Vec<Seq>,
    /// Scratch buffers for the dispatch path (volume mapping, chunking,
    /// slicing and splitting), reused across units.
    map_scratch: Vec<rio_block::Extent>,
    extent_scratch: Vec<rio_block::Extent>,
    slice_scratch: Vec<BlockRange>,
    frag_scratch: Vec<OrderingAttr>,
    /// Round-robin cursor for the scatter (non-pinned) QP policy.
    scatter_qp: u64,
    // Metrics.
    groups_done: u64,
    blocks_done: u64,
    ops_done: u64,
    commands_sent: u64,
    ctrl_sent: u64,
    events_processed: u64,
    group_latency: Histogram,
    op_latency: Histogram,
    stage_lat: [rio_sim::MeanAccum; 4],
    /// Per-command stage recorder (`None` = tracing off, zero cost).
    trace: Option<StageTrace>,
    /// Virtual-time series sampler (`None` = telemetry off, zero cost).
    telemetry: Option<TelemetrySampler>,
    last_completion: SimTime,
    /// Whether end-to-end data integrity is modelled this run: payload
    /// digests stamped at submission, real payload bytes at the device,
    /// sealed media, and a scrub pass in every recovery.
    integrity: bool,
    /// Media-side integrity ledger (wire-side counters come from the
    /// NICs at snapshot time).
    integ: IntegrityMetrics,
    /// Whether per-thread replay buffers are maintained (fault plans).
    track_replay: bool,
    /// Next fault in `cfg.faults` that has not fired yet.
    fault_cursor: usize,
    /// One breakdown per fault survived so far.
    recoveries: Vec<RecoveryMetrics>,
    /// Closed crash-free epochs (the open one is closed by `metrics`).
    epochs: Vec<EpochMetrics>,
    /// Start of the open epoch and the counter bases at that instant.
    epoch_start: SimTime,
    epoch_groups_base: u64,
    epoch_blocks_base: u64,
    epoch_ops_base: u64,
}

impl Cluster {
    /// Builds a cluster for `cfg` running `workload`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (zero threads, streams
    /// fewer than threads, or targets without SSDs).
    pub fn new(cfg: ClusterConfig, workload: Workload) -> Self {
        assert!(workload.threads > 0, "need at least one thread");
        let init_cfgs = cfg.effective_initiators();
        let total_streams = cfg.total_streams();
        if cfg.initiators.is_empty() {
            assert!(
                cfg.streams >= workload.threads,
                "need one stream per thread"
            );
        } else {
            // Multi-initiator runs bind one thread per stream: thread i
            // owns global stream i, partitioned across initiators by
            // their configured stream counts.
            assert!(
                init_cfgs.iter().all(|ic| ic.streams > 0),
                "every initiator needs at least one stream"
            );
            assert_eq!(
                workload.threads, total_streams,
                "multi-initiator runs need exactly one thread per stream"
            );
        }
        assert!(!cfg.targets.is_empty(), "need at least one target");
        if !cfg.faults.events.is_empty() {
            // Pure packet-corruption faults only retune the fabric and
            // work under any mode; everything else runs the recovery
            // machinery, which only Rio's persisted attributes support.
            let needs_recovery = cfg
                .faults
                .events
                .iter()
                .any(|e| !matches!(e.kind, FaultKind::PacketCorrupt { .. }));
            assert!(
                !needs_recovery || matches!(cfg.mode, OrderingMode::Rio { .. }),
                "fault injection requires a Rio mode: recovery rebuilds \
                 the order from persisted attributes, which only Rio keeps"
            );
            for w in cfg.faults.events.windows(2) {
                assert!(w[0].at < w[1].at, "fault times must strictly increase");
            }
            for ev in &cfg.faults.events {
                for t in ev.kind.hit_targets(cfg.targets.len()) {
                    assert!(t < cfg.targets.len(), "fault names target {t} of {}", cfg.targets.len());
                }
            }
        }
        let mut root_rng = SimRng::seed_from_u64(cfg.seed);
        // Integrity is on when asked for explicitly, or implied by any
        // corruption source: the run then carries real payload bytes
        // end to end. Off, the data path is byte-identical to before.
        let integrity = cfg.integrity
            || cfg.net.corrupt_rate > 0.0
            || cfg.faults.events.iter().any(|e| e.kind.needs_integrity());
        // The effective wire profile: base timing plus the transport
        // behavior (segmentation, loss, paths) from `cfg.net`.
        let wire = cfg.net.apply(cfg.fabric.clone());
        let fabric = Fabric::new(wire.clone(), root_rng.below(u64::MAX));

        // Volume: stripe across every SSD of every target.
        let mut legs = Vec::new();
        let mut min_cap = u64::MAX;
        for (t, tc) in cfg.targets.iter().enumerate() {
            assert!(!tc.ssds.is_empty(), "target {t} has no SSDs");
            for (s, prof) in tc.ssds.iter().enumerate() {
                legs.push((ServerId(t as u16), s));
                min_cap = min_cap.min(prof.capacity_blocks);
            }
        }
        let volume = StripedVolume::new(legs, cfg.stripe_blocks, min_cap);

        let n_targets = cfg.targets.len();
        // Distinct tenants in order of first appearance; the DRR only
        // exists when more than one tenant shares the targets.
        let mut tenants: Vec<u32> = Vec::new();
        let mut tenant_weights: Vec<u32> = Vec::new();
        for ic in &init_cfgs {
            if let Some(i) = tenants.iter().position(|&t| t == ic.tenant) {
                tenant_weights[i] += ic.weight.max(1);
            } else {
                tenants.push(ic.tenant);
                tenant_weights.push(ic.weight.max(1));
            }
        }
        let multi_tenant = tenants.len() > 1;
        let targets: Vec<Target> = cfg
            .targets
            .iter()
            .map(|tc| {
                let ssds: Vec<Ssd> = tc
                    .ssds
                    .iter()
                    .map(|p| {
                        let mut s = Ssd::new(p.clone(), root_rng.below(u64::MAX));
                        s.set_integrity(integrity);
                        s
                    })
                    .collect();
                let mut t = Target {
                    cores: CoreSet::new(tc.cores),
                    // One connection (QP group) per initiator.
                    nic: Nic::for_profile(init_cfgs.len() * cfg.qps_per_target, &wire),
                    gate: SubmissionGate::with_streams(total_streams),
                    ssds,
                    log: None,
                    drr: multi_tenant.then(|| DrrSched::new(tenant_weights.clone())),
                    slots: vec![VecDeque::new(); total_streams],
                    slot_seen: vec![false; total_streams],
                    applied_release: vec![0; total_streams],
                };
                if matches!(cfg.mode, OrderingMode::Rio { .. }) {
                    let pmr_len = t.ssds[0].pmr().len();
                    let (log, writes) = PmrLog::format(pmr_len, total_streams);
                    for w in &writes {
                        t.apply_pmr_write(w);
                    }
                    t.log = Some(log);
                }
                t
            })
            .collect();

        // Thread i owns global stream i; its initiator is the one whose
        // stream slice contains i (the legacy path has one slice
        // covering everything, so this reduces to the old layout).
        let mut init_of_thread = Vec::with_capacity(workload.threads);
        {
            let mut base = 0usize;
            for (ii, ic) in init_cfgs.iter().enumerate() {
                for _ in 0..ic.streams {
                    if init_of_thread.len() < workload.threads {
                        init_of_thread.push((ii, base));
                    }
                }
                base += ic.streams;
            }
        }
        let per_thread_blocks = volume.capacity_blocks() / workload.threads as u64;
        let threads: Vec<ThreadState> = (0..workload.threads)
            .map(|i| ThreadState {
                init: init_of_thread[i].0,
                core: (i - init_of_thread[i].1) % init_cfgs[init_of_thread[i].0].cores,
                stream: StreamId(i as u16),
                next_op: 0,
                queue: VecDeque::new(),
                inflight: 0,
                area_start: i as u64 * per_thread_blocks,
                area_blocks: per_thread_blocks,
                rng: root_rng.fork(),
                parked: false,
                done_submitting: false,
                sync_stage: SyncStage::Idle,
                syncing: false,
                op_start: SimTime::ZERO,
                stage_marks: [None; 3],
                cur_flush_leg: false,
                cur_sync_after: false,
                ctrl_pending: VecDeque::new(),
                ctrl_outstanding: false,
                ctrl_gate_until: SimTime::ZERO,
                replay: VecDeque::new(),
            })
            .collect();

        let merge = matches!(cfg.mode, OrderingMode::Rio { merge: true });
        let order_queues = (0..total_streams)
            .map(|s| {
                OrderQueue::new(
                    StreamId(s as u16),
                    OrderQueueConfig {
                        merge,
                        max_merge_blocks: 32,
                    },
                )
            })
            .collect();

        // Pre-size the hot structures from the config: the event heap
        // and command/unit arenas track the global in-flight window.
        let inflight_hint = (total_streams * cfg.max_inflight_per_stream * 2).max(64);
        let trace = cfg
            .trace
            .as_ref()
            .map(|tc| StageTrace::new(tc, total_streams));
        let telemetry = cfg
            .telemetry
            .as_ref()
            .map(|tc| TelemetrySampler::new(tc, tenants.clone(), n_targets, init_cfgs.len()));
        let initiators: Vec<Initiator> = {
            let mut v = Vec::with_capacity(init_cfgs.len());
            let mut base = 0usize;
            for ic in &init_cfgs {
                v.push(Initiator {
                    cores: CoreSet::new(ic.cores),
                    nic: Nic::for_profile(n_targets * cfg.qps_per_target, &wire),
                    // Sequencer and completer are sized at the *global*
                    // stream count; each initiator only ever touches its
                    // own slice, so no id translation exists anywhere.
                    sequencer: Sequencer::new(total_streams, n_targets),
                    completer: InOrderCompleter::with_window(
                        total_streams,
                        cfg.max_inflight_per_stream * 2,
                    ),
                    tenant: ic.tenant,
                    weight: ic.weight.max(1),
                    stream_base: base,
                    n_streams: ic.streams,
                    groups_done: 0,
                    blocks_done: 0,
                    commands_sent: 0,
                    gate_buffered: 0,
                    group_latency: Histogram::new(),
                    finished_at: SimTime::ZERO,
                });
                base += ic.streams;
            }
            v
        };
        let tenant_gate_wait = tenants.iter().map(|_| Histogram::new()).collect();
        Cluster {
            initiators,
            tenants,
            tenant_gate_wait,
            order_queues,
            released_through: vec![0; total_streams],
            volume,
            threads,
            targets,
            cmds: Slab::with_capacity(inflight_hint),
            units: Slab::with_capacity(inflight_hint),
            group_info: (0..total_streams).map(|_| GroupInfoRing::default()).collect(),
            gate_scratch: Vec::with_capacity(16),
            delivered_scratch: Vec::with_capacity(16),
            map_scratch: Vec::with_capacity(16),
            extent_scratch: Vec::with_capacity(16),
            slice_scratch: Vec::with_capacity(16),
            frag_scratch: Vec::with_capacity(16),
            scatter_qp: 0,
            groups_done: 0,
            blocks_done: 0,
            ops_done: 0,
            commands_sent: 0,
            ctrl_sent: 0,
            events_processed: 0,
            group_latency: Histogram::new(),
            op_latency: Histogram::new(),
            stage_lat: Default::default(),
            trace,
            telemetry,
            last_completion: SimTime::ZERO,
            integrity,
            integ: IntegrityMetrics::default(),
            track_replay: !cfg.faults.events.is_empty(),
            fault_cursor: 0,
            recoveries: Vec::new(),
            epochs: Vec::new(),
            epoch_start: SimTime::ZERO,
            epoch_groups_base: 0,
            epoch_blocks_base: 0,
            epoch_ops_base: 0,
            events: EventHeap::with_capacity(inflight_hint),
            fabric,
            mode_kind: ModeKind::of(&cfg.mode),
            cfg,
            workload,
        }
    }

    /// Runs the workload to completion — surviving any scheduled
    /// faults — and returns metrics.
    pub fn run(mut self) -> RunMetrics {
        self.run_loop();
        self.metrics()
    }

    /// Runs the workload, then asserts every target's media holds
    /// exactly what was submitted before building metrics: every
    /// sealed block matches its seal (no corrupt block survives a run
    /// — all are detected and either rolled back + resubmitted or
    /// discarded during recovery) and is byte-for-byte the payload its
    /// embedded seed generates (recovered bytes == submitted bytes).
    #[cfg(test)]
    pub(crate) fn run_and_verify(mut self) -> RunMetrics {
        self.run_loop();
        let m = self.metrics();
        for (t, target) in self.targets.iter().enumerate() {
            for (s, ssd) in target.ssds.iter().enumerate() {
                assert!(
                    ssd.media_verified(),
                    "corrupt block survived the run on target {t} ssd {s}"
                );
                assert!(
                    ssd.payload_verified(),
                    "media block differs from its submitted payload on target {t} ssd {s}"
                );
            }
        }
        m
    }

    /// The event loop body shared by [`Cluster::run`] and the
    /// verifying test harness.
    fn run_loop(&mut self) {
        self.start();
        loop {
            while let Some((now, ev)) = self.events.pop() {
                self.events_processed += 1;
                self.handle(now, ev);
            }
            // Faults whose heap events died with an earlier
            // non-resuming fault's clear still fire, in order, at
            // their scheduled times.
            if self.fault_cursor < self.cfg.faults.events.len() {
                let idx = self.fault_cursor;
                let at = self.cfg.faults.events[idx].at.max(self.last_completion);
                self.events_processed += 1;
                self.on_fault(at, idx);
            } else {
                break;
            }
        }
    }

    /// Schedules the initial thread wake-ups and the fault plan.
    pub(crate) fn start(&mut self) {
        for t in 0..self.threads.len() {
            self.events.push(SimTime::ZERO, Event::Resume(t));
        }
        for i in 0..self.cfg.faults.events.len() {
            let at = self.cfg.faults.events[i].at;
            self.events.push(at, Event::Fault(i as u32));
        }
    }

    /// Runs until the event heap drains or `deadline` passes; returns
    /// the virtual time reached.
    #[cfg(test)]
    pub(crate) fn run_until(&mut self, deadline: SimTime) -> SimTime {
        let mut reached = SimTime::ZERO;
        while let Some((now, ev)) = self.events.pop_if_at_or_before(deadline) {
            self.events_processed += 1;
            self.handle(now, ev);
            reached = now;
        }
        if self.events.is_empty() {
            reached
        } else {
            deadline
        }
    }

    /// Builds the final metrics snapshot.
    pub(crate) fn metrics(&mut self) -> RunMetrics {
        // Settle device-internal effects (stats, drains) up to the end.
        for t in &mut self.targets {
            for ssd in &mut t.ssds {
                ssd.advance(self.last_completion);
            }
        }
        let span = self.last_completion.since(SimTime::ZERO);
        let target_util = if self.targets.is_empty() {
            0.0
        } else {
            self.targets
                .iter()
                .map(|t| t.cores.utilization(span))
                .sum::<f64>()
                / self.targets.len() as f64
        };
        let gate_buffered: u64 = self
            .targets
            .iter()
            .map(|t| t.gate.total_buffered_events())
            .sum();
        let mut net = crate::metrics::NetMetrics::default();
        for init in &self.initiators {
            net.absorb(&init.nic);
        }
        for t in &self.targets {
            net.absorb(&t.nic);
        }
        // The media-side ledger accumulated during recoveries, plus the
        // wire-side counters the NICs kept.
        let mut integrity = self.integ;
        integrity.wire_injected = net.corrupt_injected;
        integrity.wire_detected = net.corrupt_detected;
        integrity.wire_refetched = net.corrupt_refetched;
        // Close the open epoch. A fault with `resume: false` may leave
        // the resume instant past the last completion; the final epoch
        // is then empty, not negative.
        let mut epochs = self.epochs.clone();
        epochs.push(EpochMetrics {
            from: self.epoch_start,
            to: self.last_completion.max(self.epoch_start),
            groups_done: self.groups_done - self.epoch_groups_base,
            blocks_done: self.blocks_done - self.epoch_blocks_base,
            ops_done: self.ops_done - self.epoch_ops_base,
        });
        let initiators: Vec<crate::metrics::InitiatorMetrics> = self
            .initiators
            .iter()
            .enumerate()
            .map(|(i, init)| crate::metrics::InitiatorMetrics {
                initiator: i,
                tenant: init.tenant,
                weight: init.weight,
                stream_base: init.stream_base,
                streams: init.n_streams,
                groups_done: init.groups_done,
                blocks_done: init.blocks_done,
                commands_sent: init.commands_sent,
                gate_buffered: init.gate_buffered,
                group_latency: init.group_latency.clone(),
                util: init.cores.utilization(span),
                finished_at: init.finished_at,
            })
            .collect();
        // Per-tenant rollup: the sum of the tenant's initiators, plus
        // the DRR admission wait recorded at the targets.
        let mut tenants: Vec<crate::metrics::TenantMetrics> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(ti, &tenant)| {
                let mut t = crate::metrics::TenantMetrics {
                    tenant,
                    weight: 0,
                    groups_done: 0,
                    blocks_done: 0,
                    group_latency: Histogram::new(),
                    gate_wait: self.tenant_gate_wait[ti].clone(),
                    finished_at: SimTime::ZERO,
                };
                for init in self.initiators.iter().filter(|i| i.tenant == tenant) {
                    t.weight += init.weight;
                    t.groups_done += init.groups_done;
                    t.blocks_done += init.blocks_done;
                    t.group_latency.merge(&init.group_latency);
                    t.finished_at = t.finished_at.max(init.finished_at);
                }
                t
            })
            .collect();
        tenants.sort_by_key(|t| t.tenant);
        RunMetrics {
            blocks_done: self.blocks_done,
            groups_done: self.groups_done,
            ops_done: self.ops_done,
            gate_buffered,
            commands_sent: self.commands_sent,
            events_processed: self.events_processed,
            span,
            group_latency: self.group_latency.clone(),
            op_latency: self.op_latency.clone(),
            stage_dispatch: self.stage_lat.clone(),
            initiator_util: self
                .initiators
                .iter()
                .map(|i| i.cores.utilization(span))
                .sum::<f64>()
                / self.initiators.len() as f64,
            target_util,
            net,
            integrity,
            recoveries: self.recoveries.clone(),
            epochs,
            finished_at: self.last_completion,
            breakdown: self.trace.as_ref().map(StageTrace::finish),
            initiators,
            tenants,
            telemetry: self.telemetry.as_ref().map(TelemetrySampler::finish),
        }
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Resume(t) => self.on_resume(now, t),
            Event::CmdArrive(c) => self.on_cmd_arrive(now, c),
            Event::CmdResend(c) => self.on_cmd_resend(now, c),
            Event::DataResend(c) => self.on_data_resend(now, c),
            Event::CompResend(c) => self.on_comp_resend(now, c),
            Event::SsdSubmit(c) => self.on_ssd_submit(now, c),
            Event::SsdFlushSubmit(c) => self.on_ssd_flush_submit(now, c),
            Event::SsdWriteDone(c) => self.on_ssd_write_done(now, c),
            Event::SsdFlushDone(c) => self.on_ssd_flush_done(now, c),
            Event::CmdComplete(c) => self.on_cmd_complete(now, c),
            Event::CtrlArrive { target, thread } => self.on_ctrl_arrive(now, target, thread),
            Event::CtrlAck { thread } => self.on_ctrl_ack(now, thread),
            Event::Fault(i) => self.on_fault(now, i as usize),
        }
    }

    // ---- submission side -------------------------------------------------

    fn on_resume(&mut self, now: SimTime, t: usize) {
        self.threads[t].parked = false;
        match self.mode_kind {
            ModeKind::Rio => self.submit_async_rio(now, t),
            ModeKind::Orderless => self.submit_async_orderless(now, t),
            ModeKind::Horae => self.submit_horae(now, t),
            ModeKind::Linux => self.submit_linux(now, t),
        }
    }

    fn thread_has_work(&self, t: usize) -> bool {
        !self.threads[t].queue.is_empty()
            || self.threads[t].next_op < self.workload.groups_per_thread
    }

    /// Pops the next group to submit, generating the next script unit
    /// when the queue runs dry.
    fn next_group_spec(&mut self, t: usize) -> GroupSpec {
        if self.threads[t].queue.is_empty() {
            let th = &mut self.threads[t];
            let groups = self
                .workload
                .op(th.next_op, th.area_start, th.area_blocks, &mut th.rng);
            th.next_op += 1;
            th.queue.extend(groups);
        }
        self.threads[t].queue.pop_front().expect("queue refilled")
    }

    /// Charges per-op application CPU and tracks fsync op starts.
    fn note_group_start(&mut self, mut cpu: SimTime, t: usize, spec: &GroupSpec) -> SimTime {
        if spec.app_cpu_ns > 0 {
            cpu = self.init_run_on(t, cpu, spec.app_cpu_ns);
        }
        let first_stage = matches!(spec.stage, Some(FsyncStage::Data))
            || (matches!(spec.stage, Some(FsyncStage::Meta))
                && self.threads[t].stage_marks[0].is_none()
                && self.threads[t].op_start == SimTime::ZERO)
            || (spec.stage.is_some()
                && self.threads[t].stage_marks.iter().all(|m| m.is_none())
                && !self.threads[t].syncing);
        if spec.stage.is_some() && first_stage && self.threads[t].op_start == SimTime::ZERO {
            self.threads[t].op_start = cpu;
        }
        cpu
    }

    /// Records the dispatch mark of an fsync stage.
    fn mark_stage(&mut self, t: usize, stage: FsyncStage, at: SimTime) {
        let idx = stage_index(stage);
        if self.threads[t].stage_marks[idx].is_none() {
            self.threads[t].stage_marks[idx] = Some(at);
        }
    }

    /// Finishes the current fsync op at `now` (the sync point cleared).
    fn finish_op(&mut self, t: usize, now: SimTime) {
        let th = &self.threads[t];
        let start = th.op_start;
        let marks = th.stage_marks;
        self.ops_done += 1;
        if start != SimTime::ZERO || marks.iter().any(|m| m.is_some()) {
            self.op_latency.record(now.since(start));
            let mut prev = start;
            for (i, m) in marks.iter().enumerate() {
                if let Some(at) = m {
                    self.stage_lat[i].record(at.since(prev).as_nanos() as f64);
                    prev = *at;
                }
            }
            self.stage_lat[3].record(now.since(prev).as_nanos() as f64);
        }
        let th = &mut self.threads[t];
        th.op_start = SimTime::ZERO;
        th.stage_marks = [None; 3];
    }

    /// Rio: submit batches through the sequencer and ORDER queue.
    fn submit_async_rio(&mut self, now: SimTime, t: usize) {
        if self.threads[t].syncing {
            self.threads[t].parked = true;
            return;
        }
        let window = self.cfg.max_inflight_per_stream;
        let mut cpu = now;
        'outer: while self.threads[t].inflight < window && self.thread_has_work(t) {
            let batch = self.workload.batch.max(1);
            let mut submitted = 0;
            let mut hit_sync = false;
            while submitted < batch && self.threads[t].inflight < window && self.thread_has_work(t)
            {
                let spec = self.next_group_spec(t);
                cpu = self.note_group_start(cpu, t, &spec);
                let stream = self.threads[t].stream;
                let n = spec.members.len();
                let blocks = spec.blocks();
                let mut group_seq = 0u32;
                for (i, m) in spec.members.iter().enumerate() {
                    let last = i == n - 1;
                    cpu = self.init_run_on(
                        t,
                        cpu,
                        self.cfg.cpu.submit_bio + self.cfg.cpu.order_queue,
                    );
                    let attr = self.initiators[self.threads[t].init].sequencer.submit(
                        stream,
                        m.range,
                        SubmitOpts {
                            end_group: last,
                            ipu: false,
                            flush: last && spec.flush,
                        },
                    );
                    if last {
                        group_seq = attr.seq_start.0;
                        self.group_info[stream.0 as usize].insert(
                            attr.seq_start.0,
                            GroupInfo {
                                blocks,
                                submitted: cpu,
                                thread: t,
                                stage: spec.stage,
                            },
                        );
                        if let Some(tm) = &mut self.telemetry {
                            tm.group_submitted(cpu, 1);
                        }
                    }
                    self.order_queues[stream.0 as usize].push(attr, 0);
                }
                if self.track_replay {
                    // Keep the spec until delivery so a recovery can
                    // re-queue rolled-back groups for resubmission.
                    self.threads[t].replay.push_back((group_seq, spec.clone()));
                }
                self.threads[t].inflight += 1;
                submitted += 1;
                if spec.sync_after {
                    hit_sync = true;
                    break;
                }
            }
            // Flush the ORDER queue: merge pass + dispatch.
            let stream = self.threads[t].stream;
            let units = self.order_queues[stream.0 as usize].flush();
            for unit in units {
                let merged_extra = unit.parts.len().saturating_sub(1) as u64;
                if merged_extra > 0 {
                    cpu = self.init_run_on(t, cpu, self.cfg.cpu.merge_per_bio * merged_extra);
                }
                cpu = self.dispatch_rio_unit(cpu, t, unit);
            }
            if hit_sync {
                self.threads[t].syncing = true;
                self.threads[t].parked = true;
                if self.threads[t].inflight == 0 {
                    // Degenerate: everything already completed.
                    self.threads[t].syncing = false;
                    self.finish_op(t, cpu);
                    self.threads[t].parked = false;
                    continue 'outer;
                }
                return;
            }
        }
        if self.thread_has_work(t) || self.threads[t].inflight > 0 {
            self.threads[t].parked = true;
        } else {
            self.threads[t].done_submitting = true;
        }
    }

    /// Dispatches one Rio unit: stripe, split, stamp, send fragments.
    fn dispatch_rio_unit(
        &mut self,
        mut cpu: SimTime,
        t: usize,
        unit: rio_order::DispatchUnit,
    ) -> SimTime {
        let attr = unit.attr;
        let mut extents = std::mem::take(&mut self.extent_scratch);
        extents.clear();
        self.chunked_extents_into(attr.range, &mut extents);
        // Build logical slices for the splitter, then graft physical
        // ranges onto the fragments.
        let mut slices = std::mem::take(&mut self.slice_scratch);
        slices.clear();
        let mut off = 0u64;
        for e in &extents {
            slices.push(BlockRange::new(attr.range.lba + off, e.range.blocks));
            off += e.range.blocks as u64;
        }
        let mut frags = std::mem::take(&mut self.frag_scratch);
        frags.clear();
        split_attr_into(&attr, &slices, &mut frags);
        let blocks_total: u32 = attr.range.blocks;
        let unit_id = self.units.insert(Unit {
            parts: unit.parts.iter().map(|p| p.attr).collect(),
            plain_groups: 0,
            blocks: blocks_total,
            fragments_total: frags.len(),
            fragments_done: 0,
            submitted: cpu,
        });
        for (frag, ext) in frags.iter_mut().zip(extents.iter()) {
            frag.range = ext.range;
            frag.ssd = ext.ssd as u8;
            self.initiators[self.threads[t].init]
                .sequencer
                .stamp_dispatch(frag, ext.server);
            let tag = frag.seq_start.0 as u64;
            let digest = if self.integrity {
                // Stamp the command's payload digest at submission,
                // charging the per-block CRC pass to the app core.
                cpu = self.init_run_on(t, cpu, self.cfg.cpu.crc_per_block * ext.range.blocks as u64);
                let stream = self.threads[t].stream.0;
                let lba = ext.range.lba;
                PayloadDigest::over_seeds(
                    (0..ext.range.blocks as u64).map(|j| payload::seed_for(stream, tag, lba + j)),
                )
            } else {
                PayloadDigest::NONE
            };
            let stamped = cpu;
            cpu = self.init_run_on(t, cpu, self.cfg.cpu.cmd_post);
            let qp = self.pick_qp(self.threads[t].stream.0 as usize);
            self.send_cmd(
                cpu,
                stamped,
                Cmd {
                    kind: CmdKind::Write,
                    thread: t,
                    target: ext.server.0 as usize,
                    ssd: ext.ssd,
                    qp,
                    phys: ext.range,
                    tag,
                    attr: Some(*frag),
                    flush_embedded: frag.flush,
                    unit: unit_id,
                    data_ready: SimTime::FAR_FUTURE,
                    driver_ready: SimTime::FAR_FUTURE,
                    retx_pkts: 0,
                    retx_bytes: 0,
                    retx_corrupt: false,
                    digest,
                    slot: None,
                    trace: TRACE_NONE,
                },
            );
        }
        self.extent_scratch = extents;
        self.slice_scratch = slices;
        self.frag_scratch = frags;
        // Stage dispatch marks for the Fig. 14 breakdown. The same
        // `cpu` instant applies to every stage, so marking order does
        // not matter.
        let mut stages_hit = [false; 3];
        for p in unit.parts.iter().filter(|p| p.attr.boundary) {
            if let Some(info) = self.group_info[p.attr.stream.0 as usize].get(p.attr.seq_start.0)
            {
                if let Some(stage) = info.stage {
                    stages_hit[stage_index(stage)] = true;
                }
            }
        }
        for (i, hit) in stages_hit.into_iter().enumerate() {
            if hit {
                self.mark_stage(t, STAGE_BY_INDEX[i], cpu);
            }
        }
        cpu
    }

    /// Orderless: plug batching and merging, then async dispatch.
    fn submit_async_orderless(&mut self, now: SimTime, t: usize) {
        if self.threads[t].syncing {
            self.threads[t].parked = true;
            return;
        }
        let window = self.cfg.max_inflight_per_stream;
        let mut cpu = now;
        while self.threads[t].inflight < window && self.thread_has_work(t) {
            let batch = self.workload.batch.max(1);
            let mut plug = Plug::new();
            let mut groups_in_batch = 0u64;
            let mut bio_id = 0u64;
            let mut hit_sync = false;
            while groups_in_batch < batch as u64
                && self.threads[t].inflight < window
                && self.thread_has_work(t)
            {
                let spec = self.next_group_spec(t);
                cpu = self.note_group_start(cpu, t, &spec);
                for m in &spec.members {
                    cpu = self.init_run_on(t, cpu, self.cfg.cpu.submit_bio);
                    let mut bio = rio_block::Bio::write(bio_id, m.range, bio_id);
                    bio.flags.flush = spec.flush;
                    plug.add(bio);
                    bio_id += 1;
                }
                self.threads[t].inflight += 1;
                groups_in_batch += 1;
                if let Some(stage) = spec.stage {
                    self.mark_stage(t, stage, cpu);
                }
                if spec.sync_after {
                    hit_sync = true;
                    break;
                }
            }
            let max_blocks = if self.cfg.plug_merge { 32 } else { 1 };
            let runs = plug.finish(max_blocks);
            for run in runs {
                let merged_extra = run.bios.len().saturating_sub(1) as u64;
                if merged_extra > 0 {
                    cpu = self.init_run_on(t, cpu, self.cfg.cpu.merge_per_bio * merged_extra);
                }
                let flush = run.bios.iter().any(|b| b.flags.flush);
                cpu = self.dispatch_plain_unit(cpu, t, run.range, run.bios.len() as u64, flush);
            }
            if hit_sync {
                self.threads[t].syncing = true;
                self.threads[t].parked = true;
                if self.threads[t].inflight == 0 {
                    self.threads[t].syncing = false;
                    self.finish_op(t, cpu);
                    self.threads[t].parked = false;
                    continue;
                }
                return;
            }
        }
        if self.thread_has_work(t) || self.threads[t].inflight > 0 {
            self.threads[t].parked = true;
        } else {
            self.threads[t].done_submitting = true;
        }
    }

    /// Dispatches one orderless/baseline write covering `range`,
    /// representing `groups` workload groups. Returns the CPU cursor.
    fn dispatch_plain_unit(
        &mut self,
        mut cpu: SimTime,
        t: usize,
        range: BlockRange,
        groups: u64,
        flush_embedded: bool,
    ) -> SimTime {
        let mut extents = std::mem::take(&mut self.extent_scratch);
        extents.clear();
        self.chunked_extents_into(range, &mut extents);
        let unit_id = self.units.insert(Unit {
            parts: Vec::new(),
            plain_groups: groups,
            blocks: range.blocks,
            fragments_total: extents.len(),
            fragments_done: 0,
            submitted: cpu,
        });
        if let Some(tm) = &mut self.telemetry {
            tm.group_submitted(cpu, groups);
        }
        for ext in &extents {
            let digest = if self.integrity {
                cpu = self.init_run_on(t, cpu, self.cfg.cpu.crc_per_block * ext.range.blocks as u64);
                let stream = self.threads[t].stream.0;
                let lba = ext.range.lba;
                PayloadDigest::over_seeds(
                    (0..ext.range.blocks as u64)
                        .map(|j| payload::seed_for(stream, unit_id, lba + j)),
                )
            } else {
                PayloadDigest::NONE
            };
            let stamped = cpu;
            cpu = self.init_run_on(t, cpu, self.cfg.cpu.cmd_post);
            let qp = self.pick_qp(self.threads[t].stream.0 as usize);
            self.send_cmd(
                cpu,
                stamped,
                Cmd {
                    kind: CmdKind::Write,
                    thread: t,
                    target: ext.server.0 as usize,
                    ssd: ext.ssd,
                    qp,
                    phys: ext.range,
                    tag: unit_id,
                    attr: None,
                    flush_embedded,
                    unit: unit_id,
                    data_ready: SimTime::FAR_FUTURE,
                    driver_ready: SimTime::FAR_FUTURE,
                    retx_pkts: 0,
                    retx_bytes: 0,
                    retx_corrupt: false,
                    digest,
                    slot: None,
                    trace: TRACE_NONE,
                },
            );
        }
        self.extent_scratch = extents;
        cpu
    }

    /// Linux ordered NVMe-oF: one group at a time, completion + FLUSH.
    ///
    /// Block-level ordered workloads flush after every request (the
    /// classic ordered NVMe-oF of §2.2). File-system journaling flushes
    /// only on the commit record, like Ext4's sync transfer.
    fn submit_linux(&mut self, now: SimTime, t: usize) {
        if self.threads[t].sync_stage != SyncStage::Idle {
            return;
        }
        if !self.thread_has_work(t) {
            self.threads[t].done_submitting = true;
            return;
        }
        let spec = self.next_group_spec(t);
        let mut cpu = self.note_group_start(now, t, &spec);
        // Journaling stages pay the jbd2 kthread handoff (wakeup of the
        // journal thread plus the completion softirq).
        if spec.stage.is_some() {
            cpu = self.init_run_on(t, cpu, 2 * self.cfg.cpu.ctx_switch);
        }
        self.threads[t].inflight += 1;
        self.threads[t].sync_stage = SyncStage::AwaitWrite;
        self.threads[t].cur_flush_leg = spec.stage.is_none() || spec.flush;
        self.threads[t].cur_sync_after = spec.sync_after || spec.stage.is_none();
        for m in &spec.members {
            cpu = self.init_run_on(t, cpu, self.cfg.cpu.submit_bio);
            cpu = self.dispatch_plain_unit(cpu, t, m.range, 1, false);
        }
        if let Some(stage) = spec.stage {
            self.mark_stage(t, stage, cpu);
        }
    }

    /// Horae: serialized control path, then asynchronous data path.
    fn submit_horae(&mut self, now: SimTime, t: usize) {
        if self.threads[t].syncing {
            self.threads[t].parked = true;
            return;
        }
        // Respect the serialized control-path gap even when woken early
        // by a data completion.
        if now < self.threads[t].ctrl_gate_until {
            let at = self.threads[t].ctrl_gate_until;
            self.events.push(at, Event::Resume(t));
            return;
        }
        let window = self.cfg.max_inflight_per_stream;
        let mut cpu = now;
        while !self.threads[t].ctrl_outstanding
            && self.threads[t].inflight < window
            && self.thread_has_work(t)
        {
            let spec = self.next_group_spec(t);
            cpu = self.note_group_start(cpu, t, &spec);
            self.threads[t].inflight += 1;
            cpu = self.init_run_on(t, cpu, self.cfg.cpu.horae_ctrl_post);
            // Control metadata goes to the group's primary target.
            let primary = self.volume.map_block(spec.members[0].range.lba).0 .0 as usize;
            let qp = self.threads[t].stream.0 as usize % self.cfg.qps_per_target;
            let init_qp = self.target_qp(primary, qp);
            let init = self.threads[t].init;
            let delivery = self
                .fabric
                .send(&mut self.initiators[init].nic, init_qp, cpu, 64);
            self.ctrl_sent += 1;
            self.threads[t].ctrl_pending.push_back((spec, cpu));
            self.threads[t].ctrl_outstanding = true;
            self.events.push(
                delivery,
                Event::CtrlArrive {
                    target: primary,
                    thread: t,
                },
            );
        }
        if self.thread_has_work(t) || self.threads[t].inflight > 0 {
            self.threads[t].parked = true;
        } else {
            self.threads[t].done_submitting = true;
        }
    }

    fn on_ctrl_arrive(&mut self, now: SimTime, target: usize, thread: usize) {
        // Target CPU: RECV + ordering-layer bookkeeping + PMR MMIO.
        // The ordering layer appends metadata in global order, so the
        // handler serializes on one dedicated core.
        let core = 0;
        let done = self.targets[target]
            .cores
            .run_on(core, now, self.cfg.cpu.horae_ctrl_handle);
        // Acknowledge over the target's NIC, on the sender's
        // connection QP group.
        let qp = self.conn_qp(
            thread,
            self.threads[thread].stream.0 as usize % self.cfg.qps_per_target,
        );
        let delivery = self
            .fabric
            .send(&mut self.targets[target].nic, qp, done, 16);
        self.events.push(delivery, Event::CtrlAck { thread });
    }

    fn on_ctrl_ack(&mut self, now: SimTime, thread: usize) {
        let t = thread;
        let cpu = self.init_run_on(t, now, self.cfg.cpu.irq);
        self.threads[t].ctrl_outstanding = false;
        // Dispatch the acknowledged group's data path asynchronously.
        let (spec, _posted) = self.threads[t]
            .ctrl_pending
            .pop_front()
            .expect("ctrl ack without pending group");
        let mut c = cpu;
        for m in &spec.members {
            c = self.init_run_on(t, c, self.cfg.cpu.submit_bio);
            c = self.dispatch_plain_unit(c, t, m.range, 1, spec.flush);
        }
        if let Some(stage) = spec.stage {
            self.mark_stage(t, stage, c);
        }
        if spec.sync_after {
            self.threads[t].syncing = true;
            self.threads[t].parked = true;
            if self.threads[t].inflight == 0 {
                self.threads[t].syncing = false;
                self.finish_op(t, c);
                self.events.push(c, Event::Resume(t));
            }
            return;
        }
        // The serialized control path may proceed with the next group
        // only after the ordering-layer gap.
        let next = c + rio_sim::SimDuration::from_nanos(self.cfg.cpu.horae_ctrl_gap);
        self.threads[t].ctrl_gate_until = next;
        self.events.push(next, Event::Resume(t));
    }

    // ---- network / target side -------------------------------------------

    /// Initiator-side QP index for (target, qp-within-connection).
    fn target_qp(&self, target: usize, qp: usize) -> usize {
        target * self.cfg.qps_per_target + qp
    }

    /// Charges `cost_ns` on thread `t`'s pinned core of its initiator.
    fn init_run_on(&mut self, t: usize, now: SimTime, cost_ns: u64) -> SimTime {
        let (init, core) = (self.threads[t].init, self.threads[t].core);
        self.initiators[init].cores.run_on(core, now, cost_ns)
    }

    /// Target-side connection QP for thread `t`'s command: every
    /// initiator owns one group of `qps_per_target` QPs on each target
    /// NIC, so the wire QP is the initiator's base plus the
    /// within-connection QP. Single-initiator runs reduce to `qp`.
    fn conn_qp(&self, t: usize, qp: usize) -> usize {
        self.threads[t].init * self.cfg.qps_per_target + qp
    }

    /// Index into the tenant table of thread `t`'s tenant.
    fn tenant_index_of_thread(&self, t: usize) -> usize {
        let tenant = self.initiators[self.threads[t].init].tenant;
        self.tenants
            .iter()
            .position(|&x| x == tenant)
            .expect("tenant registered at construction")
    }

    /// The initiator owning global stream `s`. Legacy configurations
    /// may have more streams than threads; those all live in initiator
    /// 0's slice, which covers the whole space there.
    fn initiator_of_stream(&self, s: usize) -> usize {
        self.initiators
            .iter()
            .position(|i| s >= i.stream_base && s < i.stream_base + i.n_streams)
            .unwrap_or(0)
    }

    /// Picks the QP for a command of `stream`: pinned (Principle 2) or
    /// scattered round-robin (the ablation).
    fn pick_qp(&mut self, stream: usize) -> usize {
        if self.cfg.pin_stream_to_qp {
            stream % self.cfg.qps_per_target
        } else {
            self.scatter_qp += 1;
            (self.scatter_qp as usize) % self.cfg.qps_per_target
        }
    }

    /// Splits a logical range into per-device extents capped at the
    /// device transfer limit and the PMR record length field, appending
    /// to `out`. Uses the internal map scratch buffer, so callers pass
    /// a buffer they took out of `self` first.
    fn chunked_extents_into(&mut self, range: BlockRange, out: &mut Vec<rio_block::Extent>) {
        let mut mapped = std::mem::take(&mut self.map_scratch);
        mapped.clear();
        self.volume.map_into(range, &mut mapped);
        for e in &mapped {
            let prof = self.targets[e.server.0 as usize].ssds[e.ssd].profile();
            let cap = prof.max_transfer_blocks.min(255).max(1);
            let mut remaining = e.range.blocks;
            let mut lba = e.range.lba;
            let mut off = e.logical_offset;
            while remaining > 0 {
                let take = remaining.min(cap);
                out.push(rio_block::Extent {
                    server: e.server,
                    ssd: e.ssd,
                    range: BlockRange::new(lba, take),
                    logical_offset: off,
                });
                lba += take as u64;
                off += take as u64;
                remaining -= take;
            }
        }
        self.map_scratch = mapped;
    }

    /// Applies one fabric transfer step to command `id`: a delivery
    /// schedules `done(id)` at the arrival instant; a drop parks the
    /// command's go-back-N window and schedules `retry(id)` at the
    /// recovery timeout.
    fn schedule_xfer(
        &mut self,
        id: u64,
        bytes: u64,
        step: rio_net::XferStep,
        done: fn(u64) -> Event,
        retry: fn(u64) -> Event,
    ) {
        match step {
            rio_net::XferStep::Delivered { at } => self.events.push(at, done(id)),
            rio_net::XferStep::Dropped {
                resume_at,
                pkts_left,
                corrupted,
            } => self.park_retx(id, bytes, resume_at, pkts_left, corrupted, retry),
        }
    }

    /// Records a dropped leg's remaining window on the command and
    /// schedules its resend event.
    fn park_retx(
        &mut self,
        id: u64,
        bytes: u64,
        resume_at: SimTime,
        pkts_left: u32,
        corrupted: bool,
        retry: fn(u64) -> Event,
    ) {
        let cmd = self.cmds.get_mut(id).expect("cmd exists");
        cmd.retx_pkts = pkts_left;
        cmd.retx_bytes = bytes;
        cmd.retx_corrupt = corrupted;
        self.events.push(resume_at, retry(id));
    }

    /// Sends one command capsule over the fabric: either it arrives at
    /// the target (`CmdArrive`) or a packet drops and the go-back-N
    /// timeout is scheduled as a `CmdResend` event. `stamped` is the
    /// instant the command was stamped/generated, before the post CPU
    /// charge — the head of its stage trace.
    fn send_cmd(&mut self, now: SimTime, stamped: SimTime, mut cmd: Cmd) {
        self.commands_sent += 1;
        let init = self.threads[cmd.thread].init;
        self.initiators[init].commands_sent += 1;
        if let Some(tm) = &mut self.telemetry {
            tm.cmd_sent(now);
        }
        if let Some(tr) = &mut self.trace {
            let stream = cmd
                .attr
                .map(|a| a.stream.0)
                .unwrap_or(self.threads[cmd.thread].stream.0);
            let tid = tr.open(
                init as u16,
                stream,
                cmd.attr.map(|a| (a.seq_start.0, a.seq_end.0)),
                cmd.target as u16,
                cmd.ssd as u16,
                cmd.phys.lba,
                cmd.flush_embedded || cmd.kind == CmdKind::Flush,
                stamped,
                now,
            );
            if let Some(a) = &cmd.attr {
                tr.pending_push(a.stream.0 as usize, a.seq_end.0, tid);
            }
            cmd.trace = tid;
        }
        let qp = self.target_qp(cmd.target, cmd.qp);
        let id = self.cmds.insert(cmd);
        let step =
            self.fabric
                .send_burst(&mut self.initiators[init].nic, qp, now, CMD_CAPSULE_BYTES);
        self.schedule_xfer(id, CMD_CAPSULE_BYTES, step, Event::CmdArrive, Event::CmdResend);
    }

    /// A command capsule's retransmission timeout fired: resend the
    /// window from the lost packet.
    fn on_cmd_resend(&mut self, now: SimTime, id: u64) {
        let (target, qp, pkts, bytes, tid, corrupt, init) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            (
                cmd.target,
                cmd.qp,
                cmd.retx_pkts,
                cmd.retx_bytes,
                cmd.trace,
                cmd.retx_corrupt,
                self.threads[cmd.thread].init,
            )
        };
        if let Some(tr) = &mut self.trace {
            // The whole remaining window goes back on the wire this
            // round (go-back-N), each packet counted exactly once.
            if corrupt {
                tr.retx_corrupt(tid, pkts);
            } else {
                tr.retx(tid, pkts);
            }
        }
        if let Some(tm) = &mut self.telemetry {
            tm.retx_initiator(now, init, pkts, if corrupt { pkts } else { 0 });
        }
        let qp = self.target_qp(target, qp);
        let step = self
            .fabric
            .resume_send(&mut self.initiators[init].nic, qp, now, pkts, bytes);
        self.schedule_xfer(id, bytes, step, Event::CmdArrive, Event::CmdResend);
    }

    /// A data pull's retransmission timeout fired: resend the window.
    fn on_data_resend(&mut self, now: SimTime, id: u64) {
        let (target, qp, pkts, bytes, tid, corrupt, init) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            (
                cmd.target,
                cmd.qp,
                cmd.retx_pkts,
                cmd.retx_bytes,
                cmd.trace,
                cmd.retx_corrupt,
                self.threads[cmd.thread].init,
            )
        };
        // `pkts > packets_for(bytes)` encodes a lost pull *request*:
        // this round retransmits only that one header packet — the
        // data window, never transmitted, goes out as a first try
        // and must not be annotated (it is not counted as a wire
        // retransmission either).
        let wire = self.fabric.profile().packets_for(bytes);
        let n = if pkts > wire { 1 } else { pkts };
        if let Some(tr) = &mut self.trace {
            if corrupt {
                tr.retx_corrupt(tid, n);
            } else {
                tr.retx(tid, n);
            }
        }
        if let Some(tm) = &mut self.telemetry {
            tm.retx_target(now, target, n, if corrupt { n } else { 0 });
        }
        let init_qp = self.target_qp(target, qp);
        match self.fabric.resume_pull(
            &mut self.targets[target].nic,
            &mut self.initiators[init].nic,
            init_qp,
            now,
            pkts,
            bytes,
        ) {
            rio_net::XferStep::Delivered { at } => {
                self.cmds.get_mut(id).expect("cmd exists").data_ready = at;
                self.try_ssd_submit(id);
            }
            rio_net::XferStep::Dropped {
                resume_at,
                pkts_left,
                corrupted,
            } => self.park_retx(id, bytes, resume_at, pkts_left, corrupted, Event::DataResend),
        }
    }

    /// A completion capsule's retransmission timeout fired.
    fn on_comp_resend(&mut self, now: SimTime, id: u64) {
        let (target, qp, pkts, bytes, tid, corrupt) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            (
                cmd.target,
                self.conn_qp(cmd.thread, cmd.qp),
                cmd.retx_pkts,
                cmd.retx_bytes,
                cmd.trace,
                cmd.retx_corrupt,
            )
        };
        if let Some(tr) = &mut self.trace {
            if corrupt {
                tr.retx_corrupt(tid, pkts);
            } else {
                tr.retx(tid, pkts);
            }
        }
        if let Some(tm) = &mut self.telemetry {
            tm.retx_target(now, target, pkts, if corrupt { pkts } else { 0 });
        }
        let step = self
            .fabric
            .resume_send(&mut self.targets[target].nic, qp, now, pkts, bytes);
        self.schedule_xfer(id, bytes, step, Event::CmdComplete, Event::CompResend);
    }

    /// Schedules the SSD submission once both halves of a command are
    /// ready: the driver work (CPU + gate release) and the data pull.
    /// Whichever side finishes second triggers the event, so it fires
    /// exactly once.
    fn try_ssd_submit(&mut self, id: u64) {
        let cmd = self.cmds.get(id).expect("cmd exists");
        if cmd.data_ready != SimTime::FAR_FUTURE && cmd.driver_ready != SimTime::FAR_FUTURE {
            let at = cmd.data_ready.max(cmd.driver_ready);
            self.events.push(at, Event::SsdSubmit(id));
        }
    }

    fn on_cmd_arrive(&mut self, now: SimTime, id: u64) {
        let (target_idx, qp, kind, bytes, attr, ssd_idx, tid, init) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            (
                cmd.target,
                cmd.qp,
                cmd.kind,
                cmd.phys.blocks as u64 * 4096,
                cmd.attr,
                cmd.ssd,
                cmd.trace,
                self.threads[cmd.thread].init,
            )
        };
        // Target-side work lands on the core of the sender's
        // connection QP (one QP group per initiator).
        let core = init * self.cfg.qps_per_target + qp;
        let recv_done = self.targets[target_idx]
            .cores
            .run_on(core, now, self.cfg.cpu.target_recv);
        if let Some(tr) = &mut self.trace {
            tr.rec(tid, Stage::GateAdmit, recv_done);
            tr.gate_depth(tid, self.targets[target_idx].gate.buffered() as u32);
        }
        if self.telemetry.is_some() {
            let depth = self.targets[target_idx].gate.buffered() as u32;
            let tm = self.telemetry.as_mut().expect("checked above");
            tm.gate_depth(recv_done, depth);
        }

        if kind == CmdKind::Flush {
            // Explicit FLUSH command (Linux mode): straight to the SSD.
            let submit =
                self.targets[target_idx]
                    .cores
                    .run_on(core, recv_done, self.cfg.cpu.ssd_submit);
            if let Some(tr) = &mut self.trace {
                tr.rec(tid, Stage::GateRelease, submit);
            }
            let (_op, done) = self.targets[target_idx].ssds[ssd_idx].submit_flush(submit);
            self.events.push(done, Event::SsdFlushDone(id));
            return;
        }

        // Pull the data blocks with a one-sided RDMA READ (overlaps any
        // gate wait). A dropped packet parks the pull in go-back-N
        // recovery; `data_ready` stays FAR_FUTURE until the resend
        // completes and the submission waits for it.
        let init_qp = self.target_qp(target_idx, qp);
        match self.fabric.pull_burst(
            &mut self.targets[target_idx].nic,
            &mut self.initiators[init].nic,
            init_qp,
            recv_done,
            bytes,
        ) {
            rio_net::XferStep::Delivered { at } => {
                self.cmds.get_mut(id).expect("cmd exists").data_ready = at;
            }
            rio_net::XferStep::Dropped {
                resume_at,
                pkts_left,
                corrupted,
            } => self.park_retx(id, bytes, resume_at, pkts_left, corrupted, Event::DataResend),
        }

        if let Some(attr) = attr {
            // Apply the release piggyback for this stream.
            let stream = attr.stream;
            self.apply_release(target_idx, stream, self.released_through[stream.0 as usize]);
            // The in-order submission gate may buffer the command.
            let mut released = std::mem::take(&mut self.gate_scratch);
            released.clear();
            self.targets[target_idx]
                .gate
                .arrive_into(attr, id, &mut released);
            if !released.iter().any(|&(_, rid)| rid == id) {
                // The arriving command was held back out of order;
                // bill the buffering to its initiator.
                self.initiators[init].gate_buffered += 1;
            }
            let mut cpu = recv_done;
            for &(r_attr, r_id) in &released {
                cpu = self.rio_release(cpu, target_idx, r_attr, r_id);
            }
            self.gate_scratch = released;
        } else {
            // Baselines submit once the driver CPU work and the data
            // pull both finish (a scheduled event keeps the device
            // clock monotone).
            let submit =
                self.targets[target_idx]
                    .cores
                    .run_on(core, recv_done, self.cfg.cpu.ssd_submit);
            if let Some(tr) = &mut self.trace {
                // No gate on the baseline path: release == driver done.
                tr.rec(tid, Stage::GateRelease, submit);
            }
            self.cmds.get_mut(id).expect("cmd exists").driver_ready = submit;
            self.try_ssd_submit(id);
        }
    }

    /// Submits a command's write to its SSD at the event's instant.
    ///
    /// On integrity runs the target first re-derives the payload digest
    /// over the pulled bytes and checks it against the capsule's stamp
    /// (charging a per-block CRC pass). The fabric NAKs every corrupted
    /// packet back into go-back-N recovery, so by construction the
    /// check always passes here — the assert *is* the end-to-end
    /// guarantee that no corrupted payload reaches media. The write
    /// then carries real payload bytes, sealed on landing.
    fn on_ssd_submit(&mut self, now: SimTime, id: u64) {
        let target_idx = self.cmds.get(id).expect("cmd exists").target;
        if self.targets[target_idx].drr.is_some() {
            // Multi-tenant run: the write queues behind its tenant's
            // DRR share instead of hitting the device directly.
            let (tenant_idx, blocks) = {
                let cmd = self.cmds.get(id).expect("cmd exists");
                (self.tenant_index_of_thread(cmd.thread), cmd.phys.blocks)
            };
            let drr = self.targets[target_idx].drr.as_mut().expect("checked above");
            drr.queues[tenant_idx].push_back((id, now, blocks));
            self.drr_pump(now, target_idx);
            return;
        }
        self.ssd_submit_now(now, id);
    }

    /// Admits a write to its SSD unconditionally (the DRR already ran,
    /// or the run is single-tenant and the scheduler is inert).
    fn ssd_submit_now(&mut self, now: SimTime, id: u64) {
        let (target_idx, ssd_idx, lba, blocks, tag, core, stream, digest) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            let stream = cmd
                .attr
                .map(|a| a.stream.0)
                .unwrap_or(self.threads[cmd.thread].stream.0);
            (
                cmd.target,
                cmd.ssd,
                cmd.phys.lba,
                cmd.phys.blocks,
                cmd.tag,
                self.conn_qp(cmd.thread, cmd.qp),
                stream,
                cmd.digest,
            )
        };
        let (at, images) = if self.integrity {
            let at = self.targets[target_idx].cores.run_on(
                core,
                now,
                self.cfg.cpu.crc_per_block * blocks as u64,
            );
            let seeds = (0..blocks as u64).map(|j| payload::seed_for(stream, tag, lba + j));
            assert_eq!(
                PayloadDigest::over_seeds(seeds.clone()),
                digest,
                "corrupted payload reached the target SSD queue"
            );
            let images = seeds
                .map(|s| BlockImage::Bytes(payload::block_for(s)))
                .collect();
            (at, images)
        } else {
            (now, vec![BlockImage::Tag(tag); blocks as usize])
        };
        if let Some(tm) = &mut self.telemetry {
            tm.ssd_admit(at, target_idx);
        }
        let (_op, done) =
            self.targets[target_idx].ssds[ssd_idx].submit_write(at, lba, images, false);
        self.events.push(done, Event::SsdWriteDone(id));
    }

    /// Runs one target's deficit-round-robin scheduler: while the
    /// admission cap has room and tenants have queued writes, the
    /// cursor tenant earns `weight × quantum` blocks of deficit per
    /// visit and drains queue heads while the deficit lasts. Admitted
    /// writes hit the SSD at `now`; their wait is recorded in the
    /// per-tenant admission histogram.
    fn drr_pump(&mut self, now: SimTime, target_idx: usize) {
        let mut admit: Vec<(usize, u64, SimTime)> = Vec::new();
        if let Some(drr) = &mut self.targets[target_idx].drr {
            let n = drr.queues.len();
            while drr.outstanding < DRR_OUTSTANDING_CAP && !drr.is_empty() {
                let i = drr.cursor;
                if drr.queues[i].is_empty() {
                    // An emptied queue forfeits its leftover deficit
                    // (classic DRR: no banking while idle).
                    drr.deficits[i] = 0;
                    drr.cursor = (i + 1) % n;
                    drr.fresh = true;
                    continue;
                }
                // One quantum per *visit*, not per pump call: the
                // outstanding cap slices a visit across many calls,
                // and re-granting the quantum on every admission slot
                // would collapse the weights into plain round-robin.
                if drr.fresh {
                    drr.deficits[i] += DRR_QUANTUM_BLOCKS * drr.weights[i].max(1) as u64;
                    drr.fresh = false;
                }
                let &(id, queued_at, blocks) = drr.queues[i].front().expect("non-empty");
                if (blocks as u64) > drr.deficits[i] {
                    // Deficit spent; the remainder carries into the
                    // next round so oversized writes still progress.
                    drr.cursor = (i + 1) % n;
                    drr.fresh = true;
                    continue;
                }
                drr.deficits[i] -= blocks as u64;
                drr.queues[i].pop_front();
                drr.outstanding += 1;
                admit.push((i, id, queued_at));
            }
        }
        for (tenant_idx, id, queued_at) in admit {
            self.tenant_gate_wait[tenant_idx].record(now.since(queued_at));
            if let Some(tm) = &mut self.telemetry {
                tm.drr_wait(now, tenant_idx, now.since(queued_at));
            }
            self.ssd_submit_now(now, id);
        }
    }

    /// Submits a command's embedded FLUSH at the event's instant.
    fn on_ssd_flush_submit(&mut self, now: SimTime, id: u64) {
        let (target_idx, ssd_idx) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            (cmd.target, cmd.ssd)
        };
        let (_op, done) = self.targets[target_idx].ssds[ssd_idx].submit_flush(now);
        self.events.push(done, Event::SsdFlushDone(id));
    }

    /// Processes one gate release: PMR append, then SSD submission.
    fn rio_release(
        &mut self,
        cpu: SimTime,
        target_idx: usize,
        attr: OrderingAttr,
        id: u64,
    ) -> SimTime {
        let core = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            self.conn_qp(cmd.thread, cmd.qp)
        };
        let cmd = self.cmds.get_mut(id).expect("cmd exists");
        // Persist the ordering attribute before the data (step ⑤).
        let rec = attr.to_pmr_record(0);
        let target = &mut self.targets[target_idx];
        let log = target.log.as_mut().expect("rio target has a log");
        let (slot, write) = log
            .append(&rec)
            .expect("PMR log full: raise pmr size or lower inflight bound");
        target.ssds[0]
            .pmr_mut()
            .mmio_write(write.offset, &write.bytes);
        target.slots[attr.stream.0 as usize].push_back((attr.seq_end.0, slot));
        target.slot_seen[attr.stream.0 as usize] = true;
        cmd.slot = Some(slot);
        let tid = cmd.trace;
        if let Some(tr) = &mut self.trace {
            tr.rec(tid, Stage::GateRelease, cpu);
        }
        let cpu = self.targets[target_idx]
            .cores
            .run_on(core, cpu, self.cfg.cpu.pmr_append);
        if let Some(tr) = &mut self.trace {
            tr.rec(tid, Stage::PmrPersist, cpu);
        }
        // Submit to the SSD once the driver work and the data pull both
        // finish (via an event, keeping the device clock monotone). A
        // retransmitted data pull may still be in flight here.
        let submit = self.targets[target_idx]
            .cores
            .run_on(core, cpu, self.cfg.cpu.ssd_submit);
        self.cmds.get_mut(id).expect("cmd exists").driver_ready = submit;
        self.try_ssd_submit(id);
        cpu
    }

    /// Applies a delivered-through release from the initiator: frees
    /// PMR slots and advances the superblock head mark.
    fn apply_release(&mut self, target_idx: usize, stream: StreamId, through: u32) {
        let target = &mut self.targets[target_idx];
        let applied = &mut target.applied_release[stream.0 as usize];
        if through <= *applied {
            return;
        }
        *applied = through;
        // Only streams that ever appended a slot here carry a head mark
        // in this target's PMR superblock.
        if target.slot_seen[stream.0 as usize] {
            let q = &mut target.slots[stream.0 as usize];
            let log = target.log.as_mut().expect("rio target");
            while let Some(&(seq_end, slot)) = q.front() {
                if seq_end <= through {
                    q.pop_front();
                    log.free(slot);
                } else {
                    break;
                }
            }
            let w = log.set_head_seq(stream, Seq(through));
            target.ssds[0].pmr_mut().mmio_write(w.offset, &w.bytes);
        }
    }

    fn on_ssd_write_done(&mut self, now: SimTime, id: u64) {
        let (target_idx, core, flush_embedded, is_rio, slot_opt, plp, tid) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            let plp = self.targets[cmd.target].ssds[cmd.ssd].profile().plp;
            (
                cmd.target,
                self.conn_qp(cmd.thread, cmd.qp),
                cmd.flush_embedded,
                cmd.attr.is_some(),
                cmd.slot,
                plp,
                cmd.trace,
            )
        };
        if let Some(tm) = &mut self.telemetry {
            tm.ssd_done(now, target_idx);
        }
        if let Some(drr) = &mut self.targets[target_idx].drr {
            // A completed write frees one admission slot; let the DRR
            // refill it before the completion is processed.
            drr.outstanding = drr.outstanding.saturating_sub(1);
            self.drr_pump(now, target_idx);
        }
        if let Some(tr) = &mut self.trace {
            // An embedded FLUSH overwrites this stamp when it lands
            // (last write wins): media-done is the durability instant.
            tr.rec(tid, Stage::MediaDone, now);
        }
        let mut cpu = self.targets[target_idx]
            .cores
            .run_on(core, now, self.cfg.cpu.irq);
        if flush_embedded {
            // The final request of a durability group embeds a FLUSH
            // (§4.6): run it before completing.
            self.events.push(cpu, Event::SsdFlushSubmit(id));
            return;
        }
        if is_rio && plp {
            // PLP drives: data is durable at completion; toggle the
            // persist bit now (step ⑦).
            if let Some(slot) = slot_opt {
                let target = &mut self.targets[target_idx];
                let w = target.log.as_ref().expect("rio target").mark_persist(slot);
                target.ssds[0].pmr_mut().mmio_write(w.offset, &w.bytes);
            }
            cpu = self.targets[target_idx]
                .cores
                .run_on(core, cpu, self.cfg.cpu.pmr_toggle);
        }
        self.send_completion(cpu, id);
    }

    fn on_ssd_flush_done(&mut self, now: SimTime, id: u64) {
        let (target_idx, core, is_rio, slot_opt, tid) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            (
                cmd.target,
                self.conn_qp(cmd.thread, cmd.qp),
                cmd.attr.is_some(),
                cmd.slot,
                cmd.trace,
            )
        };
        if let Some(tr) = &mut self.trace {
            tr.rec(tid, Stage::MediaDone, now);
        }
        let mut cpu = self.targets[target_idx]
            .cores
            .run_on(core, now, self.cfg.cpu.irq);
        if is_rio {
            // Non-PLP durability: only the FLUSH carrier's persist bit
            // is toggled; it vouches for everything before it (§4.3.2).
            if let Some(slot) = slot_opt {
                let target = &mut self.targets[target_idx];
                let w = target.log.as_ref().expect("rio target").mark_persist(slot);
                target.ssds[0].pmr_mut().mmio_write(w.offset, &w.bytes);
            }
            cpu = self.targets[target_idx]
                .cores
                .run_on(core, cpu, self.cfg.cpu.pmr_toggle);
        }
        self.send_completion(cpu, id);
    }

    /// Sends the completion capsule back to the initiator (with the
    /// same go-back-N recovery as the command capsule).
    fn send_completion(&mut self, now: SimTime, id: u64) {
        let (target_idx, qp) = {
            let cmd = self.cmds.get(id).expect("cmd exists");
            (cmd.target, self.conn_qp(cmd.thread, cmd.qp))
        };
        let step = self.fabric.send_burst(
            &mut self.targets[target_idx].nic,
            qp,
            now,
            COMPLETION_BYTES,
        );
        self.schedule_xfer(id, COMPLETION_BYTES, step, Event::CmdComplete, Event::CompResend);
    }

    // ---- completion side ---------------------------------------------------

    fn on_cmd_complete(&mut self, now: SimTime, id: u64) {
        let cmd = self.cmds.remove(id).expect("cmd exists");
        let t = cmd.thread;
        let cpu = self.init_run_on(t, now, self.cfg.cpu.irq);
        if let Some(tm) = &mut self.telemetry {
            tm.cmd_done(cpu);
        }
        if let Some(tr) = &mut self.trace {
            tr.rec(cmd.trace, Stage::Complete, cpu);
            if cmd.attr.is_none() {
                // No in-order completer on the baseline paths:
                // completion is delivery, the trace closes here.
                tr.finish_unordered(cmd.trace, cpu);
            }
        }

        if cmd.kind == CmdKind::Flush {
            // Linux mode flush leg.
            self.on_sync_flush_complete(cpu, t);
            return;
        }

        let unit_id = cmd.unit;
        let finished = {
            let unit = self.units.get_mut(unit_id).expect("unit exists");
            unit.fragments_done += 1;
            unit.fragments_done == unit.fragments_total
        };
        if !finished {
            return;
        }
        let unit = self.units.remove(unit_id).expect("unit exists");

        if cmd.attr.is_some() {
            // Rio: unroll the unit's parts into the in-order completer.
            let mut delivered = std::mem::take(&mut self.delivered_scratch);
            delivered.clear();
            let init = self.threads[t].init;
            for part in &unit.parts {
                self.initiators[init].completer.on_done_into(part, &mut delivered);
            }
            let stream = unit.parts[0].stream;
            if let Some(tr) = &mut self.trace {
                // Commands delivered through the in-order completer
                // close now; sample its held-back pressure too.
                if let Some(&last) = delivered.last() {
                    tr.deliver(stream.0 as usize, last.0, cpu);
                }
                let held: usize = self
                    .initiators
                    .iter()
                    .map(|i| i.completer.total_pending())
                    .sum();
                tr.note_completer_held(held as u64);
            }
            if self.telemetry.is_some() {
                let held: usize = self
                    .initiators
                    .iter()
                    .map(|i| i.completer.total_pending())
                    .sum();
                let tm = self.telemetry.as_mut().expect("checked above");
                tm.completer_pending(cpu, held as u64);
            }
            for &seq in &delivered {
                let info = self.group_info[stream.0 as usize]
                    .remove(seq.0)
                    .expect("delivered group was submitted");
                if self.track_replay {
                    let popped = self.threads[info.thread].replay.pop_front();
                    debug_assert!(
                        matches!(popped, Some((s, _)) if s == seq.0),
                        "replay buffer out of sync with in-order delivery"
                    );
                }
                self.groups_done += 1;
                self.blocks_done += info.blocks as u64;
                if let Some(tm) = &mut self.telemetry {
                    tm.delivered(cpu, 1, info.blocks as u64);
                }
                self.group_latency.record(cpu.since(info.submitted));
                self.last_completion = self.last_completion.max(cpu);
                self.released_through[stream.0 as usize] =
                    self.released_through[stream.0 as usize].max(seq.0);
                let owner = info.thread;
                let owner_init = self.threads[owner].init;
                let im = &mut self.initiators[owner_init];
                im.groups_done += 1;
                im.blocks_done += info.blocks as u64;
                im.group_latency.record(cpu.since(info.submitted));
                im.finished_at = im.finished_at.max(cpu);
                self.threads[owner].inflight -= 1;
                self.maybe_wake(cpu, owner);
            }
            self.delivered_scratch = delivered;
        } else {
            match self.mode_kind {
                ModeKind::Linux => {
                    // Write leg finished; issue the FLUSH leg.
                    self.groups_done += unit.plain_groups;
                    self.blocks_done += unit.blocks as u64;
                    if let Some(tm) = &mut self.telemetry {
                        tm.delivered(cpu, unit.plain_groups, unit.blocks as u64);
                    }
                    self.group_latency.record(cpu.since(unit.submitted));
                    self.last_completion = self.last_completion.max(cpu);
                    self.note_plain_done(t, &unit, cpu);
                    self.on_sync_write_complete(cpu, t, &cmd);
                }
                _ => {
                    // Orderless / Horae data path.
                    self.groups_done += unit.plain_groups;
                    self.blocks_done += unit.blocks as u64;
                    if let Some(tm) = &mut self.telemetry {
                        tm.delivered(cpu, unit.plain_groups, unit.blocks as u64);
                    }
                    self.group_latency.record(cpu.since(unit.submitted));
                    self.last_completion = self.last_completion.max(cpu);
                    self.note_plain_done(t, &unit, cpu);
                    self.threads[t].inflight -= unit.plain_groups as usize;
                    self.maybe_wake(cpu, t);
                }
            }
        }
    }

    /// Folds a finished baseline (non-Rio) unit into its owning
    /// initiator's per-initiator breakdown.
    fn note_plain_done(&mut self, t: usize, unit: &Unit, cpu: SimTime) {
        let init = self.threads[t].init;
        let im = &mut self.initiators[init];
        im.groups_done += unit.plain_groups;
        im.blocks_done += unit.blocks as u64;
        im.group_latency.record(cpu.since(unit.submitted));
        im.finished_at = im.finished_at.max(cpu);
    }

    /// Linux mode: after the ordered write completes, send a FLUSH leg
    /// when the group requires one, otherwise finish the group.
    fn on_sync_write_complete(&mut self, now: SimTime, t: usize, cmd: &Cmd) {
        debug_assert_eq!(self.threads[t].sync_stage, SyncStage::AwaitWrite);
        let cpu = self.init_run_on(t, now, self.cfg.cpu.ctx_switch);
        if !self.threads[t].cur_flush_leg {
            self.finish_sync_group(cpu, t);
            return;
        }
        self.threads[t].sync_stage = SyncStage::AwaitFlush { remaining: 1 };
        let c = self.init_run_on(t, cpu, self.cfg.cpu.cmd_post);
        let flush_cmd = Cmd {
            kind: CmdKind::Flush,
            thread: t,
            target: cmd.target,
            ssd: cmd.ssd,
            qp: cmd.qp,
            phys: BlockRange::new(0, 1),
            tag: 0,
            attr: None,
            flush_embedded: false,
            unit: u64::MAX,
            data_ready: SimTime::FAR_FUTURE,
            driver_ready: SimTime::FAR_FUTURE,
            retx_pkts: 0,
            retx_bytes: 0,
            retx_corrupt: false,
            digest: PayloadDigest::NONE,
            slot: None,
            trace: TRACE_NONE,
        };
        self.send_cmd(c, cpu, flush_cmd);
    }

    fn on_sync_flush_complete(&mut self, now: SimTime, t: usize) {
        let SyncStage::AwaitFlush { remaining } = self.threads[t].sync_stage else {
            unreachable!("flush completion outside AwaitFlush");
        };
        if remaining > 1 {
            self.threads[t].sync_stage = SyncStage::AwaitFlush {
                remaining: remaining - 1,
            };
            return;
        }
        self.finish_sync_group(now, t);
    }

    /// Finishes the current synchronous group and moves on.
    fn finish_sync_group(&mut self, now: SimTime, t: usize) {
        self.threads[t].sync_stage = SyncStage::Idle;
        self.threads[t].inflight -= 1;
        self.last_completion = self.last_completion.max(now);
        if self.threads[t].cur_sync_after {
            self.finish_op(t, now);
        }
        let cpu = self.init_run_on(t, now, self.cfg.cpu.ctx_switch);
        self.events.push(cpu, Event::Resume(t));
    }

    /// Wakes a parked thread whose window has room again, or whose
    /// sync point (fsync wait) is now satisfied.
    fn maybe_wake(&mut self, now: SimTime, t: usize) {
        if self.threads[t].syncing {
            if self.threads[t].inflight == 0 {
                self.threads[t].syncing = false;
                self.finish_op(t, now);
                self.threads[t].parked = false;
                let cpu = self.init_run_on(t, now, self.cfg.cpu.ctx_switch);
                self.events.push(cpu, Event::Resume(t));
            }
            return;
        }
        if self.threads[t].parked
            && (self.thread_has_work(t) || !self.threads[t].ctrl_pending.is_empty())
            && self.threads[t].inflight < self.cfg.max_inflight_per_stream
        {
            self.threads[t].parked = false;
            let cpu = self.init_run_on(t, now, self.cfg.cpu.ctx_switch);
            self.events.push(cpu, Event::Resume(t));
        }
    }

    // ---- fault injection / in-loop recovery --------------------------------

    /// Handles one scheduled fault: applies the physical failure, runs
    /// the §4.4 recovery (parallel PMR scans, global merge, discard of
    /// out-of-order blocks) inside the event loop, and — for survivable
    /// faults — re-arms every ordering engine and resumes the workload
    /// in a fresh epoch.
    fn on_fault(&mut self, now: SimTime, idx: usize) {
        self.fault_cursor = idx + 1;
        let ev = self.cfg.faults.events[idx].clone();
        // A packet-corruption fault only retunes the fabric's per-packet
        // corruption rate mid-run: nothing crashes, no epoch closes, and
        // every in-flight transfer keeps going (corrupted packets are
        // caught by the receiver CRC and NAKed into go-back-N recovery).
        if let FaultKind::PacketCorrupt { rate } = &ev.kind {
            self.fabric.set_corrupt_rate(*rate);
            return;
        }
        let crashed = ev.kind.hit_targets(self.targets.len());
        let power_fail = ev.kind.is_power_fail();

        // Close the current epoch at the fault instant.
        self.epochs.push(EpochMetrics {
            from: self.epoch_start,
            to: now,
            groups_done: self.groups_done - self.epoch_groups_base,
            blocks_done: self.blocks_done - self.epoch_blocks_base,
            ops_done: self.ops_done - self.epoch_ops_base,
        });
        self.epoch_groups_base = self.groups_done;
        self.epoch_blocks_base = self.blocks_done;
        self.epoch_ops_base = self.ops_done;

        // The initiator's connections die with the fault: every
        // in-flight command, data pull, completion and retransmission
        // timer is lost. Clearing the slabs with the heap keeps stale
        // ids from ever resolving again.
        self.events.clear();
        self.cmds.clear();
        self.units.clear();
        if let Some(tr) = &mut self.trace {
            // Every open trace dies with its command; the rolled-back
            // tail redispatches with fresh traces in the next epoch.
            tr.abort_open(idx as u32);
        }
        if self.telemetry.is_some() {
            // In-flight commands and queued writes died with the
            // connections. The pending-group gauge survives only when
            // replay tracking will account it back (redeliver/requeue)
            // after recovery.
            let drop_pending = !(ev.resume && self.track_replay);
            let tm = self.telemetry.as_mut().expect("checked above");
            tm.crash(now, drop_pending);
        }

        // Physical failure. Power loss kills volatile SSD state on the
        // crashed targets; a NIC reset only kills in-flight transfers.
        // Every NIC reconnects fresh — messages parked in go-back-N
        // recovery died with their resend events, which is exactly the
        // state `crash_reset` forgets.
        if power_fail {
            // On integrity runs the power cut tears the write each SSD
            // was absorbing (half-landed bytes under the intended seal).
            let mut torn = 0u64;
            for &t in &crashed {
                for ssd in &mut self.targets[t].ssds {
                    torn += ssd.crash(now);
                }
            }
            self.integ.torn_injected += torn;
        }
        for t in &mut self.targets {
            t.nic.crash_reset(now);
            // Queued-but-unadmitted tenant work died with its commands.
            if let Some(drr) = &mut t.drr {
                drr.clear();
            }
        }
        for init in &mut self.initiators {
            init.nic.crash_reset(now);
        }

        // Alive targets keep power: every command their SSDs already
        // accepted completes on-device (microseconds) long before the
        // recovery (milliseconds) reads or rolls back state. Settle
        // them now so a pending write cannot land after a discard.
        let mut quiesced = now;
        for (t, target) in self.targets.iter_mut().enumerate() {
            if power_fail && crashed.contains(&t) {
                continue;
            }
            for ssd in &mut target.ssds {
                quiesced = quiesced.max(ssd.quiesce(now));
            }
        }

        // Bit rot strikes *after* the quiesce settles outstanding
        // writes: flips land on data at rest, one bit in each of up to
        // `flips` distinct sealed blocks per SSD of the hit targets
        // (single-bit errors are exactly what CRC-32C always catches,
        // so every injected flip is detectable by the scrub below).
        if let FaultKind::BitRot { flips, .. } = &ev.kind {
            let mut rotted = 0u64;
            for &t in &crashed {
                for ssd in &mut self.targets[t].ssds {
                    rotted += ssd.rot_at_rest(*flips);
                }
            }
            self.integ.rot_injected += rotted;
        }

        // ---- Phase 1: rebuild the global order ------------------------
        // Targets scan in parallel and ship their records in one
        // transfer each; the initiator merges serially. A power-failed
        // target lost its driver and must MMIO-scan the whole PMR
        // region; an alive target's driver still knows its live slots
        // and answers from DRAM — which is why a NIC flap recovers
        // orders of magnitude faster than a power failure.
        let fabric_bw = self.cfg.fabric.bandwidth;
        let one_way_us = self.cfg.fabric.one_way_latency_us;
        let mut scans = Vec::new();
        let mut scan_parallel = SimDuration::ZERO;
        let mut records_total = 0usize;
        for (t, target) in self.targets.iter().enumerate() {
            let plp = target.ssds[0].profile().plp;
            let pmr = target.ssds[0].pmr();
            let outcome = PmrLog::scan(pmr.contents()).expect("formatted PMR");
            let full_scan = power_fail && crashed.contains(&t);
            let (scan_us, bytes) = if full_scan {
                let slots = pmr.len() / 32;
                (slots as f64 * PMR_SCAN_US_PER_SLOT, pmr.len() as u64)
            } else {
                let live = outcome.records.len();
                (
                    live as f64 * DRAM_SCAN_US_PER_RECORD,
                    live as u64 * 32,
                )
            };
            let scan_time = SimDuration::from_micros_f64(scan_us);
            let wire = SimDuration::from_micros_f64(
                bytes as f64 / fabric_bw * 1e6 + 2.0 * one_way_us,
            );
            scan_parallel = scan_parallel.max(scan_time + wire);
            records_total += outcome.records.len();
            scans.push(ServerScan {
                server: ServerId(t as u16),
                plp,
                head_seqs: outcome.head_seqs,
                records: outcome.records,
            });
        }
        let merge_cpu = SimDuration::from_nanos(MERGE_NS_PER_RECORD * records_total as u64);
        let order_rebuild = scan_parallel + merge_cpu;
        let plan = RecoveryPlan::compute(&RecoveryInput {
            scans,
            mode: RecoveryMode::InitiatorRestart,
        });

        // ---- Integrity scrub (before any discard) ---------------------
        // Every sealed media block is re-checksummed — in parallel per
        // SSD — and mismatches are classified *before* Phase 2 runs: a
        // discard erases a block's seal, so scrubbing later would
        // under-count. A corrupt block still owned by a
        // submitted-but-undelivered group is repairable: the stream's
        // redelivery cut drops below that group, rolling it back for
        // resubmission with fresh bytes (exactly-once is preserved —
        // the group was never delivered). A corrupt block outside any
        // tracked group (e.g. rot on already-delivered data) is
        // unrepairable data loss: reported and discarded.
        let mut repair_cut = vec![u32::MAX; self.cfg.total_streams()];
        let mut extra_discards: Vec<(usize, usize, u64)> = Vec::new();
        let mut scrub_parallel = SimDuration::ZERO;
        if self.integrity {
            let mut scrubbed = 0u64;
            let mut detected = 0u64;
            let mut repaired = 0u64;
            let mut unrepairable = 0u64;
            // Physical legs were registered target-major, SSD-minor —
            // the same nested order as this walk.
            let mut leg = 0usize;
            for (t, target) in self.targets.iter().enumerate() {
                for (s_idx, ssd) in target.ssds.iter().enumerate() {
                    let (scanned, corrupt) = ssd.scrub();
                    scrubbed += scanned;
                    scrub_parallel = scrub_parallel.max(SimDuration::from_micros_f64(
                        scanned as f64 * SCRUB_US_PER_BLOCK,
                    ));
                    for &plba in &corrupt {
                        detected += 1;
                        let logical = self.volume.logical_of(leg, plba);
                        let mut owner = None;
                        'find: for th in &self.threads {
                            for &(seq, ref spec) in &th.replay {
                                for m in &spec.members {
                                    if logical >= m.range.lba
                                        && logical < m.range.lba + m.range.blocks as u64
                                    {
                                        owner = Some((th.stream.0 as usize, seq));
                                        break 'find;
                                    }
                                }
                            }
                        }
                        if let Some((s, seq)) = owner {
                            repaired += 1;
                            repair_cut[s] = repair_cut[s].min(seq.saturating_sub(1));
                        } else {
                            unrepairable += 1;
                        }
                        extra_discards.push((t, s_idx, plba));
                    }
                    leg += 1;
                }
            }
            self.integ.scrubbed_records += scrubbed;
            self.integ.media_detected += detected;
            self.integ.media_repaired += repaired;
            self.integ.media_unrepairable += unrepairable;
            self.integ.scrub_us += scrub_parallel.as_nanos() as f64 / 1e3;
        }

        // ---- Phase 2: discard out-of-order blocks ---------------------
        // Discards run concurrently per (server, ssd); within one SSD
        // they serialize at DISCARD_US plus one wire round trip.
        let t_disc = (now + order_rebuild + scrub_parallel).max(quiesced);
        for target in &mut self.targets {
            for ssd in &mut target.ssds {
                ssd.advance(t_disc);
            }
        }
        let mut per_ssd_counts: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        let mut discards = 0usize;
        for sp in &plan.streams {
            for d in &sp.discard {
                discards += 1;
                *per_ssd_counts
                    .entry((d.server.0 as usize, d.ssd as usize))
                    .or_insert(0) += 1;
                let ssd = &mut self.targets[d.server.0 as usize].ssds[d.ssd as usize];
                ssd.submit_discard(t_disc, d.range.lba, d.range.blocks);
            }
        }
        // Scrub-detected corrupt blocks are discarded too: a repairable
        // block's group resubmits fresh bytes, an unrepairable block
        // must at least never read back with a valid-looking payload.
        for &(t, s_idx, plba) in &extra_discards {
            discards += 1;
            *per_ssd_counts.entry((t, s_idx)).or_insert(0) += 1;
            self.targets[t].ssds[s_idx].submit_discard(t_disc, plba, 1);
        }
        let data_recovery = per_ssd_counts
            .values()
            .map(|&n| SimDuration::from_micros_f64(n as f64 * DISCARD_US + 2.0 * one_way_us))
            .max()
            .unwrap_or(SimDuration::ZERO);
        let resumed_at = t_disc + data_recovery;
        if let Some(tm) = &mut self.telemetry {
            tm.recovery_span(idx as u32, now, resumed_at);
        }

        // ---- Re-arm and resume (or halt for one-shot experiments) -----
        let mut streams = Vec::new();
        if ev.resume {
            self.reset_after_recovery(&plan, &repair_cut, resumed_at, &mut streams);
        } else {
            for s in 0..self.cfg.total_streams() {
                let stream = StreamId(s as u16);
                let delivered = Seq(self.released_through[s]);
                let valid = plan
                    .stream(stream)
                    .map(|sp| sp.valid_through)
                    .unwrap_or(delivered);
                streams.push(StreamRecovery {
                    stream,
                    delivered_through: delivered,
                    valid_through: valid,
                    redelivered: 0,
                    requeued: 0,
                });
            }
        }

        self.recoveries.push(RecoveryMetrics {
            fault: idx,
            crashed_targets: crashed,
            power_fail,
            crashed_at: now,
            resumed_at,
            order_rebuild,
            data_recovery,
            records_scanned: records_total,
            discards,
            streams,
            plan,
        });

        self.epoch_start = resumed_at;
        if ev.resume {
            // The heap clear above killed the later fault events too;
            // re-arm them. A fault scheduled inside this recovery
            // window slips to the resume instant.
            for j in (idx + 1)..self.cfg.faults.events.len() {
                let at = self.cfg.faults.events[j].at.max(resumed_at);
                self.events.push(at, Event::Fault(j as u32));
            }
            for t in 0..self.threads.len() {
                self.events.push(resumed_at, Event::Resume(t));
            }
        }
    }

    /// Resets every ordering engine to the recovery plan's resume
    /// points, completes the durable-but-unacknowledged prefix, and
    /// hands each stream's rolled-back groups back to its thread.
    fn reset_after_recovery(
        &mut self,
        plan: &RecoveryPlan,
        repair_cut: &[u32],
        resumed_at: SimTime,
        out: &mut Vec<StreamRecovery>,
    ) {
        let n_streams = self.cfg.total_streams();
        let n_threads = self.threads.len();
        let mut resume_seq = vec![0u32; n_streams];
        for s in 0..n_streams {
            let stream = StreamId(s as u16);
            let delivered = self.released_through[s];
            let sp = plan.stream(stream);
            let valid = sp.map(|p| p.valid_through.0).unwrap_or(delivered);
            // The scrub may pull the redelivery cut *below* the plan's
            // valid mark: a durable-but-corrupt (torn/rotted) group
            // must roll back and resubmit instead of redelivering.
            let valid = valid.min(repair_cut[s]);
            // The new epoch opens above everything the app saw complete
            // AND everything the storage kept: on volatile drives the
            // prefix can cut below the delivered mark (acked data was
            // lost — ordinary non-fsync write-loss semantics), and on
            // PLP drives it can extend above it (durable groups whose
            // completions were in flight).
            let resume = valid.max(delivered);
            resume_seq[s] = resume;

            let mut redelivered = 0u64;
            let mut requeued = 0u64;
            if s < n_threads {
                let t = s;
                let mut replay = std::mem::take(&mut self.threads[t].replay);
                // 1. Deliver the durable-but-unacknowledged prefix now:
                //    its data survived in storage order, so re-executing
                //    it would double-apply.
                while let Some(&(seq, _)) = replay.front() {
                    if seq > valid {
                        break;
                    }
                    let (seq, spec) = replay.pop_front().expect("front exists");
                    let info = self.group_info[s]
                        .remove(seq)
                        .expect("undelivered group is tracked");
                    self.groups_done += 1;
                    self.blocks_done += spec.blocks() as u64;
                    if let Some(tm) = &mut self.telemetry {
                        tm.delivered(resumed_at, 1, spec.blocks() as u64);
                    }
                    self.group_latency.record(resumed_at.since(info.submitted));
                    let init = self.threads[t].init;
                    let im = &mut self.initiators[init];
                    im.groups_done += 1;
                    im.blocks_done += spec.blocks() as u64;
                    im.group_latency.record(resumed_at.since(info.submitted));
                    im.finished_at = im.finished_at.max(resumed_at);
                    redelivered += 1;
                }
                // 2. Everything beyond the prefix was rolled back:
                //    re-queue it ahead of the thread's ungenerated
                //    script, preserving submission order.
                requeued = replay.len() as u64;
                if requeued > 0 {
                    if let Some(tm) = &mut self.telemetry {
                        tm.requeued(resumed_at, requeued);
                    }
                }
                while let Some((_, spec)) = replay.pop_back() {
                    self.threads[t].queue.push_front(spec);
                }
                self.group_info[s] = GroupInfoRing::default();
                if redelivered > 0 {
                    self.last_completion = self.last_completion.max(resumed_at);
                }
                let th = &mut self.threads[t];
                th.inflight = 0;
                th.parked = false;
                th.done_submitting = false;
                th.sync_stage = SyncStage::Idle;
                let was_syncing = th.syncing;
                th.syncing = false;
                if was_syncing && requeued == 0 {
                    // The op's sync point cleared during recovery; a
                    // re-queued commit group re-arms it on resubmission
                    // instead.
                    self.finish_op(t, resumed_at);
                }
            }

            // 3. Re-seed sequencer, completer and release bookkeeping.
            // When the scrub cut the resume point below the plan's, the
            // plan's per-target `resume_prev` marks may reference seqs
            // beyond it — seqs that roll back and will redispatch under
            // *new* numbers. Clamp them: a fresh gate waiting on such a
            // seq would buffer forever.
            let resume_prev: Vec<Seq> = sp
                .map(|p| {
                    p.resume_prev
                        .iter()
                        .map(|q| Seq(q.0.min(resume)))
                        .collect()
                })
                .unwrap_or_else(|| vec![Seq::HEAD; self.targets.len()]);
            let init = self.initiator_of_stream(s);
            self.initiators[init]
                .sequencer
                .reset_stream(stream, Seq(resume + 1), &resume_prev);
            self.initiators[init]
                .completer
                .reset_stream(stream, Seq(resume));
            self.released_through[s] = resume;

            out.push(StreamRecovery {
                stream,
                delivered_through: Seq(delivered),
                valid_through: Seq(valid),
                redelivered,
                requeued,
            });
        }

        // 4. Reconnect every target: a fresh gate epoch (dispatch
        //    ordinals restarted with the sequencer), PMR logs
        //    re-formatted with the new epoch's head marks so a later
        //    crash scans only post-resume records.
        for target in &mut self.targets {
            target.gate = SubmissionGate::with_streams(n_streams);
            for q in &mut target.slots {
                q.clear();
            }
            if target.log.is_some() {
                let pmr_len = target.ssds[0].pmr().len();
                let (log, writes) = PmrLog::format(pmr_len, n_streams);
                for w in &writes {
                    target.apply_pmr_write(w);
                }
                for (s, &head) in resume_seq.iter().enumerate() {
                    let w = log.set_head_seq(StreamId(s as u16), Seq(head));
                    target.apply_pmr_write(&w);
                    target.slot_seen[s] = true;
                    target.applied_release[s] = head;
                }
                target.log = Some(log);
            }
        }
    }

    // ---- test access -------------------------------------------------------

    /// Immutable access to a target's SSDs.
    #[cfg(test)]
    pub(crate) fn target_ssds(&self, target: usize) -> &[Ssd] {
        &self.targets[target].ssds
    }

    /// Number of targets.
    #[cfg(test)]
    pub(crate) fn n_targets(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        FabricConfig, FaultEvent, FaultKind, FaultPlan, InitiatorConfig, TargetConfig,
    };
    use proptest::prelude::*;
    use rio_net::FabricProfile;
    use rio_ssd::SsdProfile;

    fn small_cfg(mode: OrderingMode, threads: usize) -> ClusterConfig {
        ClusterConfig {
            seed: 7,
            mode,
            initiator_cores: 8,
            targets: vec![TargetConfig {
                ssds: vec![SsdProfile::optane905p()],
                cores: 8,
            }],
            fabric: FabricProfile::connectx6(),
            net: Default::default(),
            cpu: Default::default(),
            streams: threads,
            qps_per_target: 8,
            stripe_blocks: 1,
            max_inflight_per_stream: 16,
            plug_merge: true,
            pin_stream_to_qp: true,
            integrity: false,
            faults: FaultPlan::none(),
            trace: None,
            telemetry: None,
            initiators: Vec::new(),
        }
    }

    fn run(mode: OrderingMode, threads: usize, groups: u64) -> RunMetrics {
        let cfg = small_cfg(mode, threads);
        let wl = Workload::random_4k(threads, groups);
        Cluster::new(cfg, wl).run()
    }

    #[test]
    fn orderless_completes_all_groups() {
        let m = run(OrderingMode::Orderless, 2, 200);
        assert_eq!(m.groups_done, 400);
        assert_eq!(m.blocks_done, 400);
        assert!(m.span.as_nanos() > 0);
        assert!(m.initiator_util > 0.0);
    }

    #[test]
    fn rio_completes_all_groups() {
        let m = run(OrderingMode::Rio { merge: true }, 2, 200);
        assert_eq!(m.groups_done, 400);
        assert_eq!(m.blocks_done, 400);
    }

    #[test]
    fn linux_completes_all_groups() {
        let m = run(OrderingMode::LinuxNvmf, 2, 50);
        assert_eq!(m.groups_done, 100);
    }

    #[test]
    fn horae_completes_all_groups() {
        let m = run(OrderingMode::Horae, 2, 100);
        assert_eq!(m.groups_done, 200);
    }

    #[test]
    fn ordering_cost_ranking_holds() {
        // The paper's headline shape: orderless ≥ Rio > Horae > Linux.
        let orderless = run(OrderingMode::Orderless, 4, 300).block_iops();
        let rio = run(OrderingMode::Rio { merge: true }, 4, 300).block_iops();
        let horae = run(OrderingMode::Horae, 4, 300).block_iops();
        let linux = run(OrderingMode::LinuxNvmf, 4, 100).block_iops();
        assert!(rio > horae, "rio {rio:.0} <= horae {horae:.0}");
        assert!(horae > linux, "horae {horae:.0} <= linux {linux:.0}");
        assert!(
            rio > orderless * 0.5,
            "rio {rio:.0} too far below orderless {orderless:.0}"
        );
    }

    #[test]
    fn rio_merging_reduces_commands() {
        let cfg = small_cfg(OrderingMode::Rio { merge: true }, 1);
        let wl = Workload::seq_batched(1, 256, 8, 1);
        let merged = Cluster::new(cfg, wl.clone()).run();
        let cfg = small_cfg(OrderingMode::Rio { merge: false }, 1);
        let unmerged = Cluster::new(cfg, wl).run();
        assert_eq!(merged.groups_done, unmerged.groups_done);
        assert!(
            merged.commands_sent * 2 <= unmerged.commands_sent,
            "merged {} vs unmerged {}",
            merged.commands_sent,
            unmerged.commands_sent
        );
    }

    #[test]
    fn journal_triplet_halves_commands() {
        // §4.1: two consecutive ordered requests merge into one command.
        let cfg = small_cfg(OrderingMode::Rio { merge: true }, 1);
        let wl = Workload::journal_triplet(1, 100);
        let m = Cluster::new(cfg, wl).run();
        assert_eq!(m.groups_done, 200);
        assert!(
            m.commands_sent <= 110,
            "expected ~100 merged commands, sent {}",
            m.commands_sent
        );
    }

    #[test]
    fn fsync_journal_completes_in_all_modes() {
        for mode in [
            OrderingMode::Rio { merge: true },
            OrderingMode::Horae,
            OrderingMode::LinuxNvmf,
        ] {
            let cfg = small_cfg(mode.clone(), 2);
            let wl = Workload::fsync_append(2, 50);
            let m = Cluster::new(cfg, wl).run();
            assert_eq!(m.ops_done, 100, "{} lost fsyncs", mode.label());
            assert_eq!(m.groups_done, 300, "{}: 3 groups per op", mode.label());
            assert!(m.op_latency.count() == 100);
            assert!(m.op_latency.mean().as_micros_f64() > 1.0);
        }
    }

    #[test]
    fn fsync_rio_beats_ext4_and_horae_latency() {
        // The Fig. 13/14 shape: RioFS < HoraeFS < Ext4 fsync latency.
        let lat = |mode: OrderingMode| {
            let cfg = small_cfg(mode, 1);
            let wl = Workload::fsync_append(1, 200);
            let m = Cluster::new(cfg, wl).run();
            m.op_latency.mean().as_micros_f64()
        };
        let rio = lat(OrderingMode::Rio { merge: true });
        let horae = lat(OrderingMode::Horae);
        let ext4 = lat(OrderingMode::LinuxNvmf);
        assert!(rio < horae, "rio {rio:.1}us !< horae {horae:.1}us");
        assert!(horae < ext4, "horae {horae:.1}us !< ext4 {ext4:.1}us");
    }

    #[test]
    fn fsync_stage_breakdown_shape() {
        // Fig. 14: Rio dispatches JM/JC immediately (CPU-only), Horae
        // pays a control-path round trip per stage.
        let stages = |mode: OrderingMode| {
            let cfg = small_cfg(mode, 1);
            let wl = Workload::fsync_append(1, 100);
            let m = Cluster::new(cfg, wl).run();
            [
                m.stage_dispatch[0].mean(),
                m.stage_dispatch[1].mean(),
                m.stage_dispatch[2].mean(),
                m.stage_dispatch[3].mean(),
            ]
        };
        let rio = stages(OrderingMode::Rio { merge: true });
        let horae = stages(OrderingMode::Horae);
        // JM dispatch: Horae's control path makes it an order of
        // magnitude slower than Rio's CPU-only dispatch.
        assert!(
            horae[1] > rio[1] * 4.0,
            "horae JM {:.0}ns vs rio JM {:.0}ns",
            horae[1],
            rio[1]
        );
        assert!(rio[1] < 5_000.0, "rio JM dispatch should be ~CPU-only");
        // Both spend comparable time waiting on I/O.
        assert!(rio[3] > 0.0 && horae[3] > 0.0);
    }

    #[test]
    fn qp_pinning_keeps_the_gate_idle() {
        // Principle 2: with streams pinned to queue pairs, RC in-order
        // delivery means the gate never buffers; scattering commands
        // across QPs forces it to.
        let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, 4);
        cfg.pin_stream_to_qp = true;
        let pinned = Cluster::new(cfg, Workload::random_4k(4, 400)).run();
        assert_eq!(pinned.gate_buffered, 0, "pinned streams must not buffer");

        let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, 4);
        cfg.pin_stream_to_qp = false;
        let scattered = Cluster::new(cfg, Workload::random_4k(4, 400)).run();
        assert!(
            scattered.gate_buffered > 0,
            "scattered QPs should reorder arrivals"
        );
        assert_eq!(
            scattered.groups_done, pinned.groups_done,
            "ordering still intact"
        );
    }

    #[test]
    fn lossy_fabric_completes_and_counts_retransmits() {
        let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, 2);
        cfg.net = FabricConfig::lossy(0.05, 2);
        cfg.net.migrate_every = 64;
        let m = Cluster::new(cfg, Workload::random_4k(2, 300)).run();
        assert_eq!(m.groups_done, 600, "loss must not lose groups");
        assert_eq!(m.blocks_done, 600);
        assert!(m.net.drops > 0, "5% loss must drop packets");
        assert!(m.net.retransmits > 0, "drops must be retransmitted");
        assert!(m.net.retx_rounds > 0);
        assert_eq!(m.net.per_path.len(), 2, "both paths reported");
        assert!(
            m.net.per_path.iter().all(|p| p.packets > 0),
            "migration + QP spread must load both paths: {:?}",
            m.net.per_path
        );
    }

    #[test]
    fn retransmission_reorders_into_the_gate() {
        // Streams are pinned to QPs, so without loss the gate never
        // buffers. A retransmitted command is overtaken by its QP
        // successors, and the target-side gate must absorb exactly
        // that reordering (the paper's §4.3.1 argument, now driven by
        // the fabric instead of the scatter ablation).
        let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, 2);
        cfg.net = FabricConfig::lossy(0.08, 1);
        let lossy = Cluster::new(cfg, Workload::random_4k(2, 400)).run();
        assert!(
            lossy.gate_buffered > 0,
            "retransmitted commands should arrive after successors"
        );
        assert_eq!(lossy.groups_done, 800, "ordering still intact");

        let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, 2);
        cfg.net = FabricConfig::default();
        let clean = Cluster::new(cfg, Workload::random_4k(2, 400)).run();
        assert_eq!(clean.gate_buffered, 0, "lossless pinned gate stays idle");
    }

    #[test]
    fn lossy_fabric_degrades_linux_more_than_rio() {
        // The fig_lossy_fabric headline in miniature: with a deep
        // asynchronous window (Rio's whole design), per-stream recovery
        // stalls overlap and the SSD stays fed, so relative throughput
        // loss under packet loss is far worse for the serial Linux
        // path than for Rio's pipelined one.
        let run = |mode: OrderingMode, loss: f64, groups: u64| {
            let mut cfg = small_cfg(mode, 4);
            cfg.max_inflight_per_stream = 64;
            cfg.net = FabricConfig::lossy(loss, 1);
            Cluster::new(cfg, Workload::random_4k(4, groups))
                .run()
                .block_iops()
        };
        let rio_drop = 1.0
            - run(OrderingMode::Rio { merge: true }, 0.02, 2000)
                / run(OrderingMode::Rio { merge: true }, 0.0, 2000);
        let linux_drop = 1.0
            - run(OrderingMode::LinuxNvmf, 0.02, 300) / run(OrderingMode::LinuxNvmf, 0.0, 300);
        assert!(
            linux_drop > rio_drop,
            "linux lost {linux_drop:.3} vs rio {rio_drop:.3}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// For any loss rate < 1 and any path layout, every submitted
        /// group completes exactly once under every ordering engine,
        /// and retransmission never breaks the per-mode invariants.
        #[test]
        fn prop_lossy_exactly_once_all_modes(
            loss in 0.0f64..0.5,
            paths in 1usize..5,
            migrate in 0u64..3,
            seed in any::<u64>(),
        ) {
            for mode in [
                OrderingMode::Orderless,
                OrderingMode::LinuxNvmf,
                OrderingMode::Horae,
                OrderingMode::Rio { merge: true },
            ] {
                let groups = if mode == OrderingMode::LinuxNvmf { 15 } else { 60 };
                let mut cfg = small_cfg(mode.clone(), 2);
                cfg.seed = seed;
                cfg.net = FabricConfig::lossy(loss, paths);
                cfg.net.rto_us = 25.0;
                cfg.net.migrate_every = migrate * 32;
                let m = Cluster::new(cfg, Workload::random_4k(2, groups)).run();
                prop_assert_eq!(m.groups_done, 2 * groups, "{} lost groups", mode.label());
                prop_assert_eq!(m.blocks_done, 2 * groups, "{} lost blocks", mode.label());
                if loss > 0.01 {
                    prop_assert!(
                        m.net.drops == 0 || m.net.retransmits > 0,
                        "{}: drops without retransmission", mode.label()
                    );
                }
            }
        }
    }

    // ---- fault injection ---------------------------------------------------

    fn two_target_cfg(threads: usize) -> ClusterConfig {
        ClusterConfig {
            seed: 9,
            mode: OrderingMode::Rio { merge: true },
            initiator_cores: 8,
            targets: vec![
                TargetConfig {
                    ssds: vec![SsdProfile::optane905p()],
                    cores: 8,
                },
                TargetConfig {
                    ssds: vec![SsdProfile::optane905p()],
                    cores: 8,
                },
            ],
            fabric: FabricProfile::connectx6(),
            net: Default::default(),
            cpu: Default::default(),
            streams: threads,
            qps_per_target: 8,
            stripe_blocks: 1,
            max_inflight_per_stream: 16,
            plug_merge: true,
            pin_stream_to_qp: true,
            integrity: false,
            faults: FaultPlan::none(),
            trace: None,
            telemetry: None,
            initiators: Vec::new(),
        }
    }

    /// The acceptance scenario: loss = 1e-3, 2 paths, one of two
    /// targets power-fails mid-flight; the run survives, completes
    /// every group exactly once, and replays byte-identically.
    #[test]
    fn survivable_crash_completes_every_group_exactly_once() {
        let threads = 2usize;
        let groups = 600u64;
        let lossy = |faults: FaultPlan| {
            let mut cfg = two_target_cfg(threads);
            cfg.net = FabricConfig::lossy(1e-3, 2);
            cfg.faults = faults;
            Cluster::new(cfg, Workload::random_4k(threads, groups)).run()
        };
        // Probe the crash-free span, then crash target 1 mid-flight.
        let baseline = lossy(FaultPlan::none());
        let crash_at = SimTime::from_nanos(baseline.finished_at.as_nanos() / 2);
        let run = || lossy(FaultPlan::survivable_crash(crash_at, vec![1]));
        let m = run();

        assert_eq!(m.groups_done, threads as u64 * groups, "exactly once");
        assert_eq!(m.blocks_done, threads as u64 * groups);
        assert_eq!(m.recoveries.len(), 1);
        assert_eq!(m.epochs.len(), 2, "one crash splits the run in two");
        let r = &m.recoveries[0];
        assert_eq!(r.crashed_targets, vec![1]);
        assert!(r.power_fail);
        assert_eq!(r.crashed_at, crash_at);
        assert!(r.resumed_at > r.crashed_at, "recovery takes time");
        assert!(r.records_scanned > 0, "mid-flight work left records");
        let requeued: u64 = r.streams.iter().map(|s| s.requeued).sum();
        assert!(requeued > 0, "a mid-flight crash must roll back work");
        assert!(
            m.finished_at > r.resumed_at,
            "the workload resumed to the configured end"
        );
        // PLP drives: the valid prefix covers everything the app saw
        // complete — no acknowledged group is ever rolled back.
        for s in &r.streams {
            assert!(s.valid_through >= s.delivered_through);
        }
        assert_eq!(
            m.epochs[0].groups_done + m.epochs[1].groups_done,
            m.groups_done,
            "epochs partition the run"
        );
        assert_eq!(m, run(), "same seed replays byte-identically");
    }

    #[test]
    fn nic_reset_fault_recovers_without_power_loss() {
        let threads = 2usize;
        let groups = 400u64;
        let baseline = Cluster::new(
            two_target_cfg(threads),
            Workload::random_4k(threads, groups),
        )
        .run();
        let mut cfg = two_target_cfg(threads);
        cfg.faults = FaultPlan {
            events: vec![FaultEvent {
                at: SimTime::from_nanos(baseline.finished_at.as_nanos() / 2),
                kind: FaultKind::NicReset { target: 0 },
                resume: true,
            }],
        };
        let m = Cluster::new(cfg, Workload::random_4k(threads, groups)).run();
        assert_eq!(m.groups_done, threads as u64 * groups);
        assert_eq!(m.recoveries.len(), 1);
        assert!(!m.recoveries[0].power_fail, "link flap, not power failure");
        assert_eq!(m.recoveries[0].crashed_targets, vec![0]);
    }

    #[test]
    fn a_run_survives_multiple_faults() {
        let threads = 2usize;
        let groups = 900u64;
        let baseline = Cluster::new(
            two_target_cfg(threads),
            Workload::random_4k(threads, groups),
        )
        .run();
        let span = baseline.finished_at.as_nanos();
        let mut cfg = two_target_cfg(threads);
        cfg.faults = FaultPlan {
            events: vec![
                FaultEvent {
                    at: SimTime::from_nanos(span / 3),
                    kind: FaultKind::PowerFail { targets: vec![0] },
                    resume: true,
                },
                FaultEvent {
                    at: SimTime::from_nanos(2 * span / 3),
                    kind: FaultKind::PowerFail {
                        targets: Vec::new(),
                    },
                    resume: true,
                },
            ],
        };
        let m = Cluster::new(cfg, Workload::random_4k(threads, groups)).run();
        assert_eq!(m.groups_done, threads as u64 * groups, "exactly once");
        assert_eq!(m.recoveries.len(), 2);
        assert_eq!(m.epochs.len(), 3);
        assert_eq!(m.recoveries[1].crashed_targets, vec![0, 1]);
        assert_eq!(
            m.epochs.iter().map(|e| e.groups_done).sum::<u64>(),
            m.groups_done
        );
    }

    #[test]
    fn crash_during_fsync_ops_preserves_op_count() {
        let threads = 2usize;
        let ops = 60u64;
        let baseline = Cluster::new(
            two_target_cfg(threads),
            Workload::fsync_append(threads, ops),
        )
        .run();
        let mut cfg = two_target_cfg(threads);
        cfg.net = FabricConfig::lossy(1e-3, 2);
        cfg.faults = FaultPlan::survivable_crash(
            SimTime::from_nanos(baseline.finished_at.as_nanos() / 2),
            vec![1],
        );
        let m = Cluster::new(cfg, Workload::fsync_append(threads, ops)).run();
        assert_eq!(m.ops_done, threads as u64 * ops, "every fsync returns once");
        assert_eq!(m.groups_done, threads as u64 * ops * 3, "D/JM/JC each once");
    }

    #[test]
    #[should_panic(expected = "fault injection requires a Rio mode")]
    fn fault_plan_rejected_outside_rio() {
        let mut cfg = two_target_cfg(2);
        cfg.mode = OrderingMode::Orderless;
        cfg.faults = FaultPlan::survivable_crash(SimTime::from_nanos(1_000), vec![0]);
        let _ = Cluster::new(cfg, Workload::random_4k(2, 10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Crash-under-loss: a random target subset power-fails at a
        /// random mid-flight instant with loss in [0, 1e-2) over 1, 2
        /// or 4 paths. Afterwards every fsync'ed group is exactly-once
        /// (each op returns once, each of its groups completes once),
        /// and on these PLP drives the valid prefix always covers the
        /// acknowledged prefix — an acked group is either fully durable
        /// in storage order or was never acked and re-executes.
        #[test]
        fn prop_crash_under_loss_exactly_once(
            loss in 0.0f64..0.01,
            paths_sel in 0usize..3,
            subset in 1usize..4,
            frac in 0.2f64..0.8,
            seed in any::<u64>(),
        ) {
            let paths = [1usize, 2, 4][paths_sel];
            let threads = 2usize;
            let ops = 40u64;
            let mut cfg = two_target_cfg(threads);
            cfg.seed = seed;
            cfg.net = FabricConfig::lossy(loss, paths);
            let baseline =
                Cluster::new(cfg.clone(), Workload::fsync_append(threads, ops)).run();
            let crash_at =
                SimTime::from_nanos((baseline.finished_at.as_nanos() as f64 * frac) as u64);
            let targets: Vec<usize> = (0..2).filter(|t| subset & (1 << t) != 0).collect();
            let mut crashing = cfg.clone();
            crashing.faults = FaultPlan::survivable_crash(crash_at, targets.clone());
            let m = Cluster::new(crashing, Workload::fsync_append(threads, ops)).run();

            prop_assert_eq!(m.ops_done, threads as u64 * ops, "fsyncs exactly once");
            prop_assert_eq!(m.groups_done, baseline.groups_done, "groups exactly once");
            prop_assert_eq!(m.blocks_done, baseline.blocks_done);
            prop_assert_eq!(m.recoveries.len(), 1);
            let r = &m.recoveries[0];
            prop_assert_eq!(&r.crashed_targets, &targets);
            for s in &r.streams {
                prop_assert!(
                    s.valid_through >= s.delivered_through,
                    "PLP: acked prefix {:?} beyond valid prefix {:?}",
                    s.delivered_through, s.valid_through
                );
            }
            for sp in &r.plan.streams {
                prop_assert!(sp.valid_through >= sp.resume_head);
            }

            // Same scenario with end-to-end integrity on: every sealed
            // media block must read back byte-for-byte as submitted
            // (recovered payload == submitted payload), with a clean
            // corruption ledger.
            let mut verified = cfg;
            verified.integrity = true;
            verified.faults = FaultPlan::survivable_crash(crash_at, targets);
            let v = Cluster::new(verified, Workload::fsync_append(threads, ops))
                .run_and_verify();
            prop_assert_eq!(v.ops_done, threads as u64 * ops);
            prop_assert_eq!(v.groups_done, baseline.groups_done);
            prop_assert!(v.integrity.balanced(), "ledger: {:?}", v.integrity);
        }
    }

    // ---- end-to-end data integrity ----------------------------------------

    #[test]
    fn integrity_off_keeps_the_ledger_empty() {
        let m = run(OrderingMode::Rio { merge: true }, 2, 200);
        assert_eq!(m.integrity, IntegrityMetrics::default());
    }

    #[test]
    fn integrity_on_clean_run_lands_verified_payloads() {
        let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, 2);
        cfg.integrity = true;
        let m = Cluster::new(cfg, Workload::random_4k(2, 200)).run_and_verify();
        assert_eq!(m.groups_done, 400);
        assert_eq!(m.integrity.injected(), 0, "nothing injected: {:?}", m.integrity);
        assert!(m.integrity.balanced());
    }

    #[test]
    fn wire_corruption_is_detected_refetched_and_never_delivered() {
        let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, 2);
        cfg.net.corrupt_rate = 0.01;
        let m = Cluster::new(cfg, Workload::random_4k(2, 400)).run_and_verify();
        assert_eq!(m.groups_done, 800, "corruption must not lose groups");
        assert!(m.integrity.wire_injected > 0, "1% corruption must strike");
        assert_eq!(
            m.integrity.wire_injected, m.integrity.wire_detected,
            "every corrupted packet is caught by the receiver CRC"
        );
        assert!(
            m.integrity.wire_refetched >= m.integrity.wire_detected,
            "go-back-N re-fetches at least the corrupted packet"
        );
        assert!(m.net.retx_rounds > 0, "NAKs enter the recovery machinery");
        assert!(m.recoveries.is_empty(), "wire corruption needs no recovery");
        assert!(m.integrity.balanced());
    }

    #[test]
    fn packet_corrupt_fault_turns_corruption_on_mid_run() {
        let threads = 2usize;
        let groups = 400u64;
        let baseline = Cluster::new(
            small_cfg(OrderingMode::Rio { merge: true }, threads),
            Workload::random_4k(threads, groups),
        )
        .run();
        let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, threads);
        cfg.faults = FaultPlan {
            events: vec![FaultEvent {
                at: SimTime::from_nanos(baseline.finished_at.as_nanos() / 2),
                kind: FaultKind::PacketCorrupt { rate: 0.05 },
                resume: true,
            }],
        };
        let m = Cluster::new(cfg, Workload::random_4k(threads, groups)).run_and_verify();
        assert_eq!(m.groups_done, threads as u64 * groups);
        assert!(
            m.integrity.wire_injected > 0,
            "the second half of the run must see corruption"
        );
        assert!(m.recoveries.is_empty(), "a rate change is not a crash");
        assert_eq!(m.epochs.len(), 1, "no epoch closes on a rate change");
        assert!(m.integrity.balanced());
    }

    #[test]
    fn torn_write_tears_are_scrubbed_and_repaired() {
        let threads = 2usize;
        let groups = 600u64;
        // Volatile-cache drives: the write cache is essentially never
        // empty mid-run, so the power cut reliably catches a write
        // mid-drain and tears it. (A PLP Optane completes writes in
        // microseconds and may be idle at any given instant.)
        let volatile = |mut cfg: ClusterConfig| {
            for t in &mut cfg.targets {
                t.ssds = vec![SsdProfile::pm981()];
            }
            cfg
        };
        let baseline = Cluster::new(
            volatile(two_target_cfg(threads)),
            Workload::random_4k(threads, groups),
        )
        .run();
        let mut cfg = volatile(two_target_cfg(threads));
        cfg.integrity = true;
        cfg.faults = FaultPlan {
            events: vec![FaultEvent {
                at: SimTime::from_nanos(baseline.finished_at.as_nanos() / 2),
                kind: FaultKind::TornWrite { targets: vec![1] },
                resume: true,
            }],
        };
        let m = Cluster::new(cfg, Workload::random_4k(threads, groups)).run_and_verify();
        assert_eq!(m.groups_done, threads as u64 * groups, "exactly once");
        assert_eq!(m.recoveries.len(), 1);
        assert!(m.recoveries[0].power_fail, "a torn write rides a power cut");
        assert!(
            m.integrity.torn_injected >= 1,
            "a mid-flight power cut tears the in-flight write"
        );
        assert!(m.integrity.balanced(), "ledger: {:?}", m.integrity);
        assert!(m.integrity.scrubbed_records > 0);
        assert!(m.integrity.scrub_us > 0.0);
    }

    #[test]
    fn bit_rot_is_detected_and_repaired_or_reported() {
        let threads = 2usize;
        let groups = 600u64;
        let baseline = Cluster::new(
            two_target_cfg(threads),
            Workload::random_4k(threads, groups),
        )
        .run();
        let mut cfg = two_target_cfg(threads);
        cfg.faults = FaultPlan {
            events: vec![FaultEvent {
                at: SimTime::from_nanos(baseline.finished_at.as_nanos() / 2),
                kind: FaultKind::BitRot {
                    targets: Vec::new(),
                    flips: 3,
                },
                resume: true,
            }],
        };
        let m = Cluster::new(cfg, Workload::random_4k(threads, groups)).run_and_verify();
        assert_eq!(m.groups_done, threads as u64 * groups, "exactly once");
        assert_eq!(m.recoveries.len(), 1);
        assert!(!m.recoveries[0].power_fail, "rot strikes powered media");
        assert!(m.integrity.rot_injected > 0, "flips must land");
        assert_eq!(
            m.integrity.media_detected,
            m.integrity.torn_injected + m.integrity.rot_injected,
            "the scrub finds every injected media corruption"
        );
        assert_eq!(
            m.integrity.media_detected,
            m.integrity.media_repaired + m.integrity.media_unrepairable,
            "every detected block is repaired or written off"
        );
        assert!(m.integrity.balanced());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The headline guarantee: under any combination of packet
        /// corruption, packet loss and multi-path layout, in every
        /// ordering mode, no corrupted payload is ever delivered —
        /// every injected corruption is detected, every group
        /// completes exactly once, and the media ends byte-for-byte
        /// equal to what was submitted.
        #[test]
        fn prop_corruption_never_delivered(
            corrupt in 0.0f64..0.2,
            loss in 0.0f64..0.05,
            paths_sel in 0usize..3,
            seed in any::<u64>(),
        ) {
            let paths = [1usize, 2, 4][paths_sel];
            for mode in [
                OrderingMode::Orderless,
                OrderingMode::LinuxNvmf,
                OrderingMode::Horae,
                OrderingMode::Rio { merge: true },
            ] {
                let groups = if mode == OrderingMode::LinuxNvmf { 15 } else { 60 };
                let mut cfg = small_cfg(mode.clone(), 2);
                cfg.seed = seed;
                cfg.net = FabricConfig::lossy(loss, paths);
                cfg.net.corrupt_rate = corrupt;
                cfg.net.rto_us = 25.0;
                let m = Cluster::new(cfg, Workload::random_4k(2, groups)).run_and_verify();
                prop_assert_eq!(m.groups_done, 2 * groups, "{} lost groups", mode.label());
                prop_assert_eq!(
                    m.integrity.wire_injected, m.integrity.wire_detected,
                    "{}: corruption slipped past the receiver CRC", mode.label()
                );
                prop_assert!(
                    m.integrity.balanced(),
                    "{}: unbalanced ledger {:?}", mode.label(), m.integrity
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(OrderingMode::Rio { merge: true }, 3, 100);
        let b = run(OrderingMode::Rio { merge: true }, 3, 100);
        assert_eq!(a.blocks_done, b.blocks_done);
        assert_eq!(a.span.as_nanos(), b.span.as_nanos());
        assert_eq!(a.commands_sent, b.commands_sent);
    }

    // ---- multi-initiator & tenancy -----------------------------------------

    /// The 4-initiator × 4-target acceptance scenario: lossy fabric,
    /// one tenant per initiator, every group delivered exactly once
    /// per tenant, equal weights serviced fairly (Jain ≥ 0.95), and
    /// the whole thing replays byte-identically.
    #[test]
    fn four_initiators_four_targets_lossy_exactly_once_and_fair() {
        let groups = 150u64;
        let run = || {
            let mut cfg =
                ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 4, 2, 4);
            cfg.net = FabricConfig::lossy(1e-3, 2);
            Cluster::new(cfg, Workload::random_4k(8, groups)).run()
        };
        let m = run();
        assert_eq!(m.groups_done, 8 * groups, "exactly once overall");
        assert_eq!(m.tenants.len(), 4);
        for t in &m.tenants {
            assert_eq!(t.groups_done, 2 * groups, "tenant {} exactly once", t.tenant);
        }
        for i in &m.initiators {
            assert_eq!(i.groups_done, 2 * groups);
            assert!(i.commands_sent > 0, "initiator {} sent nothing", i.initiator);
            assert!(i.util > 0.0);
        }
        let jain = m.tenant_fairness();
        assert!(jain >= 0.95, "equal weights must be fair: {jain}");
        assert!(
            m.tenants.iter().any(|t| t.gate_wait.count() > 0),
            "multi-tenant DRR admission must be exercised"
        );
        assert_eq!(m, run(), "same seed replays byte-identically");
    }

    /// An explicit `initiators: [default]` run is byte-identical to
    /// the legacy scalar-field single-initiator path — same derived
    /// config, same event interleaving, same metrics, field by field.
    #[test]
    fn explicit_single_initiator_matches_legacy_byte_for_byte() {
        let threads = 2usize;
        let legacy = {
            let cfg = small_cfg(OrderingMode::Rio { merge: true }, threads);
            Cluster::new(cfg, Workload::random_4k(threads, 300)).run()
        };
        let explicit = {
            let mut cfg = small_cfg(OrderingMode::Rio { merge: true }, threads);
            cfg.initiators = vec![InitiatorConfig {
                cores: cfg.initiator_cores,
                streams: cfg.streams,
                tenant: 0,
                weight: 1,
            }];
            Cluster::new(cfg, Workload::random_4k(threads, 300)).run()
        };
        assert_eq!(legacy, explicit);
    }

    /// Regression for the latent single-NIC assumption in metrics
    /// assembly: `NetMetrics::absorb` must fold in *every* initiator's
    /// NIC, and the per-initiator command counters must partition the
    /// global one.
    #[test]
    fn per_initiator_breakdowns_partition_global_totals() {
        let groups = 200u64;
        let m = {
            let cfg = ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 3, 1, 2);
            Cluster::new(cfg, Workload::random_4k(3, groups)).run()
        };
        assert_eq!(m.initiators.len(), 3);
        assert_eq!(
            m.initiators.iter().map(|i| i.commands_sent).sum::<u64>(),
            m.commands_sent,
            "per-initiator command counts must partition the total"
        );
        assert_eq!(
            m.initiators.iter().map(|i| i.groups_done).sum::<u64>(),
            m.groups_done
        );
        assert_eq!(
            m.initiators.iter().map(|i| i.blocks_done).sum::<u64>(),
            m.blocks_done
        );
        // Each initiator moved real bytes through its own NIC; if
        // absorb only saw one NIC the aggregate would undercount the
        // per-command wire traffic by ~3x.
        let single = {
            let cfg = ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 1, 1, 2);
            Cluster::new(cfg, Workload::random_4k(1, groups)).run()
        };
        assert!(
            m.net.bytes_out > 2 * single.net.bytes_out,
            "3 initiators must put ~3x one initiator's bytes on the wire \
             ({} vs {})",
            m.net.bytes_out,
            single.net.bytes_out
        );
    }

    /// Skewed QoS weights order tenant throughput: with equal demand
    /// and a shared saturated target, the weight-4 tenant must beat
    /// the weight-1 tenant, and weight-normalized fairness stays high.
    #[test]
    fn skewed_weights_order_tenant_throughput() {
        let groups = 400u64;
        let mut cfg = ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 2, 2, 1);
        cfg.initiators[0] = cfg.initiators[0].clone().with_weight(4);
        let m = Cluster::new(cfg, Workload::random_4k(4, groups)).run();
        assert_eq!(m.groups_done, 4 * groups, "exactly once");
        assert_eq!(m.tenants.len(), 2);
        let heavy = m.tenants.iter().find(|t| t.weight == 4).expect("weight 4");
        let light = m.tenants.iter().find(|t| t.weight == 1).expect("weight 1");
        assert!(
            heavy.block_iops() > light.block_iops(),
            "weight 4 must outrun weight 1: {} vs {}",
            heavy.block_iops(),
            light.block_iops()
        );
        assert!(
            heavy.gate_wait.count() + light.gate_wait.count() > 0,
            "a saturated shared target must queue in the DRR"
        );
    }

    /// A multi-initiator run whose initiators all share one tenant id
    /// keeps the DRR scheduler inert: no admission queueing, one
    /// tenant row whose counters equal the global totals.
    #[test]
    fn single_tenant_multi_initiator_keeps_drr_inert() {
        let mut cfg = ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 2, 1, 1);
        for ic in &mut cfg.initiators {
            ic.tenant = 7;
        }
        let m = Cluster::new(cfg, Workload::random_4k(2, 200)).run();
        assert_eq!(m.tenants.len(), 1);
        assert_eq!(m.tenants[0].tenant, 7);
        assert_eq!(m.tenants[0].groups_done, m.groups_done);
        assert_eq!(m.tenants[0].gate_wait.count(), 0, "single tenant: no DRR");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Exactly-once and per-stream in-order for any M∈1..=4
        /// initiators × per-initiator stream count × loss < 1e-2, in
        /// every ordering mode — plus, for Rio, an optional mid-run
        /// target crash that the run must survive with the same
        /// guarantee per tenant.
        #[test]
        fn prop_multi_initiator_exactly_once(
            n_init in 1usize..=4,
            streams_each in 1usize..=2,
            loss in 0.0f64..0.01,
            crash in any::<bool>(),
            seed in any::<u64>(),
        ) {
            let threads = n_init * streams_each;
            for mode in [
                OrderingMode::Orderless,
                OrderingMode::LinuxNvmf,
                OrderingMode::Horae,
                OrderingMode::Rio { merge: true },
            ] {
                let groups = if mode == OrderingMode::LinuxNvmf { 12 } else { 40 };
                let mut cfg = ClusterConfig::multi_initiator(mode.clone(), n_init, streams_each, 2);
                cfg.seed = seed;
                cfg.net = FabricConfig::lossy(loss, 2);
                cfg.net.rto_us = 25.0;
                let m = Cluster::new(cfg.clone(), Workload::random_4k(threads, groups)).run();
                prop_assert_eq!(
                    m.groups_done, threads as u64 * groups,
                    "{} lost groups", mode.label()
                );
                prop_assert_eq!(m.tenants.len(), n_init);
                for t in &m.tenants {
                    prop_assert_eq!(
                        t.groups_done, streams_each as u64 * groups,
                        "tenant {} not exactly-once in {}", t.tenant, mode.label()
                    );
                }

                // The crash leg only exists on Rio (fault injection
                // requires persisted ORDER attributes).
                if crash && matches!(mode, OrderingMode::Rio { .. }) {
                    let crash_at = SimTime::from_nanos(m.finished_at.as_nanos() / 2);
                    let mut crashing = cfg;
                    crashing.faults = FaultPlan::survivable_crash(crash_at, vec![1]);
                    let c = Cluster::new(crashing, Workload::random_4k(threads, groups)).run();
                    prop_assert_eq!(c.groups_done, threads as u64 * groups);
                    prop_assert_eq!(c.recoveries.len(), 1);
                    for t in &c.tenants {
                        prop_assert_eq!(
                            t.groups_done, streams_each as u64 * groups,
                            "tenant {} not exactly-once across the crash", t.tenant
                        );
                    }
                }
            }
        }

        /// Fairness: equal-weight tenants on one saturated target stay
        /// within Jain ≥ 0.95; a 4:1 weight skew strictly orders the
        /// two tenants' throughput.
        #[test]
        fn prop_tenant_fairness(
            n_init in 2usize..=4,
            seed in any::<u64>(),
        ) {
            let groups = 250u64;
            let mut cfg =
                ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, n_init, 1, 1);
            cfg.seed = seed;
            let m = Cluster::new(cfg, Workload::random_4k(n_init, groups)).run();
            prop_assert_eq!(m.groups_done, n_init as u64 * groups);
            let jain = m.tenant_fairness();
            prop_assert!(jain >= 0.95, "equal weights must be fair: {}", jain);

            let mut skew =
                ClusterConfig::multi_initiator(OrderingMode::Rio { merge: true }, 2, 1, 1);
            skew.seed = seed;
            skew.initiators[0] = skew.initiators[0].clone().with_weight(4);
            let s = Cluster::new(skew, Workload::random_4k(2, 400)).run();
            let heavy = s.tenants.iter().find(|t| t.weight == 4).expect("weight 4");
            let light = s.tenants.iter().find(|t| t.weight == 1).expect("weight 1");
            prop_assert!(
                heavy.block_iops() > light.block_iops(),
                "weight 4 ({}) must outrun weight 1 ({})",
                heavy.block_iops(), light.block_iops()
            );
        }
    }

    #[test]
    fn multi_target_striping_reaches_all_ssds() {
        let mut cfg = ClusterConfig::four_ssd_two_targets(OrderingMode::Rio { merge: true }, 2);
        cfg.initiator_cores = 8;
        for t in &mut cfg.targets {
            t.cores = 8;
        }
        cfg.qps_per_target = 8;
        let wl = Workload {
            threads: 2,
            groups_per_thread: 100,
            pattern: crate::workload::Pattern::SeqWrite { blocks: 8 },
            batch: 1,
        };
        let mut cl = Cluster::new(cfg, wl);
        cl.start();
        cl.run_until(SimTime::from_nanos(u64::MAX / 2));
        let m = cl.metrics();
        assert_eq!(m.groups_done, 200);
        // Every SSD saw writes.
        for t in 0..cl.n_targets() {
            for ssd in cl.target_ssds(t) {
                assert!(ssd.stats().writes > 0, "an SSD saw no writes");
            }
        }
    }
}
