//! Whole-cluster simulation of Rio and its baselines.
//!
//! One [`cluster::Cluster`] models the paper's testbed: an initiator
//! server plus one or two target servers, each with cores, a NIC and
//! NVMe SSDs, connected by a 200 Gbps RDMA fabric. The same workload
//! can be run under four ordering engines (§6.2):
//!
//! * [`config::OrderingMode::Orderless`] — no ordering guarantee; the
//!   upper bound every figure normalises against.
//! * [`config::OrderingMode::LinuxNvmf`] — stock ordered NVMe-oF:
//!   synchronous execution, a completion wait plus a FLUSH between
//!   ordered requests.
//! * [`config::OrderingMode::Horae`] — the OSDI'20 system ported to
//!   NVMe-oF: a synchronous control path (two-sided SENDs persisting
//!   ordering metadata to PMR) ahead of an asynchronous data path.
//! * [`config::OrderingMode::Rio`] — the paper's contribution: the
//!   fully asynchronous I/O pipeline built from `rio-order`'s
//!   sequencer, ORDER queues, gate, PMR log and in-order completion.
//!
//! The simulation charges CPU costs per software step to per-core FIFO
//! resources, so throughput *and* CPU efficiency (throughput ÷
//! utilisation, §6.1) come out of the same run.
//!
//! Fault injection is first-class: a [`config::FaultPlan`] crashes
//! arbitrary target subsets (or single NICs) at arbitrary virtual
//! times — composing with the lossy multi-path fabric — and the
//! cluster recovers *inside* the event loop (PMR scan, global merge,
//! discard) and resumes the workload, reporting per-epoch throughput
//! and recovery breakdowns in [`metrics::RunMetrics`]. The classic
//! one-shot §6.5 driver lives in [`crash`] as a thin wrapper.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod cpu;
pub mod crash;
pub mod metrics;
pub mod telemetry;
pub mod trace;
pub mod workload;

pub use cluster::Cluster;
pub use config::{
    ClusterConfig, CpuCosts, FabricConfig, FaultEvent, FaultKind, FaultPlan, InitiatorConfig,
    OrderingMode, TargetConfig,
};
pub use metrics::{
    jain_index, EpochMetrics, InitiatorMetrics, IntegrityMetrics, NetMetrics, RecoveryMetrics,
    RunMetrics, StreamRecovery, TenantMetrics,
};
pub use telemetry::{
    RecoverySpan, StallWindow, Telemetry, TelemetryBucket, TelemetryConfig, TenantWait,
};
pub use trace::{CmdTraceRecord, LatencyBreakdown, Stage, TraceConfig};
pub use workload::Workload;
