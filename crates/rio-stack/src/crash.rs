//! Crash injection and the §6.5 recovery-time experiment.
//!
//! Fault injection itself lives inside the event loop: a
//! [`crate::config::FaultPlan`] on the cluster configuration crashes
//! arbitrary target subsets (or single NICs) at arbitrary virtual
//! times — including while retransmissions are in flight — and the
//! cluster runs PMR scan + global merge + discard in place, then
//! resumes the workload in a fresh epoch (see
//! [`crate::metrics::RecoveryMetrics`]). This module keeps the §6.5
//! cost model's constants and the classic one-shot experiment driver,
//! now a thin wrapper over that subsystem.
//!
//! The experiment: 36 threads issue 4 KB ordered writes continuously;
//! a fault crashes the target servers mid-flight; after reconnecting,
//! the initiator (1) rebuilds the global order from the PMR logs and
//! (2) discards the data blocks that disobey the storage order. Both
//! phases are timed separately, matching the paper's "~55 ms to
//! reconstruct the global order" and "~125 ms data recovery" breakdown.
//!
//! Recovery cost model:
//!
//! * PMR scanning is MMIO-bound: each 32 B slot read costs
//!   [`PMR_SCAN_US_PER_SLOT`] µs of target CPU — this, not the 2 MB
//!   network transfer, dominates phase 1 exactly as the paper observes
//!   ("most of which is spent on reading data from PMR").
//! * Scanned records travel to the initiator as one RDMA transfer.
//! * The global merge is CPU work proportional to the live records.
//! * Each discard is an SSD command; discards run concurrently per SSD
//!   (the paper's "discarding is performed asynchronously for each SSD
//!   and each server").

use rio_order::attr::{Seq, StreamId};
use rio_order::recovery::RecoveryPlan;
use rio_sim::{SimDuration, SimTime};

use crate::cluster::Cluster;
use crate::config::{ClusterConfig, FaultPlan, OrderingMode};
use crate::metrics::RecoveryMetrics;
use crate::workload::Workload;

/// Cost of one 32 B MMIO read while scanning the PMR (µs). Paid only
/// by power-failed targets, whose driver state died with them.
pub const PMR_SCAN_US_PER_SLOT: f64 = 0.8;

/// Cost of reading one live record from an *alive* target driver's
/// in-memory log mirror (µs). A target that kept power never rescans
/// its PMR over MMIO — the driver still knows its live slots and ships
/// them from DRAM, which is why a NIC flap recovers orders of
/// magnitude faster than a power failure.
pub const DRAM_SCAN_US_PER_RECORD: f64 = 0.05;

/// CPU cost of merging one scanned record into the global list (ns).
pub const MERGE_NS_PER_RECORD: u64 = 350;

/// SSD-side cost of one discard command (µs). TRIM-class commands on
/// scattered 4 KB ranges are far slower than reads/writes on real
/// devices (calibrated against the paper's ~125 ms data recovery).
pub const DISCARD_US: f64 = 150.0;

/// Cost of verifying one sealed media block during the post-quiesce
/// integrity scrub (µs): a 4 KB read plus a CRC-32C pass. Paid only on
/// integrity runs, in parallel per SSD.
pub const SCRUB_US_PER_BLOCK: f64 = 2.0;

/// Outcome of one crash-recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Virtual time of the crash.
    pub crashed_at: SimTime,
    /// Phase 1: scanning PMRs + transferring attributes + global merge.
    pub order_rebuild: SimDuration,
    /// Phase 2: discarding out-of-order blocks.
    pub data_recovery: SimDuration,
    /// Records scanned across all targets.
    pub records_scanned: usize,
    /// Discard operations issued.
    pub discards: usize,
    /// Per-stream valid-prefix sequence numbers.
    pub valid_through: Vec<(StreamId, Seq)>,
    /// The computed plan (for invariant checking in tests).
    pub plan: RecoveryPlan,
}

impl RecoveryReport {
    /// Builds the classic §6.5 report shape from one in-run recovery
    /// breakdown.
    pub fn from_recovery(r: &RecoveryMetrics) -> Self {
        RecoveryReport {
            crashed_at: r.crashed_at,
            order_rebuild: r.order_rebuild,
            data_recovery: r.data_recovery,
            records_scanned: r.records_scanned,
            discards: r.discards,
            valid_through: r
                .plan
                .streams
                .iter()
                .map(|s| (s.stream, s.valid_through))
                .collect(),
            plan: r.plan.clone(),
        }
    }
}

/// Runs the §6.5 experiment: drive `workload` under Rio, crash all
/// targets at `crash_at` (even if the workload finishes first — the
/// idle cluster crashes too), recover, and time both phases. The run
/// halts after recovery — use a [`FaultPlan`] with `resume: true`
/// directly for a survivable run.
///
/// # Panics
///
/// Panics if the configuration is not a Rio mode (only Rio persists
/// ordering attributes to recover from) or already carries a fault
/// plan of its own.
pub fn run_crash_recovery(
    cfg: ClusterConfig,
    workload: Workload,
    crash_at: SimTime,
) -> RecoveryReport {
    assert!(
        matches!(cfg.mode, OrderingMode::Rio { .. }),
        "crash recovery experiment requires Rio mode"
    );
    assert!(
        cfg.faults.events.is_empty(),
        "run_crash_recovery injects its own fault plan"
    );
    let mut cfg = cfg;
    cfg.faults = FaultPlan::crash_all_at(crash_at);
    let metrics = Cluster::new(cfg, workload).run();
    let recovery = metrics
        .recoveries
        .first()
        .expect("the scheduled crash fired");
    RecoveryReport::from_recovery(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TargetConfig;
    use rio_net::FabricProfile;
    use rio_ssd::SsdProfile;

    fn crash_cfg(threads: usize) -> ClusterConfig {
        ClusterConfig {
            seed: 11,
            mode: OrderingMode::Rio { merge: true },
            initiator_cores: threads.max(4),
            targets: vec![
                TargetConfig {
                    ssds: vec![SsdProfile::optane905p()],
                    cores: 8,
                },
                TargetConfig {
                    ssds: vec![SsdProfile::optane905p()],
                    cores: 8,
                },
            ],
            fabric: FabricProfile::connectx6(),
            net: Default::default(),
            cpu: Default::default(),
            streams: threads,
            qps_per_target: 8,
            stripe_blocks: 1,
            max_inflight_per_stream: 16,
            plug_merge: true,
            pin_stream_to_qp: true,
            integrity: false,
            faults: FaultPlan::none(),
            trace: None,
            telemetry: None,
            initiators: Vec::new(),
        }
    }

    #[test]
    fn recovery_produces_valid_prefixes() {
        let cfg = crash_cfg(4);
        let wl = Workload::random_4k(4, 100_000);
        let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(3_000_000));
        // Some work was in flight.
        assert!(report.records_scanned > 0, "no records survived the crash");
        // Every stream has a plan with a valid prefix at or above zero.
        assert_eq!(report.valid_through.len(), 4);
        for sp in &report.plan.streams {
            // The prefix never regresses below the delivered head.
            assert!(sp.valid_through >= sp.resume_head);
        }
    }

    #[test]
    fn order_rebuild_dominated_by_pmr_scan() {
        let cfg = crash_cfg(2);
        let wl = Workload::random_4k(2, 100_000);
        let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(2_000_000));
        // 2 MB / 32 B * 0.8 µs ≈ 52 ms — the paper's "around 55 ms".
        let ms = report.order_rebuild.as_secs_f64() * 1e3;
        assert!(
            (40.0..80.0).contains(&ms),
            "order rebuild {ms:.1} ms out of the paper's ballpark"
        );
    }

    #[test]
    fn discarded_blocks_are_erased() {
        let cfg = crash_cfg(4);
        let wl = Workload::random_4k(4, 100_000);
        let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(3_000_000));
        // The report's plan discards were applied by the driver; spot
        // check that the plan is internally consistent.
        for sp in &report.plan.streams {
            for d in &sp.discard {
                assert!(d.range.blocks > 0);
            }
        }
        assert!(report.data_recovery >= SimDuration::ZERO);
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            let cfg = crash_cfg(3);
            let wl = Workload::random_4k(3, 100_000);
            let r = run_crash_recovery(cfg, wl, SimTime::from_nanos(2_500_000));
            (
                r.records_scanned,
                r.discards,
                r.order_rebuild.as_nanos(),
                r.data_recovery.as_nanos(),
            )
        };
        assert_eq!(run(), run());
    }
}
