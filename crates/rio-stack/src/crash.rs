//! Crash injection and the §6.5 recovery-time experiment.
//!
//! The experiment: 36 threads issue 4 KB ordered writes continuously;
//! a fault crashes the target servers mid-flight; after reconnecting,
//! the initiator (1) rebuilds the global order from the PMR logs and
//! (2) discards the data blocks that disobey the storage order. Both
//! phases are timed separately, matching the paper's "~55 ms to
//! reconstruct the global order" and "~125 ms data recovery" breakdown.
//!
//! Recovery cost model:
//!
//! * PMR scanning is MMIO-bound: each 32 B slot read costs
//!   [`PMR_SCAN_US_PER_SLOT`] µs of target CPU — this, not the 2 MB
//!   network transfer, dominates phase 1 exactly as the paper observes
//!   ("most of which is spent on reading data from PMR").
//! * Scanned records travel to the initiator as one RDMA transfer.
//! * The global merge is CPU work proportional to the live records.
//! * Each discard is an SSD command; discards run concurrently per SSD
//!   (the paper's "discarding is performed asynchronously for each SSD
//!   and each server").

use rio_order::attr::{Seq, StreamId};
use rio_order::pmrlog::PmrLog;
use rio_order::recovery::{RecoveryInput, RecoveryMode, RecoveryPlan, ServerScan};
use rio_sim::{SimDuration, SimTime};

use crate::cluster::Cluster;
use crate::config::{ClusterConfig, OrderingMode};
use crate::workload::Workload;

/// Cost of one 32 B MMIO read while scanning the PMR (µs).
pub const PMR_SCAN_US_PER_SLOT: f64 = 0.8;

/// CPU cost of merging one scanned record into the global list (ns).
pub const MERGE_NS_PER_RECORD: u64 = 350;

/// SSD-side cost of one discard command (µs). TRIM-class commands on
/// scattered 4 KB ranges are far slower than reads/writes on real
/// devices (calibrated against the paper's ~125 ms data recovery).
pub const DISCARD_US: f64 = 150.0;

/// Outcome of one crash-recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Virtual time of the crash.
    pub crashed_at: SimTime,
    /// Phase 1: scanning PMRs + transferring attributes + global merge.
    pub order_rebuild: SimDuration,
    /// Phase 2: discarding out-of-order blocks.
    pub data_recovery: SimDuration,
    /// Records scanned across all targets.
    pub records_scanned: usize,
    /// Discard operations issued.
    pub discards: usize,
    /// Per-stream valid-prefix sequence numbers.
    pub valid_through: Vec<(StreamId, Seq)>,
    /// The computed plan (for invariant checking in tests).
    pub plan: RecoveryPlan,
}

/// Runs the §6.5 experiment: drive `workload` under Rio, crash all
/// targets at `crash_at`, then recover and time both phases.
///
/// # Panics
///
/// Panics if the configuration is not a Rio mode (only Rio persists
/// ordering attributes to recover from).
pub fn run_crash_recovery(
    cfg: ClusterConfig,
    workload: Workload,
    crash_at: SimTime,
) -> RecoveryReport {
    assert!(
        matches!(cfg.mode, OrderingMode::Rio { .. }),
        "crash recovery experiment requires Rio mode"
    );
    let fabric_bw = cfg.fabric.bandwidth;
    let one_way_us = cfg.fabric.one_way_latency_us;
    let mut cluster = Cluster::new(cfg, workload);
    cluster.start();
    let reached = cluster.run_until(crash_at);
    cluster.clear_events();

    // Power failure on every target: volatile caches and in-flight
    // commands are lost; media and PMR survive.
    let n_targets = cluster.n_targets();
    for t in 0..n_targets {
        for ssd in cluster.target_ssds_mut(t) {
            ssd.crash(reached);
        }
    }

    // ---- Phase 1: rebuild the global order --------------------------------
    // Each target scans its PMR in parallel (MMIO-bound), ships the
    // records, and the initiator merges.
    let mut scans = Vec::new();
    let mut phase1_per_target = Vec::new();
    let mut records_total = 0usize;
    for t in 0..n_targets {
        let plp = cluster.target_ssds(t)[0].profile().plp;
        let pmr = cluster.target_ssds(t)[0].pmr();
        let outcome = PmrLog::scan(pmr.contents()).expect("formatted PMR");
        let slots = pmr.len() / 32;
        let scan_time = SimDuration::from_micros_f64(slots as f64 * PMR_SCAN_US_PER_SLOT);
        // Ship the raw region to the initiator in one transfer.
        let wire =
            SimDuration::from_micros_f64(pmr.len() as f64 / fabric_bw * 1e6 + 2.0 * one_way_us);
        phase1_per_target.push(scan_time + wire);
        records_total += outcome.records.len();
        scans.push(ServerScan {
            server: rio_order::attr::ServerId(t as u16),
            plp,
            head_seqs: outcome.head_seqs,
            records: outcome.records,
        });
    }
    // Targets scan in parallel; the initiator merge is serial CPU work.
    let scan_parallel = phase1_per_target
        .iter()
        .copied()
        .max()
        .unwrap_or(SimDuration::ZERO);
    let merge_cpu = SimDuration::from_nanos(MERGE_NS_PER_RECORD * records_total as u64);
    let order_rebuild = scan_parallel + merge_cpu;

    let plan = RecoveryPlan::compute(&RecoveryInput {
        scans,
        mode: RecoveryMode::InitiatorRestart,
    });

    // ---- Phase 2: discard out-of-order blocks -----------------------------
    // Discards are issued per (server, ssd) concurrently; within one
    // SSD they serialize at DISCARD_US plus the wire round trip once.
    let mut per_ssd_counts: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    let mut discards = 0usize;
    for sp in &plan.streams {
        for d in &sp.discard {
            discards += 1;
            *per_ssd_counts
                .entry((d.server.0 as usize, d.ssd as usize))
                .or_insert(0) += 1;
            // Apply the erase to the device model so post-recovery
            // state checks see rolled-back media.
            let ssd = &mut cluster.target_ssds_mut(d.server.0 as usize)[d.ssd as usize];
            ssd.submit_discard(reached, d.range.lba, d.range.blocks);
        }
    }
    let data_recovery = per_ssd_counts
        .values()
        .map(|&n| SimDuration::from_micros_f64(n as f64 * DISCARD_US + 2.0 * one_way_us))
        .max()
        .unwrap_or(SimDuration::ZERO);

    let valid_through = plan
        .streams
        .iter()
        .map(|s| (s.stream, s.valid_through))
        .collect();

    RecoveryReport {
        crashed_at: reached,
        order_rebuild,
        data_recovery,
        records_scanned: records_total,
        discards,
        valid_through,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TargetConfig;
    use rio_net::FabricProfile;
    use rio_ssd::SsdProfile;

    fn crash_cfg(threads: usize) -> ClusterConfig {
        ClusterConfig {
            seed: 11,
            mode: OrderingMode::Rio { merge: true },
            initiator_cores: threads.max(4),
            targets: vec![
                TargetConfig {
                    ssds: vec![SsdProfile::optane905p()],
                    cores: 8,
                },
                TargetConfig {
                    ssds: vec![SsdProfile::optane905p()],
                    cores: 8,
                },
            ],
            fabric: FabricProfile::connectx6(),
            net: Default::default(),
            cpu: Default::default(),
            streams: threads,
            qps_per_target: 8,
            stripe_blocks: 1,
            max_inflight_per_stream: 16,
            plug_merge: true,
            pin_stream_to_qp: true,
        }
    }

    #[test]
    fn recovery_produces_valid_prefixes() {
        let cfg = crash_cfg(4);
        let wl = Workload::random_4k(4, 100_000);
        let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(3_000_000));
        // Some work was in flight.
        assert!(report.records_scanned > 0, "no records survived the crash");
        // Every stream has a plan with a valid prefix at or above zero.
        assert_eq!(report.valid_through.len(), 4);
        for sp in &report.plan.streams {
            // The prefix never regresses below the delivered head.
            assert!(sp.valid_through >= sp.resume_head);
        }
    }

    #[test]
    fn order_rebuild_dominated_by_pmr_scan() {
        let cfg = crash_cfg(2);
        let wl = Workload::random_4k(2, 100_000);
        let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(2_000_000));
        // 2 MB / 32 B * 0.8 µs ≈ 52 ms — the paper's "around 55 ms".
        let ms = report.order_rebuild.as_secs_f64() * 1e3;
        assert!(
            (40.0..80.0).contains(&ms),
            "order rebuild {ms:.1} ms out of the paper's ballpark"
        );
    }

    #[test]
    fn discarded_blocks_are_erased() {
        let cfg = crash_cfg(4);
        let wl = Workload::random_4k(4, 100_000);
        let report = run_crash_recovery(cfg, wl, SimTime::from_nanos(3_000_000));
        // The report's plan discards were applied by the driver; spot
        // check that the plan is internally consistent.
        for sp in &report.plan.streams {
            for d in &sp.discard {
                assert!(d.range.blocks > 0);
            }
        }
        assert!(report.data_recovery >= SimDuration::ZERO);
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            let cfg = crash_cfg(3);
            let wl = Workload::random_4k(3, 100_000);
            let r = run_crash_recovery(cfg, wl, SimTime::from_nanos(2_500_000));
            (
                r.records_scanned,
                r.discards,
                r.order_rebuild.as_nanos(),
                r.data_recovery.as_nanos(),
            )
        };
        assert_eq!(run(), run());
    }
}
