//! Run metrics: the numbers every figure reports.

use rio_net::PathStats;
use rio_order::attr::{Seq, StreamId};
use rio_order::recovery::RecoveryPlan;
use rio_sim::{Histogram, MeanAccum, SimDuration, SimTime};

/// Aggregated fabric counters of one run, summed over every NIC
/// (initiator plus all targets).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct NetMetrics {
    /// Packets transmitted (MTU segmentation makes this ≥ messages).
    pub packets: u64,
    /// Bytes serialized onto egress links.
    pub bytes_out: u64,
    /// Packets the fabric dropped.
    pub drops: u64,
    /// Packets retransmitted after a go-back-N timeout.
    pub retransmits: u64,
    /// Recovery rounds entered (retransmission timeouts fired).
    pub retx_rounds: u64,
    /// Sum over all NICs of each NIC's peak of simultaneously stalled
    /// retransmissions. Per-NIC peaks are folded in at run end, after
    /// the time axis is gone, so the exact cluster-wide concurrent peak
    /// is unrecoverable; the sum of peaks is its tight upper bound (and
    /// unlike a max it cannot under-report several NICs retransmitting
    /// at once).
    pub retx_inflight_peak: u64,
    /// Packets the fabric corrupted in flight.
    pub corrupt_injected: u64,
    /// Corrupted packets caught by receiver digest checks and NAKed.
    /// Always equals [`NetMetrics::corrupt_injected`] — the model
    /// delivers no silent wire corruption; keeping both makes the
    /// ledger explicit.
    pub corrupt_detected: u64,
    /// Packets re-fetched because a corruption cut a go-back-N window.
    pub corrupt_refetched: u64,
    /// Per-path transmit statistics, aggregated across NICs by path
    /// index (index 0 is every NIC's fastest path).
    pub per_path: Vec<PathStats>,
}

impl NetMetrics {
    /// Folds one NIC's counters into the aggregate.
    pub fn absorb(&mut self, nic: &rio_net::Nic) {
        let s = nic.stats();
        self.packets += s.packets;
        self.bytes_out += s.bytes_out;
        self.drops += s.drops;
        self.retransmits += s.retransmits;
        self.retx_rounds += s.retx_rounds;
        self.retx_inflight_peak += s.retx_inflight_peak;
        self.corrupt_injected += s.corrupt_injected;
        self.corrupt_detected += s.corrupt_detected;
        self.corrupt_refetched += s.corrupt_refetched;
        for (i, p) in nic.path_stats().into_iter().enumerate() {
            if self.per_path.len() <= i {
                self.per_path.resize_with(i + 1, PathStats::default);
            }
            let agg = &mut self.per_path[i];
            agg.packets += p.packets;
            agg.bytes += p.bytes;
            agg.drops += p.drops;
            agg.retransmits += p.retransmits;
        }
    }

    /// Fraction of transmitted packets that were dropped.
    pub fn drop_ratio(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.drops as f64 / self.packets as f64
    }
}

/// End-to-end data-integrity ledger of one run: every corruption the
/// run injected (wire, torn write, bit rot), what detected it, and how
/// it was resolved. All zeros when integrity checking is off.
///
/// The standing invariant the proptests pin down: nothing corrupt is
/// ever delivered — wire corruptions are all detected and re-fetched
/// (`wire_injected == wire_detected`), and media corruptions are all
/// found by the scrub and either repaired by re-execution/redelivery
/// of the covering group or counted unrepairable
/// (`torn_injected + rot_injected == media_detected ==
/// media_repaired + media_unrepairable`).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct IntegrityMetrics {
    /// Packets corrupted in flight by the fabric.
    pub wire_injected: u64,
    /// Wire corruptions caught by receiver digest checks (== injected).
    pub wire_detected: u64,
    /// Packets re-fetched to replace corrupted-and-NAKed windows.
    pub wire_refetched: u64,
    /// Media records torn by power failure mid-write.
    pub torn_injected: u64,
    /// Media records hit by at-rest bit rot.
    pub rot_injected: u64,
    /// Media records whose checksum failed the post-recovery scrub.
    pub media_detected: u64,
    /// Corrupt media records repaired: their block is discarded and
    /// the covering group re-executed or redelivered from the durable
    /// prefix, exactly-once preserved.
    pub media_repaired: u64,
    /// Corrupt media records that held already-delivered data with no
    /// surviving copy (bit rot under a delivered group): detected,
    /// purged, and reported — the honest data-loss count.
    pub media_unrepairable: u64,
    /// Media records scanned by scrub passes.
    pub scrubbed_records: u64,
    /// Virtual microseconds spent in scrub passes.
    pub scrub_us: f64,
}

impl IntegrityMetrics {
    /// Total corruptions injected anywhere (wire + media).
    pub fn injected(&self) -> u64 {
        self.wire_injected + self.torn_injected + self.rot_injected
    }

    /// Total corruptions detected by a checksum check.
    pub fn detected(&self) -> u64 {
        self.wire_detected + self.media_detected
    }

    /// Whether the ledger balances: every injection detected, every
    /// detection resolved.
    pub fn balanced(&self) -> bool {
        self.wire_injected == self.wire_detected
            && self.torn_injected + self.rot_injected == self.media_detected
            && self.media_detected == self.media_repaired + self.media_unrepairable
    }
}

/// Per-initiator breakdown of one run (one entry per effective
/// initiator, in configuration order). The single-initiator path
/// produces exactly one entry whose totals mirror the run-wide fields.
#[derive(Debug, Clone, PartialEq)]
pub struct InitiatorMetrics {
    /// Initiator index in [`crate::config::ClusterConfig::initiators`].
    pub initiator: usize,
    /// Tenant this initiator belongs to.
    pub tenant: u32,
    /// QoS weight of this initiator.
    pub weight: u32,
    /// First global stream id of this initiator's slice.
    pub stream_base: usize,
    /// Streams in this initiator's slice.
    pub streams: usize,
    /// Ordered groups this initiator delivered.
    pub groups_done: u64,
    /// Blocks this initiator delivered.
    pub blocks_done: u64,
    /// NVMe-oF commands this initiator sent.
    pub commands_sent: u64,
    /// Commands of this initiator the target gates buffered out of
    /// order.
    pub gate_buffered: u64,
    /// Per-group completion latency of this initiator's groups.
    pub group_latency: Histogram,
    /// This initiator's driver CPU utilisation in `[0, 1]`.
    pub util: f64,
    /// When this initiator's last group was delivered.
    pub finished_at: SimTime,
}

impl InitiatorMetrics {
    /// Blocks per second over this initiator's active span.
    pub fn block_iops(&self) -> f64 {
        if self.finished_at.as_nanos() == 0 {
            return 0.0;
        }
        self.blocks_done as f64 / (self.finished_at.as_nanos() as f64 / 1e9)
    }
}

/// Per-tenant breakdown of one run: the sum of the tenant's
/// initiators, plus the deficit-round-robin admission wait the target
/// schedulers imposed (all-zero histogram when the run had a single
/// tenant — the scheduler is inert then).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// Tenant id.
    pub tenant: u32,
    /// Sum of the tenant's initiators' QoS weights.
    pub weight: u32,
    /// Ordered groups delivered for this tenant.
    pub groups_done: u64,
    /// Blocks delivered for this tenant.
    pub blocks_done: u64,
    /// Per-group completion latency for this tenant.
    pub group_latency: Histogram,
    /// Nanoseconds commands waited in the target-side per-tenant DRR
    /// admission queues (empty when the scheduler was inert).
    pub gate_wait: Histogram,
    /// When this tenant's last group was delivered.
    pub finished_at: SimTime,
}

impl TenantMetrics {
    /// Blocks per second over this tenant's active span (run start to
    /// its last delivery) — the fairness comparison axis: under
    /// saturation a heavier tenant drains the same demand in less
    /// time, so throughput orders by weight.
    pub fn block_iops(&self) -> f64 {
        if self.finished_at.as_nanos() == 0 {
            return 0.0;
        }
        self.blocks_done as f64 / (self.finished_at.as_nanos() as f64 / 1e9)
    }
}

/// Jain's fairness index over a set of per-tenant rates:
/// `(Σx)² / (n · Σx²)`. 1.0 is perfectly fair; `1/n` is maximally
/// unfair. Empty or all-zero input returns 1.0 (nothing to be unfair
/// about).
pub fn jain_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq_sum: f64 = rates.iter().map(|x| x * x).sum();
    if sq_sum <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (rates.len() as f64 * sq_sum)
}

/// Per-stream outcome of one in-run recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRecovery {
    /// The stream.
    pub stream: StreamId,
    /// Groups the initiator had delivered to the application when the
    /// fault hit.
    pub delivered_through: Seq,
    /// The storage order survived intact through this sequence (the
    /// valid prefix of §4.8).
    pub valid_through: Seq,
    /// Groups that were durable but unacknowledged at the fault and
    /// were delivered during recovery (never re-executed).
    pub redelivered: u64,
    /// Groups rolled back beyond the valid prefix and re-queued for
    /// resubmission after the resume.
    pub requeued: u64,
}

/// Breakdown of one fault + recovery cycle inside a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryMetrics {
    /// Index of the fault in the run's [`crate::config::FaultPlan`].
    pub fault: usize,
    /// Targets the fault hit.
    pub crashed_targets: Vec<usize>,
    /// Whether the fault was a power failure (SSD caches lost) rather
    /// than a NIC reset.
    pub power_fail: bool,
    /// Virtual time of the fault.
    pub crashed_at: SimTime,
    /// Virtual time the workload resumed (crash + both phases).
    pub resumed_at: SimTime,
    /// Phase 1: PMR scans + attribute transfer + global merge.
    pub order_rebuild: SimDuration,
    /// Phase 2: discarding out-of-order blocks.
    pub data_recovery: SimDuration,
    /// PMR records scanned across all targets.
    pub records_scanned: usize,
    /// Discard commands issued.
    pub discards: usize,
    /// Per-stream recovery outcome.
    pub streams: Vec<StreamRecovery>,
    /// The computed plan (invariant checking in tests).
    pub plan: RecoveryPlan,
}

/// Throughput accounting for one crash-free stretch of a run. A run
/// with `n` faults has `n + 1` epochs; recovery windows sit between
/// epochs and are excluded from every epoch's span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Epoch start (run start, or the resume instant of the previous
    /// recovery).
    pub from: SimTime,
    /// Epoch end (the fault instant, or the last completion).
    pub to: SimTime,
    /// Groups delivered during the epoch.
    pub groups_done: u64,
    /// Blocks delivered during the epoch.
    pub blocks_done: u64,
    /// fsync-style operations finished during the epoch.
    pub ops_done: u64,
}

impl EpochMetrics {
    /// Blocks per second within the epoch.
    pub fn block_iops(&self) -> f64 {
        let span = self.to.since(self.from);
        if span.as_nanos() == 0 {
            return 0.0;
        }
        self.blocks_done as f64 / span.as_secs_f64()
    }
}

/// Aggregated results of one simulation run.
///
/// Simulations are pure functions of `(configuration, seed)`, so two
/// runs of the same experiment must produce metrics that compare equal
/// field for field — the determinism snapshot tests rely on the
/// `PartialEq` impl here.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// 4 KB blocks written and acknowledged.
    pub blocks_done: u64,
    /// Ordered groups (or orderless requests) completed.
    pub groups_done: u64,
    /// fsync-style operations completed (FsyncJournal patterns).
    pub ops_done: u64,
    /// Commands the target gates had to buffer because the network
    /// delivered them out of order (zero when streams are pinned to
    /// queue pairs, §4.5 Principle 2).
    pub gate_buffered: u64,
    /// NVMe-oF commands sent (merging shrinks this).
    pub commands_sent: u64,
    /// Simulation events the engine dispatched during the run — the
    /// denominator of the engine-throughput (events/sec) harness.
    pub events_processed: u64,
    /// Wall-clock span of the run (first submit to last completion).
    pub span: SimDuration,
    /// Per-group completion latency.
    pub group_latency: Histogram,
    /// Per-fsync-op latency (submission of D to sync return).
    pub op_latency: Histogram,
    /// Fig. 14 breakdown: dispatch latency of the D, JM and JC stages
    /// plus the final I/O wait, in nanoseconds.
    pub stage_dispatch: [MeanAccum; 4],
    /// Initiator CPU utilisation in `[0, 1]`.
    pub initiator_util: f64,
    /// Mean target CPU utilisation in `[0, 1]`.
    pub target_util: f64,
    /// Fabric counters: packets, drops, retransmissions, per-path load.
    pub net: NetMetrics,
    /// Data-integrity ledger (all zeros when integrity checking was
    /// off for the run).
    pub integrity: IntegrityMetrics,
    /// One breakdown per fault the run survived (empty without a
    /// [`crate::config::FaultPlan`]).
    pub recoveries: Vec<RecoveryMetrics>,
    /// Crash-free stretches of the run: always at least one; a fault
    /// ends one epoch and its resume starts the next.
    pub epochs: Vec<EpochMetrics>,
    /// When the run finished.
    pub finished_at: SimTime,
    /// Per-command stage latency breakdown — `Some` only when the run
    /// was configured with [`crate::config::ClusterConfig::trace`].
    pub breakdown: Option<crate::trace::LatencyBreakdown>,
    /// Per-initiator breakdown, one entry per effective initiator.
    pub initiators: Vec<InitiatorMetrics>,
    /// Per-tenant breakdown, one entry per distinct tenant id in
    /// ascending order.
    pub tenants: Vec<TenantMetrics>,
    /// Virtual-time telemetry series — `Some` only when the run was
    /// configured with [`crate::config::ClusterConfig::telemetry`].
    pub telemetry: Option<crate::telemetry::Telemetry>,
}

impl RunMetrics {
    /// Blocks per second (the paper's KIOPS axis × 1000).
    pub fn block_iops(&self) -> f64 {
        if self.span.as_nanos() == 0 {
            return 0.0;
        }
        self.blocks_done as f64 / self.span.as_secs_f64()
    }

    /// Groups (ordered requests) per second.
    pub fn group_iops(&self) -> f64 {
        if self.span.as_nanos() == 0 {
            return 0.0;
        }
        self.groups_done as f64 / self.span.as_secs_f64()
    }

    /// fsync operations per second (FS workloads).
    pub fn op_iops(&self) -> f64 {
        if self.span.as_nanos() == 0 {
            return 0.0;
        }
        self.ops_done as f64 / self.span.as_secs_f64()
    }

    /// Write bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.block_iops() * 4096.0
    }

    /// CPU efficiency at the initiator: throughput per unit of CPU
    /// (§6.1: "throughput ÷ CPU utilization").
    pub fn initiator_efficiency(&self) -> f64 {
        if self.initiator_util <= 0.0 {
            return 0.0;
        }
        self.block_iops() / self.initiator_util
    }

    /// CPU efficiency at the targets.
    pub fn target_efficiency(&self) -> f64 {
        if self.target_util <= 0.0 {
            return 0.0;
        }
        self.block_iops() / self.target_util
    }

    /// Jain's fairness index over per-tenant throughput (blocks/sec
    /// across each tenant's active span). 1.0 with a single tenant.
    pub fn tenant_fairness(&self) -> f64 {
        let rates: Vec<f64> = self.tenants.iter().map(|t| t.block_iops()).collect();
        jain_index(&rates)
    }

    /// Jain's fairness index over *weight-normalized* per-tenant
    /// throughput: 1.0 means every tenant got service exactly
    /// proportional to its QoS weight.
    pub fn weighted_tenant_fairness(&self) -> f64 {
        let rates: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| t.block_iops() / t.weight.max(1) as f64)
            .collect();
        jain_index(&rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(blocks: u64, span_ms: u64, util: f64) -> RunMetrics {
        RunMetrics {
            blocks_done: blocks,
            groups_done: blocks,
            ops_done: blocks,
            gate_buffered: 0,
            commands_sent: blocks,
            events_processed: blocks,
            span: SimDuration::from_millis(span_ms),
            group_latency: Histogram::new(),
            op_latency: Histogram::new(),
            stage_dispatch: Default::default(),
            initiator_util: util,
            target_util: util / 2.0,
            net: NetMetrics::default(),
            integrity: IntegrityMetrics::default(),
            recoveries: Vec::new(),
            epochs: Vec::new(),
            finished_at: SimTime::ZERO,
            breakdown: None,
            initiators: Vec::new(),
            tenants: Vec::new(),
            telemetry: None,
        }
    }

    #[test]
    fn iops_and_bandwidth() {
        let m = metrics(150_000, 1000, 0.5);
        assert!((m.block_iops() - 150_000.0).abs() < 1.0);
        assert!((m.bandwidth() - 150_000.0 * 4096.0).abs() < 4096.0);
    }

    #[test]
    fn efficiency_divides_by_util() {
        let m = metrics(100_000, 1000, 0.5);
        assert!((m.initiator_efficiency() - 200_000.0).abs() < 1.0);
        assert!((m.target_efficiency() - 400_000.0).abs() < 1.0);
    }

    #[test]
    fn zero_span_and_util_are_safe() {
        let m = metrics(0, 0, 0.0);
        assert_eq!(m.block_iops(), 0.0);
        assert_eq!(m.initiator_efficiency(), 0.0);
    }

    #[test]
    fn epoch_iops_uses_the_epoch_span() {
        let e = EpochMetrics {
            from: SimTime::from_nanos(1_000_000_000),
            to: SimTime::from_nanos(2_000_000_000),
            groups_done: 5_000,
            blocks_done: 5_000,
            ops_done: 0,
        };
        assert!((e.block_iops() - 5_000.0).abs() < 1.0);
        let empty = EpochMetrics {
            from: SimTime::ZERO,
            to: SimTime::ZERO,
            groups_done: 0,
            blocks_done: 0,
            ops_done: 0,
        };
        assert_eq!(empty.block_iops(), 0.0);
    }

    #[test]
    fn integrity_ledger_balance() {
        let zero = IntegrityMetrics::default();
        assert!(zero.balanced(), "the all-zero ledger balances");
        assert_eq!(zero.injected(), 0);
        let ok = IntegrityMetrics {
            wire_injected: 3,
            wire_detected: 3,
            wire_refetched: 7,
            torn_injected: 1,
            rot_injected: 2,
            media_detected: 3,
            media_repaired: 2,
            media_unrepairable: 1,
            scrubbed_records: 100,
            scrub_us: 200.0,
        };
        assert!(ok.balanced());
        assert_eq!(ok.injected(), 6);
        assert_eq!(ok.detected(), 6);
        let silent = IntegrityMetrics {
            media_detected: 0, // a torn record nobody detected
            torn_injected: 1,
            ..IntegrityMetrics::default()
        };
        assert!(!silent.balanced(), "undetected corruption must unbalance");
    }

    #[test]
    fn absorb_sums_inflight_peaks_across_nics() {
        // Two NICs that each peaked at different times must not be
        // collapsed to a max: the cluster-wide bound is the sum.
        let mut agg = NetMetrics::default();
        let profile = rio_net::FabricProfile::connectx6().with_loss(0.995, 10.0);
        for seed in [1, 2] {
            let mut f = rio_net::Fabric::new(profile.clone(), seed);
            let mut nic = rio_net::Nic::new(1, f.profile().bandwidth);
            // Almost surely parks (99.5% loss), bumping this NIC's peak.
            let _ = f.send_burst(&mut nic, 0, SimTime::ZERO, 64);
            nic.crash_reset(SimTime::ZERO);
            agg.absorb(&nic);
        }
        assert_eq!(agg.retx_inflight_peak, 2, "sum of per-NIC peaks");
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One tenant hogging everything: 1/n.
        assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        // Mild skew sits in between.
        let j = jain_index(&[4.0, 5.0]);
        assert!(j > 0.98 && j < 1.0, "mild skew: {j}");
    }

    #[test]
    fn tenant_fairness_normalizes_by_weight() {
        let tenant = |id: u32, weight: u32, blocks: u64, ns: u64| TenantMetrics {
            tenant: id,
            weight,
            groups_done: blocks,
            blocks_done: blocks,
            group_latency: Histogram::new(),
            gate_wait: Histogram::new(),
            finished_at: SimTime::from_nanos(ns),
        };
        let mut m = metrics(0, 0, 0.0);
        // Tenant 0 (weight 2) drained its demand in half the time of
        // tenant 1 (weight 1): raw throughput is 2:1, exactly the
        // weight ratio.
        m.tenants = vec![
            tenant(0, 2, 1_000, 500_000_000),
            tenant(1, 1, 1_000, 1_000_000_000),
        ];
        assert!(m.tenant_fairness() < 0.95, "raw rates are skewed");
        assert!(
            m.weighted_tenant_fairness() > 0.999,
            "weight-normalized rates are even: {}",
            m.weighted_tenant_fairness()
        );
    }
}
