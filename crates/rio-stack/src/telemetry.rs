//! Virtual-time telemetry: a deterministic, allocation-bounded
//! time-series sampler over a cluster run.
//!
//! `RunMetrics` reports end-of-run aggregates; dynamics — incast at a
//! shared target NIC, DRR deficit oscillation, the post-crash
//! throughput dip — are invisible in a single p99 number. The
//! telemetry sampler buckets the run into fixed virtual-time windows
//! and records a small set of per-bucket series: delivered groups and
//! blocks (KIOPS), in-flight commands, submission-gate occupancy,
//! per-tenant DRR gate-wait, per-target SSD queue depth, per-NIC
//! retransmit/corruption counts, and completer pending. A stall
//! watchdog pass flags every window in which zero groups delivered
//! while work was pending, annotating the windows that fall inside a
//! crash/recovery span.
//!
//! The discipline is the same as the `StageTrace` subsystem: opt-in
//! via `ClusterConfig.telemetry`, zero overhead when off (no events,
//! no RNG draws, pinned event counts — the sampler only piggybacks on
//! instants the cluster already visits), allocation-bounded when on
//! (`max_buckets` caps the series; later samples clamp into the last
//! bucket and are counted in [`Telemetry::clamped`]), and snapshotted
//! into `RunMetrics.telemetry` so it participates in the determinism
//! snapshot regime.

use rio_sim::{SimDuration, SimTime};

/// Configuration for the virtual-time telemetry sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Width of one sampling window in virtual microseconds.
    pub bucket_us: u64,
    /// Maximum number of windows kept; samples past the end clamp
    /// into the last bucket (counted in [`Telemetry::clamped`]).
    pub max_buckets: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            bucket_us: 50,
            max_buckets: 4096,
        }
    }
}

/// Per-tenant DRR gate-wait accumulated inside one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantWait {
    /// Sum of admission waits recorded in this bucket, in ns.
    pub wait_ns: u64,
    /// Number of admissions the sum covers.
    pub waits: u64,
}

/// One fixed-width virtual-time window of the run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryBucket {
    /// Observation points that landed in this window (0 = the
    /// cluster never touched a sampling hook here).
    pub samples: u64,
    /// Groups delivered in order to the application in this window.
    pub delivered_groups: u64,
    /// Blocks those groups carried.
    pub delivered_blocks: u64,
    /// Peak in-flight command count observed in this window.
    pub inflight_peak: u32,
    /// Submitted-but-undelivered group count at the window's last
    /// observation point.
    pub pending_end: u64,
    /// Peak submission-gate occupancy (buffered fragments) observed
    /// across all targets in this window.
    pub gate_peak: u32,
    /// Peak in-order completer backlog observed in this window.
    pub completer_peak: u64,
    /// Per-tenant DRR admission wait, indexed like `Telemetry::tenants`.
    pub gate_wait: Vec<TenantWait>,
    /// Peak submitted-but-uncompleted SSD write count per target.
    pub ssd_queue_peak: Vec<u32>,
    /// Retransmitted packets per NIC (initiators first, then targets).
    pub retx_pkts: Vec<u32>,
    /// Corruption-triggered retransmits per NIC, same indexing.
    pub corrupt_pkts: Vec<u32>,
}

/// A crash/recovery span: the fault instant through the moment the
/// workload resumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoverySpan {
    /// Index of the fault in the run's `FaultPlan`.
    pub fault: u32,
    /// The crash instant.
    pub from: SimTime,
    /// The instant submission resumed after recovery.
    pub to: SimTime,
}

/// A maximal run of consecutive windows flagged by the stall
/// watchdog: zero groups delivered while work was pending.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallWindow {
    /// Start of the first stalled window.
    pub from: SimTime,
    /// End (exclusive) of the last stalled window.
    pub to: SimTime,
    /// Peak pending-group count carried across the stall.
    pub pending: u64,
    /// The fault whose recovery span overlaps the stall, if any.
    pub recovery: Option<u32>,
}

/// The finished time-series snapshot, folded into
/// `RunMetrics::telemetry`.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// Width of one window.
    pub bucket: SimDuration,
    /// Samples that fell past `max_buckets` and were clamped into the
    /// last window (0 = the series covers the whole run faithfully).
    pub clamped: u64,
    /// Tenant ids, aligning `TelemetryBucket::gate_wait`.
    pub tenants: Vec<u32>,
    /// Target count, aligning `TelemetryBucket::ssd_queue_peak`.
    pub targets: usize,
    /// Initiator count; NIC series index initiators first, then targets.
    pub initiators: usize,
    /// The windows, oldest first. Only windows up to the last one
    /// touched exist; intermediate untouched windows are present but
    /// all-zero (`samples == 0`).
    pub buckets: Vec<TelemetryBucket>,
    /// Crash/recovery spans, in fault order.
    pub recovery_spans: Vec<RecoverySpan>,
    /// Stall-watchdog findings, oldest first.
    pub stalls: Vec<StallWindow>,
}

impl Telemetry {
    /// Start instant of window `i`.
    pub fn bucket_start(&self, i: usize) -> SimTime {
        SimTime::from_nanos(i as u64 * self.bucket.as_nanos())
    }

    /// Delivered thousands of 4K-block IOPS in window `i` (the
    /// figure-style KIOPS axis, from delivered blocks over the
    /// window width).
    pub fn delivered_kiops(&self, i: usize) -> f64 {
        let secs = self.bucket.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.buckets[i].delivered_blocks as f64 / secs / 1e3
    }

    /// Sum of per-bucket delivered group counts (equals
    /// `RunMetrics::groups_done` when nothing clamped mid-delivery;
    /// clamping only merges buckets, so the sum is always exact).
    pub fn total_delivered_groups(&self) -> u64 {
        self.buckets.iter().map(|b| b.delivered_groups).sum()
    }

    /// Sum of per-bucket delivered block counts.
    pub fn total_delivered_blocks(&self) -> u64 {
        self.buckets.iter().map(|b| b.delivered_blocks).sum()
    }
}

/// The live sampler held by the cluster (`None` = telemetry off).
///
/// Purely passive: every method runs at an instant the cluster
/// already visits, schedules nothing, and draws no randomness.
#[derive(Debug)]
pub(crate) struct TelemetrySampler {
    bucket_ns: u64,
    max_buckets: usize,
    clamped: u64,
    buckets: Vec<TelemetryBucket>,
    /// Template bucket with the per-tenant/target/NIC vectors already
    /// sized, cloned when the series grows.
    proto: TelemetryBucket,
    tenants: Vec<u32>,
    n_targets: usize,
    n_initiators: usize,
    // Live gauges, updated by the hooks and folded into bucket peaks.
    inflight: u32,
    pending: u64,
    ssd_q: Vec<u32>,
    spans: Vec<RecoverySpan>,
}

impl TelemetrySampler {
    pub(crate) fn new(
        cfg: &TelemetryConfig,
        tenants: Vec<u32>,
        n_targets: usize,
        n_initiators: usize,
    ) -> Self {
        let proto = TelemetryBucket {
            gate_wait: vec![TenantWait::default(); tenants.len()],
            ssd_queue_peak: vec![0; n_targets],
            retx_pkts: vec![0; n_initiators + n_targets],
            corrupt_pkts: vec![0; n_initiators + n_targets],
            ..TelemetryBucket::default()
        };
        TelemetrySampler {
            bucket_ns: (cfg.bucket_us.max(1)) * 1_000,
            max_buckets: cfg.max_buckets.max(1),
            clamped: 0,
            buckets: Vec::new(),
            proto,
            tenants,
            n_targets,
            n_initiators,
            inflight: 0,
            pending: 0,
            ssd_q: vec![0; n_targets],
            spans: Vec::new(),
        }
    }

    /// The bucket covering `now`, growing (or clamping) the series,
    /// with the gauge-derived fields refreshed.
    fn bucket(&mut self, now: SimTime) -> &mut TelemetryBucket {
        let mut idx = (now.as_nanos() / self.bucket_ns) as usize;
        if idx >= self.max_buckets {
            idx = self.max_buckets - 1;
            self.clamped += 1;
        }
        while self.buckets.len() <= idx {
            self.buckets.push(self.proto.clone());
        }
        let b = &mut self.buckets[idx];
        b.samples += 1;
        b.inflight_peak = b.inflight_peak.max(self.inflight);
        b.pending_end = self.pending;
        b
    }

    /// A command left the initiator NIC.
    pub(crate) fn cmd_sent(&mut self, now: SimTime) {
        self.inflight += 1;
        self.bucket(now);
    }

    /// A command's completion arrived back at the initiator.
    pub(crate) fn cmd_done(&mut self, now: SimTime) {
        self.inflight = self.inflight.saturating_sub(1);
        self.bucket(now);
    }

    /// `n` groups were submitted (entered the undelivered window).
    pub(crate) fn group_submitted(&mut self, now: SimTime, n: u64) {
        self.pending += n;
        self.bucket(now);
    }

    /// `groups` groups carrying `blocks` blocks delivered in order.
    pub(crate) fn delivered(&mut self, now: SimTime, groups: u64, blocks: u64) {
        self.pending = self.pending.saturating_sub(groups);
        let b = self.bucket(now);
        b.delivered_groups += groups;
        b.delivered_blocks += blocks;
    }

    /// `n` groups were rolled back out of the pending window by a
    /// recovery requeue (they re-enter via `group_submitted` when the
    /// thread resubmits them).
    pub(crate) fn requeued(&mut self, now: SimTime, n: u64) {
        self.pending = self.pending.saturating_sub(n);
        self.bucket(now);
    }

    /// Gate occupancy observed at a command's arrival at a target.
    pub(crate) fn gate_depth(&mut self, now: SimTime, depth: u32) {
        let b = self.bucket(now);
        b.gate_peak = b.gate_peak.max(depth);
    }

    /// A DRR admission released a tenant's command after `wait`.
    pub(crate) fn drr_wait(&mut self, now: SimTime, tenant_idx: usize, wait: SimDuration) {
        let b = self.bucket(now);
        b.gate_wait[tenant_idx].wait_ns += wait.as_nanos();
        b.gate_wait[tenant_idx].waits += 1;
    }

    /// A write was admitted to target `t`'s SSD queue.
    pub(crate) fn ssd_admit(&mut self, now: SimTime, t: usize) {
        self.ssd_q[t] += 1;
        let q = self.ssd_q[t];
        let b = self.bucket(now);
        b.ssd_queue_peak[t] = b.ssd_queue_peak[t].max(q);
    }

    /// A write completed on target `t`'s SSDs.
    pub(crate) fn ssd_done(&mut self, now: SimTime, t: usize) {
        self.ssd_q[t] = self.ssd_q[t].saturating_sub(1);
        self.bucket(now);
    }

    /// Initiator NIC `i` retransmitted `pkts` packets (`corrupt` of
    /// them because of payload-digest mismatches).
    pub(crate) fn retx_initiator(&mut self, now: SimTime, i: usize, pkts: u32, corrupt: u32) {
        let b = self.bucket(now);
        b.retx_pkts[i] += pkts;
        b.corrupt_pkts[i] += corrupt;
    }

    /// Target NIC `t` retransmitted `pkts` packets.
    pub(crate) fn retx_target(&mut self, now: SimTime, t: usize, pkts: u32, corrupt: u32) {
        let n = self.n_initiators + t;
        let b = self.bucket(now);
        b.retx_pkts[n] += pkts;
        b.corrupt_pkts[n] += corrupt;
    }

    /// In-order completer backlog observed after a delivery round.
    pub(crate) fn completer_pending(&mut self, now: SimTime, held: u64) {
        let b = self.bucket(now);
        b.completer_peak = b.completer_peak.max(held);
    }

    /// A crash cleared the in-flight state. `drop_pending` mirrors
    /// whether the run tracks replay buffers: without them the
    /// pending window is unrecoverable bookkeeping, so it resets.
    pub(crate) fn crash(&mut self, now: SimTime, drop_pending: bool) {
        self.inflight = 0;
        for q in &mut self.ssd_q {
            *q = 0;
        }
        if drop_pending {
            self.pending = 0;
        }
        self.bucket(now);
    }

    /// Records the recovery span for fault `fault` once the resume
    /// instant is known.
    pub(crate) fn recovery_span(&mut self, fault: u32, from: SimTime, to: SimTime) {
        self.spans.push(RecoverySpan { fault, from, to });
    }

    /// Snapshots the series and runs the stall-watchdog pass.
    pub(crate) fn finish(&self) -> Telemetry {
        let bucket = SimDuration::from_nanos(self.bucket_ns);
        let mut stalls: Vec<StallWindow> = Vec::new();
        // Carry the pending gauge forward over windows the cluster
        // never touched: work that was pending at the last observation
        // stays pending through silent windows.
        let mut carried: u64 = 0;
        let mut open: Option<StallWindow> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            let start = i as u64 * self.bucket_ns;
            let end = start + self.bucket_ns;
            let span = self
                .spans
                .iter()
                .find(|s| s.from.as_nanos() < end && s.to.as_nanos() > start);
            let pending_here = if b.samples > 0 { b.pending_end.max(carried) } else { carried };
            let stalled = b.delivered_groups == 0 && (pending_here > 0 || span.is_some());
            if stalled {
                let w = open.get_or_insert(StallWindow {
                    from: SimTime::from_nanos(start),
                    to: SimTime::from_nanos(end),
                    pending: 0,
                    recovery: None,
                });
                w.to = SimTime::from_nanos(end);
                w.pending = w.pending.max(pending_here);
                if w.recovery.is_none() {
                    w.recovery = span.map(|s| s.fault);
                }
            } else if let Some(w) = open.take() {
                stalls.push(w);
            }
            if b.samples > 0 {
                carried = b.pending_end;
            }
        }
        if let Some(w) = open {
            stalls.push(w);
        }
        Telemetry {
            bucket,
            clamped: self.clamped,
            tenants: self.tenants.clone(),
            targets: self.n_targets,
            initiators: self.n_initiators,
            buckets: self.buckets.clone(),
            recovery_spans: self.spans.clone(),
            stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> TelemetrySampler {
        TelemetrySampler::new(
            &TelemetryConfig {
                bucket_us: 10,
                max_buckets: 8,
            },
            vec![7],
            2,
            1,
        )
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn buckets_grow_on_demand_and_clamp_at_the_cap() {
        let mut s = sampler();
        s.group_submitted(t(5), 1);
        s.delivered(t(25), 1, 2);
        let m = s.finish();
        assert_eq!(m.buckets.len(), 3);
        assert_eq!(m.buckets[0].pending_end, 1);
        assert_eq!(m.buckets[1].samples, 0);
        assert_eq!(m.buckets[2].delivered_groups, 1);
        assert_eq!(m.buckets[2].delivered_blocks, 2);
        assert_eq!(m.clamped, 0);

        // Past the cap, samples clamp into the last bucket.
        s.delivered(t(10_000), 1, 1);
        let m = s.finish();
        assert_eq!(m.buckets.len(), 8);
        assert_eq!(m.buckets[7].delivered_groups, 1);
        assert_eq!(m.clamped, 1);
        assert_eq!(m.total_delivered_groups(), 2);
    }

    #[test]
    fn gauges_track_peaks_per_bucket() {
        let mut s = sampler();
        s.cmd_sent(t(1));
        s.cmd_sent(t(2));
        s.ssd_admit(t(3), 1);
        s.ssd_admit(t(4), 1);
        s.cmd_done(t(5));
        s.ssd_done(t(12), 1);
        s.gate_depth(t(13), 9);
        s.completer_pending(t(14), 4);
        let m = s.finish();
        assert_eq!(m.buckets[0].inflight_peak, 2);
        assert_eq!(m.buckets[0].ssd_queue_peak, vec![0, 2]);
        assert_eq!(m.buckets[1].inflight_peak, 1);
        assert_eq!(m.buckets[1].gate_peak, 9);
        assert_eq!(m.buckets[1].completer_peak, 4);
    }

    #[test]
    fn nic_series_index_initiators_then_targets() {
        let mut s = sampler();
        s.retx_initiator(t(1), 0, 3, 1);
        s.retx_target(t(1), 1, 2, 0);
        let m = s.finish();
        assert_eq!(m.buckets[0].retx_pkts, vec![3, 0, 2]);
        assert_eq!(m.buckets[0].corrupt_pkts, vec![1, 0, 0]);
    }

    #[test]
    fn drr_wait_accumulates_per_tenant() {
        let mut s = sampler();
        s.drr_wait(t(2), 0, SimDuration::from_micros(5));
        s.drr_wait(t(3), 0, SimDuration::from_micros(7));
        let m = s.finish();
        assert_eq!(m.buckets[0].gate_wait[0].wait_ns, 12_000);
        assert_eq!(m.buckets[0].gate_wait[0].waits, 2);
    }

    #[test]
    fn watchdog_flags_pending_windows_without_deliveries() {
        let mut s = sampler();
        s.group_submitted(t(5), 3);
        // Nothing delivers in windows 1-2 (no samples at all), then
        // everything delivers in window 3.
        s.delivered(t(35), 3, 3);
        let m = s.finish();
        // Windows 0-2 merge into one stall: pending grew to 3 in
        // window 0 and the carried gauge keeps 1-2 flagged.
        assert_eq!(m.stalls.len(), 1);
        assert_eq!(m.stalls[0].from, t(0));
        assert_eq!(m.stalls[0].to, t(30));
        assert_eq!(m.stalls[0].pending, 3);
        assert!(m.stalls.iter().all(|w| w.recovery.is_none()));
    }

    #[test]
    fn watchdog_annotates_recovery_spans() {
        let mut s = sampler();
        s.group_submitted(t(5), 2);
        s.delivered(t(8), 2, 2);
        // Crash at 12us, recovery runs until 28us; nothing pending
        // (no replay tracking), yet the span keeps the watchdog on.
        s.crash(t(12), true);
        s.recovery_span(0, t(12), t(28));
        s.delivered(t(31), 1, 1);
        let m = s.finish();
        assert_eq!(m.recovery_spans.len(), 1);
        assert_eq!(m.stalls.len(), 1);
        assert_eq!(m.stalls[0].from, t(10));
        assert_eq!(m.stalls[0].to, t(30));
        assert_eq!(m.stalls[0].recovery, Some(0));
    }

    #[test]
    fn crash_clears_gauges_and_requeue_shrinks_pending() {
        let mut s = sampler();
        s.cmd_sent(t(1));
        s.ssd_admit(t(2), 0);
        s.group_submitted(t(3), 4);
        s.crash(t(5), false);
        assert_eq!(s.inflight, 0);
        assert_eq!(s.ssd_q, vec![0, 0]);
        assert_eq!(s.pending, 4);
        s.delivered(t(6), 1, 1);
        s.requeued(t(6), 3);
        assert_eq!(s.pending, 0);
    }

    #[test]
    fn kiops_axis_comes_from_blocks_over_the_window() {
        let mut s = sampler();
        s.delivered(t(1), 10, 100);
        let m = s.finish();
        // 100 blocks in a 10us window = 10M blocks/s = 10_000 KIOPS.
        assert!((m.delivered_kiops(0) - 10_000.0).abs() < 1e-9);
        assert_eq!(m.bucket_start(1), t(10));
    }
}
