//! Per-command stage tracing and the fig. 14 latency breakdown.
//!
//! RIO's central claim is that ordering is preserved *off* the I/O
//! path, so the interesting evidence is where each microsecond of a
//! command goes: stamp → dispatch → gate admit → gate release → PMR
//! persist → media done → completion → in-order delivery. When a
//! [`crate::config::ClusterConfig`] enables tracing via
//! [`TraceConfig`], the cluster timestamps every command at each of
//! those stages, annotates go-back-N retransmissions and crash aborts,
//! and folds the deltas into a deterministic [`LatencyBreakdown`]
//! exposed in [`crate::metrics::RunMetrics`] — so *any* figure or
//! bench config can render the fig. 14 breakdown, not just the
//! hand-built one.
//!
//! The recorder is allocation-free on the event path: open traces live
//! in a pre-sized free-list arena, closed records go into a bounded
//! ring, and the per-stage histograms are the same fixed-layout
//! log-bucketed [`Histogram`]s the rest of the metrics use, so the
//! whole breakdown participates in the `RunMetrics` determinism
//! snapshot tests. Tracing consumes no randomness and schedules no
//! events, so enabling it cannot perturb a run.

use std::collections::VecDeque;

use rio_sim::{Histogram, SimDuration, SimTime};

/// Opt-in switch and sizing knobs for per-command tracing.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Capacity of the closed-record ring kept for inspection. The
    /// aggregate histograms always see every command; only the raw
    /// per-command records are bounded (oldest evicted first, the
    /// eviction count is reported in [`LatencyBreakdown`]).
    pub ring: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { ring: 4096 }
    }
}

/// Pipeline stages a traced command passes through, in order.
///
/// Baseline modes skip the stages their engines do not have:
/// non-ordered commands never persist to PMR, and the baselines have
/// no in-order completer, so their [`Stage::Delivered`] coincides with
/// [`Stage::Complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Ordering attributes stamped (or, for unordered commands, the
    /// submission instant before the dispatch CPU charge).
    Stamp = 0,
    /// Command handed to the NIC (SEND posted).
    Dispatch = 1,
    /// Command received by the target (gate sees it).
    GateAdmit = 2,
    /// Gate released the command to the driver (for baselines, the
    /// instant the target submits to the SSD).
    GateRelease = 3,
    /// Ordering attribute persisted to PMR (Rio only).
    PmrPersist = 4,
    /// Device finished the write (the flush instant when a flush is
    /// embedded or chained — last write wins).
    MediaDone = 5,
    /// Completion arrived back at the initiator.
    Complete = 6,
    /// Delivered to the application by the in-order completer (equal
    /// to [`Stage::Complete`] for modes without one).
    Delivered = 7,
}

/// Number of [`Stage`]s.
pub const STAGES: usize = 8;

/// Number of stage-to-stage segments in a [`LatencyBreakdown`]
/// (`STAGES - 1`).
pub const SEGMENTS: usize = STAGES - 1;

/// Sentinel trace id carried by untraced commands.
pub(crate) const TRACE_NONE: u32 = u32::MAX;

/// One command's trace: identity, stage timestamps and annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct CmdTraceRecord {
    /// Initiator that issued the command. Trace slot ids are recycled
    /// across the whole cluster, so a record's identity is
    /// `(initiator, stream, seq)` — never the arena id alone, which
    /// collides across initiators.
    pub initiator: u16,
    /// *Global* ordered stream (initiator stream base + local stream),
    /// or the submitting thread's stream for unordered commands.
    /// Global ids keep the per-stream delivery queues collision-free
    /// across initiators.
    pub stream: u16,
    /// First group sequence covered (0 for unordered commands).
    pub seq_start: u32,
    /// Last group sequence covered (0 for unordered commands).
    pub seq_end: u32,
    /// Target server index.
    pub server: u16,
    /// SSD index on the target.
    pub ssd: u16,
    /// First LBA of the write.
    pub lba: u64,
    /// Whether this command is (or embeds) a flush.
    pub is_flush: bool,
    /// Whether the command carried ordering attributes (Rio/Horae).
    pub ordered: bool,
    /// Crash-free epoch the command was dispatched in.
    pub epoch: u32,
    /// Commands buffered in the target gate when this one was
    /// admitted (out-of-order arrival pressure, §4.5).
    pub gate_depth: u32,
    /// Timestamp of each [`Stage`] reached, indexed by the stage
    /// discriminant; `None` for stages the command never reached.
    pub stages: [Option<SimTime>; STAGES],
    /// Go-back-N recovery rounds this command's transfers entered.
    pub retx_rounds: u32,
    /// Packets retransmitted for this command across all rounds; each
    /// wire retransmission is counted exactly once, so these sum to
    /// the NIC-level retransmit counter.
    pub retx_pkts: u32,
    /// The subset of `retx_rounds` triggered by a receiver-detected
    /// packet corruption (CRC mismatch NAK) rather than a plain drop.
    pub retx_corrupt_rounds: u32,
    /// The subset of `retx_pkts` retransmitted in corruption-triggered
    /// rounds.
    pub retx_corrupt_pkts: u32,
    /// `Some(fault index)` when a crash killed the command in flight;
    /// aborted commands are redispatched with a fresh trace in the
    /// next epoch, keeping traces exactly-once per epoch.
    pub aborted_by: Option<u32>,
}

impl CmdTraceRecord {
    fn new() -> Self {
        CmdTraceRecord {
            initiator: 0,
            stream: 0,
            seq_start: 0,
            seq_end: 0,
            server: 0,
            ssd: 0,
            lba: 0,
            is_flush: false,
            ordered: false,
            epoch: 0,
            gate_depth: 0,
            stages: [None; STAGES],
            retx_rounds: 0,
            retx_pkts: 0,
            retx_corrupt_rounds: 0,
            retx_corrupt_pkts: 0,
            aborted_by: None,
        }
    }

    /// Timestamp of `stage`, if the command reached it.
    pub fn stage(&self, stage: Stage) -> Option<SimTime> {
        self.stages[stage as usize]
    }

    /// Whether the command completed its full stage chain: every stage
    /// stamped except [`Stage::PmrPersist`], which only ordered
    /// commands have.
    pub fn chain_complete(&self) -> bool {
        self.stages
            .iter()
            .enumerate()
            .all(|(i, s)| s.is_some() || (i == Stage::PmrPersist as usize && !self.ordered))
    }
}

/// Per-stage latency aggregates of one traced run.
///
/// Each segment histogram records the time *into* a stage from the
/// previous stage the command actually reached, so segment `i` is the
/// cost of reaching `Stage` `i + 1`. All aggregates are deterministic
/// functions of `(config, seed)` and participate in the `RunMetrics`
/// equality snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyBreakdown {
    /// Segment histograms: `stages[i]` is the latency from the
    /// previous reached stage into stage `i + 1` (see
    /// [`LatencyBreakdown::SEGMENT_LABELS`]).
    pub stages: [Histogram; SEGMENTS],
    /// Stamp-to-delivery latency of completed commands.
    pub total: Histogram,
    /// Commands that completed their full chain.
    pub completed: u64,
    /// Commands killed in flight by a crash.
    pub aborted: u64,
    /// Go-back-N recovery rounds summed over traced commands.
    pub retx_rounds: u64,
    /// Packets retransmitted, summed over traced commands. Counted
    /// per wire transmission, exactly once, so for runs where every
    /// retransmitted message belongs to a traced command this equals
    /// `NetMetrics::retransmits`.
    pub retx_pkts: u64,
    /// The subset of `retx_rounds` triggered by receiver-detected
    /// packet corruptions (CRC mismatch NAKs).
    pub retx_corrupt_rounds: u64,
    /// The subset of `retx_pkts` retransmitted in corruption-triggered
    /// rounds.
    pub retx_corrupt_pkts: u64,
    /// Peak number of completed-but-undelivered groups buffered in
    /// the in-order completer across all streams (how much
    /// completion-side buffering ordering cost), sampled at unit
    /// completions.
    pub completer_held_peak: u64,
    /// The most recent closed per-command records (bounded ring).
    pub records: Vec<CmdTraceRecord>,
    /// Records evicted from the ring because it was full.
    pub records_dropped: u64,
}

impl LatencyBreakdown {
    /// Human label of each segment, indexed like
    /// [`LatencyBreakdown::stages`].
    pub const SEGMENT_LABELS: [&'static str; SEGMENTS] = [
        "dispatch",   // Stamp -> Dispatch: submit-side CPU
        "network",    // Dispatch -> GateAdmit: wire + receive
        "gate",       // GateAdmit -> GateRelease: ordering wait
        "pmr",        // GateRelease -> PmrPersist: attribute persist
        "media",      // -> MediaDone: data pull + device write
        "completion", // MediaDone -> Complete: completion wire + IRQ
        "deliver",    // Complete -> Delivered: in-order hold
    ];

    fn empty(ring: usize) -> Self {
        LatencyBreakdown {
            stages: Default::default(),
            total: Histogram::new(),
            completed: 0,
            aborted: 0,
            retx_rounds: 0,
            retx_pkts: 0,
            retx_corrupt_rounds: 0,
            retx_corrupt_pkts: 0,
            completer_held_peak: 0,
            records: Vec::with_capacity(ring.min(1024)),
            records_dropped: 0,
        }
    }

    /// `(p50, p99, p999)` of segment `seg` (see
    /// [`LatencyBreakdown::SEGMENT_LABELS`]).
    pub fn segment_quantiles(&self, seg: usize) -> (SimDuration, SimDuration, SimDuration) {
        let h = &self.stages[seg];
        (h.quantile(0.5), h.quantile(0.99), h.quantile(0.999))
    }

    /// `(p50, p99, p999)` of the stamp-to-delivery total.
    pub fn total_quantiles(&self) -> (SimDuration, SimDuration, SimDuration) {
        (
            self.total.quantile(0.5),
            self.total.quantile(0.99),
            self.total.quantile(0.999),
        )
    }
}

/// The live recorder owned by a running cluster when tracing is on.
///
/// Open traces are slots in a free-list arena addressed by the `u32`
/// id carried in each in-flight command, so recording a stage is an
/// array write. Closing a trace folds its deltas into the aggregate
/// histograms and pushes the record into the bounded ring.
#[derive(Debug)]
pub(crate) struct StageTrace {
    slots: Vec<CmdTraceRecord>,
    live: Vec<bool>,
    free: Vec<u32>,
    /// Per-stream FIFO of `(seq_end, trace id)` for ordered commands
    /// awaiting in-order delivery. Commands are dispatched in sequence
    /// order per stream, so the queue head is always the next
    /// undelivered trace.
    pending: Vec<VecDeque<(u32, u32)>>,
    ring_cap: usize,
    ring_dropped: u64,
    agg: LatencyBreakdown,
    epoch: u32,
}

impl StageTrace {
    pub(crate) fn new(cfg: &TraceConfig, streams: usize) -> Self {
        StageTrace {
            slots: Vec::with_capacity(256),
            live: Vec::with_capacity(256),
            free: Vec::with_capacity(256),
            pending: (0..streams).map(|_| VecDeque::with_capacity(64)).collect(),
            ring_cap: cfg.ring,
            ring_dropped: 0,
            agg: LatencyBreakdown::empty(cfg.ring),
            epoch: 0,
        }
    }

    /// Opens a trace and returns its id. `stamp` is the instant the
    /// command was stamped/submitted, `dispatch` the instant its SEND
    /// was posted.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn open(
        &mut self,
        initiator: u16,
        stream: u16,
        seq: Option<(u32, u32)>,
        server: u16,
        ssd: u16,
        lba: u64,
        is_flush: bool,
        stamp: SimTime,
        dispatch: SimTime,
    ) -> u32 {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(CmdTraceRecord::new());
                self.live.push(false);
                (self.slots.len() - 1) as u32
            }
        };
        let r = &mut self.slots[id as usize];
        *r = CmdTraceRecord::new();
        r.initiator = initiator;
        r.stream = stream;
        r.server = server;
        r.ssd = ssd;
        r.lba = lba;
        r.is_flush = is_flush;
        r.epoch = self.epoch;
        if let Some((s, e)) = seq {
            r.seq_start = s;
            r.seq_end = e;
            r.ordered = true;
        }
        r.stages[Stage::Stamp as usize] = Some(stamp);
        r.stages[Stage::Dispatch as usize] = Some(dispatch);
        self.live[id as usize] = true;
        id
    }

    /// Timestamps `stage` on trace `id` (last write wins, so a chained
    /// flush overwrites the write's media instant).
    ///
    /// The stamp is clamped up to the latest earlier stage: per-core
    /// FIFO accounting can place a cross-core handoff (a gate release
    /// driven by a command received on another core, scatter-QP mode) a
    /// hair before the released command's own admit stamp, and the
    /// causal chain — not the per-core clock skew — is what the trace
    /// reports.
    pub(crate) fn rec(&mut self, id: u32, stage: Stage, at: SimTime) {
        if id == TRACE_NONE {
            return;
        }
        debug_assert!(self.live[id as usize], "stage on a closed trace");
        let r = &mut self.slots[id as usize];
        let mut t = at;
        for &s in r.stages[..stage as usize].iter().flatten() {
            t = t.max(s);
        }
        r.stages[stage as usize] = Some(t);
    }

    /// Records the gate depth observed when the command was admitted.
    pub(crate) fn gate_depth(&mut self, id: u32, depth: u32) {
        if id == TRACE_NONE {
            return;
        }
        self.slots[id as usize].gate_depth = depth;
    }

    /// Annotates one go-back-N recovery round retransmitting `pkts`
    /// packets for command `id`.
    pub(crate) fn retx(&mut self, id: u32, pkts: u32) {
        if id == TRACE_NONE {
            return;
        }
        let r = &mut self.slots[id as usize];
        r.retx_rounds += 1;
        r.retx_pkts += pkts;
        self.agg.retx_rounds += 1;
        self.agg.retx_pkts += pkts as u64;
    }

    /// Annotates a corruption-triggered recovery round: counted in the
    /// overall retransmit totals *and* in the corrupt-specific subset.
    pub(crate) fn retx_corrupt(&mut self, id: u32, pkts: u32) {
        if id == TRACE_NONE {
            return;
        }
        self.retx(id, pkts);
        let r = &mut self.slots[id as usize];
        r.retx_corrupt_rounds += 1;
        r.retx_corrupt_pkts += pkts;
        self.agg.retx_corrupt_rounds += 1;
        self.agg.retx_corrupt_pkts += pkts as u64;
    }

    /// Queues ordered command `id` (covering groups through `seq_end`)
    /// for delivery stamping on `stream`.
    pub(crate) fn pending_push(&mut self, stream: usize, seq_end: u32, id: u32) {
        // Fragments of one striped unit share a sequence range, so
        // equal `seq_end`s are expected; regressions only.
        debug_assert!(
            self.pending[stream].back().map_or(true, |&(e, _)| e <= seq_end),
            "per-stream dispatch must be in sequence order"
        );
        self.pending[stream].push_back((seq_end, id));
    }

    /// The in-order completer delivered `stream` through sequence
    /// `through` at `at`: stamps and closes every pending trace whose
    /// last group is now delivered.
    pub(crate) fn deliver(&mut self, stream: usize, through: u32, at: SimTime) {
        while let Some(&(seq_end, id)) = self.pending[stream].front() {
            if seq_end > through {
                break;
            }
            self.pending[stream].pop_front();
            self.rec(id, Stage::Delivered, at);
            self.close(id);
        }
    }

    /// Stamps delivery at `at` and closes trace `id` — the baseline
    /// path, where completion *is* delivery.
    pub(crate) fn finish_unordered(&mut self, id: u32, at: SimTime) {
        if id == TRACE_NONE {
            return;
        }
        self.rec(id, Stage::Delivered, at);
        self.close(id);
    }

    /// Raises the completer-held-groups peak gauge.
    pub(crate) fn note_completer_held(&mut self, held: u64) {
        self.agg.completer_held_peak = self.agg.completer_held_peak.max(held);
    }

    /// A fault killed every in-flight command: closes all open traces
    /// as aborted-by-`fault`, clears the delivery queues and starts
    /// the next epoch. Completed traces are untouched, and redispatch
    /// after recovery opens fresh traces in the new epoch, so traces
    /// stay exactly-once per `(epoch, command)`.
    pub(crate) fn abort_open(&mut self, fault: u32) {
        for q in &mut self.pending {
            q.clear();
        }
        for id in 0..self.slots.len() as u32 {
            if self.live[id as usize] {
                self.slots[id as usize].aborted_by = Some(fault);
                self.close(id);
            }
        }
        self.epoch += 1;
    }

    /// Folds trace `id` into the aggregates and recycles its slot.
    fn close(&mut self, id: u32) {
        debug_assert!(self.live[id as usize], "closing a closed trace");
        self.live[id as usize] = false;
        let r = &self.slots[id as usize];
        if r.aborted_by.is_none() {
            debug_assert!(r.chain_complete(), "completed command missing a stage");
            let mut prev = r.stages[Stage::Stamp as usize];
            for (seg, stage) in r.stages.iter().enumerate().skip(1) {
                if let (Some(p), Some(t)) = (prev, *stage) {
                    self.agg.stages[seg - 1].record(t.since(p));
                }
                if stage.is_some() {
                    prev = *stage;
                }
            }
            if let (Some(s), Some(d)) = (
                r.stages[Stage::Stamp as usize],
                r.stages[Stage::Delivered as usize],
            ) {
                self.agg.total.record(d.since(s));
            }
            self.agg.completed += 1;
        } else {
            self.agg.aborted += 1;
        }
        if self.agg.records.len() >= self.ring_cap {
            if !self.agg.records.is_empty() {
                self.agg.records.remove(0);
            }
            self.ring_dropped += 1;
        }
        if self.ring_cap > 0 {
            self.agg.records.push(r.clone());
        } else {
            self.ring_dropped += 1;
        }
        self.free.push(id);
    }

    /// Snapshot of the aggregates for [`crate::metrics::RunMetrics`].
    pub(crate) fn finish(&self) -> LatencyBreakdown {
        let mut out = self.agg.clone();
        out.records_dropped = self.ring_dropped;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Opens an unordered trace, stamps the whole baseline chain and
    /// closes it at `base + 40`.
    fn run_unordered(tr: &mut StageTrace, base: u64, lba: u64) -> u32 {
        let id = tr.open(0, 0, None, 0, 0, lba, false, t(base), t(base + 5));
        tr.rec(id, Stage::GateAdmit, t(base + 10));
        tr.rec(id, Stage::GateRelease, t(base + 15));
        tr.rec(id, Stage::MediaDone, t(base + 30));
        tr.rec(id, Stage::Complete, t(base + 40));
        tr.finish_unordered(id, t(base + 40));
        id
    }

    fn full_chain(tr: &mut StageTrace, base: u64, stream: u16, seq: (u32, u32)) -> u32 {
        let id = tr.open(0, stream, Some(seq), 0, 0, 8, false, t(base), t(base + 10));
        tr.rec(id, Stage::GateAdmit, t(base + 30));
        tr.gate_depth(id, 2);
        tr.rec(id, Stage::GateRelease, t(base + 40));
        tr.rec(id, Stage::PmrPersist, t(base + 45));
        tr.rec(id, Stage::MediaDone, t(base + 90));
        tr.rec(id, Stage::Complete, t(base + 110));
        tr.pending_push(stream as usize, seq.1, id);
        id
    }

    #[test]
    fn ordered_chain_closes_on_delivery_with_segment_deltas() {
        let mut tr = StageTrace::new(&TraceConfig::default(), 2);
        full_chain(&mut tr, 100, 0, (1, 2));
        // Not delivered yet: nothing aggregated.
        assert_eq!(tr.finish().completed, 0);
        tr.deliver(0, 2, t(220));
        let b = tr.finish();
        assert_eq!(b.completed, 1);
        assert_eq!(b.records.len(), 1);
        let r = &b.records[0];
        assert!(r.chain_complete());
        assert_eq!(r.stage(Stage::Delivered), Some(t(220)));
        // Segment deltas: 10, 20, 10, 5, 45, 20, then 220 - 210 = 10
        // of in-order hold.
        let expect = [10u64, 20, 10, 5, 45, 20, 10];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(b.stages[i].count(), 1, "segment {i}");
            assert_eq!(b.stages[i].max(), SimDuration::from_nanos(*e), "segment {i}");
        }
        assert_eq!(b.total.max(), SimDuration::from_nanos(120));
    }

    #[test]
    fn delivery_pops_only_covered_sequences() {
        let mut tr = StageTrace::new(&TraceConfig::default(), 1);
        full_chain(&mut tr, 0, 0, (1, 1));
        full_chain(&mut tr, 10, 0, (2, 3));
        tr.deliver(0, 1, t(500));
        assert_eq!(tr.finish().completed, 1);
        tr.deliver(0, 2, t(600));
        assert_eq!(tr.finish().completed, 1, "seq 3 not yet delivered");
        tr.deliver(0, 3, t(700));
        assert_eq!(tr.finish().completed, 2);
    }

    #[test]
    fn unordered_chain_skips_pmr_and_delivers_at_completion() {
        let mut tr = StageTrace::new(&TraceConfig::default(), 1);
        let id = tr.open(0, 0, None, 0, 0, 16, false, t(0), t(5));
        tr.rec(id, Stage::GateAdmit, t(20));
        tr.rec(id, Stage::GateRelease, t(25));
        tr.rec(id, Stage::MediaDone, t(60));
        tr.rec(id, Stage::Complete, t(80));
        tr.finish_unordered(id, t(80));
        let b = tr.finish();
        assert_eq!(b.completed, 1);
        let r = &b.records[0];
        assert!(!r.ordered && r.chain_complete());
        assert_eq!(r.stage(Stage::PmrPersist), None);
        // The media segment bridges GateRelease -> MediaDone.
        assert_eq!(b.stages[4].max(), SimDuration::from_nanos(35));
        // No completer: the deliver segment is zero.
        assert_eq!(b.stages[6].max(), SimDuration::ZERO);
    }

    #[test]
    fn abort_closes_open_traces_and_bumps_epoch() {
        let mut tr = StageTrace::new(&TraceConfig::default(), 1);
        full_chain(&mut tr, 0, 0, (1, 1));
        tr.abort_open(3);
        let b = tr.finish();
        assert_eq!((b.completed, b.aborted), (0, 1));
        assert_eq!(b.records[0].aborted_by, Some(3));
        // Delivery queue was cleared; a fresh epoch trace works.
        let id = tr.open(0, 0, Some((1, 1)), 0, 0, 8, false, t(10), t(20));
        assert_eq!(tr.slots[id as usize].epoch, 1);
    }

    #[test]
    fn retx_annotations_accumulate_per_round() {
        let mut tr = StageTrace::new(&TraceConfig::default(), 1);
        let id = tr.open(0, 0, None, 0, 0, 0, false, t(0), t(5));
        tr.retx(id, 4);
        tr.retx(id, 2);
        tr.rec(id, Stage::GateAdmit, t(10));
        tr.rec(id, Stage::GateRelease, t(15));
        tr.rec(id, Stage::MediaDone, t(30));
        tr.rec(id, Stage::Complete, t(40));
        tr.finish_unordered(id, t(40));
        let b = tr.finish();
        assert_eq!((b.retx_rounds, b.retx_pkts), (2, 6));
        assert_eq!(b.records[0].retx_rounds, 2);
        assert_eq!(b.records[0].retx_pkts, 6);
    }

    #[test]
    fn ring_bounds_records_and_reports_evictions() {
        let mut tr = StageTrace::new(&TraceConfig { ring: 2 }, 1);
        for i in 0..4u64 {
            run_unordered(&mut tr, i * 100, i);
        }
        let b = tr.finish();
        assert_eq!(b.completed, 4);
        assert_eq!(b.records.len(), 2);
        assert_eq!(b.records_dropped, 2);
        assert_eq!(b.records[1].lba, 3, "newest records kept");
    }

    #[test]
    fn initiator_tag_survives_slot_recycling_across_initiators() {
        // Two initiators interleave commands through the shared arena:
        // slot ids get recycled, so the record identity must carry the
        // initiator tag — a record keyed by arena id alone would
        // attribute initiator 1's command to initiator 0.
        let mut tr = StageTrace::new(&TraceConfig::default(), 4);
        let a = run_unordered(&mut tr, 0, 7);
        // Initiator 1, global stream 2, reuses initiator 0's slot.
        let b = tr.open(1, 2, Some((1, 1)), 0, 0, 9, false, t(100), t(110));
        assert_eq!(a, b, "slot recycled across initiators");
        tr.rec(b, Stage::GateAdmit, t(130));
        tr.rec(b, Stage::GateRelease, t(140));
        tr.rec(b, Stage::PmrPersist, t(145));
        tr.rec(b, Stage::MediaDone, t(190));
        tr.rec(b, Stage::Complete, t(210));
        tr.pending_push(2, 1, b);
        tr.deliver(2, 1, t(220));
        let out = tr.finish();
        assert_eq!(out.completed, 2);
        assert_eq!(out.records[0].initiator, 0);
        assert_eq!((out.records[1].initiator, out.records[1].stream), (1, 2));
    }

    #[test]
    fn slots_are_recycled() {
        let mut tr = StageTrace::new(&TraceConfig::default(), 1);
        let a = run_unordered(&mut tr, 0, 0);
        let b = tr.open(0, 0, None, 0, 0, 1, false, t(100), t(101));
        assert_eq!(a, b, "freed slot reused");
        assert_eq!(tr.slots.len(), 1);
    }
}
