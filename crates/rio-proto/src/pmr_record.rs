//! The 32-byte persistent ordering-attribute record (PMR log entry).
//!
//! Rio appends one record per physical ordered write request to a
//! circular log in the SSD's Persistent Memory Region (§4.3.2). The
//! record must support:
//!
//! * torn-write detection on post-crash scan (checksum over the body),
//! * wrap detection for the circular log (a generation byte),
//! * an in-place `persist` toggle that is a single-byte — and therefore
//!   atomic — MMIO write, kept *outside* the checksum so the toggle does
//!   not have to rewrite the record,
//! * unambiguous reassembly: `member_idx` names the request within its
//!   group and `split_idx` names the fragment within a split request, so
//!   recovery can rejoin fragments even when several members of one
//!   group were split across servers (a case Fig. 8(b) implies but the
//!   paper does not spell out).
//!
//! Layout (32 bytes, little-endian):
//!
//! | offset | field        | notes                                    |
//! |--------|--------------|------------------------------------------|
//! | 0      | magic (0xA7) |                                          |
//! | 1      | generation   | circular-log lap marker                  |
//! | 2      | flags        | boundary/split/ipu/flush/last-split      |
//! | 3      | member index | request ordinal within its group         |
//! | 4..6   | num          | requests in group (boundary records);    |
//! |        |              | total members for merged spans           |
//! | 6..8   | stream       |                                          |
//! | 8..12  | seq_start    |                                          |
//! | 12..16 | seq_end      | > seq_start only for merged spans        |
//! | 16..20 | prev         | preceding group on this server           |
//! | 20..26 | lba          | 48-bit starting logical block address    |
//! | 26     | len          | blocks covered (1..=255)                 |
//! | 27     | split index  | fragment ordinal within a split request  |
//! | 28..30 | checksum     | CRC-16/CCITT over bytes 0..28            |
//! | 30     | persist      | 0/1, toggled in place, not checksummed   |
//! | 31     | ssd index    | device within the target server*         |
//!
//! \* written together with the record body in one MMIO burst; a torn
//! record is caught by the checksum over the body, and the ssd byte is
//! never rewritten afterwards.

/// Flag bits in byte 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecordFlags {
    /// Final request of its ordered group.
    pub boundary: bool,
    /// Fragment of a split request.
    pub split: bool,
    /// In-place update (excluded from rollback).
    pub ipu: bool,
    /// Carries a FLUSH (its completion persists all predecessors on
    /// non-PLP drives).
    pub flush: bool,
    /// Last fragment of a split request.
    pub last_split: bool,
}

impl RecordFlags {
    fn to_byte(self) -> u8 {
        (self.boundary as u8)
            | (self.split as u8) << 1
            | (self.ipu as u8) << 2
            | (self.flush as u8) << 3
            | (self.last_split as u8) << 4
    }

    fn from_byte(b: u8) -> Self {
        RecordFlags {
            boundary: b & 1 != 0,
            split: b & 2 != 0,
            ipu: b & 4 != 0,
            flush: b & 8 != 0,
            last_split: b & 16 != 0,
        }
    }
}

/// A decoded PMR log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmrRecord {
    /// Circular-log generation (lap) this record was written in.
    pub generation: u8,
    /// Flags.
    pub flags: RecordFlags,
    /// Ordinal of this request within its group (0-based).
    pub member_idx: u8,
    /// Number of requests in the group (meaningful on boundary records;
    /// the member total across all covered groups for merged spans).
    pub num: u16,
    /// Stream identifier.
    pub stream: u16,
    /// First sequence number covered.
    pub seq_start: u32,
    /// Last sequence number covered (merged spans only exceed
    /// `seq_start`).
    pub seq_end: u32,
    /// Preceding group's sequence number on the same server.
    pub prev: u32,
    /// Starting logical block address (48-bit).
    pub lba: u64,
    /// Number of blocks covered (1..=255).
    pub len: u8,
    /// Fragment ordinal within a split request (0 when not split).
    pub split_idx: u8,
    /// Whether the data blocks are known durable.
    pub persist: bool,
    /// Device index within the target server this record describes.
    pub ssd: u8,
}

use crate::crc::crc16;

impl PmrRecord {
    /// Size of an encoded record in bytes.
    pub const SIZE: usize = 32;

    /// Magic byte identifying a record.
    pub const MAGIC: u8 = 0xA7;

    /// Byte offset of the persist flag within the record (the target
    /// driver toggles exactly this byte, §4.3.2 step 7).
    pub const PERSIST_OFFSET: usize = 30;

    /// Maximum LBA representable (48 bits).
    pub const MAX_LBA: u64 = (1 << 48) - 1;

    /// Serializes to the 32-byte image.
    ///
    /// # Panics
    ///
    /// Panics if `lba` exceeds 48 bits, `len` is zero, or
    /// `seq_end < seq_start`.
    pub fn encode(&self) -> [u8; Self::SIZE] {
        assert!(self.lba <= Self::MAX_LBA, "lba exceeds 48 bits");
        assert!(self.len > 0, "empty record range");
        assert!(self.seq_end >= self.seq_start, "inverted sequence range");
        let mut out = [0u8; Self::SIZE];
        out[0] = Self::MAGIC;
        out[1] = self.generation;
        out[2] = self.flags.to_byte();
        out[3] = self.member_idx;
        out[4..6].copy_from_slice(&self.num.to_le_bytes());
        out[6..8].copy_from_slice(&self.stream.to_le_bytes());
        out[8..12].copy_from_slice(&self.seq_start.to_le_bytes());
        out[12..16].copy_from_slice(&self.seq_end.to_le_bytes());
        out[16..20].copy_from_slice(&self.prev.to_le_bytes());
        out[20..26].copy_from_slice(&self.lba.to_le_bytes()[0..6]);
        out[26] = self.len;
        out[27] = self.split_idx;
        let ck = crc16(&out[0..28]);
        out[28..30].copy_from_slice(&ck.to_le_bytes());
        out[30] = self.persist as u8;
        out[31] = self.ssd;
        out
    }

    /// Parses a 32-byte image; `None` on bad magic or checksum (a torn or
    /// never-written slot).
    pub fn decode(bytes: &[u8; Self::SIZE]) -> Option<Self> {
        if bytes[0] != Self::MAGIC {
            return None;
        }
        let ck = u16::from_le_bytes([bytes[28], bytes[29]]);
        if ck != crc16(&bytes[0..28]) {
            return None;
        }
        let mut lba_bytes = [0u8; 8];
        lba_bytes[0..6].copy_from_slice(&bytes[20..26]);
        Some(PmrRecord {
            generation: bytes[1],
            flags: RecordFlags::from_byte(bytes[2]),
            member_idx: bytes[3],
            num: u16::from_le_bytes([bytes[4], bytes[5]]),
            stream: u16::from_le_bytes([bytes[6], bytes[7]]),
            seq_start: u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            seq_end: u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
            prev: u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]),
            lba: u64::from_le_bytes(lba_bytes),
            len: bytes[26],
            split_idx: bytes[27],
            persist: bytes[30] != 0,
            ssd: bytes[31],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> PmrRecord {
        PmrRecord {
            generation: 3,
            flags: RecordFlags {
                boundary: true,
                split: false,
                ipu: false,
                flush: true,
                last_split: false,
            },
            member_idx: 1,
            num: 2,
            stream: 7,
            seq_start: 100,
            seq_end: 100,
            prev: 99,
            lba: 0x0000_1234_5678,
            len: 8,
            split_idx: 0,
            persist: false,
            ssd: 1,
        }
    }

    #[test]
    fn round_trip() {
        let r = sample();
        assert_eq!(PmrRecord::decode(&r.encode()), Some(r));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = sample().encode();
        b[0] = 0x00;
        assert_eq!(PmrRecord::decode(&b), None);
    }

    #[test]
    fn torn_body_rejected_by_checksum() {
        let mut b = sample().encode();
        b[9] ^= 0xff; // Corrupt a seq byte (0x00 -> 0xFF, the Fletcher blind spot).
        assert_eq!(PmrRecord::decode(&b), None);
    }

    #[test]
    fn persist_toggle_is_single_byte_and_checksum_free() {
        let r = sample();
        let mut b = r.encode();
        // Toggling persist is exactly one byte...
        b[PmrRecord::PERSIST_OFFSET] = 1;
        // ...and the record still decodes (checksum excludes it).
        let decoded = PmrRecord::decode(&b).expect("persist toggle must not invalidate");
        assert!(decoded.persist);
        assert_eq!(PmrRecord { persist: true, ..r }, decoded);
    }

    #[test]
    fn zeroed_slot_is_invalid() {
        let b = [0u8; PmrRecord::SIZE];
        assert_eq!(PmrRecord::decode(&b), None);
    }

    #[test]
    #[should_panic(expected = "lba exceeds 48 bits")]
    fn oversized_lba_rejected() {
        let r = PmrRecord {
            lba: 1 << 48,
            ..sample()
        };
        let _ = r.encode();
    }

    #[test]
    #[should_panic(expected = "empty record range")]
    fn empty_record_rejected() {
        let r = PmrRecord { len: 0, ..sample() };
        let _ = r.encode();
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            generation in any::<u8>(),
            member_idx in any::<u8>(),
            split_idx in any::<u8>(),
            num in any::<u16>(),
            stream in any::<u16>(),
            seq_start in any::<u32>(),
            extra in 0u32..100,
            prev in any::<u32>(),
            lba in 0u64..(1 << 48),
            len in 1u8..=255,
            persist in any::<bool>(),
            ssd in any::<u8>(),
            fb in 0u8..32,
        ) {
            let r = PmrRecord {
                generation,
                flags: RecordFlags::from_byte(fb),
                member_idx,
                num,
                stream,
                seq_start,
                seq_end: seq_start.saturating_add(extra),
                prev,
                lba,
                len,
                split_idx,
                persist,
                ssd,
            };
            prop_assert_eq!(PmrRecord::decode(&r.encode()), Some(r));
        }

        /// Any single-bit corruption of the checksummed body is caught.
        #[test]
        fn prop_single_bit_flip_detected(bit in 0usize..(28 * 8)) {
            let mut b = sample().encode();
            b[bit / 8] ^= 1 << (bit % 8);
            let decoded = PmrRecord::decode(&b);
            prop_assert_eq!(decoded, None);
        }
    }
}
