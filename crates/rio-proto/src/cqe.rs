//! The 16-byte NVMe completion queue entry.

/// Completion status codes used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Status {
    /// Successful completion.
    Success = 0x0,
    /// Generic internal error.
    InternalError = 0x6,
    /// Command aborted (e.g. the target crashed mid-flight).
    Aborted = 0x7,
}

impl Status {
    /// Decodes a status field value.
    pub fn from_u16(v: u16) -> Option<Status> {
        match v {
            0x0 => Some(Status::Success),
            0x6 => Some(Status::InternalError),
            0x7 => Some(Status::Aborted),
            _ => None,
        }
    }
}

/// A 16-byte completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// Command-specific result (DW0).
    pub result: u32,
    /// Submission-queue head pointer at completion time.
    pub sq_head: u16,
    /// Submission-queue identifier.
    pub sq_id: u16,
    /// Command identifier being completed.
    pub cid: u16,
    /// Phase tag (toggles per queue wrap).
    pub phase: bool,
    /// Completion status.
    pub status: Status,
}

impl Cqe {
    /// Size of an encoded entry in bytes.
    pub const SIZE: usize = 16;

    /// Builds a successful completion for `cid`.
    pub fn success(cid: u16) -> Self {
        Cqe {
            result: 0,
            sq_head: 0,
            sq_id: 0,
            cid,
            phase: false,
            status: Status::Success,
        }
    }

    /// Builds an aborted completion for `cid`.
    pub fn aborted(cid: u16) -> Self {
        Cqe {
            status: Status::Aborted,
            ..Cqe::success(cid)
        }
    }

    /// Serializes to the 16-byte little-endian wire image.
    pub fn encode(&self) -> [u8; Self::SIZE] {
        let mut out = [0u8; Self::SIZE];
        out[0..4].copy_from_slice(&self.result.to_le_bytes());
        // DW1 is reserved.
        out[8..10].copy_from_slice(&self.sq_head.to_le_bytes());
        out[10..12].copy_from_slice(&self.sq_id.to_le_bytes());
        out[12..14].copy_from_slice(&self.cid.to_le_bytes());
        let sf: u16 = ((self.status as u16) << 1) | self.phase as u16;
        out[14..16].copy_from_slice(&sf.to_le_bytes());
        out
    }

    /// Parses a 16-byte little-endian wire image.
    ///
    /// Returns `None` when the status field holds an unknown code.
    pub fn decode(bytes: &[u8; Self::SIZE]) -> Option<Self> {
        let result = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let sq_head = u16::from_le_bytes([bytes[8], bytes[9]]);
        let sq_id = u16::from_le_bytes([bytes[10], bytes[11]]);
        let cid = u16::from_le_bytes([bytes[12], bytes[13]]);
        let sf = u16::from_le_bytes([bytes[14], bytes[15]]);
        Some(Cqe {
            result,
            sq_head,
            sq_id,
            cid,
            phase: sf & 1 != 0,
            status: Status::from_u16(sf >> 1)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn success_constructor() {
        let cqe = Cqe::success(99);
        assert_eq!(cqe.cid, 99);
        assert_eq!(cqe.status, Status::Success);
    }

    #[test]
    fn aborted_constructor() {
        let cqe = Cqe::aborted(5);
        assert_eq!(cqe.status, Status::Aborted);
    }

    #[test]
    fn encode_layout() {
        let cqe = Cqe {
            result: 0x0102_0304,
            sq_head: 0x1111,
            sq_id: 0x2222,
            cid: 0x3333,
            phase: true,
            status: Status::Success,
        };
        let b = cqe.encode();
        assert_eq!(&b[0..4], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(&b[4..8], &[0, 0, 0, 0], "DW1 reserved");
        assert_eq!(u16::from_le_bytes([b[14], b[15]]) & 1, 1, "phase bit");
    }

    #[test]
    fn unknown_status_decodes_to_none() {
        let mut b = Cqe::success(1).encode();
        b[14] = 0xfe; // Status bits become garbage.
        b[15] = 0x7f;
        assert_eq!(Cqe::decode(&b), None);
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            result in any::<u32>(),
            sq_head in any::<u16>(),
            sq_id in any::<u16>(),
            cid in any::<u16>(),
            phase in any::<bool>(),
            status_pick in 0usize..3,
        ) {
            let status = [Status::Success, Status::InternalError, Status::Aborted][status_pick];
            let cqe = Cqe { result, sq_head, sq_id, cid, phase, status };
            prop_assert_eq!(Cqe::decode(&cqe.encode()), Some(cqe));
        }
    }
}
