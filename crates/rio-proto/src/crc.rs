//! Shared checksum implementations and the per-command payload digest.
//!
//! One audited home for every cyclic-redundancy check the stack uses:
//!
//! * [`crc16`] — CRC-16/CCITT-FALSE, the 32-byte PMR record body
//!   checksum (torn-write detection on the persistent ordering log,
//!   §4.3.2). Chosen over Fletcher-16, whose mod-255 arithmetic cannot
//!   distinguish 0x00 from 0xFF bytes — exactly the corruption a torn
//!   write of a zero-filled slot produces.
//! * [`crc32c`] — CRC-32C (Castagnoli), the payload checksum used for
//!   per-command digests on the wire and per-block seals on media.
//!   Castagnoli is what NVMe end-to-end protection and iSCSI use; the
//!   implementation is table-driven so sealing a 4 KB block costs one
//!   table lookup per byte, not eight shifts.
//!
//! [`PayloadDigest`] wraps a CRC-32C over a command's payload and is
//! stamped at submission when the cluster runs with integrity checking
//! enabled; the zero value doubles as the "integrity off" sentinel so
//! untouched commands carry no digest state.

/// CRC-16/CCITT-FALSE over `data` (init `0xFFFF`, poly `0x1021`, no
/// reflection, no final xor).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Reflected CRC-32C (Castagnoli) lookup table, one entry per byte.
const CRC32C_TABLE: [u32; 256] = build_crc32c_table();

const fn build_crc32c_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Folds `data` into a running CRC-32C state (use [`crc32c`] for the
/// one-shot form). The state is the raw shift-register value: start
/// from `!0` and invert the final state yourself, or let the wrappers
/// do it.
pub fn crc32c_update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC-32C (Castagnoli) over `data` — reflected, init `!0`, final xor
/// `!0`; the check value of `"123456789"` is `0xE3069283`.
pub fn crc32c(data: &[u8]) -> u32 {
    !crc32c_update(!0, data)
}

/// A CRC-32C digest over one command's payload bytes, stamped at
/// submission and carried with the command so the receiver can verify
/// what the fabric delivered.
///
/// The zero digest is the "no digest" sentinel commands carry when the
/// cluster runs without integrity checking — stamping and verification
/// are both skipped, so the integrity machinery is free when off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PayloadDigest(pub u32);

impl PayloadDigest {
    /// The sentinel carried by commands of integrity-off runs.
    pub const NONE: PayloadDigest = PayloadDigest(0);

    /// Whether this is the integrity-off sentinel.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }

    /// Digest over a sequence of per-block payload seeds (the compact
    /// wire form: each 4 KB block is generated from its 8-byte seed,
    /// so the command digest covers the seeds in order).
    pub fn over_seeds<I: IntoIterator<Item = u64>>(seeds: I) -> Self {
        let mut state = !0u32;
        for seed in seeds {
            state = crc32c_update(state, &seed.to_le_bytes());
        }
        PayloadDigest(!state)
    }

    /// One-shot digest over raw payload bytes.
    pub fn over_bytes(data: &[u8]) -> Self {
        PayloadDigest(crc32c(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_check_value() {
        // CRC-16/CCITT-FALSE standard check input.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc32c_check_value() {
        // CRC-32C (Castagnoli) standard check input.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_update_composes() {
        let whole = crc32c(b"hello world");
        let split = !crc32c_update(crc32c_update(!0, b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn crc32c_detects_single_bit_flips() {
        let mut block = vec![0u8; 4096];
        block[17] = 0xA5;
        let good = crc32c(&block);
        for bit in [0usize, 8 * 17 + 3, 8 * 4095 + 7] {
            let mut bad = block.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&bad), good, "bit {bit} undetected");
        }
    }

    #[test]
    fn crc16_position_sensitive() {
        assert_ne!(crc16(&[1, 2, 3]), crc16(&[3, 2, 1]));
        assert_ne!(crc16(&[0x00, 1]), crc16(&[0xff, 1]));
    }

    #[test]
    fn digest_sentinel_and_seed_form() {
        assert!(PayloadDigest::NONE.is_none());
        let d1 = PayloadDigest::over_seeds([1u64, 2, 3]);
        let d2 = PayloadDigest::over_seeds([1u64, 2, 3]);
        let d3 = PayloadDigest::over_seeds([1u64, 3, 2]);
        assert_eq!(d1, d2);
        assert_ne!(d1, d3, "seed order matters");
        assert!(!d1.is_none());
        // The seed form is the CRC over the concatenated LE bytes.
        let mut bytes = Vec::new();
        for s in [1u64, 2, 3] {
            bytes.extend_from_slice(&s.to_le_bytes());
        }
        assert_eq!(d1, PayloadDigest::over_bytes(&bytes));
    }
}
