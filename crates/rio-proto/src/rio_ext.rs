//! Rio's NVMe-oF command extension (paper Table 1).
//!
//! Rio passes ordering attributes across the network inside fields of the
//! NVMe-oF write command that the 1.4 specification leaves reserved:
//!
//! | Dword:bits | NVMe-oF 1.4   | Rio NVMe-oF                         |
//! |------------|---------------|-------------------------------------|
//! | 00:10-13   | reserved      | Rio op code (e.g. submit)           |
//! | 02:00-31   | reserved      | start sequence (`seq`)              |
//! | 03:00-31   | reserved      | end sequence (`seq`)                |
//! | 04:00-31   | metadata*     | previous group (`prev`)             |
//! | 05:00-15   | metadata*     | number of requests (`num`)          |
//! | 05:16-31   | metadata*     | stream ID                           |
//! | 12:16-19   | reserved      | special flags (e.g. boundary)       |
//!
//! \* the metadata pointer field of NVMe-oF is reserved, so Rio reuses it.
//!
//! In addition to Table 1, this implementation uses two more reserved
//! dwords — the paper relies on per-QP in-order delivery and does not
//! spell out how fragments and gate ordinals travel:
//!
//! | Dword:bits | Rio NVMe-oF (implementation extension)              |
//! |------------|-----------------------------------------------------|
//! | 13:00-07   | member index within the group                       |
//! | 13:08-15   | split fragment index                                |
//! | 13:16      | last-split flag                                     |
//! | 14:00-31   | per-(stream, server) dispatch ordinal (gate order)  |

use crate::opcode::RioOpcode;
use crate::sqe::Sqe;

/// Special flags carried in dword 12 bits 16:19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RioFlags {
    /// This request ends its ordered group (the paper's "boundary"/final
    /// request; `num` is only meaningful on boundary requests).
    pub boundary: bool,
    /// This request is a fragment of a split request.
    pub split: bool,
    /// This request is an in-place update (recovery must not roll it
    /// back; the upper layer customises handling, §4.4.2).
    pub ipu: bool,
}

impl RioFlags {
    const BOUNDARY: u32 = 1 << 16;
    const SPLIT: u32 = 1 << 17;
    const IPU: u32 = 1 << 18;
    const MASK: u32 = 0xf << 16;

    fn to_bits(self) -> u32 {
        let mut v = 0;
        if self.boundary {
            v |= Self::BOUNDARY;
        }
        if self.split {
            v |= Self::SPLIT;
        }
        if self.ipu {
            v |= Self::IPU;
        }
        v
    }

    fn from_bits(dw12: u32) -> Self {
        RioFlags {
            boundary: dw12 & Self::BOUNDARY != 0,
            split: dw12 & Self::SPLIT != 0,
            ipu: dw12 & Self::IPU != 0,
        }
    }
}

/// The decoded Rio extension of an NVMe-oF command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RioExt {
    /// Rio sub-opcode.
    pub op: RioOpcode,
    /// First global sequence number covered by this command.
    pub seq_start: u32,
    /// Last global sequence number covered (equals `seq_start` unless the
    /// command is a merge of several consecutive groups).
    pub seq_end: u32,
    /// Sequence number of the preceding group on the same target server.
    pub prev: u32,
    /// Number of requests in the group (meaningful on boundary requests).
    pub num: u16,
    /// Stream identifier.
    pub stream: u16,
    /// Special flags.
    pub flags: RioFlags,
    /// Ordinal of this request within its group (implementation
    /// extension, dword 13 bits 0:7).
    pub member_idx: u8,
    /// Fragment ordinal within a split request (dword 13 bits 8:15).
    pub split_idx: u8,
    /// Last fragment of a split request (dword 13 bit 16).
    pub last_split: bool,
    /// Per-(stream, server) dispatch ordinal used by the target's
    /// in-order submission gate (dword 14).
    pub dispatch_idx: u32,
}

impl RioExt {
    /// Embeds the extension into a command's reserved fields.
    ///
    /// # Panics
    ///
    /// Panics if `seq_end < seq_start`.
    pub fn embed(&self, sqe: &mut Sqe) {
        assert!(self.seq_end >= self.seq_start, "inverted sequence range");
        sqe.dw[0] = (sqe.dw[0] & !(0xf << 10)) | ((self.op.as_bits() as u32) << 10);
        sqe.dw[2] = self.seq_start;
        sqe.dw[3] = self.seq_end;
        sqe.dw[4] = self.prev;
        sqe.dw[5] = (self.num as u32) | ((self.stream as u32) << 16);
        sqe.dw[12] = (sqe.dw[12] & !RioFlags::MASK) | self.flags.to_bits();
        sqe.dw[13] = (self.member_idx as u32)
            | ((self.split_idx as u32) << 8)
            | ((self.last_split as u32) << 16);
        sqe.dw[14] = self.dispatch_idx;
    }

    /// Extracts the extension from a command; `None` when the Rio opcode
    /// field is zero (a plain orderless NVMe-oF command).
    pub fn extract(sqe: &Sqe) -> Option<RioExt> {
        let op = RioOpcode::from_bits(((sqe.dw[0] >> 10) & 0xf) as u8)?;
        Some(RioExt {
            op,
            seq_start: sqe.dw[2],
            seq_end: sqe.dw[3],
            prev: sqe.dw[4],
            num: (sqe.dw[5] & 0xffff) as u16,
            stream: (sqe.dw[5] >> 16) as u16,
            flags: RioFlags::from_bits(sqe.dw[12]),
            member_idx: (sqe.dw[13] & 0xff) as u8,
            split_idx: ((sqe.dw[13] >> 8) & 0xff) as u8,
            last_split: sqe.dw[13] & (1 << 16) != 0,
            dispatch_idx: sqe.dw[14],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::NvmOpcode;
    use proptest::prelude::*;

    fn sample_ext() -> RioExt {
        RioExt {
            op: RioOpcode::Submit,
            seq_start: 17,
            seq_end: 19,
            prev: 12,
            num: 3,
            stream: 5,
            flags: RioFlags {
                boundary: true,
                split: false,
                ipu: false,
            },
            member_idx: 2,
            split_idx: 0,
            last_split: false,
            dispatch_idx: 41,
        }
    }

    #[test]
    fn embed_extract_round_trip() {
        let mut sqe = Sqe::write(9, 1000, 8);
        sample_ext().embed(&mut sqe);
        assert_eq!(RioExt::extract(&sqe), Some(sample_ext()));
    }

    #[test]
    fn plain_command_has_no_ext() {
        let sqe = Sqe::write(1, 0, 1);
        assert_eq!(RioExt::extract(&sqe), None);
    }

    #[test]
    fn embed_preserves_standard_fields() {
        let mut sqe = Sqe::write(0x1234, 0xDEAD_BEEF, 16);
        sqe.set_fua(true);
        sample_ext().embed(&mut sqe);
        assert_eq!(sqe.opcode(), Some(NvmOpcode::Write));
        assert_eq!(sqe.cid(), 0x1234);
        assert_eq!(sqe.slba(), 0xDEAD_BEEF);
        assert_eq!(sqe.nlb(), 16);
        assert!(sqe.fua(), "FUA (dw12 bit 30) must survive flag embedding");
    }

    #[test]
    fn table1_field_positions_are_exact() {
        let mut sqe = Sqe::new(NvmOpcode::Write);
        RioExt {
            op: RioOpcode::Submit,
            seq_start: 0xAAAA_AAAA,
            seq_end: 0xBBBB_BBBB,
            prev: 0xCCCC_CCCC,
            num: 0x1122,
            stream: 0x3344,
            flags: RioFlags {
                boundary: true,
                split: true,
                ipu: true,
            },
            member_idx: 0xAB,
            split_idx: 0xCD,
            last_split: true,
            dispatch_idx: 0xDEAD_BEEF,
        }
        .embed(&mut sqe);
        // Dword 00 bits 10:13 = opcode 0x1.
        assert_eq!((sqe.dw[0] >> 10) & 0xf, 0x1);
        // Dwords 2..5 carry seq/prev/num/stream exactly as Table 1 states.
        assert_eq!(sqe.dw[2], 0xAAAA_AAAA);
        assert_eq!(sqe.dw[3], 0xBBBB_BBBB);
        assert_eq!(sqe.dw[4], 0xCCCC_CCCC);
        assert_eq!(sqe.dw[5] & 0xffff, 0x1122);
        assert_eq!(sqe.dw[5] >> 16, 0x3344);
        // Dword 12 bits 16:19 carry the three flags.
        assert_eq!((sqe.dw[12] >> 16) & 0xf, 0b111);
        // Implementation-extension dwords.
        assert_eq!(sqe.dw[13] & 0xff, 0xAB);
        assert_eq!((sqe.dw[13] >> 8) & 0xff, 0xCD);
        assert_eq!(sqe.dw[13] >> 16 & 1, 1);
        assert_eq!(sqe.dw[14], 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "inverted sequence range")]
    fn inverted_range_rejected() {
        let mut sqe = Sqe::new(NvmOpcode::Write);
        RioExt {
            seq_start: 5,
            seq_end: 4,
            ..sample_ext()
        }
        .embed(&mut sqe);
    }

    proptest! {
        #[test]
        fn prop_ext_round_trip(
            seq_start in any::<u32>(),
            extra in 0u32..1000,
            prev in any::<u32>(),
            num in any::<u16>(),
            stream in any::<u16>(),
            boundary in any::<bool>(),
            split in any::<bool>(),
            ipu in any::<bool>(),
            member_idx in any::<u8>(),
            split_idx in any::<u8>(),
            last_split in any::<bool>(),
            dispatch_idx in any::<u32>(),
        ) {
            let ext = RioExt {
                op: RioOpcode::Submit,
                seq_start,
                seq_end: seq_start.saturating_add(extra),
                prev,
                num,
                stream,
                flags: RioFlags { boundary, split, ipu },
                member_idx,
                split_idx,
                last_split,
                dispatch_idx,
            };
            let mut sqe = Sqe::write(3, 77, 4);
            ext.embed(&mut sqe);
            // Round-trips through the byte-level wire image too.
            let decoded = Sqe::decode(&sqe.encode());
            prop_assert_eq!(RioExt::extract(&decoded), Some(ext));
        }
    }
}
