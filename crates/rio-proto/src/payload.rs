//! Deterministic 4 KB payload blocks for end-to-end data-integrity
//! checks.
//!
//! The simulated stack does not ship application bytes through every
//! queue — it ships a compact 8-byte *seed* per block and materialises
//! the full 4 KB image only where bytes matter: at the device, where
//! the block lands on media under a CRC-32C seal, and in tests that
//! read media back. A block's bytes are a pure function of its seed
//! (the seed itself occupies the first 8 bytes, followed by a
//! SplitMix64 word stream), so "the recovered bytes equal the
//! submitted bytes" is checkable from the block alone: re-derive the
//! image from the embedded seed and compare.
//!
//! Any in-flight or at-rest corruption breaks one of two checks:
//!
//! * the CRC-32C seal over the stored bytes (torn writes, bit rot),
//! * the regenerate-and-compare against the embedded seed (which also
//!   catches a hypothetical coherent overwrite with a valid seal).

use crate::crc::crc32c;

/// Payload block size in bytes (one logical block everywhere in the
/// repository).
pub const BLOCK_BYTES: usize = 4096;

/// SplitMix64 — the cheap deterministic word stream behind payload
/// bodies.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the payload seed of one block from its command identity:
/// the ordered stream, the command tag (group sequence for ordered
/// commands, unit id for plain ones) and the physical block address.
pub fn seed_for(stream: u16, tag: u64, lba: u64) -> u64 {
    splitmix64(((stream as u64) << 48) ^ tag.rotate_left(16) ^ lba)
}

/// Fills `out` (`BLOCK_BYTES` long) with the payload image of `seed`:
/// the seed itself little-endian in bytes `0..8`, then SplitMix64
/// words of the seed stream.
///
/// # Panics
///
/// Panics if `out` is not exactly [`BLOCK_BYTES`] long.
pub fn fill_block(seed: u64, out: &mut [u8]) {
    assert_eq!(out.len(), BLOCK_BYTES, "payload blocks are 4 KB");
    out[..8].copy_from_slice(&seed.to_le_bytes());
    let mut state = seed;
    for chunk in out[8..].chunks_exact_mut(8) {
        state = splitmix64(state);
        chunk.copy_from_slice(&state.to_le_bytes());
    }
}

/// Materialises the payload image of `seed` as an owned block.
pub fn block_for(seed: u64) -> Box<[u8]> {
    let mut v = vec![0u8; BLOCK_BYTES];
    fill_block(seed, &mut v);
    v.into_boxed_slice()
}

/// The seed embedded in a payload image (its first 8 bytes).
pub fn embedded_seed(block: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&block[..8]);
    u64::from_le_bytes(b)
}

/// Whether `block` is byte-for-byte the payload its embedded seed
/// generates — i.e. exactly what some submission produced, with no
/// corruption anywhere between submission and this read.
pub fn verify_block(block: &[u8]) -> bool {
    if block.len() != BLOCK_BYTES {
        return false;
    }
    let mut expect = [0u8; BLOCK_BYTES];
    fill_block(embedded_seed(block), &mut expect);
    block == expect
}

/// CRC-32C seal of the payload image of `seed` (what a clean media
/// landing records).
pub fn seal_for(seed: u64) -> u32 {
    crc32c(&block_for(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trips_through_embedded_seed() {
        let seed = seed_for(3, 77, 4096);
        let block = block_for(seed);
        assert_eq!(embedded_seed(&block), seed);
        assert!(verify_block(&block));
    }

    #[test]
    fn distinct_identities_give_distinct_blocks() {
        let a = block_for(seed_for(1, 10, 100));
        let b = block_for(seed_for(1, 10, 101));
        let c = block_for(seed_for(2, 10, 100));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn any_corruption_fails_verification() {
        let mut block = block_for(seed_for(9, 1, 0)).to_vec();
        assert!(verify_block(&block));
        // Flip a bit in the body...
        block[2048] ^= 0x10;
        assert!(!verify_block(&block));
        block[2048] ^= 0x10;
        // ...and in the embedded seed itself.
        block[3] ^= 0x01;
        assert!(!verify_block(&block));
    }

    #[test]
    fn seal_matches_crc_of_materialised_block() {
        let seed = seed_for(0, 42, 7);
        assert_eq!(seal_for(seed), crc32c(&block_for(seed)));
    }

    #[test]
    fn wrong_length_never_verifies() {
        assert!(!verify_block(&[0u8; 16]));
    }
}
