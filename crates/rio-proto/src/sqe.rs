//! The 64-byte NVMe submission queue entry.
//!
//! Only the fields the simulator and the Rio extension touch are given
//! accessors; the rest of the entry is preserved verbatim so that
//! encoding is loss-free.

use crate::opcode::NvmOpcode;

/// A 64-byte submission queue entry as 16 little-endian dwords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sqe {
    /// The 16 command dwords (CDW0..CDW15).
    pub dw: [u32; 16],
}

impl Default for Sqe {
    fn default() -> Self {
        Sqe { dw: [0; 16] }
    }
}

impl Sqe {
    /// Size of an encoded entry in bytes.
    pub const SIZE: usize = 64;

    /// Creates a zeroed entry with the given opcode.
    pub fn new(op: NvmOpcode) -> Self {
        let mut sqe = Sqe::default();
        sqe.set_opcode(op);
        sqe
    }

    /// Builds a write command for `nlb` logical blocks starting at `slba`.
    ///
    /// `nlb` is stored 0-based per the NVMe spec (`0` means one block).
    ///
    /// # Panics
    ///
    /// Panics if `nlb == 0`.
    pub fn write(cid: u16, slba: u64, nlb: u32) -> Self {
        assert!(nlb > 0, "a write must cover at least one block");
        let mut sqe = Sqe::new(NvmOpcode::Write);
        sqe.set_cid(cid);
        sqe.set_slba(slba);
        sqe.set_nlb(nlb);
        sqe
    }

    /// Builds a flush command.
    pub fn flush(cid: u16) -> Self {
        let mut sqe = Sqe::new(NvmOpcode::Flush);
        sqe.set_cid(cid);
        sqe
    }

    /// Opcode byte (CDW0 bits 0:7).
    pub fn opcode(&self) -> Option<NvmOpcode> {
        NvmOpcode::from_u8((self.dw[0] & 0xff) as u8)
    }

    /// Sets the opcode byte.
    pub fn set_opcode(&mut self, op: NvmOpcode) {
        self.dw[0] = (self.dw[0] & !0xff) | op.as_u8() as u32;
    }

    /// Command identifier (CDW0 bits 16:31).
    pub fn cid(&self) -> u16 {
        (self.dw[0] >> 16) as u16
    }

    /// Sets the command identifier.
    pub fn set_cid(&mut self, cid: u16) {
        self.dw[0] = (self.dw[0] & 0x0000_ffff) | ((cid as u32) << 16);
    }

    /// Starting LBA (CDW10 low, CDW11 high).
    pub fn slba(&self) -> u64 {
        (self.dw[10] as u64) | ((self.dw[11] as u64) << 32)
    }

    /// Sets the starting LBA.
    pub fn set_slba(&mut self, slba: u64) {
        self.dw[10] = slba as u32;
        self.dw[11] = (slba >> 32) as u32;
    }

    /// Number of logical blocks, 1-based (decoded from the 0-based field
    /// in CDW12 bits 0:15).
    pub fn nlb(&self) -> u32 {
        (self.dw[12] & 0xffff) + 1
    }

    /// Sets the block count (1-based; stored 0-based).
    ///
    /// # Panics
    ///
    /// Panics if `nlb` is zero or exceeds 65 536.
    pub fn set_nlb(&mut self, nlb: u32) {
        assert!(nlb >= 1 && nlb <= 0x1_0000, "nlb out of range: {nlb}");
        self.dw[12] = (self.dw[12] & !0xffff) | (nlb - 1);
    }

    /// Force Unit Access bit (CDW12 bit 30).
    pub fn fua(&self) -> bool {
        self.dw[12] & (1 << 30) != 0
    }

    /// Sets the Force Unit Access bit.
    pub fn set_fua(&mut self, fua: bool) {
        if fua {
            self.dw[12] |= 1 << 30;
        } else {
            self.dw[12] &= !(1 << 30);
        }
    }

    /// Serializes to the 64-byte little-endian wire image.
    pub fn encode(&self) -> [u8; Self::SIZE] {
        let mut out = [0u8; Self::SIZE];
        for (i, dw) in self.dw.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&dw.to_le_bytes());
        }
        out
    }

    /// Parses a 64-byte little-endian wire image.
    pub fn decode(bytes: &[u8; Self::SIZE]) -> Self {
        let mut dw = [0u32; 16];
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            dw[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Sqe { dw }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_command_fields() {
        let sqe = Sqe::write(42, 0x1234_5678_9abc, 8);
        assert_eq!(sqe.opcode(), Some(NvmOpcode::Write));
        assert_eq!(sqe.cid(), 42);
        assert_eq!(sqe.slba(), 0x1234_5678_9abc);
        assert_eq!(sqe.nlb(), 8);
        assert!(!sqe.fua());
    }

    #[test]
    fn flush_command() {
        let sqe = Sqe::flush(7);
        assert_eq!(sqe.opcode(), Some(NvmOpcode::Flush));
        assert_eq!(sqe.cid(), 7);
    }

    #[test]
    fn nlb_is_zero_based_on_wire() {
        let sqe = Sqe::write(0, 0, 1);
        assert_eq!(sqe.dw[12] & 0xffff, 0, "one block encodes as 0");
        assert_eq!(sqe.nlb(), 1);
    }

    #[test]
    fn fua_toggles_only_bit_30() {
        let mut sqe = Sqe::write(0, 0, 16);
        sqe.set_fua(true);
        assert!(sqe.fua());
        assert_eq!(sqe.nlb(), 16, "FUA must not clobber NLB");
        sqe.set_fua(false);
        assert!(!sqe.fua());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_block_write_rejected() {
        let _ = Sqe::write(0, 0, 0);
    }

    #[test]
    fn encode_is_64_bytes_le() {
        let mut sqe = Sqe::write(0xBEEF, 0x0102_0304_0506_0708, 4);
        sqe.dw[15] = 0xAABB_CCDD;
        let bytes = sqe.encode();
        assert_eq!(bytes.len(), 64);
        assert_eq!(bytes[0], 0x01, "opcode byte first");
        assert_eq!(&bytes[60..64], &[0xDD, 0xCC, 0xBB, 0xAA]);
        assert_eq!(Sqe::decode(&bytes), sqe);
    }

    proptest! {
        #[test]
        fn prop_encode_decode_round_trip(dw in proptest::array::uniform16(any::<u32>())) {
            let sqe = Sqe { dw };
            prop_assert_eq!(Sqe::decode(&sqe.encode()), sqe);
        }

        #[test]
        fn prop_field_accessors_preserve_others(
            cid in any::<u16>(),
            slba in any::<u64>(),
            nlb in 1u32..=0x1_0000,
            fua in any::<bool>(),
        ) {
            let mut sqe = Sqe::new(NvmOpcode::Write);
            sqe.set_cid(cid);
            sqe.set_slba(slba);
            sqe.set_nlb(nlb);
            sqe.set_fua(fua);
            prop_assert_eq!(sqe.cid(), cid);
            prop_assert_eq!(sqe.slba(), slba);
            prop_assert_eq!(sqe.nlb(), nlb);
            prop_assert_eq!(sqe.fua(), fua);
            prop_assert_eq!(sqe.opcode(), Some(NvmOpcode::Write));
        }
    }
}
