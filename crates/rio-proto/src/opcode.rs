//! NVMe I/O opcodes and the Rio sub-opcodes.

/// Standard NVM command set opcodes (NVMe 1.4 §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NvmOpcode {
    /// Flush: make all prior writes on the namespace durable.
    Flush = 0x00,
    /// Write data blocks.
    Write = 0x01,
    /// Read data blocks.
    Read = 0x02,
}

impl NvmOpcode {
    /// Decodes an opcode byte.
    pub fn from_u8(v: u8) -> Option<NvmOpcode> {
        match v {
            0x00 => Some(NvmOpcode::Flush),
            0x01 => Some(NvmOpcode::Write),
            0x02 => Some(NvmOpcode::Read),
            _ => None,
        }
    }

    /// Encodes to the opcode byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }
}

/// Rio sub-opcodes carried in dword 0 bits 10:13 (paper Table 1).
///
/// `None`/zero means the command is a plain (orderless) NVMe-oF command;
/// any non-zero value marks an ordered Rio command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RioOpcode {
    /// Ordered submission (rio_submit).
    Submit = 0x1,
    /// Recovery: fetch the per-server ordering list scanned from PMR.
    FetchOrderList = 0x2,
    /// Recovery: discard data blocks outside the global ordering list.
    Discard = 0x3,
    /// Recovery: replay a non-persistent request (target repair).
    Replay = 0x4,
}

impl RioOpcode {
    /// Decodes the 4-bit field; 0 means "not a Rio command".
    pub fn from_bits(v: u8) -> Option<RioOpcode> {
        match v {
            0x1 => Some(RioOpcode::Submit),
            0x2 => Some(RioOpcode::FetchOrderList),
            0x3 => Some(RioOpcode::Discard),
            0x4 => Some(RioOpcode::Replay),
            _ => None,
        }
    }

    /// Encodes to the 4-bit field value.
    pub fn as_bits(self) -> u8 {
        self as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvm_opcode_round_trip() {
        for op in [NvmOpcode::Flush, NvmOpcode::Write, NvmOpcode::Read] {
            assert_eq!(NvmOpcode::from_u8(op.as_u8()), Some(op));
        }
        assert_eq!(NvmOpcode::from_u8(0x7f), None);
    }

    #[test]
    fn rio_opcode_round_trip() {
        for op in [
            RioOpcode::Submit,
            RioOpcode::FetchOrderList,
            RioOpcode::Discard,
            RioOpcode::Replay,
        ] {
            assert_eq!(RioOpcode::from_bits(op.as_bits()), Some(op));
        }
        assert_eq!(RioOpcode::from_bits(0), None, "zero means plain NVMe-oF");
        assert_eq!(RioOpcode::from_bits(0xf), None);
    }
}
