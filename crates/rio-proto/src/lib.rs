//! NVMe / NVMe-over-Fabrics wire formats, including Rio's extension.
//!
//! Rio transfers ordering attributes inside the *reserved* fields of the
//! standard NVMe-oF I/O command (paper Table 1, atop the NVMe 1.4
//! specification). This crate provides bit-exact encode/decode of:
//!
//! * the 64-byte submission queue entry ([`Sqe`]),
//! * the 16-byte completion queue entry ([`Cqe`]),
//! * the Rio ordering extension carried in the reserved dwords
//!   ([`RioExt`]),
//! * the 32-byte persistent-ordering-attribute record written to the PMR
//!   log ([`pmr_record::PmrRecord`]),
//! * the shared checksum suite and per-command payload digest
//!   ([`crc`]), and the deterministic payload-block generator behind
//!   end-to-end data-integrity checks ([`payload`]).
//!
//! Everything here is pure data manipulation: no I/O, no simulation
//! dependencies, fully round-trip tested.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cqe;
pub mod crc;
pub mod opcode;
pub mod payload;
pub mod pmr_record;
pub mod rio_ext;
pub mod sqe;

pub use cqe::{Cqe, Status};
pub use crc::{crc16, crc32c, PayloadDigest};
pub use opcode::{NvmOpcode, RioOpcode};
pub use pmr_record::PmrRecord;
pub use rio_ext::{RioExt, RioFlags};
pub use sqe::Sqe;
