//! NVMe / NVMe-over-Fabrics wire formats, including Rio's extension.
//!
//! Rio transfers ordering attributes inside the *reserved* fields of the
//! standard NVMe-oF I/O command (paper Table 1, atop the NVMe 1.4
//! specification). This crate provides bit-exact encode/decode of:
//!
//! * the 64-byte submission queue entry ([`Sqe`]),
//! * the 16-byte completion queue entry ([`Cqe`]),
//! * the Rio ordering extension carried in the reserved dwords
//!   ([`RioExt`]),
//! * the 32-byte persistent-ordering-attribute record written to the PMR
//!   log ([`pmr_record::PmrRecord`]).
//!
//! Everything here is pure data manipulation: no I/O, no simulation
//! dependencies, fully round-trip tested.

pub mod cqe;
pub mod opcode;
pub mod pmr_record;
pub mod rio_ext;
pub mod sqe;

pub use cqe::{Cqe, Status};
pub use opcode::{NvmOpcode, RioOpcode};
pub use pmr_record::PmrRecord;
pub use rio_ext::{RioExt, RioFlags};
pub use sqe::Sqe;
