//! End-to-end pipeline property test: sequencer → ORDER queue → volume
//! split → dispatch stamping → (network permutation) → gate →
//! completion, all from the pure `rio-order` building blocks.
//!
//! Invariants checked under random workloads and random network
//! reordering (bounded per-QP as RC transports guarantee):
//!
//! * the gate releases requests in per-server dispatch order;
//! * the completer delivers every group exactly once, in sequence
//!   order, regardless of internal completion order;
//! * merged units subsume whole groups (never a partial group).

use proptest::prelude::*;
use rio_order::attr::{BlockRange, Seq, ServerId, StreamId};
use rio_order::scheduler::{split_attr, OrderQueue, OrderQueueConfig};
use rio_order::sequencer::{Sequencer, SubmitOpts};
use rio_order::{InOrderCompleter, SubmissionGate};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pipeline_delivers_every_group_in_order(
        group_sizes in proptest::collection::vec(1usize..4, 1..25),
        merge in any::<bool>(),
        shuffle_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let n_servers = 2usize;
        let mut seq = Sequencer::new(1, n_servers);
        let mut queue = OrderQueue::new(
            StreamId(0),
            OrderQueueConfig { merge, max_merge_blocks: 32 },
        );
        // Submit: group i's members write consecutive LBAs.
        let mut lba = 0u64;
        for size in &group_sizes {
            for m in 0..*size {
                let attr = seq.submit(
                    StreamId(0),
                    BlockRange::new(lba, 1),
                    SubmitOpts { end_group: m == size - 1, ..Default::default() },
                );
                lba += 1;
                queue.push(attr, lba);
            }
        }
        // Dispatch: stripe every unit over the two servers by LBA
        // parity slices (forces splits), stamp per fragment.
        let units = queue.flush();
        let mut fragments = Vec::new();
        let mut unit_parts = Vec::new();
        for unit in units {
            // Merged units cover whole groups only.
            if unit.parts.len() > 1 {
                let total_members: usize = unit
                    .parts
                    .iter()
                    .filter(|p| p.attr.boundary)
                    .map(|p| p.attr.num as usize)
                    .sum();
                prop_assert_eq!(
                    total_members,
                    unit.parts.len(),
                    "merged unit covers partial groups"
                );
            }
            let attr = unit.attr;
            // Split in two halves when >1 block (mimics striping).
            let frags = if attr.range.blocks > 1 {
                let half = attr.range.blocks / 2;
                split_attr(
                    &attr,
                    &[
                        BlockRange::new(attr.range.lba, half),
                        BlockRange::new(attr.range.lba + half as u64, attr.range.blocks - half),
                    ],
                )
            } else {
                split_attr(&attr, &[attr.range])
            };
            let unit_id = unit_parts.len();
            unit_parts.push((unit.parts.clone(), frags.len()));
            for (fi, mut f) in frags.into_iter().enumerate() {
                let server = ServerId(((f.range.lba as usize + fi) % n_servers) as u16);
                seq.stamp_dispatch(&mut f, server);
                fragments.push((unit_id, f));
            }
        }
        // Network: bounded reorder — shuffle, but the gate re-sorts per
        // server; feed arrivals in shuffled order.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(shuffle_seed);
        let mut order: Vec<usize> = (0..fragments.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        // One gate per server; track per-server release order.
        let mut gates: Vec<SubmissionGate> = (0..n_servers).map(|_| SubmissionGate::new()).collect();
        let mut released: Vec<Vec<u64>> = vec![Vec::new(); n_servers];
        let mut frag_done: Vec<usize> = vec![0; unit_parts.len()];
        let mut completer = InOrderCompleter::new(1);
        let mut delivered: Vec<Seq> = Vec::new();
        for &i in &order {
            let (_unit_id, attr) = fragments[i];
            let srv = attr.server.0 as usize;
            for (r_attr, _) in gates[srv].arrive(attr, i as u64) {
                released[srv].push(r_attr.dispatch_idx);
                // "Submit to SSD" and complete immediately: count
                // fragment completions per unit; unroll on unit done.
                let uid = fragments
                    .iter()
                    .position(|(u, a)| {
                        *u == unit_id_of(&fragments, r_attr) && a.dispatch_idx == r_attr.dispatch_idx && a.server == r_attr.server
                    })
                    .map(|k| fragments[k].0)
                    .expect("fragment exists");
                frag_done[uid] += 1;
                if frag_done[uid] == unit_parts[uid].1 {
                    for p in &unit_parts[uid].0 {
                        delivered.extend(completer.on_done(&p.attr));
                    }
                }
            }
        }
        // Gate invariant: per-server releases in dispatch order.
        for r in &released {
            let mut sorted = r.clone();
            sorted.sort_unstable();
            prop_assert_eq!(r, &sorted, "gate released out of order");
        }
        // Completion invariant: groups 1..=N exactly once, in order.
        let expect: Vec<Seq> = (1..=group_sizes.len() as u32).map(Seq).collect();
        prop_assert_eq!(delivered, expect);
    }
}

/// Helper: unit id of a fragment (by identity fields).
fn unit_id_of(
    fragments: &[(usize, rio_order::attr::OrderingAttr)],
    attr: rio_order::attr::OrderingAttr,
) -> usize {
    fragments
        .iter()
        .find(|(_, a)| a.dispatch_idx == attr.dispatch_idx && a.server == attr.server)
        .map(|(u, _)| *u)
        .expect("fragment registered")
}
