//! The §4.8 correctness theorem, as a randomized property test.
//!
//! Claim: for any workload of ordered groups dispatched across servers,
//! and any crash that durably persists an arbitrary *subset* of the
//! recorded requests (subject only to the device rules the stack
//! enforces), Rio's recovery plan reconstructs a state `D1 ← … ← Dk`
//! that is a valid prefix of the submitted order:
//!
//! * `valid_through` is exactly the longest prefix in which every group
//!   is complete and durable;
//! * every non-IPU record beyond the prefix is discarded;
//! * nothing inside the prefix is ever discarded.

use proptest::prelude::*;
use rio_order::attr::{BlockRange, OrderingAttr, ServerId, StreamId};
use rio_order::recovery::{RecoveryInput, RecoveryMode, RecoveryPlan, ServerScan};
use rio_order::sequencer::{Sequencer, SubmitOpts};
use rio_proto::PmrRecord;

/// A generated workload group: member count and target server picks.
#[derive(Debug, Clone)]
struct GenGroup {
    members: Vec<u8>, // Server index per member.
}

fn gen_groups() -> impl Strategy<Value = Vec<GenGroup>> {
    proptest::collection::vec(
        proptest::collection::vec(0u8..3, 1..4).prop_map(|members| GenGroup { members }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn recovery_always_yields_the_maximal_valid_prefix(
        groups in gen_groups(),
        durable_mask in proptest::collection::vec(any::<bool>(), 60),
    ) {
        // Dispatch every group through the real sequencer.
        let mut seq = Sequencer::new(1, 3);
        let mut records: Vec<(ServerId, PmrRecord)> = Vec::new();
        let mut all_attrs: Vec<OrderingAttr> = Vec::new();
        let mut lba = 0u64;
        for g in &groups {
            let n = g.members.len();
            for (i, &srv) in g.members.iter().enumerate() {
                let mut attr = seq.submit(
                    StreamId(0),
                    BlockRange::new(lba, 1),
                    SubmitOpts { end_group: i == n - 1, ..Default::default() },
                );
                lba += 1;
                seq.stamp_dispatch(&mut attr, ServerId(srv as u16));
                all_attrs.push(attr);
            }
        }
        // The crash persists an arbitrary subset of the records (PLP
        // rule: per-record persist bits).
        for (i, attr) in all_attrs.iter().enumerate() {
            let mut a = *attr;
            a.persist = durable_mask.get(i).copied().unwrap_or(false);
            records.push((a.server, a.to_pmr_record(0)));
        }
        let scans: Vec<ServerScan> = (0..3u16)
            .map(|s| ServerScan {
                server: ServerId(s),
                plp: true,
                head_seqs: vec![(StreamId(0), rio_order::attr::Seq(0))],
                records: records
                    .iter()
                    .filter(|(srv, _)| srv.0 == s)
                    .map(|(_, r)| *r)
                    .collect(),
            })
            .collect();
        let plan = RecoveryPlan::compute(&RecoveryInput {
            scans,
            mode: RecoveryMode::InitiatorRestart,
        });
        let sp = plan.stream(StreamId(0)).expect("stream 0 planned");

        // Reference model: group g is satisfied iff all its members'
        // records are durable.
        let mut satisfied = Vec::with_capacity(groups.len());
        {
            let mut idx = 0usize;
            for g in &groups {
                let ok = (0..g.members.len()).all(|j| {
                    durable_mask.get(idx + j).copied().unwrap_or(false)
                });
                idx += g.members.len();
                satisfied.push(ok);
            }
        }
        let expect_prefix = satisfied.iter().take_while(|&&ok| ok).count() as u32;
        prop_assert_eq!(
            sp.valid_through.0, expect_prefix,
            "prefix mismatch: satisfied={:?}", satisfied
        );

        // Discards cover exactly the records beyond the prefix.
        for d in &sp.discard {
            prop_assert!(
                d.range.lba >= expect_prefix as u64 - 0, // LBA g-1 belongs to group ... map below.
                "sanity"
            );
        }
        // Stronger: no discarded LBA belongs to a prefix group; every
        // non-durable-beyond-prefix record's LBA is discarded.
        let mut lba_group = Vec::new(); // LBA -> group index.
        for (gi, g) in groups.iter().enumerate() {
            for _ in &g.members {
                lba_group.push(gi as u32);
            }
        }
        let discarded: std::collections::BTreeSet<u64> =
            sp.discard.iter().map(|d| d.range.lba).collect();
        for &l in &discarded {
            prop_assert!(
                lba_group[l as usize] >= expect_prefix,
                "discarded LBA {l} belongs to prefix group {}",
                lba_group[l as usize]
            );
        }
        for (i, _attr) in all_attrs.iter().enumerate() {
            let g = lba_group[i];
            if g >= expect_prefix {
                prop_assert!(
                    discarded.contains(&(i as u64)),
                    "beyond-prefix record at LBA {i} (group {g}) not discarded"
                );
            }
        }
    }

    /// Target repair never discards and only replays non-durable pieces
    /// on failed servers.
    #[test]
    fn target_repair_replays_only_failed_servers(
        groups in gen_groups(),
        durable_mask in proptest::collection::vec(any::<bool>(), 60),
        failed in 0u16..3,
    ) {
        let mut seq = Sequencer::new(1, 3);
        let mut records: Vec<(ServerId, PmrRecord)> = Vec::new();
        let mut lba = 0u64;
        let mut i = 0usize;
        for g in &groups {
            let n = g.members.len();
            for (j, &srv) in g.members.iter().enumerate() {
                let mut attr = seq.submit(
                    StreamId(0),
                    BlockRange::new(lba, 1),
                    SubmitOpts { end_group: j == n - 1, ..Default::default() },
                );
                lba += 1;
                seq.stamp_dispatch(&mut attr, ServerId(srv as u16));
                attr.persist = durable_mask.get(i).copied().unwrap_or(false);
                i += 1;
                records.push((attr.server, attr.to_pmr_record(0)));
            }
        }
        let scans: Vec<ServerScan> = (0..3u16)
            .map(|s| ServerScan {
                server: ServerId(s),
                plp: true,
                head_seqs: vec![(StreamId(0), rio_order::attr::Seq(0))],
                records: records
                    .iter()
                    .filter(|(srv, _)| srv.0 == s)
                    .map(|(_, r)| *r)
                    .collect(),
            })
            .collect();
        let plan = RecoveryPlan::compute(&RecoveryInput {
            scans,
            mode: RecoveryMode::TargetRepair { failed: vec![ServerId(failed)] },
        });
        let sp = plan.stream(StreamId(0)).expect("stream 0");
        prop_assert!(sp.discard.is_empty(), "repair must not roll back");
        for r in &sp.replay {
            prop_assert_eq!(r.server, ServerId(failed), "replay targets the failed server only");
        }
    }
}
