//! The ordering attribute: an ordered write request's logical identity.
//!
//! The attribute (paper Fig. 5) records which *group* a request belongs
//! to (`seq`, `num`), which group precedes it on its target server
//! (`prev`), whether its data blocks are durable (`persist`), where its
//! blocks live (`range`), and how it was split or merged. It is embedded
//! in the block-layer request, carried over the network inside reserved
//! NVMe-oF command fields ([`rio_proto::RioExt`]), and persisted to the
//! PMR log ([`rio_proto::PmrRecord`]) — so the scattered pieces of the
//! original storage order can be reassembled at any time.

use rio_proto::pmr_record::RecordFlags;
use rio_proto::{PmrRecord, RioExt, RioFlags, RioOpcode};

/// Identifies an independent ordered stream (§4.5). Streams have no
/// ordering constraints between each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u16);

/// A per-stream global sequence number. `Seq::HEAD` (zero) is the
/// reserved list head of Fig. 5 and never names a real group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Seq(pub u32);

impl Seq {
    /// The reserved head entry (seq 0 in Fig. 5).
    pub const HEAD: Seq = Seq(0);

    /// The next sequence number.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 32-bit sequence space.
    pub fn next(self) -> Seq {
        Seq(self.0.checked_add(1).expect("sequence space exhausted"))
    }

    /// Returns true for the reserved head.
    pub fn is_head(self) -> bool {
        self.0 == 0
    }
}

/// Identifies a target server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServerId(pub u16);

/// A contiguous run of logical blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRange {
    /// First logical block address.
    pub lba: u64,
    /// Number of blocks (zero is forbidden).
    pub blocks: u32,
}

impl BlockRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn new(lba: u64, blocks: u32) -> Self {
        assert!(blocks > 0, "empty block range");
        BlockRange { lba, blocks }
    }

    /// The LBA one past the end of this range.
    pub fn end(&self) -> u64 {
        self.lba + self.blocks as u64
    }

    /// Whether `self` immediately precedes `next` with no gap or overlap.
    pub fn abuts(&self, next: &BlockRange) -> bool {
        self.end() == next.lba
    }

    /// Whether the two ranges share any block.
    pub fn overlaps(&self, other: &BlockRange) -> bool {
        self.lba < other.end() && other.lba < self.end()
    }

    /// The union of two abutting ranges.
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not abut.
    pub fn join(&self, next: &BlockRange) -> BlockRange {
        assert!(self.abuts(next), "joining non-adjacent ranges");
        BlockRange {
            lba: self.lba,
            blocks: self.blocks + next.blocks,
        }
    }
}

/// Position of a fragment within a split request (§4.5, Fig. 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitInfo {
    /// Fragment ordinal, starting at zero.
    pub idx: u8,
    /// Whether this is the final fragment.
    pub last: bool,
}

/// The ordering attribute of one physical ordered write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderingAttr {
    /// Owning stream.
    pub stream: StreamId,
    /// First group sequence number this request covers.
    pub seq_start: Seq,
    /// Last group sequence number covered (differs from `seq_start` only
    /// after merging across groups, Fig. 8a).
    pub seq_end: Seq,
    /// Number of requests in the group; meaningful on `boundary`
    /// requests (and on merged requests, where it is the total across
    /// all covered groups).
    pub num: u16,
    /// Ordinal of this request within its group (0-based). Lets
    /// recovery tell two split members of the same group apart.
    pub member_idx: u8,
    /// Sequence number of the preceding group dispatched to the same
    /// target server (`Seq::HEAD` when none).
    pub prev: Seq,
    /// Whether this request ends its group (the "final request").
    pub boundary: bool,
    /// Whether the data blocks are known durable.
    pub persist: bool,
    /// The blocks this request covers.
    pub range: BlockRange,
    /// Split bookkeeping; `None` for unsplit requests.
    pub split: Option<SplitInfo>,
    /// In-place update: recovery must not roll this request back.
    pub ipu: bool,
    /// Carries a FLUSH: its completion persists all preceding writes on
    /// a non-PLP drive.
    pub flush: bool,
    /// Target server this request was dispatched to.
    pub server: ServerId,
    /// Device index within the target server.
    pub ssd: u8,
    /// Per-(stream, server) dispatch ordinal, stamped by the initiator
    /// driver. The target's in-order submission gate releases requests
    /// in this order (implementation refinement of §4.3.1; the paper
    /// relies on per-QP in-order delivery for the common case).
    pub dispatch_idx: u64,
}

impl OrderingAttr {
    /// Creates an attribute for an unsplit, unmerged request of group
    /// `seq`.
    pub fn single(stream: StreamId, seq: Seq, range: BlockRange) -> Self {
        OrderingAttr {
            stream,
            seq_start: seq,
            seq_end: seq,
            num: 0,
            member_idx: 0,
            prev: Seq::HEAD,
            boundary: false,
            persist: false,
            range,
            split: None,
            ipu: false,
            flush: false,
            server: ServerId(0),
            ssd: 0,
            dispatch_idx: 0,
        }
    }

    /// Whether this attribute covers group `seq`.
    pub fn covers(&self, seq: Seq) -> bool {
        self.seq_start <= seq && seq <= self.seq_end
    }

    /// Whether this request was merged across multiple groups.
    pub fn is_merged_span(&self) -> bool {
        self.seq_start != self.seq_end
    }

    /// Encodes the wire-visible part into the NVMe-oF reserved fields
    /// (paper Table 1 plus the implementation-extension dwords).
    pub fn to_wire(&self) -> RioExt {
        RioExt {
            op: RioOpcode::Submit,
            seq_start: self.seq_start.0,
            seq_end: self.seq_end.0,
            prev: self.prev.0,
            num: self.num,
            stream: self.stream.0,
            flags: RioFlags {
                boundary: self.boundary,
                split: self.split.is_some(),
                ipu: self.ipu,
            },
            member_idx: self.member_idx,
            split_idx: self.split.map(|s| s.idx).unwrap_or(0),
            last_split: self.split.map(|s| s.last).unwrap_or(false),
            dispatch_idx: self.dispatch_idx as u32,
        }
    }

    /// Reconstructs the attribute from the wire extension plus the
    /// request geometry the command itself carries.
    pub fn from_wire(ext: &RioExt, range: BlockRange, server: ServerId) -> Self {
        OrderingAttr {
            stream: StreamId(ext.stream),
            seq_start: Seq(ext.seq_start),
            seq_end: Seq(ext.seq_end),
            num: ext.num,
            member_idx: ext.member_idx,
            prev: Seq(ext.prev),
            boundary: ext.flags.boundary,
            persist: false,
            range,
            split: if ext.flags.split {
                Some(SplitInfo {
                    idx: ext.split_idx,
                    last: ext.last_split,
                })
            } else {
                None
            },
            ipu: ext.flags.ipu,
            flush: false,
            server,
            ssd: 0,
            dispatch_idx: ext.dispatch_idx as u64,
        }
    }

    /// Encodes into a PMR log record (§4.3.2).
    ///
    /// # Panics
    ///
    /// Panics if the block count exceeds the record's 8-bit field (the
    /// splitter bounds physical requests well below 255 blocks).
    pub fn to_pmr_record(&self, generation: u8) -> PmrRecord {
        assert!(
            self.range.blocks <= u8::MAX as u32,
            "range too large for PMR record"
        );
        PmrRecord {
            generation,
            flags: RecordFlags {
                boundary: self.boundary,
                split: self.split.is_some(),
                ipu: self.ipu,
                flush: self.flush,
                last_split: self.split.map(|s| s.last).unwrap_or(false),
            },
            member_idx: self.member_idx,
            num: self.num,
            stream: self.stream.0,
            seq_start: self.seq_start.0,
            seq_end: self.seq_end.0,
            prev: self.prev.0,
            lba: self.range.lba,
            len: self.range.blocks as u8,
            split_idx: self.split.map(|s| s.idx).unwrap_or(0),
            persist: self.persist,
            ssd: self.ssd,
        }
    }

    /// Reconstructs an attribute from a scanned PMR record. The `server`
    /// is supplied by the scanner (records live on the server that wrote
    /// them); `dispatch_idx` is not persisted and reads back as zero.
    pub fn from_pmr_record(rec: &PmrRecord, server: ServerId) -> Self {
        OrderingAttr {
            stream: StreamId(rec.stream),
            seq_start: Seq(rec.seq_start),
            seq_end: Seq(rec.seq_end),
            num: rec.num,
            member_idx: rec.member_idx,
            prev: Seq(rec.prev),
            boundary: rec.flags.boundary,
            persist: rec.persist,
            range: BlockRange::new(rec.lba, rec.len.max(1) as u32),
            split: if rec.flags.split {
                Some(SplitInfo {
                    idx: rec.split_idx,
                    last: rec.flags.last_split,
                })
            } else {
                None
            },
            ipu: rec.flags.ipu,
            flush: rec.flags.flush,
            server,
            ssd: rec.ssd,
            dispatch_idx: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seq_head_and_next() {
        assert!(Seq::HEAD.is_head());
        assert_eq!(Seq::HEAD.next(), Seq(1));
        assert!(!Seq(1).is_head());
    }

    #[test]
    #[should_panic(expected = "sequence space exhausted")]
    fn seq_overflow_panics() {
        let _ = Seq(u32::MAX).next();
    }

    #[test]
    fn block_range_geometry() {
        let a = BlockRange::new(10, 4);
        let b = BlockRange::new(14, 2);
        let c = BlockRange::new(17, 1);
        assert_eq!(a.end(), 14);
        assert!(a.abuts(&b));
        assert!(!a.abuts(&c));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&BlockRange::new(13, 5)));
        assert_eq!(a.join(&b), BlockRange::new(10, 6));
    }

    #[test]
    #[should_panic(expected = "empty block range")]
    fn empty_range_rejected() {
        let _ = BlockRange::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn join_rejects_gap() {
        let _ = BlockRange::new(0, 1).join(&BlockRange::new(5, 1));
    }

    fn sample_attr() -> OrderingAttr {
        OrderingAttr {
            stream: StreamId(3),
            seq_start: Seq(10),
            seq_end: Seq(12),
            num: 5,
            member_idx: 2,
            prev: Seq(9),
            boundary: true,
            persist: false,
            range: BlockRange::new(4096, 24),
            split: None,
            ipu: false,
            flush: true,
            server: ServerId(1),
            ssd: 1,
            dispatch_idx: 77,
        }
    }

    #[test]
    fn wire_round_trip_preserves_ordering_fields() {
        let attr = sample_attr();
        let ext = attr.to_wire();
        let back = OrderingAttr::from_wire(&ext, attr.range, attr.server);
        assert_eq!(back.stream, attr.stream);
        assert_eq!(back.seq_start, attr.seq_start);
        assert_eq!(back.seq_end, attr.seq_end);
        assert_eq!(back.prev, attr.prev);
        assert_eq!(back.num, attr.num);
        assert_eq!(back.member_idx, attr.member_idx);
        assert_eq!(back.boundary, attr.boundary);
        assert_eq!(back.ipu, attr.ipu);
        assert_eq!(back.dispatch_idx, attr.dispatch_idx);
        assert_eq!(back.split, attr.split);
    }

    #[test]
    fn wire_round_trip_split_info() {
        let mut attr = sample_attr();
        attr.split = Some(SplitInfo { idx: 3, last: true });
        let back = OrderingAttr::from_wire(&attr.to_wire(), attr.range, attr.server);
        assert_eq!(back.split, Some(SplitInfo { idx: 3, last: true }));
    }

    #[test]
    fn pmr_round_trip() {
        let mut attr = sample_attr();
        attr.range = BlockRange::new(4096, 24);
        attr.split = Some(SplitInfo { idx: 2, last: true });
        let rec = attr.to_pmr_record(7);
        assert_eq!(rec.generation, 7);
        let back = OrderingAttr::from_pmr_record(&rec, ServerId(1));
        assert_eq!(back.stream, attr.stream);
        assert_eq!(back.seq_start, attr.seq_start);
        assert_eq!(back.seq_end, attr.seq_end);
        assert_eq!(back.num, attr.num);
        assert_eq!(back.member_idx, attr.member_idx);
        assert_eq!(back.prev, attr.prev);
        assert_eq!(back.range, attr.range);
        assert_eq!(back.split, attr.split);
        assert_eq!(back.flush, attr.flush);
        assert_eq!(back.server, ServerId(1));
    }

    #[test]
    #[should_panic(expected = "range too large")]
    fn oversized_pmr_range_rejected() {
        let mut attr = sample_attr();
        attr.range = BlockRange::new(0, 1000);
        let _ = attr.to_pmr_record(0);
    }

    #[test]
    fn covers_range() {
        let attr = sample_attr();
        assert!(attr.covers(Seq(10)));
        assert!(attr.covers(Seq(12)));
        assert!(!attr.covers(Seq(9)));
        assert!(!attr.covers(Seq(13)));
        assert!(attr.is_merged_span());
        assert!(!OrderingAttr::single(StreamId(0), Seq(1), BlockRange::new(0, 1)).is_merged_span());
    }

    proptest! {
        #[test]
        fn prop_pmr_round_trip(
            stream in any::<u16>(),
            seq in 1u32..u32::MAX - 1000,
            span in 0u32..100,
            num in any::<u16>(),
            member_idx in any::<u8>(),
            prev in any::<u32>(),
            lba in 0u64..(1 << 40),
            blocks in 1u32..=255,
            boundary in any::<bool>(),
            ipu in any::<bool>(),
            flush in any::<bool>(),
            ssd in any::<u8>(),
            split in proptest::option::of((any::<u8>(), any::<bool>())),
        ) {
            let attr = OrderingAttr {
                stream: StreamId(stream),
                seq_start: Seq(seq),
                seq_end: Seq(seq + span),
                num,
                member_idx,
                prev: Seq(prev),
                boundary,
                persist: false,
                range: BlockRange::new(lba, blocks),
                split: split.map(|(idx, last)| SplitInfo { idx, last }),
                ipu,
                flush,
                server: ServerId(4),
                ssd,
                dispatch_idx: 0,
            };
            let rec = attr.to_pmr_record(1);
            let back = OrderingAttr::from_pmr_record(&rec, ServerId(4));
            prop_assert_eq!(back, attr);
        }

        #[test]
        fn prop_overlap_symmetric(a_lba in 0u64..1000, a_len in 1u32..50, b_lba in 0u64..1000, b_len in 1u32..50) {
            let a = BlockRange::new(a_lba, a_len);
            let b = BlockRange::new(b_lba, b_len);
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            // Overlap is consistent with interval arithmetic.
            let expect = a_lba.max(b_lba) < (a_lba + a_len as u64).min(b_lba + b_len as u64);
            prop_assert_eq!(a.overlaps(&b), expect);
        }
    }
}
