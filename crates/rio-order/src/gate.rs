//! The target driver's in-order submission gate (§4.3.1).
//!
//! An RDMA NIC may reorder requests across queue pairs, but the target
//! driver must submit ordered writes to the SSD in per-server order, or
//! a FLUSH could persist a later write while an earlier one still sits
//! in a network queue (the W1_2/W3 example of §4.3.1). The gate buffers
//! early arrivals and releases requests in the per-(stream, server)
//! dispatch order stamped by the initiator.
//!
//! When a stream is pinned to a single RC queue pair (scheduler
//! Principle 2), arrivals are already in order and the gate releases
//! every request immediately — the paper's "in-order delivery removes
//! this overhead" observation is then directly visible in the gate's
//! [`SubmissionGate::buffered_peak`] statistic staying at zero.
//!
//! # Hot-path layout
//!
//! Dispatch ordinals are dense per stream, so early arrivals live in a
//! ring (`ring[i]` holds ordinal `next + 1 + i`) and streams live in a
//! plain `Vec` indexed by stream id — the fast path (in-order arrival,
//! nothing buffered) touches no map at all.

use std::collections::VecDeque;

use crate::attr::OrderingAttr;

/// Per-stream gate state on one target server.
#[derive(Debug, Default)]
struct GateStream {
    /// Next dispatch ordinal expected from the initiator.
    next: u64,
    /// Early arrivals: `ring[i]` buffers ordinal `next + 1 + i`.
    ring: VecDeque<Option<(OrderingAttr, u64)>>,
}

/// Reorders arrivals back into per-server submission order.
///
/// # Examples
///
/// ```
/// use rio_order::attr::{BlockRange, OrderingAttr, Seq, StreamId};
/// use rio_order::gate::SubmissionGate;
///
/// let mut gate = SubmissionGate::new();
/// let mut early = OrderingAttr::single(StreamId(0), Seq(2), BlockRange::new(1, 1));
/// early.dispatch_idx = 1;
/// let mut first = OrderingAttr::single(StreamId(0), Seq(1), BlockRange::new(0, 1));
/// first.dispatch_idx = 0;
/// // The network delivered them out of order.
/// assert!(gate.arrive(early, 20).is_empty());
/// let released = gate.arrive(first, 10);
/// assert_eq!(released.len(), 2);
/// assert_eq!(released[0].1, 10);
/// assert_eq!(released[1].1, 20);
/// ```
#[derive(Debug, Default)]
pub struct SubmissionGate {
    /// Indexed directly by stream id; grown on demand.
    streams: Vec<GateStream>,
    buffered_now: usize,
    buffered_peak: usize,
    total_buffered_events: u64,
}

impl SubmissionGate {
    /// Creates an empty gate.
    pub fn new() -> Self {
        SubmissionGate::default()
    }

    /// Creates a gate pre-sized for stream ids `0..n_streams`, so the
    /// hot path never grows the stream table.
    pub fn with_streams(n_streams: usize) -> Self {
        let mut g = SubmissionGate::default();
        g.streams.resize_with(n_streams, GateStream::default);
        g
    }

    /// Handles the arrival of an ordered request and returns the
    /// requests (attribute, token) now releasable to the SSD, in order.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate or stale dispatch ordinal (the transport is
    /// reliable; duplicates indicate a protocol bug).
    pub fn arrive(&mut self, attr: OrderingAttr, token: u64) -> Vec<(OrderingAttr, u64)> {
        let mut released = Vec::new();
        self.arrive_into(attr, token, &mut released);
        released
    }

    /// Allocation-free form of [`Self::arrive`]: appends releasable
    /// requests to `released` (which is *not* cleared), letting hot
    /// callers reuse one buffer across arrivals.
    ///
    /// # Panics
    ///
    /// As [`Self::arrive`].
    pub fn arrive_into(
        &mut self,
        attr: OrderingAttr,
        token: u64,
        released: &mut Vec<(OrderingAttr, u64)>,
    ) {
        let sid = attr.stream.0 as usize;
        if sid >= self.streams.len() {
            self.streams.resize_with(sid + 1, GateStream::default);
        }
        let st = &mut self.streams[sid];
        assert!(
            attr.dispatch_idx >= st.next,
            "stale dispatch ordinal {} (next expected {})",
            attr.dispatch_idx,
            st.next
        );
        if attr.dispatch_idx == st.next {
            st.next += 1;
            released.push((attr, token));
            // Drain the contiguous run of buffered successors. After
            // each increment of `next` the ring's front slot is the one
            // for the new `next`: release it if filled, and when it is
            // an empty placeholder consume it too (its ordinal will now
            // arrive as a direct, in-order delivery).
            loop {
                match st.ring.pop_front() {
                    Some(Some(entry)) => {
                        st.next += 1;
                        self.buffered_now -= 1;
                        released.push(entry);
                    }
                    Some(None) | None => break,
                }
            }
        } else {
            let off = (attr.dispatch_idx - st.next - 1) as usize;
            if off >= st.ring.len() {
                st.ring.resize_with(off + 1, || None);
            }
            let slot = &mut st.ring[off];
            assert!(slot.is_none(), "duplicate dispatch ordinal");
            *slot = Some((attr, token));
            self.buffered_now += 1;
            self.total_buffered_events += 1;
            self.buffered_peak = self.buffered_peak.max(self.buffered_now);
        }
    }

    /// Requests currently held back waiting for predecessors.
    pub fn buffered(&self) -> usize {
        self.buffered_now
    }

    /// Peak number of simultaneously buffered requests.
    pub fn buffered_peak(&self) -> usize {
        self.buffered_peak
    }

    /// Total arrivals that had to buffer (out-of-order deliveries).
    pub fn total_buffered_events(&self) -> u64 {
        self.total_buffered_events
    }

    /// Drops all state (crash / reconnect: a fresh gate epoch).
    pub fn reset(&mut self) {
        self.streams.clear();
        self.buffered_now = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{BlockRange, Seq, StreamId};
    use proptest::prelude::*;

    fn attr(stream: u16, idx: u64) -> OrderingAttr {
        let mut a = OrderingAttr::single(
            StreamId(stream),
            Seq(idx as u32 + 1),
            BlockRange::new(idx, 1),
        );
        a.dispatch_idx = idx;
        a
    }

    #[test]
    fn in_order_arrivals_pass_through() {
        let mut g = SubmissionGate::new();
        for i in 0..10 {
            let out = g.arrive(attr(0, i), i);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].1, i);
        }
        assert_eq!(
            g.buffered_peak(),
            0,
            "no buffering when delivery is in order"
        );
    }

    #[test]
    fn reordered_arrivals_release_in_order() {
        let mut g = SubmissionGate::new();
        assert!(g.arrive(attr(0, 2), 2).is_empty());
        assert!(g.arrive(attr(0, 1), 1).is_empty());
        assert_eq!(g.buffered(), 2);
        let out = g.arrive(attr(0, 0), 0);
        assert_eq!(
            out.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(g.buffered(), 0);
        assert_eq!(g.total_buffered_events(), 2);
    }

    #[test]
    fn streams_gate_independently() {
        let mut g = SubmissionGate::new();
        assert!(
            g.arrive(attr(0, 1), 1).is_empty(),
            "stream 0 waits for idx 0"
        );
        let out = g.arrive(attr(1, 0), 100);
        assert_eq!(out.len(), 1, "stream 1 is unaffected");
    }

    #[test]
    #[should_panic(expected = "duplicate dispatch ordinal")]
    fn duplicate_rejected() {
        let mut g = SubmissionGate::new();
        g.arrive(attr(0, 5), 0);
        g.arrive(attr(0, 5), 1);
    }

    #[test]
    #[should_panic(expected = "stale dispatch ordinal")]
    fn stale_rejected() {
        let mut g = SubmissionGate::new();
        g.arrive(attr(0, 0), 0);
        g.arrive(attr(0, 0), 1);
    }

    #[test]
    fn reset_starts_new_epoch() {
        let mut g = SubmissionGate::new();
        g.arrive(attr(0, 0), 0);
        g.arrive(attr(0, 5), 5);
        g.reset();
        assert_eq!(g.buffered(), 0);
        let out = g.arrive(attr(0, 0), 9);
        assert_eq!(out.len(), 1);
    }

    proptest! {
        /// Any permutation of arrivals is released in exactly dispatch
        /// order, with nothing lost.
        #[test]
        fn prop_release_order_is_dispatch_order(
            n in 1usize..50,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut order: Vec<u64> = (0..n as u64).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut g = SubmissionGate::new();
            let mut released = Vec::new();
            for idx in order {
                released.extend(g.arrive(attr(0, idx), idx).into_iter().map(|(_, t)| t));
            }
            prop_assert_eq!(released, (0..n as u64).collect::<Vec<_>>());
            prop_assert_eq!(g.buffered(), 0);
        }
    }
}
