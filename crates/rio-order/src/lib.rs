//! The Rio ordering core (the paper's primary contribution), as pure logic.
//!
//! Rio's key insight is that a layered storage stack over asynchronous
//! NICs and SSDs resembles a CPU pipeline: it can execute ordered write
//! requests *out of order* internally as long as it **commits them in
//! order** at the boundaries. This crate implements every mechanism that
//! makes that safe, with no I/O or simulation dependencies, so each piece
//! is directly unit- and property-testable:
//!
//! * [`attr`] — the ordering attribute (Fig. 5), the identity each
//!   ordered write request carries through the whole stack.
//! * [`sequencer`] — the Rio sequencer (Fig. 4 ①②⑨): stamps attributes
//!   at submission, tracking per-stream global order and per-server
//!   `prev` chains.
//! * [`completion`] — in-order completion: out-of-order internal
//!   completions are released to the application in submission order.
//! * [`scheduler`] — the ORDER-queue merge/split rules (Fig. 8,
//!   Principles 1–3 of §4.5).
//! * [`gate`] — the target driver's in-order submission gate (§4.3.1).
//! * [`pmrlog`] — the circular log of persistent ordering attributes in
//!   the SSD's PMR (§4.3.2).
//! * [`recovery`] — the asynchronous crash-recovery algorithm (§4.4):
//!   per-server list reconstruction, global merge, rollback/replay plans,
//!   and in-place-update reporting.
//!
//! The companion crate `rio-stack` drives this logic inside a simulated
//! cluster to reproduce the paper's performance results; file systems
//! (`rio-fs`) build journaling on top of the ordered block abstraction.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod attr;
pub mod completion;
pub mod gate;
pub mod librio;
pub mod pmrlog;
pub mod recovery;
pub mod scheduler;
pub mod sequencer;

pub use attr::{BlockRange, OrderingAttr, Seq, ServerId, SplitInfo, StreamId};
pub use completion::InOrderCompleter;
pub use gate::SubmissionGate;
pub use librio::{Rio, RioSetup};
pub use pmrlog::{PmrLog, PmrWrite, SlotRef};
pub use recovery::{
    DiscardOp, IpuEvent, RecoveryInput, RecoveryMode, RecoveryPlan, ReplayOp, ServerScan,
    StreamPlan,
};
pub use scheduler::{split_attr, DispatchUnit, MergeDecision, OrderQueue, OrderQueueConfig};
pub use sequencer::{Sequencer, SubmitOpts};
