//! The asynchronous crash-recovery algorithm (§4.4).
//!
//! After a crash, each target server scans its PMR log in parallel and
//! ships the decoded records to the initiator, which:
//!
//! 1. rejoins split fragments into logical units (Fig. 8b),
//! 2. decides durability per unit — directly from the persist bit on
//!    power-loss-protected drives, or through the "a later FLUSH-carrying
//!    record persisted" rule on volatile-cache drives (§4.3.2),
//! 3. merges the per-server lists into the global ordering list and cuts
//!    it at the first incomplete or non-durable group — the *valid
//!    prefix* of the correctness proof (§4.8),
//! 4. emits a plan: on an **initiator restart**, roll back (discard)
//!    everything beyond the prefix; on a **target repair**, keep alive
//!    servers' attributes and replay the missing pieces on the failed
//!    servers (idempotent, §4.4.1). In-place updates are never rolled
//!    back; they are reported to the upper layer instead (§4.4.2).

use std::collections::BTreeMap;

use rio_proto::PmrRecord;

use crate::attr::{BlockRange, Seq, ServerId, StreamId};

/// One server's post-crash scan.
#[derive(Debug, Clone)]
pub struct ServerScan {
    /// The scanned server.
    pub server: ServerId,
    /// Whether its SSD has power-loss protection (persist bits are set
    /// per record on completion rather than per FLUSH).
    pub plp: bool,
    /// Superblock delivered-through marks.
    pub head_seqs: Vec<(StreamId, Seq)>,
    /// All decodable records.
    pub records: Vec<PmrRecord>,
}

/// What kind of crash is being recovered (§4.4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryMode {
    /// The initiator restarted: roll back beyond the valid prefix.
    InitiatorRestart,
    /// One or more targets failed and reconnected: repair by replay.
    TargetRepair {
        /// The servers that crashed and lost in-flight state.
        failed: Vec<ServerId>,
    },
}

/// Input to the recovery computation.
#[derive(Debug, Clone)]
pub struct RecoveryInput {
    /// Per-server scans (one per connected target).
    pub scans: Vec<ServerScan>,
    /// Crash kind.
    pub mode: RecoveryMode,
}

/// A block range to erase on a server (roll-back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscardOp {
    /// Server holding the blocks.
    pub server: ServerId,
    /// Device index within the server.
    pub ssd: u8,
    /// Physical blocks to erase.
    pub range: BlockRange,
}

/// A request piece to re-send during target repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOp {
    /// Stream of the request.
    pub stream: StreamId,
    /// First group covered.
    pub seq_start: Seq,
    /// Last group covered.
    pub seq_end: Seq,
    /// Member ordinal within the group.
    pub member_idx: u8,
    /// Server the replay must target.
    pub server: ServerId,
    /// Device index within the server.
    pub ssd: u8,
    /// Blocks covered by the recorded (non-durable) piece.
    pub range: BlockRange,
}

/// An in-place-update record beyond the valid prefix, reported to the
/// upper layer (file system) instead of being rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpuEvent {
    /// Stream of the request.
    pub stream: StreamId,
    /// Group sequence.
    pub seq: Seq,
    /// Server holding the blocks.
    pub server: ServerId,
    /// Device index within the server.
    pub ssd: u8,
    /// Blocks the IPU covered.
    pub range: BlockRange,
    /// Whether the IPU data is durable.
    pub durable: bool,
}

/// Recovery outcome for one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamPlan {
    /// The stream.
    pub stream: StreamId,
    /// Delivered-through mark recovered from the superblocks.
    pub resume_head: Seq,
    /// The global order is intact through this sequence (the valid
    /// prefix D1 ← … ← Dk of §4.8).
    pub valid_through: Seq,
    /// Blocks to erase (initiator restart only).
    pub discard: Vec<DiscardOp>,
    /// Pieces to re-send (target repair only).
    pub replay: Vec<ReplayOp>,
    /// In-place updates beyond the prefix, for the upper layer.
    pub ipu: Vec<IpuEvent>,
    /// Per server: newest group ≤ `valid_through` with presence on that
    /// server (seed for [`crate::sequencer::Sequencer::reset_stream`]).
    pub resume_prev: Vec<Seq>,
}

/// The full recovery plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPlan {
    /// Plans per stream, ordered by stream id.
    pub streams: Vec<StreamPlan>,
}

/// A record together with its origin server and durability verdict.
#[derive(Debug, Clone)]
struct Located {
    rec: PmrRecord,
    server: ServerId,
    durable: bool,
}

/// One logical unit: an unsplit request or the rejoined fragments of a
/// split one.
#[derive(Debug, Clone)]
struct Unit {
    seq_start: Seq,
    seq_end: Seq,
    member_idx: u8,
    boundary: bool,
    num: u16,
    ipu: bool,
    complete: bool,
    durable: bool,
    pieces: Vec<Located>,
}

impl RecoveryPlan {
    /// Runs the recovery computation.
    pub fn compute(input: &RecoveryInput) -> RecoveryPlan {
        // Per-(server, ssd) FLUSH durability horizon per stream: the
        // largest seq_end among flush-carrying records whose persist bit
        // is set. A FLUSH only persists the device it ran on.
        let mut flush_horizon: BTreeMap<(ServerId, u8, u16), u32> = BTreeMap::new();
        for scan in &input.scans {
            if scan.plp {
                continue;
            }
            for rec in &scan.records {
                if rec.flags.flush && rec.persist {
                    let key = (scan.server, rec.ssd, rec.stream);
                    let e = flush_horizon.entry(key).or_insert(0);
                    *e = (*e).max(rec.seq_end);
                }
            }
        }

        // Locate every record with its durability verdict, bucketed by
        // stream.
        let mut by_stream: BTreeMap<u16, Vec<Located>> = BTreeMap::new();
        let mut heads: BTreeMap<u16, Seq> = BTreeMap::new();
        let mut n_servers = 0u16;
        for scan in &input.scans {
            n_servers = n_servers.max(scan.server.0 + 1);
            for &(stream, seq) in &scan.head_seqs {
                let h = heads.entry(stream.0).or_insert(Seq::HEAD);
                // Any server's delivered mark is a lower bound on the
                // truly delivered prefix; take the max.
                *h = (*h).max(seq);
            }
            for rec in &scan.records {
                let durable = if scan.plp {
                    rec.persist
                } else {
                    (rec.flags.flush && rec.persist)
                        || flush_horizon
                            .get(&(scan.server, rec.ssd, rec.stream))
                            .is_some_and(|&h| rec.seq_end <= h)
                };
                by_stream.entry(rec.stream).or_default().push(Located {
                    rec: *rec,
                    server: scan.server,
                    durable,
                });
            }
        }

        let mut streams = Vec::new();
        for (&stream_raw, located) in &by_stream {
            let stream = StreamId(stream_raw);
            let head = heads.get(&stream_raw).copied().unwrap_or(Seq::HEAD);
            streams.push(Self::plan_stream(
                stream,
                head,
                located,
                &input.mode,
                n_servers,
            ));
        }
        // Streams that have head marks but no surviving records still
        // need a (trivial) plan so the sequencer can be re-seeded.
        for (&stream_raw, &head) in &heads {
            if !by_stream.contains_key(&stream_raw) {
                streams.push(StreamPlan {
                    stream: StreamId(stream_raw),
                    resume_head: head,
                    valid_through: head,
                    discard: Vec::new(),
                    replay: Vec::new(),
                    ipu: Vec::new(),
                    resume_prev: vec![Seq::HEAD; n_servers as usize],
                });
            }
        }
        streams.sort_by_key(|p| p.stream);
        RecoveryPlan { streams }
    }

    fn plan_stream(
        stream: StreamId,
        head: Seq,
        located: &[Located],
        mode: &RecoveryMode,
        n_servers: u16,
    ) -> StreamPlan {
        // 1. Drop records already delivered before the crash (stale
        //    slots from earlier log laps included).
        let live: Vec<&Located> = located.iter().filter(|l| l.rec.seq_end > head.0).collect();

        // 2. Rejoin units: key (seq_start, seq_end, member_idx).
        let mut units: BTreeMap<(u32, u32, u8), Unit> = BTreeMap::new();
        for l in &live {
            let key = (l.rec.seq_start, l.rec.seq_end, l.rec.member_idx);
            let unit = units.entry(key).or_insert_with(|| Unit {
                seq_start: Seq(l.rec.seq_start),
                seq_end: Seq(l.rec.seq_end),
                member_idx: l.rec.member_idx,
                boundary: false,
                num: 0,
                ipu: l.rec.flags.ipu,
                complete: false,
                durable: false,
                pieces: Vec::new(),
            });
            if l.rec.flags.boundary {
                unit.boundary = true;
                unit.num = unit.num.max(l.rec.num);
            }
            unit.pieces.push((*l).clone());
        }
        for unit in units.values_mut() {
            Self::resolve_unit(unit);
        }

        // 3. Walk the global list upward from the head and cut at the
        //    first unsatisfied group.
        let mut valid_through = head;
        let mut cursor = head.next();
        'walk: loop {
            // A merged span covering the cursor?
            let span = units
                .values()
                .find(|u| u.seq_start <= cursor && cursor <= u.seq_end && u.seq_start != u.seq_end);
            if let Some(u) = span {
                if u.complete && u.durable {
                    valid_through = u.seq_end;
                    cursor = u.seq_end.next();
                    continue 'walk;
                }
                break 'walk;
            }
            // Otherwise a plain group: need its boundary and all members.
            let members: Vec<&Unit> = units
                .values()
                .filter(|u| u.seq_start == cursor && u.seq_end == cursor)
                .collect();
            let boundary = members.iter().find(|u| u.boundary);
            let Some(b) = boundary else { break 'walk };
            let num = b.num;
            let all_present_durable = (0..num as u8).all(|m| {
                members
                    .iter()
                    .any(|u| u.member_idx == m && u.complete && u.durable)
            });
            if !all_present_durable {
                break 'walk;
            }
            valid_through = cursor;
            cursor = cursor.next();
        }

        // 4. Actions for everything beyond the prefix.
        let mut discard = Vec::new();
        let mut replay = Vec::new();
        let mut ipu = Vec::new();
        for unit in units.values() {
            if unit.seq_end <= valid_through {
                continue;
            }
            for piece in &unit.pieces {
                let range = BlockRange::new(piece.rec.lba, piece.rec.len.max(1) as u32);
                if unit.ipu {
                    ipu.push(IpuEvent {
                        stream,
                        seq: unit.seq_start,
                        server: piece.server,
                        ssd: piece.rec.ssd,
                        range,
                        durable: piece.durable,
                    });
                    continue;
                }
                match mode {
                    RecoveryMode::InitiatorRestart => {
                        discard.push(DiscardOp {
                            server: piece.server,
                            ssd: piece.rec.ssd,
                            range,
                        });
                    }
                    RecoveryMode::TargetRepair { failed } => {
                        // Alive servers keep their attributes; failed
                        // servers get the recorded-but-non-durable
                        // pieces replayed (idempotent).
                        if failed.contains(&piece.server) && !piece.durable {
                            replay.push(ReplayOp {
                                stream,
                                seq_start: unit.seq_start,
                                seq_end: unit.seq_end,
                                member_idx: unit.member_idx,
                                server: piece.server,
                                ssd: piece.rec.ssd,
                                range,
                            });
                        }
                    }
                }
            }
        }
        discard.sort_by_key(|d| (d.server, d.range.lba));
        discard.dedup();
        replay.sort_by_key(|r| (r.seq_start, r.member_idx, r.server, r.range.lba));
        replay.dedup();

        // 5. Per-server resume chains within the valid prefix.
        let mut resume_prev = vec![Seq::HEAD; n_servers as usize];
        for unit in units.values() {
            if unit.seq_end > valid_through {
                continue;
            }
            for piece in &unit.pieces {
                let slot = &mut resume_prev[piece.server.0 as usize];
                *slot = (*slot).max(unit.seq_end);
            }
        }

        StreamPlan {
            stream,
            resume_head: head,
            valid_through,
            discard,
            replay,
            ipu,
            resume_prev,
        }
    }

    /// Decides completeness and durability of one unit from its pieces.
    fn resolve_unit(unit: &mut Unit) {
        let split = unit.pieces.iter().any(|p| p.rec.flags.split);
        if !split {
            unit.complete = true;
            unit.durable = unit.pieces.iter().any(|p| p.durable);
            return;
        }
        // Fragments: need indices 0..=k with `last` on k; each index is
        // durable if any copy of it is durable (replays duplicate).
        let mut last_idx: Option<u8> = None;
        for p in &unit.pieces {
            if p.rec.flags.last_split {
                last_idx = Some(last_idx.map_or(p.rec.split_idx, |l: u8| l.max(p.rec.split_idx)));
            }
        }
        let Some(last) = last_idx else {
            unit.complete = false;
            unit.durable = false;
            return;
        };
        let mut all_present = true;
        let mut all_durable = true;
        for idx in 0..=last {
            let copies: Vec<&Located> = unit
                .pieces
                .iter()
                .filter(|p| p.rec.split_idx == idx)
                .collect();
            if copies.is_empty() {
                all_present = false;
                all_durable = false;
                break;
            }
            if !copies.iter().any(|c| c.durable) {
                all_durable = false;
            }
        }
        unit.complete = all_present;
        unit.durable = all_present && all_durable;
    }

    /// Looks up the plan for one stream.
    pub fn stream(&self, stream: StreamId) -> Option<&StreamPlan> {
        self.streams.iter().find(|p| p.stream == stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{OrderingAttr, SplitInfo};

    fn attr(seq: u32, member: u8, lba: u64, blocks: u32) -> OrderingAttr {
        let mut a = OrderingAttr::single(StreamId(0), Seq(seq), BlockRange::new(lba, blocks));
        a.member_idx = member;
        a
    }

    fn boundary(seq: u32, member: u8, num: u16, lba: u64, blocks: u32) -> OrderingAttr {
        let mut a = attr(seq, member, lba, blocks);
        a.boundary = true;
        a.num = num;
        a
    }

    fn rec_of(a: &OrderingAttr, persist: bool) -> PmrRecord {
        let mut a = *a;
        a.persist = persist;
        a.to_pmr_record(0)
    }

    fn scan(server: u16, plp: bool, records: Vec<PmrRecord>) -> ServerScan {
        ServerScan {
            server: ServerId(server),
            plp,
            head_seqs: vec![(StreamId(0), Seq(0))],
            records,
        }
    }

    fn initiator(scans: Vec<ServerScan>) -> RecoveryPlan {
        RecoveryPlan::compute(&RecoveryInput {
            scans,
            mode: RecoveryMode::InitiatorRestart,
        })
    }

    /// The Fig. 6 example: server 1 holds groups 1, 3, 4(non-durable),
    /// 6; server 2 holds 2_1, 2_2, 5, 7_1, 7_2(non-durable). The global
    /// list is 1 ← 2 ← 3; everything else is discarded.
    #[test]
    fn figure6_initiator_recovery() {
        let s1 = scan(
            0,
            true,
            vec![
                rec_of(&boundary(1, 0, 1, 0, 1), true),
                rec_of(&boundary(3, 0, 1, 10, 1), true),
                rec_of(&boundary(4, 0, 1, 20, 1), false),
                rec_of(&boundary(6, 0, 1, 30, 1), true),
            ],
        );
        let s2 = scan(
            1,
            true,
            vec![
                rec_of(&attr(2, 0, 40, 1), true),
                rec_of(&boundary(2, 1, 2, 41, 1), true),
                rec_of(&boundary(5, 0, 1, 50, 1), true),
                rec_of(&attr(7, 0, 60, 1), true),
                rec_of(&boundary(7, 1, 2, 61, 1), false),
            ],
        );
        let plan = initiator(vec![s1, s2]);
        let sp = plan.stream(StreamId(0)).expect("stream 0");
        assert_eq!(sp.valid_through, Seq(3));
        // W4 (server 0), W6 (server 0), W5 (server 1), W7_* (server 1)
        // are all discarded.
        let discards: Vec<(u16, u64)> = sp
            .discard
            .iter()
            .map(|d| (d.server.0, d.range.lba))
            .collect();
        assert!(discards.contains(&(0, 20)), "W4 erased");
        assert!(discards.contains(&(0, 30)), "W6 erased");
        assert!(discards.contains(&(1, 50)), "W5 erased");
        assert!(discards.contains(&(1, 60)), "W7_1 erased");
        assert!(discards.contains(&(1, 61)), "W7_2 erased");
        assert_eq!(sp.discard.len(), 5);
        // Per-server resume chains: server 0 last valid group 3,
        // server 1 last valid group 2.
        assert_eq!(sp.resume_prev, vec![Seq(3), Seq(2)]);
    }

    /// Fig. 6 as a target repair: server 0 failed. W4 is replayed there;
    /// alive server 1's attributes are kept (no discard).
    #[test]
    fn figure6_target_repair() {
        let s1 = scan(
            0,
            true,
            vec![
                rec_of(&boundary(1, 0, 1, 0, 1), true),
                rec_of(&boundary(3, 0, 1, 10, 1), true),
                rec_of(&boundary(4, 0, 1, 20, 1), false),
            ],
        );
        let s2 = scan(
            1,
            true,
            vec![
                rec_of(&attr(2, 0, 40, 1), true),
                rec_of(&boundary(2, 1, 2, 41, 1), true),
                rec_of(&boundary(5, 0, 1, 50, 1), true),
            ],
        );
        let plan = RecoveryPlan::compute(&RecoveryInput {
            scans: vec![s1, s2],
            mode: RecoveryMode::TargetRepair {
                failed: vec![ServerId(0)],
            },
        });
        let sp = plan.stream(StreamId(0)).expect("stream 0");
        assert_eq!(sp.valid_through, Seq(3));
        assert!(sp.discard.is_empty(), "repair never discards");
        assert_eq!(sp.replay.len(), 1);
        assert_eq!(sp.replay[0].seq_start, Seq(4));
        assert_eq!(sp.replay[0].server, ServerId(0));
    }

    #[test]
    fn empty_input_empty_plan() {
        let plan = initiator(vec![]);
        assert!(plan.streams.is_empty());
    }

    #[test]
    fn incomplete_group_cuts_prefix() {
        // Group 1 has 2 members but only one record survived.
        let s = scan(
            0,
            true,
            vec![
                rec_of(&boundary(1, 1, 2, 1, 1), true),
                rec_of(&boundary(2, 0, 1, 2, 1), true),
            ],
        );
        let plan = initiator(vec![s]);
        let sp = plan.stream(StreamId(0)).expect("stream 0");
        assert_eq!(
            sp.valid_through,
            Seq(0),
            "missing member invalidates group 1"
        );
        assert_eq!(sp.discard.len(), 2, "both surviving records roll back");
    }

    #[test]
    fn missing_boundary_cuts_prefix() {
        let s = scan(0, true, vec![rec_of(&attr(1, 0, 1, 1), true)]);
        let plan = initiator(vec![s]);
        let sp = plan.stream(StreamId(0)).expect("stream 0");
        assert_eq!(sp.valid_through, Seq(0));
    }

    #[test]
    fn non_plp_needs_flush_cover() {
        // On a volatile-cache drive, persist bits on data records stay 0;
        // only the flush carrier's bit flips.
        let w1 = rec_of(&boundary(1, 0, 1, 1, 1), false);
        let mut w2attr = boundary(2, 0, 1, 2, 1);
        w2attr.flush = true;
        // Case A: flush not yet completed -> nothing durable.
        let plan = initiator(vec![scan(0, false, vec![w1, rec_of(&w2attr, false)])]);
        assert_eq!(plan.stream(StreamId(0)).unwrap().valid_through, Seq(0));
        // Case B: flush completed -> everything at or below it durable.
        let w1 = rec_of(&boundary(1, 0, 1, 1, 1), false);
        let plan = initiator(vec![scan(0, false, vec![w1, rec_of(&w2attr, true)])]);
        assert_eq!(plan.stream(StreamId(0)).unwrap().valid_through, Seq(2));
    }

    #[test]
    fn flush_cover_does_not_cross_servers() {
        let w1 = rec_of(&boundary(1, 0, 1, 1, 1), false);
        let mut w2attr = boundary(2, 0, 1, 2, 1);
        w2attr.flush = true;
        // The flush completed on server 1; server 0's record remains
        // non-durable.
        let plan = initiator(vec![
            scan(0, false, vec![w1]),
            scan(1, false, vec![rec_of(&w2attr, true)]),
        ]);
        assert_eq!(plan.stream(StreamId(0)).unwrap().valid_through, Seq(0));
    }

    #[test]
    fn merged_span_is_atomic() {
        // A merged record covering groups 1-3.
        let mut m = OrderingAttr::single(StreamId(0), Seq(1), BlockRange::new(0, 6));
        m.seq_end = Seq(3);
        m.boundary = true;
        m.num = 3;
        // Durable: all three groups valid at once.
        let plan = initiator(vec![scan(0, true, vec![rec_of(&m, true)])]);
        assert_eq!(plan.stream(StreamId(0)).unwrap().valid_through, Seq(3));
        // Non-durable: none valid (the "nothing" of all-or-nothing).
        let plan = initiator(vec![scan(0, true, vec![rec_of(&m, false)])]);
        let sp = plan.stream(StreamId(0)).unwrap();
        assert_eq!(sp.valid_through, Seq(0));
        assert_eq!(sp.discard.len(), 1);
        assert_eq!(sp.discard[0].range, BlockRange::new(0, 6));
    }

    #[test]
    fn split_unit_rejoins_across_servers() {
        // One member of group 1 split across two servers (Fig. 8b).
        let mut f0 = boundary(1, 0, 1, 100, 2);
        f0.split = Some(SplitInfo {
            idx: 0,
            last: false,
        });
        let mut f1 = boundary(1, 0, 1, 200, 2);
        f1.split = Some(SplitInfo { idx: 1, last: true });
        // Both durable: group valid.
        let plan = initiator(vec![
            scan(0, true, vec![rec_of(&f0, true)]),
            scan(1, true, vec![rec_of(&f1, true)]),
        ]);
        assert_eq!(plan.stream(StreamId(0)).unwrap().valid_through, Seq(1));
        // One fragment non-durable: whole unit invalid, both discarded.
        let plan = initiator(vec![
            scan(0, true, vec![rec_of(&f0, true)]),
            scan(1, true, vec![rec_of(&f1, false)]),
        ]);
        let sp = plan.stream(StreamId(0)).unwrap();
        assert_eq!(sp.valid_through, Seq(0));
        assert_eq!(sp.discard.len(), 2, "all fragments roll back together");
    }

    #[test]
    fn missing_fragment_invalidates_unit() {
        let mut f0 = boundary(1, 0, 1, 100, 2);
        f0.split = Some(SplitInfo {
            idx: 0,
            last: false,
        });
        // The last fragment never arrived: no `last` marker at all.
        let plan = initiator(vec![scan(0, true, vec![rec_of(&f0, true)])]);
        assert_eq!(plan.stream(StreamId(0)).unwrap().valid_through, Seq(0));
    }

    #[test]
    fn ipu_reported_not_discarded() {
        let mut a = boundary(1, 0, 1, 5, 1);
        a.ipu = true;
        let plan = initiator(vec![scan(0, true, vec![rec_of(&a, false)])]);
        let sp = plan.stream(StreamId(0)).unwrap();
        assert_eq!(
            sp.valid_through,
            Seq(0),
            "non-durable IPU still cuts the prefix"
        );
        assert!(sp.discard.is_empty(), "IPU data is never erased");
        assert_eq!(sp.ipu.len(), 1);
        assert!(!sp.ipu[0].durable);
        assert_eq!(sp.ipu[0].range, BlockRange::new(5, 1));
    }

    #[test]
    fn head_seq_filters_stale_records() {
        // Records for groups 1-2 are stale (delivered, head=2); group 3
        // onward is live.
        let mut s = scan(
            0,
            true,
            vec![
                rec_of(&boundary(1, 0, 1, 1, 1), true),
                rec_of(&boundary(2, 0, 1, 2, 1), true),
                rec_of(&boundary(4, 0, 1, 4, 1), true),
            ],
        );
        s.head_seqs = vec![(StreamId(0), Seq(2))];
        let plan = initiator(vec![s]);
        let sp = plan.stream(StreamId(0)).unwrap();
        assert_eq!(sp.resume_head, Seq(2));
        // Group 3 has no record at all -> prefix stops at the head.
        assert_eq!(sp.valid_through, Seq(2));
        // Group 4's blocks roll back.
        assert_eq!(sp.discard.len(), 1);
        assert_eq!(sp.discard[0].range.lba, 4);
    }

    #[test]
    fn duplicate_records_from_replay_are_tolerated() {
        // A replayed request appended two records; one is durable.
        let a = boundary(1, 0, 1, 9, 1);
        let plan = initiator(vec![scan(
            0,
            true,
            vec![rec_of(&a, false), rec_of(&a, true)],
        )]);
        assert_eq!(plan.stream(StreamId(0)).unwrap().valid_through, Seq(1));
    }

    #[test]
    fn multiple_streams_planned_independently() {
        let mut a1 = boundary(1, 0, 1, 0, 1);
        a1.stream = StreamId(0);
        let mut b1 = boundary(1, 0, 1, 10, 1);
        b1.stream = StreamId(1);
        let mut s = scan(0, true, vec![rec_of(&a1, true), rec_of(&b1, false)]);
        s.head_seqs = vec![(StreamId(0), Seq(0)), (StreamId(1), Seq(0))];
        let plan = initiator(vec![s]);
        assert_eq!(plan.stream(StreamId(0)).unwrap().valid_through, Seq(1));
        assert_eq!(plan.stream(StreamId(1)).unwrap().valid_through, Seq(0));
    }
}
