//! The Rio I/O scheduler's ORDER queue: merging and splitting (§4.5).
//!
//! Principle 1: ordered requests get a dedicated software queue per
//! stream. Principle 2 (stream → one NIC send queue) is enforced by the
//! driver layer. Principle 3: merging/splitting may *enhance* but never
//! weaken ordering guarantees — a merged request becomes atomic.
//!
//! Merging requirements (Fig. 8a):
//! 1. performed within a sole stream (each queue belongs to one stream);
//! 2. sequence numbers must be continuous — this implementation merges
//!    *whole groups only* (runs that start at a group's first member and
//!    end at a boundary), which keeps crash recovery unambiguous;
//! 3. LBAs must be non-overlapping and consecutive.
//!
//! Splitting (Fig. 8b) tags fragments with `split_idx`/`last` so that
//! recovery can rejoin them before validating the global order. A merged
//! request may subsequently be split by volume striping; a fragment is
//! never re-merged.

use std::collections::VecDeque;

use crate::attr::{BlockRange, OrderingAttr, SplitInfo, StreamId};

/// Why two adjacent queued requests did not merge (diagnostics and
/// tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeDecision {
    /// Merged successfully.
    Merged,
    /// LBAs are not consecutive.
    NonAdjacentLba,
    /// Sequence numbers are not continuous whole groups.
    SeqGap,
    /// The combined request would exceed the size cap.
    TooLarge,
    /// IPU and non-IPU requests never merge (different recovery).
    IpuMismatch,
    /// A FLUSH in the middle of a run would lose its barrier point.
    InteriorFlush,
    /// Fragments of split requests are not re-merged.
    SplitFragment,
}

/// One queued ordered request: the logical attribute plus an opaque
/// caller token (e.g. the block-layer request id).
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// Logical ordering attribute from the sequencer.
    pub attr: OrderingAttr,
    /// Caller handle, returned in [`DispatchUnit::parts`].
    pub token: u64,
}

/// A dispatchable unit: either a single request or a whole-group merge.
#[derive(Debug, Clone)]
pub struct DispatchUnit {
    /// The (possibly merged) attribute to dispatch.
    pub attr: OrderingAttr,
    /// The constituent requests, in submission order.
    pub parts: Vec<QueuedRequest>,
}

impl DispatchUnit {
    /// Whether this unit is a merge of several requests.
    pub fn is_merged(&self) -> bool {
        self.parts.len() > 1
    }
}

/// Configuration for one ORDER queue.
#[derive(Debug, Clone, Copy)]
pub struct OrderQueueConfig {
    /// Whether merging is enabled (Fig. 12 evaluates Rio w/o merge).
    pub merge: bool,
    /// Upper bound on a merged request's size in blocks.
    pub max_merge_blocks: u32,
}

impl Default for OrderQueueConfig {
    fn default() -> Self {
        OrderQueueConfig {
            merge: true,
            // 128 KB of 4 KB blocks — the Intel 905P single-request
            // transfer limit the paper cites (§4.5).
            max_merge_blocks: 32,
        }
    }
}

/// The dedicated software queue for one stream's ordered requests.
#[derive(Debug, Clone)]
pub struct OrderQueue {
    stream: StreamId,
    queue: VecDeque<QueuedRequest>,
    config: OrderQueueConfig,
}

impl OrderQueue {
    /// Creates an empty queue for `stream`.
    pub fn new(stream: StreamId, config: OrderQueueConfig) -> Self {
        OrderQueue {
            stream,
            queue: VecDeque::new(),
            config,
        }
    }

    /// The stream this queue schedules.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a request in submission order.
    ///
    /// # Panics
    ///
    /// Panics if the attribute belongs to another stream.
    pub fn push(&mut self, attr: OrderingAttr, token: u64) {
        assert_eq!(attr.stream, self.stream, "request on wrong ORDER queue");
        self.queue.push_back(QueuedRequest { attr, token });
    }

    /// Checks whether `next` may extend a run currently ending in `last`
    /// with `run_blocks` blocks accumulated.
    fn may_extend(
        &self,
        last: &OrderingAttr,
        next: &OrderingAttr,
        run_blocks: u32,
    ) -> MergeDecision {
        if last.split.is_some() || next.split.is_some() {
            return MergeDecision::SplitFragment;
        }
        if !last.range.abuts(&next.range) {
            return MergeDecision::NonAdjacentLba;
        }
        if run_blocks + next.range.blocks > self.config.max_merge_blocks {
            return MergeDecision::TooLarge;
        }
        if last.ipu != next.ipu {
            return MergeDecision::IpuMismatch;
        }
        // A FLUSH barrier is only preserved if it ends the merged unit.
        if last.flush {
            return MergeDecision::InteriorFlush;
        }
        // Whole-group continuity.
        let same_group = next.seq_start == last.seq_end && !last.boundary;
        let next_group = last.boundary && next.seq_start.0 == last.seq_end.0 + 1;
        if same_group {
            if next.member_idx != last.member_idx + 1 {
                return MergeDecision::SeqGap;
            }
        } else if next_group {
            if next.member_idx != 0 {
                return MergeDecision::SeqGap;
            }
        } else {
            return MergeDecision::SeqGap;
        }
        MergeDecision::Merged
    }

    /// Drains the queue into dispatch units, merging whole-group runs
    /// when enabled (the plug-flush point of the block layer).
    pub fn flush(&mut self) -> Vec<DispatchUnit> {
        let mut units = Vec::new();
        while let Some(first) = self.queue.pop_front() {
            if !self.config.merge {
                units.push(DispatchUnit {
                    attr: first.attr,
                    parts: vec![first],
                });
                continue;
            }
            // Candidate runs start only at a group's first member.
            let mut parts = vec![first];
            if first.attr.member_idx == 0 && first.attr.split.is_none() {
                let mut run_blocks = first.attr.range.blocks;
                while let Some(next) = self.queue.front() {
                    let last = &parts.last().expect("non-empty run").attr;
                    if self.may_extend(last, &next.attr, run_blocks) != MergeDecision::Merged {
                        break;
                    }
                    run_blocks += next.attr.range.blocks;
                    parts.push(self.queue.pop_front().expect("front exists"));
                }
                // A merged unit must end at a boundary (whole groups);
                // otherwise fall back to dispatching the head unmerged.
                while parts.len() > 1 && !parts.last().expect("non-empty").attr.boundary {
                    let tail = parts.pop().expect("non-empty");
                    self.queue.push_front(tail);
                }
            }
            if parts.len() == 1 {
                let only = parts[0];
                units.push(DispatchUnit {
                    attr: only.attr,
                    parts,
                });
                continue;
            }
            let first_attr = parts[0].attr;
            let last_attr = parts.last().expect("non-empty").attr;
            let mut range = first_attr.range;
            let mut num_total: u16 = 0;
            for p in &parts[1..] {
                range = range.join(&p.attr.range);
            }
            for p in &parts {
                if p.attr.boundary {
                    num_total += p.attr.num;
                }
            }
            let mut merged = first_attr;
            merged.seq_end = last_attr.seq_end;
            merged.num = num_total;
            merged.member_idx = 0;
            merged.boundary = true;
            merged.flush = last_attr.flush;
            merged.range = range;
            units.push(DispatchUnit {
                attr: merged,
                parts,
            });
        }
        units
    }
}

/// Splits an attribute into fragments tiling `extents` (volume striping
/// or transfer-size limits, Fig. 8b).
///
/// Each fragment inherits the ordering identity and gains
/// `SplitInfo { idx, last }` so recovery can rejoin them.
///
/// # Panics
///
/// Panics if `extents` do not exactly tile the attribute's range, if the
/// attribute is already a fragment, or if there are more than 256
/// fragments.
pub fn split_attr(attr: &OrderingAttr, extents: &[BlockRange]) -> Vec<OrderingAttr> {
    let mut frags = Vec::with_capacity(extents.len());
    split_attr_into(attr, extents, &mut frags);
    frags
}

/// Allocation-free form of [`split_attr`]: appends the fragments to
/// `frags` (which is *not* cleared), letting hot callers reuse one
/// buffer across dispatches.
///
/// # Panics
///
/// As [`split_attr`].
pub fn split_attr_into(attr: &OrderingAttr, extents: &[BlockRange], frags: &mut Vec<OrderingAttr>) {
    assert!(attr.split.is_none(), "re-splitting a fragment");
    assert!(!extents.is_empty(), "no extents");
    assert!(extents.len() <= 256, "too many fragments");
    let total: u64 = extents.iter().map(|e| e.blocks as u64).sum();
    assert_eq!(
        total, attr.range.blocks as u64,
        "extents do not tile the request"
    );
    if extents.len() == 1 {
        let mut only = *attr;
        only.range = extents[0];
        frags.push(only);
        return;
    }
    frags.extend(extents.iter().enumerate().map(|(i, e)| {
        let mut frag = *attr;
        frag.range = *e;
        frag.split = Some(SplitInfo {
            idx: i as u8,
            last: i == extents.len() - 1,
        });
        frag
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Seq;
    use crate::sequencer::{Sequencer, SubmitOpts};

    fn queue() -> OrderQueue {
        OrderQueue::new(StreamId(0), OrderQueueConfig::default())
    }

    fn end() -> SubmitOpts {
        SubmitOpts {
            end_group: true,
            ..Default::default()
        }
    }

    /// Fig. 8(a): W1_1 (lba 1), W1_2 (lba 2-5), W2 (lba 6) merge into
    /// W1-2 covering lba 1-6 with seq range 1-2 and num 3.
    #[test]
    fn figure8a_whole_group_merge() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        let w1_1 = s.submit(StreamId(0), BlockRange::new(1, 1), SubmitOpts::default());
        let w1_2 = s.submit(StreamId(0), BlockRange::new(2, 4), end());
        let w2 = s.submit(StreamId(0), BlockRange::new(6, 1), end());
        q.push(w1_1, 10);
        q.push(w1_2, 11);
        q.push(w2, 12);
        let units = q.flush();
        assert_eq!(units.len(), 1);
        let u = &units[0];
        assert!(u.is_merged());
        assert_eq!(u.attr.seq_start, Seq(1));
        assert_eq!(u.attr.seq_end, Seq(2));
        assert_eq!(u.attr.num, 3);
        assert_eq!(u.attr.range, BlockRange::new(1, 6));
        assert!(u.attr.boundary);
        assert_eq!(u.parts.len(), 3);
        assert_eq!(
            u.parts.iter().map(|p| p.token).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
    }

    #[test]
    fn non_adjacent_lbas_do_not_merge() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        let a = s.submit(StreamId(0), BlockRange::new(0, 1), end());
        let b = s.submit(StreamId(0), BlockRange::new(100, 1), end());
        q.push(a, 0);
        q.push(b, 1);
        let units = q.flush();
        assert_eq!(units.len(), 2);
        assert!(!units[0].is_merged());
        assert!(!units[1].is_merged());
    }

    #[test]
    fn merge_disabled_passthrough() {
        let mut s = Sequencer::new(1, 1);
        let mut q = OrderQueue::new(
            StreamId(0),
            OrderQueueConfig {
                merge: false,
                ..Default::default()
            },
        );
        let a = s.submit(StreamId(0), BlockRange::new(0, 1), end());
        let b = s.submit(StreamId(0), BlockRange::new(1, 1), end());
        q.push(a, 0);
        q.push(b, 1);
        assert_eq!(q.flush().len(), 2);
    }

    #[test]
    fn size_cap_respected() {
        let mut s = Sequencer::new(1, 1);
        let mut q = OrderQueue::new(
            StreamId(0),
            OrderQueueConfig {
                merge: true,
                max_merge_blocks: 4,
            },
        );
        for i in 0..4 {
            let a = s.submit(StreamId(0), BlockRange::new(i * 2, 2), end());
            q.push(a, i);
        }
        let units = q.flush();
        // 2+2 fits under the 4-block cap; two merged pairs result.
        assert_eq!(units.len(), 2);
        assert!(units.iter().all(|u| u.is_merged()));
        assert!(units.iter().all(|u| u.attr.range.blocks == 4));
    }

    #[test]
    fn interior_flush_blocks_merge() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        let a = s.submit(
            StreamId(0),
            BlockRange::new(0, 1),
            SubmitOpts {
                end_group: true,
                flush: true,
                ..Default::default()
            },
        );
        let b = s.submit(StreamId(0), BlockRange::new(1, 1), end());
        q.push(a, 0);
        q.push(b, 1);
        let units = q.flush();
        assert_eq!(units.len(), 2, "a FLUSH may only end a merged unit");
    }

    #[test]
    fn trailing_flush_merges_and_carries() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        let a = s.submit(StreamId(0), BlockRange::new(0, 1), end());
        let b = s.submit(
            StreamId(0),
            BlockRange::new(1, 1),
            SubmitOpts {
                end_group: true,
                flush: true,
                ..Default::default()
            },
        );
        q.push(a, 0);
        q.push(b, 1);
        let units = q.flush();
        assert_eq!(units.len(), 1);
        assert!(units[0].attr.flush, "merged unit carries the final FLUSH");
    }

    #[test]
    fn ipu_never_merges_with_normal() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        let a = s.submit(StreamId(0), BlockRange::new(0, 1), end());
        let b = s.submit(
            StreamId(0),
            BlockRange::new(1, 1),
            SubmitOpts {
                end_group: true,
                ipu: true,
                ..Default::default()
            },
        );
        q.push(a, 0);
        q.push(b, 1);
        assert_eq!(q.flush().len(), 2);
    }

    #[test]
    fn partial_group_tail_is_not_merged() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        // Group 1 complete; group 2 has a member but no boundary yet.
        let a = s.submit(StreamId(0), BlockRange::new(0, 1), end());
        let b = s.submit(StreamId(0), BlockRange::new(1, 1), SubmitOpts::default());
        q.push(a, 0);
        q.push(b, 1);
        let units = q.flush();
        assert_eq!(units.len(), 2, "open group cannot join a merge");
        assert!(!units[0].is_merged());
    }

    #[test]
    fn mid_group_start_is_not_merged() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        // Member 0 of group 1 dispatched earlier; members 1..2 plus the
        // next group are in the queue — the run cannot start mid-group.
        let _a = s.submit(StreamId(0), BlockRange::new(0, 1), SubmitOpts::default());
        let b = s.submit(StreamId(0), BlockRange::new(1, 1), end());
        let c = s.submit(StreamId(0), BlockRange::new(2, 1), end());
        q.push(b, 1);
        q.push(c, 2);
        let units = q.flush();
        assert_eq!(units.len(), 2);
        assert!(!units[0].is_merged());
    }

    #[test]
    fn fragments_never_remerge() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        let a = s.submit(StreamId(0), BlockRange::new(0, 2), end());
        let frags = split_attr(&a, &[BlockRange::new(0, 1), BlockRange::new(1, 1)]);
        q.push(frags[0], 0);
        q.push(frags[1], 1);
        assert_eq!(q.flush().len(), 2);
    }

    #[test]
    #[should_panic(expected = "wrong ORDER queue")]
    fn wrong_stream_rejected() {
        let mut s = Sequencer::new(2, 1);
        let mut q = queue();
        let a = s.submit(StreamId(1), BlockRange::new(0, 1), end());
        q.push(a, 0);
    }

    #[test]
    fn split_attr_tiles_range() {
        let mut s = Sequencer::new(1, 1);
        let a = s.submit(StreamId(0), BlockRange::new(10, 6), end());
        let frags = split_attr(
            &a,
            &[
                BlockRange::new(10, 2),
                BlockRange::new(12, 2),
                BlockRange::new(14, 2),
            ],
        );
        assert_eq!(frags.len(), 3);
        assert_eq!(
            frags[0].split,
            Some(SplitInfo {
                idx: 0,
                last: false
            })
        );
        assert_eq!(frags[2].split, Some(SplitInfo { idx: 2, last: true }));
        assert!(frags.iter().all(|f| f.seq_start == a.seq_start));
        assert!(frags.iter().all(|f| f.member_idx == a.member_idx));
    }

    #[test]
    fn split_single_extent_is_identity() {
        let mut s = Sequencer::new(1, 1);
        let a = s.submit(StreamId(0), BlockRange::new(10, 6), end());
        let frags = split_attr(&a, &[BlockRange::new(10, 6)]);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].split, None, "a single extent is not a split");
    }

    #[test]
    #[should_panic(expected = "do not tile")]
    fn split_attr_rejects_mismatched_extents() {
        let mut s = Sequencer::new(1, 1);
        let a = s.submit(StreamId(0), BlockRange::new(10, 6), end());
        let _ = split_attr(&a, &[BlockRange::new(10, 2)]);
    }

    #[test]
    #[should_panic(expected = "re-splitting")]
    fn split_attr_rejects_fragment() {
        let mut s = Sequencer::new(1, 1);
        let a = s.submit(StreamId(0), BlockRange::new(10, 4), end());
        let frags = split_attr(&a, &[BlockRange::new(10, 2), BlockRange::new(12, 2)]);
        let _ = split_attr(&frags[0], &[BlockRange::new(10, 2)]);
    }

    /// The journal-triplet workload of the motivation experiments: an
    /// 8 KB body group followed by a 4 KB commit group halves into one
    /// NVMe-oF command (§4.1: "the number of NVMe-oF commands and
    /// associated operations is halved").
    #[test]
    fn journal_triplet_merges_into_one_command() {
        let mut s = Sequencer::new(1, 1);
        let mut q = queue();
        let jm = s.submit(StreamId(0), BlockRange::new(0, 2), end());
        let jc = s.submit(
            StreamId(0),
            BlockRange::new(2, 1),
            SubmitOpts {
                end_group: true,
                flush: true,
                ..Default::default()
            },
        );
        q.push(jm, 0);
        q.push(jc, 1);
        let units = q.flush();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].attr.range, BlockRange::new(0, 3));
        assert!(units[0].attr.flush);
        assert_eq!(units[0].attr.num, 2);
    }
}
