//! The Rio sequencer: assigns ordering attributes at submission time.
//!
//! The sequencer treats the submission order from the file system (or
//! application) as the storage order (§4.2 "Creation"). Stamping happens
//! in two phases, mirroring where the information exists in the stack:
//!
//! 1. [`Sequencer::submit`] — at `rio_submit` time, the *logical* part:
//!    every request joins the currently open group and receives the
//!    group sequence number and its member ordinal; a request flagged as
//!    the end of its group becomes the `boundary` request, carries `num`
//!    (the member count) and closes the group.
//! 2. [`Sequencer::stamp_dispatch`] — at initiator-driver dispatch time,
//!    after merging/splitting/striping decided *where* each physical
//!    request goes: the per-server part. `prev` is the most recent group
//!    that dispatched anything to the same target server (the per-server
//!    order list of Fig. 5) and `dispatch_idx` is the per-(stream,
//!    server) ordinal the target's in-order submission gate uses.

use crate::attr::{BlockRange, OrderingAttr, Seq, ServerId, StreamId};

/// Options for one submission.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOpts {
    /// This request ends its ordered group (the paper's final request;
    /// `rio_submit`'s boundary flag).
    pub end_group: bool,
    /// In-place update label (§4.4.2).
    pub ipu: bool,
    /// Embed a FLUSH for durability (§4.6: the final request of an
    /// fsync-style group carries the FLUSH).
    pub flush: bool,
}

/// Per-server bookkeeping inside one stream.
#[derive(Debug, Clone, Copy, Default)]
struct ServerCursor {
    /// Most recent group (span end) with presence on this server.
    newest_group: Seq,
    /// The group before `newest_group` on this server.
    prev_of_newest: Seq,
    /// Physical requests dispatched to this server so far (gate ordinal).
    dispatched: u64,
}

/// Per-stream sequencing state.
#[derive(Debug, Clone)]
struct StreamState {
    /// Sequence number of the open group.
    open_seq: Seq,
    /// Members submitted to the open group so far.
    open_members: u16,
    /// Per-server cursors.
    servers: Vec<ServerCursor>,
}

impl StreamState {
    fn new(n_servers: usize) -> Self {
        StreamState {
            open_seq: Seq(1),
            open_members: 0,
            servers: vec![ServerCursor::default(); n_servers],
        }
    }
}

/// The Rio sequencer (Fig. 4 steps ① and ②).
///
/// # Examples
///
/// ```
/// use rio_order::attr::{BlockRange, Seq, ServerId, StreamId};
/// use rio_order::sequencer::{Sequencer, SubmitOpts};
///
/// let mut seq = Sequencer::new(1, 2);
/// // Journal body: two members of group 1.
/// let mut w1_1 = seq.submit(StreamId(0), BlockRange::new(1, 1), SubmitOpts::default());
/// let mut w1_2 = seq.submit(
///     StreamId(0),
///     BlockRange::new(2, 4),
///     SubmitOpts { end_group: true, ..Default::default() },
/// );
/// assert_eq!(w1_1.seq_start, Seq(1));
/// assert!(w1_2.boundary);
/// assert_eq!(w1_2.num, 2);
/// // Both dispatch to server 0; the commit record of group 2 chains
/// // prev = 1 on that server.
/// seq.stamp_dispatch(&mut w1_1, ServerId(0));
/// seq.stamp_dispatch(&mut w1_2, ServerId(0));
/// let mut w2 = seq.submit(
///     StreamId(0),
///     BlockRange::new(6, 1),
///     SubmitOpts { end_group: true, flush: true, ..Default::default() },
/// );
/// seq.stamp_dispatch(&mut w2, ServerId(0));
/// assert_eq!(w2.seq_start, Seq(2));
/// assert_eq!(w2.prev, Seq(1));
/// ```
#[derive(Debug, Clone)]
pub struct Sequencer {
    streams: Vec<StreamState>,
    n_servers: usize,
}

impl Sequencer {
    /// Maximum members per group (the member ordinal is a byte in the
    /// PMR record).
    pub const MAX_GROUP_MEMBERS: u16 = 256;

    /// Creates a sequencer for `n_streams` independent streams over
    /// `n_servers` target servers (`rio_setup`, §4.6).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_streams: usize, n_servers: usize) -> Self {
        assert!(n_streams > 0, "need at least one stream");
        assert!(n_servers > 0, "need at least one server");
        Sequencer {
            streams: (0..n_streams)
                .map(|_| StreamState::new(n_servers))
                .collect(),
            n_servers,
        }
    }

    /// Number of configured streams.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of configured target servers.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Sequence number of the group currently open on `stream`.
    pub fn open_seq(&self, stream: StreamId) -> Seq {
        self.streams[stream.0 as usize].open_seq
    }

    /// Members already submitted to the open group.
    pub fn open_members(&self, stream: StreamId) -> u16 {
        self.streams[stream.0 as usize].open_members
    }

    /// Stamps the logical ordering attribute for a request of `range`
    /// (the core of `rio_submit`, phase 1).
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, a group larger than
    /// [`Self::MAX_GROUP_MEMBERS`], or sequence-space exhaustion.
    pub fn submit(
        &mut self,
        stream: StreamId,
        range: BlockRange,
        opts: SubmitOpts,
    ) -> OrderingAttr {
        let st = self
            .streams
            .get_mut(stream.0 as usize)
            .expect("unknown stream");
        assert!(
            st.open_members < Self::MAX_GROUP_MEMBERS,
            "group exceeds {} members",
            Self::MAX_GROUP_MEMBERS
        );

        let seq = st.open_seq;
        let member_idx = st.open_members as u8;
        st.open_members += 1;

        let mut attr = OrderingAttr::single(stream, seq, range);
        attr.member_idx = member_idx;
        attr.ipu = opts.ipu;
        attr.flush = opts.flush;
        if opts.end_group {
            attr.boundary = true;
            attr.num = st.open_members;
            st.open_seq = seq.next();
            st.open_members = 0;
        }
        attr
    }

    /// Stamps the per-server part of an attribute at dispatch time
    /// (phase 2): `server`, `prev` and `dispatch_idx`.
    ///
    /// Must be called once per *physical* request (after any merging and
    /// splitting), in dispatch order — the order defines the per-server
    /// order list the target gate and crash recovery rebuild.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream or server.
    pub fn stamp_dispatch(&mut self, attr: &mut OrderingAttr, server: ServerId) {
        let st = self
            .streams
            .get_mut(attr.stream.0 as usize)
            .expect("unknown stream");
        let cursor = st
            .servers
            .get_mut(server.0 as usize)
            .expect("unknown server");

        // Requests of the same group (or merged span) share the
        // predecessor; a new group pushes the chain forward.
        if cursor.newest_group != attr.seq_end {
            cursor.prev_of_newest = cursor.newest_group;
            cursor.newest_group = attr.seq_end;
        }
        attr.prev = cursor.prev_of_newest;
        attr.server = server;
        attr.dispatch_idx = cursor.dispatched;
        cursor.dispatched += 1;
    }

    /// Resets a stream (used after crash recovery re-initialisation):
    /// the next group opens at `resume_at` and per-server chains restart
    /// from `resume_prev` per server.
    pub fn reset_stream(&mut self, stream: StreamId, resume_at: Seq, resume_prev: &[Seq]) {
        let st = self
            .streams
            .get_mut(stream.0 as usize)
            .expect("unknown stream");
        assert!(!resume_at.is_head(), "cannot resume at the reserved head");
        st.open_seq = resume_at;
        st.open_members = 0;
        for (i, cursor) in st.servers.iter_mut().enumerate() {
            let prev = resume_prev.get(i).copied().unwrap_or(Seq::HEAD);
            cursor.newest_group = prev;
            cursor.prev_of_newest = prev;
            // Dispatch ordinals restart: the gate state is rebuilt on
            // reconnect, so both sides agree on a fresh epoch.
            cursor.dispatched = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lba: u64, blocks: u32) -> BlockRange {
        BlockRange::new(lba, blocks)
    }

    fn end() -> SubmitOpts {
        SubmitOpts {
            end_group: true,
            ..Default::default()
        }
    }

    /// Reproduces Fig. 5 exactly: W1_1, W1_2 (group 1, num=2), W2
    /// (group 2 on another server), W3 (group 3, back on server 0,
    /// prev=1).
    #[test]
    fn figure5_attributes() {
        let mut s = Sequencer::new(1, 2);
        let st = StreamId(0);

        let mut w1_1 = s.submit(st, r(1, 1), SubmitOpts::default());
        let mut w1_2 = s.submit(st, r(2, 4), end());
        let mut w2 = s.submit(st, r(6, 1), end());
        let mut w3 = s.submit(st, r(12, 1), end());

        s.stamp_dispatch(&mut w1_1, ServerId(0));
        s.stamp_dispatch(&mut w1_2, ServerId(0));
        s.stamp_dispatch(&mut w2, ServerId(1));
        s.stamp_dispatch(&mut w3, ServerId(0));

        assert_eq!(
            (w1_1.seq_start, w1_1.num, w1_1.prev),
            (Seq(1), 0, Seq::HEAD)
        );
        assert!(!w1_1.boundary);
        assert_eq!(w1_1.member_idx, 0);
        assert_eq!(
            (w1_2.seq_start, w1_2.num, w1_2.prev),
            (Seq(1), 2, Seq::HEAD)
        );
        assert!(w1_2.boundary);
        assert_eq!(w1_2.member_idx, 1);
        assert_eq!((w2.seq_start, w2.num, w2.prev), (Seq(2), 1, Seq::HEAD));
        assert_eq!((w3.seq_start, w3.num, w3.prev), (Seq(3), 1, Seq(1)));
    }

    #[test]
    fn same_group_members_share_prev() {
        let mut s = Sequencer::new(1, 1);
        let st = StreamId(0);
        let mut w = s.submit(st, r(0, 1), end());
        s.stamp_dispatch(&mut w, ServerId(0));
        let mut a = s.submit(st, r(10, 1), SubmitOpts::default());
        let mut b = s.submit(st, r(11, 1), SubmitOpts::default());
        let mut c = s.submit(st, r(12, 1), end());
        s.stamp_dispatch(&mut a, ServerId(0));
        s.stamp_dispatch(&mut b, ServerId(0));
        s.stamp_dispatch(&mut c, ServerId(0));
        assert_eq!(a.prev, Seq(1));
        assert_eq!(b.prev, Seq(1), "same-group members share the predecessor");
        assert_eq!(c.prev, Seq(1));
        assert_eq!(c.num, 3);
        assert_eq!((a.member_idx, b.member_idx, c.member_idx), (0, 1, 2));
    }

    #[test]
    fn dispatch_idx_is_per_server_ordinal() {
        let mut s = Sequencer::new(1, 2);
        let st = StreamId(0);
        let mut a = s.submit(st, r(0, 1), end());
        let mut b = s.submit(st, r(1, 1), end());
        let mut c = s.submit(st, r(2, 1), end());
        s.stamp_dispatch(&mut a, ServerId(0));
        s.stamp_dispatch(&mut b, ServerId(1));
        s.stamp_dispatch(&mut c, ServerId(0));
        assert_eq!(a.dispatch_idx, 0);
        assert_eq!(b.dispatch_idx, 0, "independent per-server counters");
        assert_eq!(c.dispatch_idx, 1);
    }

    #[test]
    fn merged_span_chains_by_span_end() {
        let mut s = Sequencer::new(1, 1);
        let st = StreamId(0);
        // Build groups 1..=3, then pretend the scheduler merged them.
        for _ in 0..3 {
            s.submit(st, r(0, 1), end());
        }
        let mut merged = OrderingAttr::single(st, Seq(1), r(0, 3));
        merged.seq_end = Seq(3);
        merged.boundary = true;
        merged.num = 3;
        s.stamp_dispatch(&mut merged, ServerId(0));
        assert_eq!(merged.prev, Seq::HEAD);
        // Group 4 chains to the span end.
        let mut w4 = s.submit(st, r(10, 1), end());
        s.stamp_dispatch(&mut w4, ServerId(0));
        assert_eq!(w4.prev, Seq(3));
    }

    #[test]
    fn split_fragments_share_prev() {
        let mut s = Sequencer::new(1, 2);
        let st = StreamId(0);
        let mut w = s.submit(st, r(0, 1), end());
        s.stamp_dispatch(&mut w, ServerId(0));
        // A member of group 2 split into two fragments on server 0.
        let big = s.submit(st, r(10, 8), end());
        let mut f0 = big;
        f0.range = r(10, 4);
        let mut f1 = big;
        f1.range = r(14, 4);
        s.stamp_dispatch(&mut f0, ServerId(0));
        s.stamp_dispatch(&mut f1, ServerId(0));
        assert_eq!(f0.prev, Seq(1));
        assert_eq!(f1.prev, Seq(1), "fragments share the group predecessor");
        assert_eq!(f0.dispatch_idx, 1);
        assert_eq!(f1.dispatch_idx, 2);
    }

    #[test]
    fn streams_are_independent() {
        let mut s = Sequencer::new(2, 1);
        let a = s.submit(StreamId(0), r(0, 1), end());
        let b = s.submit(StreamId(1), r(1, 1), end());
        assert_eq!(a.seq_start, Seq(1));
        assert_eq!(b.seq_start, Seq(1), "each stream numbers from 1");
    }

    #[test]
    fn flags_propagate() {
        let mut s = Sequencer::new(1, 1);
        let a = s.submit(
            StreamId(0),
            r(0, 1),
            SubmitOpts {
                end_group: true,
                ipu: true,
                flush: true,
            },
        );
        assert!(a.ipu);
        assert!(a.flush);
        assert!(a.boundary);
    }

    #[test]
    fn reset_stream_resumes_numbering() {
        let mut s = Sequencer::new(1, 2);
        let st = StreamId(0);
        for _ in 0..5 {
            let mut w = s.submit(st, r(0, 1), end());
            s.stamp_dispatch(&mut w, ServerId(0));
        }
        s.reset_stream(st, Seq(4), &[Seq(3), Seq::HEAD]);
        let mut a = s.submit(st, r(0, 1), end());
        s.stamp_dispatch(&mut a, ServerId(0));
        assert_eq!(a.seq_start, Seq(4));
        assert_eq!(a.prev, Seq(3));
        assert_eq!(a.dispatch_idx, 0, "gate epoch restarts after recovery");
        let mut b = s.submit(st, r(0, 1), end());
        s.stamp_dispatch(&mut b, ServerId(1));
        assert_eq!(b.prev, Seq::HEAD);
    }

    #[test]
    #[should_panic(expected = "unknown stream")]
    fn unknown_stream_panics() {
        let mut s = Sequencer::new(1, 1);
        s.submit(StreamId(9), r(0, 1), SubmitOpts::default());
    }

    #[test]
    #[should_panic(expected = "need at least one stream")]
    fn zero_streams_rejected() {
        let _ = Sequencer::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "group exceeds")]
    fn oversized_group_rejected() {
        let mut s = Sequencer::new(1, 1);
        for _ in 0..=Sequencer::MAX_GROUP_MEMBERS {
            s.submit(StreamId(0), r(0, 1), SubmitOpts::default());
        }
    }

    #[test]
    fn open_group_observers() {
        let mut s = Sequencer::new(1, 1);
        let st = StreamId(0);
        assert_eq!(s.open_seq(st), Seq(1));
        assert_eq!(s.open_members(st), 0);
        s.submit(st, r(0, 1), SubmitOpts::default());
        assert_eq!(s.open_members(st), 1);
        s.submit(st, r(1, 1), end());
        assert_eq!(s.open_seq(st), Seq(2));
        assert_eq!(s.open_members(st), 0);
    }

    /// Long alternating workload: per-server prev always points to the
    /// last group with presence on that server.
    #[test]
    fn prev_chain_matches_reference_model() {
        let mut s = Sequencer::new(1, 3);
        let st = StreamId(0);
        let mut newest: [Seq; 3] = [Seq::HEAD; 3];
        for g in 1..=200u32 {
            let server = ServerId((g % 3) as u16);
            let mut attr = s.submit(st, r(g as u64 * 10, 1), end());
            s.stamp_dispatch(&mut attr, server);
            assert_eq!(attr.seq_start, Seq(g));
            assert_eq!(attr.prev, newest[server.0 as usize]);
            newest[server.0 as usize] = Seq(g);
        }
    }
}
