//! The `librio` programming model (§4.6): `rio_setup`, `rio_submit`,
//! `rio_wait` over an ordered block device abstraction.
//!
//! This is the paper's user-facing API shape, bundling the sequencer,
//! per-stream ORDER queues and the in-order completer into one object.
//! It is transport-agnostic: `rio_submit` hands back the dispatch units
//! the caller's driver must send (the simulator's initiator driver and
//! any real transport plug in identically), and the caller feeds
//! internal completions back through [`Rio::on_done`].
//!
//! ```
//! use rio_order::librio::{Rio, RioSetup};
//! use rio_order::attr::{BlockRange, ServerId, StreamId};
//!
//! // rio_setup: 2 streams over 1 target server.
//! let mut rio = Rio::setup(RioSetup { streams: 2, servers: 1, merge: true });
//! let st = StreamId(0);
//! // rio_submit: journal body, then commit with FLUSH + group end.
//! rio.submit(st, BlockRange::new(0, 2), false, false);
//! let units = rio.submit(st, BlockRange::new(2, 1), true, true);
//! assert_eq!(units.len(), 1, "body and commit merged into one unit");
//! // The driver dispatches units; completions come back asynchronously.
//! let unit = &units[0];
//! for part in &unit.parts {
//!     rio.on_done(&part.attr);
//! }
//! // rio_wait: the group is durable and delivered in order.
//! assert!(rio.wait(st, unit.attr.seq_end));
//! ```

use crate::attr::{BlockRange, OrderingAttr, Seq, ServerId, StreamId};
use crate::completion::InOrderCompleter;
use crate::scheduler::{DispatchUnit, OrderQueue, OrderQueueConfig};
use crate::sequencer::{Sequencer, SubmitOpts};

/// `rio_setup` parameters: stream count ("ideally the number of
/// independent transactions allowed", §4.6) and target servers.
#[derive(Debug, Clone, Copy)]
pub struct RioSetup {
    /// Number of independent ordered streams.
    pub streams: usize,
    /// Number of target servers backing the ordered device.
    pub servers: usize,
    /// Whether the ORDER queues merge consecutive groups.
    pub merge: bool,
}

/// The ordered block device handle.
pub struct Rio {
    sequencer: Sequencer,
    completer: InOrderCompleter,
    queues: Vec<OrderQueue>,
}

impl Rio {
    /// `rio_setup`: associates streams with the (networked) devices.
    ///
    /// # Panics
    ///
    /// Panics on zero streams or servers.
    pub fn setup(cfg: RioSetup) -> Self {
        Rio {
            sequencer: Sequencer::new(cfg.streams, cfg.servers),
            completer: InOrderCompleter::new(cfg.streams),
            queues: (0..cfg.streams)
                .map(|s| {
                    OrderQueue::new(
                        StreamId(s as u16),
                        OrderQueueConfig {
                            merge: cfg.merge,
                            ..Default::default()
                        },
                    )
                })
                .collect(),
        }
    }

    /// Number of configured streams.
    pub fn n_streams(&self) -> usize {
        self.sequencer.n_streams()
    }

    /// `rio_submit`: queues one ordered write on `stream`.
    ///
    /// `end_group` marks the final request of the group (the paper's
    /// boundary flag); `flush` embeds a FLUSH for durability. Returns
    /// the dispatch units ready for the driver — empty until a group
    /// boundary flushes the ORDER queue.
    pub fn submit(
        &mut self,
        stream: StreamId,
        range: BlockRange,
        end_group: bool,
        flush: bool,
    ) -> Vec<DispatchUnit> {
        let attr = self.sequencer.submit(
            stream,
            range,
            SubmitOpts {
                end_group,
                ipu: false,
                flush,
            },
        );
        self.queues[stream.0 as usize].push(attr, 0);
        if end_group {
            self.queues[stream.0 as usize].flush()
        } else {
            Vec::new()
        }
    }

    /// Stamps the per-server part of a unit fragment at dispatch time
    /// (the initiator driver calls this once per physical request).
    pub fn stamp(&mut self, attr: &mut OrderingAttr, server: ServerId) {
        self.sequencer.stamp_dispatch(attr, server);
    }

    /// Feeds an internal completion back; returns the group sequences
    /// that become externally visible, in order.
    pub fn on_done(&mut self, attr: &OrderingAttr) -> Vec<Seq> {
        self.completer.on_done(attr)
    }

    /// `rio_wait`: whether group `seq` has been delivered on `stream`.
    ///
    /// A driver integration parks the caller until this turns true; the
    /// polling loop of §4.6 maps onto repeated calls.
    pub fn wait(&self, stream: StreamId, seq: Seq) -> bool {
        self.completer.is_delivered(stream, seq)
    }

    /// Highest delivered sequence per stream (durability horizon for
    /// PMR-log recycling).
    pub fn delivered_through(&self, stream: StreamId) -> Seq {
        self.completer.delivered_through(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_submit_wait_round_trip() {
        let mut rio = Rio::setup(RioSetup {
            streams: 1,
            servers: 2,
            merge: false,
        });
        let st = StreamId(0);
        let units = rio.submit(st, BlockRange::new(0, 1), true, false);
        assert_eq!(units.len(), 1);
        let mut frag = units[0].attr;
        rio.stamp(&mut frag, ServerId(1));
        assert_eq!(frag.server, ServerId(1));
        assert!(!rio.wait(st, Seq(1)), "not delivered yet");
        let delivered = rio.on_done(&units[0].attr);
        assert_eq!(delivered, vec![Seq(1)]);
        assert!(rio.wait(st, Seq(1)));
    }

    #[test]
    fn groups_accumulate_until_boundary() {
        let mut rio = Rio::setup(RioSetup {
            streams: 1,
            servers: 1,
            merge: true,
        });
        let st = StreamId(0);
        assert!(rio
            .submit(st, BlockRange::new(0, 1), false, false)
            .is_empty());
        assert!(rio
            .submit(st, BlockRange::new(1, 1), false, false)
            .is_empty());
        let units = rio.submit(st, BlockRange::new(2, 1), true, true);
        assert_eq!(units.len(), 1, "whole group merges into one unit");
        assert_eq!(units[0].attr.num, 3);
        assert!(units[0].attr.flush);
    }

    #[test]
    fn streams_wait_independently() {
        let mut rio = Rio::setup(RioSetup {
            streams: 2,
            servers: 1,
            merge: false,
        });
        let u0 = rio.submit(StreamId(0), BlockRange::new(0, 1), true, false);
        let _u1 = rio.submit(StreamId(1), BlockRange::new(8, 1), true, false);
        rio.on_done(&u0[0].attr);
        assert!(rio.wait(StreamId(0), Seq(1)));
        assert!(!rio.wait(StreamId(1), Seq(1)), "stream 1 still in flight");
    }
}
