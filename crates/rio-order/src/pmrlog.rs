//! The circular log of persistent ordering attributes (§4.3.2).
//!
//! Each target server keeps one log in the 2 MB Persistent Memory
//! Region of its SSD. The target driver appends a 32-byte record per
//! arriving ordered request *before* submitting it to the SSD (step ⑤),
//! toggles the record's persist byte when the data becomes durable
//! (step ⑦), and recycles slots once the initiator reports that the
//! completion was delivered to the application.
//!
//! The log itself is a *pure state machine over offsets*: every
//! mutation is expressed as a [`PmrWrite`] (offset + bytes) that the
//! caller applies to the actual PMR region — in the simulator that is
//! an MMIO write with its ~0.6 µs cost; on real hardware it would be a
//! posted PCIe write. This keeps the log logic independent of any
//! device model and directly testable.
//!
//! Region layout:
//!
//! ```text
//! [ superblock | slot 0 | slot 1 | ... | slot N-1 ]
//! superblock = magic(4) version(1) pad(1) n_streams(2)
//!              head_seq[u32; n_streams]            (padded to 32 B)
//! ```
//!
//! `head_seq[s]` is the sequence up to which stream `s` has *delivered*
//! completions: post-crash scanning ignores older records, which makes
//! stale slots from previous laps harmless without erasing them.

use rio_proto::PmrRecord;

use crate::attr::{Seq, StreamId};

/// Magic identifying a formatted log region.
const MAGIC: [u8; 4] = *b"RIOP";
/// Format version.
const VERSION: u8 = 1;

/// One MMIO write the caller must apply to the PMR region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmrWrite {
    /// Byte offset within the region.
    pub offset: usize,
    /// Bytes to store.
    pub bytes: Vec<u8>,
}

/// A reference to an appended record (an absolute slot number that
/// never repeats, even across laps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotRef(u64);

/// The log is out of space: the caller must stall submission until
/// completions recycle slots (§4.3.2 backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFull;

/// Result of scanning a region after a crash.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Delivered-through sequence per stream, from the superblock.
    pub head_seqs: Vec<(StreamId, Seq)>,
    /// Every decodable record (recovery filters stale ones by
    /// `head_seqs`).
    pub records: Vec<PmrRecord>,
}

/// In-memory management of one PMR circular log.
#[derive(Debug, Clone)]
pub struct PmrLog {
    n_streams: usize,
    capacity: usize,
    /// Absolute index of the oldest live slot.
    head: u64,
    /// Absolute index of the next free slot.
    tail: u64,
    /// Liveness of in-flight slots, indexed by `abs - head` logic below.
    freed: Vec<bool>,
}

impl PmrLog {
    /// Size of the superblock in bytes for `n_streams` streams.
    pub fn superblock_size(n_streams: usize) -> usize {
        let raw = 8 + 4 * n_streams;
        raw.div_ceil(PmrRecord::SIZE) * PmrRecord::SIZE
    }

    /// Creates a log over a region of `region_len` bytes and returns the
    /// formatting writes (the superblock image).
    ///
    /// # Panics
    ///
    /// Panics if the region cannot hold the superblock plus one slot,
    /// or `n_streams` is zero.
    pub fn format(region_len: usize, n_streams: usize) -> (PmrLog, Vec<PmrWrite>) {
        assert!(n_streams > 0, "need at least one stream");
        let sb = Self::superblock_size(n_streams);
        assert!(
            region_len >= sb + PmrRecord::SIZE,
            "PMR region too small: {region_len} bytes"
        );
        let capacity = (region_len - sb) / PmrRecord::SIZE;
        let log = PmrLog {
            n_streams,
            capacity,
            head: 0,
            tail: 0,
            freed: vec![false; capacity],
        };
        let mut sb_bytes = vec![0u8; sb];
        sb_bytes[0..4].copy_from_slice(&MAGIC);
        sb_bytes[4] = VERSION;
        sb_bytes[6..8].copy_from_slice(&(n_streams as u16).to_le_bytes());
        let writes = vec![PmrWrite {
            offset: 0,
            bytes: sb_bytes,
        }];
        (log, writes)
    }

    /// Slot capacity of the log.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live (un-recycled) slots.
    pub fn live(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether an append would fail.
    pub fn is_full(&self) -> bool {
        self.live() == self.capacity
    }

    fn slot_offset(&self, abs: u64) -> usize {
        Self::superblock_size(self.n_streams)
            + (abs % self.capacity as u64) as usize * PmrRecord::SIZE
    }

    /// Appends a record (step ⑤); the record's generation is stamped
    /// with the current lap. Returns the slot plus the 32-byte write.
    pub fn append(&mut self, rec: &PmrRecord) -> Result<(SlotRef, PmrWrite), LogFull> {
        if self.is_full() {
            return Err(LogFull);
        }
        let abs = self.tail;
        self.tail += 1;
        let mut stamped = *rec;
        stamped.generation = (abs / self.capacity as u64) as u8;
        Ok((
            SlotRef(abs),
            PmrWrite {
                offset: self.slot_offset(abs),
                bytes: stamped.encode().to_vec(),
            },
        ))
    }

    /// The single-byte persist toggle for `slot` (step ⑦).
    pub fn mark_persist(&self, slot: SlotRef) -> PmrWrite {
        PmrWrite {
            offset: self.slot_offset(slot.0) + PmrRecord::PERSIST_OFFSET,
            bytes: vec![1],
        }
    }

    /// Marks `slot` recyclable (its request's completion reached the
    /// application); the head advances over contiguous freed slots.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    pub fn free(&mut self, slot: SlotRef) {
        assert!(
            slot.0 >= self.head && slot.0 < self.tail,
            "freeing a slot that is not live"
        );
        let idx = (slot.0 % self.capacity as u64) as usize;
        assert!(!self.freed[idx], "double free of log slot");
        self.freed[idx] = true;
        while self.head < self.tail {
            let h = (self.head % self.capacity as u64) as usize;
            if !self.freed[h] {
                break;
            }
            self.freed[h] = false;
            self.head += 1;
        }
    }

    /// Records that stream `stream` has delivered completions through
    /// `seq`; returns the superblock field write. Must be applied
    /// *before* the freed slots of those groups are overwritten, which
    /// the FIFO slot order guarantees naturally.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range stream.
    pub fn set_head_seq(&self, stream: StreamId, seq: Seq) -> PmrWrite {
        assert!((stream.0 as usize) < self.n_streams, "unknown stream");
        PmrWrite {
            offset: 8 + 4 * stream.0 as usize,
            bytes: seq.0.to_le_bytes().to_vec(),
        }
    }

    /// Parses a PMR region after a crash: superblock head pointers plus
    /// every slot that still holds a decodable record.
    ///
    /// Returns `None` when the region was never formatted.
    pub fn scan(region: &[u8]) -> Option<ScanOutcome> {
        if region.len() < 8 || region[0..4] != MAGIC || region[4] != VERSION {
            return None;
        }
        let n_streams = u16::from_le_bytes([region[6], region[7]]) as usize;
        let sb = Self::superblock_size(n_streams);
        if region.len() < sb {
            return None;
        }
        let mut head_seqs = Vec::with_capacity(n_streams);
        for s in 0..n_streams {
            let off = 8 + 4 * s;
            let seq = u32::from_le_bytes([
                region[off],
                region[off + 1],
                region[off + 2],
                region[off + 3],
            ]);
            head_seqs.push((StreamId(s as u16), Seq(seq)));
        }
        let mut records = Vec::new();
        let mut off = sb;
        while off + PmrRecord::SIZE <= region.len() {
            let mut slot = [0u8; PmrRecord::SIZE];
            slot.copy_from_slice(&region[off..off + PmrRecord::SIZE]);
            if let Some(rec) = PmrRecord::decode(&slot) {
                records.push(rec);
            }
            off += PmrRecord::SIZE;
        }
        Some(ScanOutcome { head_seqs, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_proto::pmr_record::RecordFlags;

    fn rec(stream: u16, seq: u32) -> PmrRecord {
        PmrRecord {
            generation: 0,
            flags: RecordFlags {
                boundary: true,
                ..Default::default()
            },
            member_idx: 0,
            num: 1,
            stream,
            seq_start: seq,
            seq_end: seq,
            prev: seq.saturating_sub(1),
            lba: seq as u64 * 8,
            len: 8,
            split_idx: 0,
            persist: false,
            ssd: 0,
        }
    }

    /// Applies writes to an in-memory region, as the target driver does
    /// to the real PMR.
    fn apply(region: &mut [u8], w: &PmrWrite) {
        region[w.offset..w.offset + w.bytes.len()].copy_from_slice(&w.bytes);
    }

    #[test]
    fn format_and_scan_empty() {
        let mut region = vec![0u8; 4096];
        let (log, writes) = PmrLog::format(region.len(), 4);
        for w in &writes {
            apply(&mut region, w);
        }
        assert!(log.capacity() > 0);
        let scan = PmrLog::scan(&region).expect("formatted");
        assert_eq!(scan.head_seqs.len(), 4);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn unformatted_region_scans_to_none() {
        let region = vec![0u8; 4096];
        assert!(PmrLog::scan(&region).is_none());
    }

    #[test]
    fn append_persist_scan_round_trip() {
        let mut region = vec![0u8; 4096];
        let (mut log, writes) = PmrLog::format(region.len(), 1);
        for w in &writes {
            apply(&mut region, w);
        }
        let (slot, w) = log.append(&rec(0, 1)).expect("space");
        apply(&mut region, &w);
        let scan = PmrLog::scan(&region).expect("formatted");
        assert_eq!(scan.records.len(), 1);
        assert!(!scan.records[0].persist);

        apply(&mut region, &log.mark_persist(slot));
        let scan = PmrLog::scan(&region).expect("formatted");
        assert!(scan.records[0].persist, "persist toggle visible to scan");
        assert_eq!(scan.records[0].seq_start, 1);
    }

    #[test]
    fn head_seq_round_trips() {
        let mut region = vec![0u8; 4096];
        let (log, writes) = PmrLog::format(region.len(), 3);
        for w in &writes {
            apply(&mut region, w);
        }
        apply(&mut region, &log.set_head_seq(StreamId(1), Seq(42)));
        let scan = PmrLog::scan(&region).expect("formatted");
        assert_eq!(scan.head_seqs[1], (StreamId(1), Seq(42)));
        assert_eq!(scan.head_seqs[0], (StreamId(0), Seq(0)));
    }

    #[test]
    fn fills_then_rejects() {
        let region_len = PmrLog::superblock_size(1) + 4 * PmrRecord::SIZE;
        let (mut log, _) = PmrLog::format(region_len, 1);
        assert_eq!(log.capacity(), 4);
        let mut slots = Vec::new();
        for i in 0..4 {
            let (s, _) = log.append(&rec(0, i + 1)).expect("space");
            slots.push(s);
        }
        assert!(log.is_full());
        assert_eq!(log.append(&rec(0, 9)), Err(LogFull));
        // Freeing the head slot makes room again.
        log.free(slots[0]);
        assert!(!log.is_full());
        assert!(log.append(&rec(0, 9)).is_ok());
    }

    #[test]
    fn out_of_order_free_advances_head_lazily() {
        let region_len = PmrLog::superblock_size(1) + 4 * PmrRecord::SIZE;
        let (mut log, _) = PmrLog::format(region_len, 1);
        let s: Vec<SlotRef> = (0..4)
            .map(|i| log.append(&rec(0, i + 1)).unwrap().0)
            .collect();
        log.free(s[1]);
        log.free(s[2]);
        assert_eq!(log.live(), 4, "head blocked by slot 0");
        log.free(s[0]);
        assert_eq!(log.live(), 1, "head jumps over contiguous freed run");
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_free_of_reclaimed_slot_rejected() {
        let region_len = PmrLog::superblock_size(1) + 4 * PmrRecord::SIZE;
        let (mut log, _) = PmrLog::format(region_len, 1);
        let (s, _) = log.append(&rec(0, 1)).unwrap();
        log.free(s);
        // The head already advanced past the slot; a second free is a
        // stale reference.
        log.free(s);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_behind_blocked_head_rejected() {
        let region_len = PmrLog::superblock_size(1) + 4 * PmrRecord::SIZE;
        let (mut log, _) = PmrLog::format(region_len, 1);
        let (_s0, _) = log.append(&rec(0, 1)).unwrap();
        let (s1, _) = log.append(&rec(0, 2)).unwrap();
        // Slot 0 is still live, so the head cannot advance past slot 1.
        log.free(s1);
        log.free(s1);
    }

    #[test]
    fn wrap_stamps_generation() {
        let region_len = PmrLog::superblock_size(1) + 2 * PmrRecord::SIZE;
        let (mut log, _) = PmrLog::format(region_len, 1);
        let (s0, w0) = log.append(&rec(0, 1)).unwrap();
        let (_s1, _w1) = log.append(&rec(0, 2)).unwrap();
        log.free(s0);
        let (_s2, w2) = log.append(&rec(0, 3)).unwrap();
        // Slot 2 reuses physical slot 0, one lap later.
        assert_eq!(w2.offset, w0.offset);
        let rec2 = PmrRecord::decode(&w2.bytes.as_slice().try_into().unwrap()).unwrap();
        assert_eq!(rec2.generation, 1);
    }

    #[test]
    fn stale_records_remain_visible_to_scan() {
        // After a wrap, un-overwritten old records still decode; the
        // head_seq filter (applied by recovery) is what hides them.
        let mut region = vec![0u8; PmrLog::superblock_size(1) + 3 * PmrRecord::SIZE];
        let (mut log, writes) = PmrLog::format(region.len(), 1);
        for w in &writes {
            apply(&mut region, w);
        }
        for i in 0..3 {
            let (_, w) = log.append(&rec(0, i + 1)).unwrap();
            apply(&mut region, &w);
        }
        apply(&mut region, &log.set_head_seq(StreamId(0), Seq(3)));
        let scan = PmrLog::scan(&region).expect("formatted");
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.head_seqs[0].1, Seq(3), "recovery will drop all three");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_region_rejected() {
        let _ = PmrLog::format(16, 1);
    }

    #[test]
    fn paper_capacity_2mb() {
        // The paper's 2 MB PMR holds ~64 Ki records.
        let (log, _) = PmrLog::format(2 * 1024 * 1024, 24);
        assert!(log.capacity() > 65_000);
    }
}
