//! In-order completion (Fig. 4 step ⑨).
//!
//! Ordered write requests execute out of order inside the pipeline, so
//! their internal completions arrive out of order too. The completer
//! buffers them and releases *group* completions to the application
//! strictly in sequence order per stream, so the file system only ever
//! observes an ordered state. A group is internally complete when its
//! boundary request has completed (telling us `num`) and all `num`
//! members have completed; a merged span completes as a unit.
//!
//! Fragment (split) completions are rejoined *below* this layer by the
//! block layer — exactly as Linux completes a parent bio only when all
//! split children finish — so the completer only sees logical members.
//!
//! # Hot-path layout
//!
//! Sequence numbers are contiguous per stream, so the pending set is a
//! *dense ring*: slot `i` of the ring is group `delivered_through + 1 +
//! i`. Lookup, insert and release are direct index arithmetic on a
//! `VecDeque` instead of the tree walk a `BTreeMap` would pay per
//! completion.

use std::collections::VecDeque;

use crate::attr::{OrderingAttr, Seq, StreamId};

/// Progress of one pending group or merged span.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// No completion has arrived for this sequence yet.
    Vacant,
    /// An unmerged group accumulating member completions.
    Group {
        members_done: u16,
        /// Total members; `None` until the boundary member completes.
        num: Option<u16>,
    },
    /// A whole-group merged span `[seq_start ..= seq_end]`; completes
    /// atomically.
    MergedSpan { seq_end: Seq, done: bool },
}

/// Per-stream completion state.
#[derive(Debug, Clone)]
struct StreamCompletions {
    /// Every group at or below this sequence has been delivered.
    delivered_through: Seq,
    /// Dense pending ring: `ring[i]` tracks group
    /// `delivered_through + 1 + i`.
    ring: VecDeque<Pending>,
    /// Occupied (non-vacant) ring slots, i.e. buffered groups.
    pending_count: usize,
}

impl StreamCompletions {
    fn new() -> Self {
        StreamCompletions {
            delivered_through: Seq::HEAD,
            ring: VecDeque::new(),
            pending_count: 0,
        }
    }

    /// Slot for `seq`, growing the ring with vacancies as needed.
    fn slot_mut(&mut self, seq: Seq) -> &mut Pending {
        let idx = (seq.0 - self.delivered_through.0 - 1) as usize;
        if idx >= self.ring.len() {
            self.ring.resize(idx + 1, Pending::Vacant);
        }
        &mut self.ring[idx]
    }
}

/// Buffers out-of-order completions and releases them in order.
///
/// # Examples
///
/// ```
/// use rio_order::attr::{BlockRange, OrderingAttr, Seq, StreamId};
/// use rio_order::completion::InOrderCompleter;
///
/// let mut c = InOrderCompleter::new(1);
/// let st = StreamId(0);
/// let mk = |seq: u32| {
///     let mut a = OrderingAttr::single(st, Seq(seq), BlockRange::new(0, 1));
///     a.boundary = true;
///     a.num = 1;
///     a
/// };
/// // Group 2 completes before group 1: nothing is released yet.
/// assert!(c.on_done(&mk(2)).is_empty());
/// // Group 1 completes: both are now released, in order.
/// assert_eq!(c.on_done(&mk(1)), vec![Seq(1), Seq(2)]);
/// assert_eq!(c.delivered_through(st), Seq(2));
/// ```
#[derive(Debug, Clone)]
pub struct InOrderCompleter {
    streams: Vec<StreamCompletions>,
}

impl InOrderCompleter {
    /// Creates a completer for `n_streams` streams.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams` is zero.
    pub fn new(n_streams: usize) -> Self {
        assert!(n_streams > 0, "need at least one stream");
        InOrderCompleter {
            streams: (0..n_streams).map(|_| StreamCompletions::new()).collect(),
        }
    }

    /// Creates a completer whose per-stream rings are pre-sized for a
    /// completion window of `window` groups, avoiding ring growth on
    /// the hot path.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams` is zero.
    pub fn with_window(n_streams: usize, window: usize) -> Self {
        let mut c = Self::new(n_streams);
        for st in &mut c.streams {
            st.ring.reserve(window);
        }
        c
    }

    /// Highest sequence delivered to the application on `stream`.
    pub fn delivered_through(&self, stream: StreamId) -> Seq {
        self.streams[stream.0 as usize].delivered_through
    }

    /// Whether group `seq` has been delivered on `stream`.
    pub fn is_delivered(&self, stream: StreamId, seq: Seq) -> bool {
        seq <= self.delivered_through(stream)
    }

    /// Number of groups buffered but not yet deliverable on `stream`.
    pub fn pending_groups(&self, stream: StreamId) -> usize {
        self.streams[stream.0 as usize].pending_count
    }

    /// Total groups buffered but not yet deliverable, across every
    /// stream — the completion-side buffering the ordering guarantee
    /// costs at one instant (the stage-trace layer samples its peak).
    pub fn total_pending(&self) -> usize {
        self.streams.iter().map(|s| s.pending_count).sum()
    }

    /// Records the internal completion of one logical request and
    /// returns the sequence numbers that become externally deliverable,
    /// in order.
    ///
    /// # Panics
    ///
    /// Panics if the completion duplicates an already-delivered group,
    /// a group overruns its member count, or a merged span overlaps an
    /// existing pending group (protocol violations).
    pub fn on_done(&mut self, attr: &OrderingAttr) -> Vec<Seq> {
        let mut released = Vec::new();
        self.on_done_into(attr, &mut released);
        released
    }

    /// Allocation-free form of [`Self::on_done`]: appends the newly
    /// deliverable sequence numbers to `released` (which is *not*
    /// cleared), letting hot callers reuse one buffer across events.
    ///
    /// # Panics
    ///
    /// As [`Self::on_done`].
    pub fn on_done_into(&mut self, attr: &OrderingAttr, released: &mut Vec<Seq>) {
        let st = self
            .streams
            .get_mut(attr.stream.0 as usize)
            .expect("unknown stream");
        assert!(
            attr.seq_start > st.delivered_through,
            "completion for already-delivered group {:?}",
            attr.seq_start
        );

        let slot = st.slot_mut(attr.seq_start);
        let was_vacant = matches!(slot, Pending::Vacant);
        if attr.is_merged_span() {
            if was_vacant {
                *slot = Pending::MergedSpan {
                    seq_end: attr.seq_end,
                    done: false,
                };
            }
            match slot {
                Pending::MergedSpan { seq_end, done } => {
                    assert_eq!(*seq_end, attr.seq_end, "inconsistent merged span");
                    assert!(!*done, "duplicate merged-span completion");
                    *done = true;
                }
                Pending::Group { .. } => unreachable!("merged span overlaps plain group"),
                Pending::Vacant => unreachable!("slot was just filled"),
            }
        } else {
            if was_vacant {
                *slot = Pending::Group {
                    members_done: 0,
                    num: None,
                };
            }
            match slot {
                Pending::Group { members_done, num } => {
                    *members_done += 1;
                    if attr.boundary {
                        assert!(num.is_none(), "duplicate boundary completion");
                        *num = Some(attr.num);
                    }
                    if let Some(n) = *num {
                        assert!(
                            *members_done <= n,
                            "group {:?} overran its member count",
                            attr.seq_start
                        );
                    }
                }
                Pending::MergedSpan { .. } => unreachable!("plain completion overlaps merged span"),
                Pending::Vacant => unreachable!("slot was just filled"),
            }
        }
        if was_vacant {
            st.pending_count += 1;
        }

        // Release the contiguous prefix of finished groups.
        loop {
            let finished_to = match st.ring.front() {
                Some(Pending::Group {
                    members_done,
                    num: Some(n),
                }) if members_done == n => st.delivered_through.next(),
                Some(Pending::MergedSpan {
                    seq_end,
                    done: true,
                }) => *seq_end,
                _ => break,
            };
            // Drop the covered slots; a merged span's tail slots are
            // vacant (the span completes as one unit).
            let mut s = st.delivered_through.next();
            loop {
                if let Some(p) = st.ring.pop_front() {
                    if !matches!(p, Pending::Vacant) {
                        st.pending_count -= 1;
                    }
                }
                released.push(s);
                if s == finished_to {
                    break;
                }
                s = s.next();
            }
            st.delivered_through = finished_to;
        }
    }

    /// Resets a stream after crash recovery: delivery resumes above
    /// `delivered_through` with no pending groups.
    pub fn reset_stream(&mut self, stream: StreamId, delivered_through: Seq) {
        let st = &mut self.streams[stream.0 as usize];
        st.delivered_through = delivered_through;
        st.ring.clear();
        st.pending_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::BlockRange;
    use proptest::prelude::*;

    fn single(seq: u32) -> OrderingAttr {
        let mut a = OrderingAttr::single(StreamId(0), Seq(seq), BlockRange::new(0, 1));
        a.boundary = true;
        a.num = 1;
        a
    }

    fn member(seq: u32, idx: u8) -> OrderingAttr {
        let mut a = OrderingAttr::single(StreamId(0), Seq(seq), BlockRange::new(idx as u64, 1));
        a.member_idx = idx;
        a
    }

    fn boundary(seq: u32, idx: u8, num: u16) -> OrderingAttr {
        let mut a = member(seq, idx);
        a.boundary = true;
        a.num = num;
        a
    }

    fn merged(start: u32, end: u32) -> OrderingAttr {
        let mut a = OrderingAttr::single(StreamId(0), Seq(start), BlockRange::new(0, 4));
        a.seq_end = Seq(end);
        a.boundary = true;
        a.num = (end - start + 1) as u16;
        a
    }

    #[test]
    fn in_order_completions_release_immediately() {
        let mut c = InOrderCompleter::new(1);
        assert_eq!(c.on_done(&single(1)), vec![Seq(1)]);
        assert_eq!(c.on_done(&single(2)), vec![Seq(2)]);
        assert_eq!(c.delivered_through(StreamId(0)), Seq(2));
    }

    #[test]
    fn out_of_order_completions_buffer() {
        let mut c = InOrderCompleter::new(1);
        assert!(c.on_done(&single(3)).is_empty());
        assert!(c.on_done(&single(2)).is_empty());
        assert_eq!(c.pending_groups(StreamId(0)), 2);
        assert_eq!(c.on_done(&single(1)), vec![Seq(1), Seq(2), Seq(3)]);
        assert_eq!(c.pending_groups(StreamId(0)), 0);
    }

    #[test]
    fn group_waits_for_all_members() {
        let mut c = InOrderCompleter::new(1);
        // Group 1 has three members; boundary arrives in the middle.
        assert!(c.on_done(&member(1, 0)).is_empty());
        assert!(c.on_done(&boundary(1, 2, 3)).is_empty());
        assert_eq!(c.on_done(&member(1, 1)), vec![Seq(1)]);
    }

    #[test]
    fn group_waits_for_boundary_to_learn_num() {
        let mut c = InOrderCompleter::new(1);
        assert!(c.on_done(&member(1, 0)).is_empty());
        assert!(c.on_done(&member(1, 1)).is_empty());
        // Only the boundary reveals that the group had exactly 3 members.
        assert_eq!(c.on_done(&boundary(1, 2, 3)), vec![Seq(1)]);
    }

    #[test]
    fn merged_span_releases_all_covered_groups() {
        let mut c = InOrderCompleter::new(1);
        assert_eq!(c.on_done(&merged(1, 3)), vec![Seq(1), Seq(2), Seq(3)]);
        assert_eq!(c.delivered_through(StreamId(0)), Seq(3));
    }

    #[test]
    fn merged_span_blocked_by_earlier_group() {
        let mut c = InOrderCompleter::new(1);
        assert!(c.on_done(&merged(2, 4)).is_empty());
        assert_eq!(c.on_done(&single(1)), vec![Seq(1), Seq(2), Seq(3), Seq(4)]);
    }

    #[test]
    fn is_delivered_observer() {
        let mut c = InOrderCompleter::new(1);
        c.on_done(&single(1));
        assert!(c.is_delivered(StreamId(0), Seq(1)));
        assert!(!c.is_delivered(StreamId(0), Seq(2)));
    }

    #[test]
    fn streams_do_not_interfere() {
        let mut c = InOrderCompleter::new(2);
        let mut a = single(1);
        a.stream = StreamId(1);
        assert_eq!(c.on_done(&a), vec![Seq(1)]);
        assert_eq!(c.delivered_through(StreamId(0)), Seq::HEAD);
        assert_eq!(c.delivered_through(StreamId(1)), Seq(1));
    }

    #[test]
    #[should_panic(expected = "already-delivered")]
    fn duplicate_delivery_rejected() {
        let mut c = InOrderCompleter::new(1);
        c.on_done(&single(1));
        c.on_done(&single(1));
    }

    #[test]
    #[should_panic(expected = "overran")]
    fn member_overrun_rejected_pending() {
        let mut c = InOrderCompleter::new(1);
        // Group 2 (pending behind missing group 1).
        let mut b = boundary(2, 0, 1);
        b.stream = StreamId(0);
        c.on_done(&b);
        let mut extra = member(2, 1);
        extra.stream = StreamId(0);
        c.on_done(&extra);
    }

    #[test]
    fn reset_stream_clears_pending() {
        let mut c = InOrderCompleter::new(1);
        c.on_done(&single(5));
        c.reset_stream(StreamId(0), Seq(7));
        assert_eq!(c.delivered_through(StreamId(0)), Seq(7));
        assert_eq!(c.pending_groups(StreamId(0)), 0);
        assert_eq!(c.on_done(&single(8)), vec![Seq(8)]);
    }

    proptest! {
        /// Whatever the completion arrival order, delivery is exactly
        /// 1..=n in sequence order.
        #[test]
        fn prop_delivery_is_ordered_prefix(
            n in 1u32..40,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut order: Vec<u32> = (1..=n).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut c = InOrderCompleter::new(1);
            let mut delivered = Vec::new();
            for seq in order {
                delivered.extend(c.on_done(&single(seq)));
            }
            let expect: Vec<Seq> = (1..=n).map(Seq).collect();
            prop_assert_eq!(delivered, expect);
        }

        /// Multi-member groups with shuffled member arrival still
        /// deliver as an ordered prefix.
        #[test]
        fn prop_groups_deliver_in_order(
            sizes in proptest::collection::vec(1u16..5, 1..12),
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            // Build all member completions.
            let mut events = Vec::new();
            for (g, &size) in sizes.iter().enumerate() {
                let seq = g as u32 + 1;
                for m in 0..size {
                    if m == size - 1 {
                        events.push(boundary(seq, m as u8, size));
                    } else {
                        events.push(member(seq, m as u8));
                    }
                }
            }
            for i in (1..events.len()).rev() {
                let j = rng.gen_range(0..=i);
                events.swap(i, j);
            }
            let mut c = InOrderCompleter::new(1);
            let mut delivered = Vec::new();
            for e in &events {
                delivered.extend(c.on_done(e));
            }
            let expect: Vec<Seq> = (1..=sizes.len() as u32).map(Seq).collect();
            prop_assert_eq!(delivered, expect);
        }
    }
}
