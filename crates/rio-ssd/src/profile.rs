//! Device profiles calibrated to the paper's testbed hardware.
//!
//! Constants come from public datasheets and the paper's own
//! measurements (§6.1: "It costs around 0.6 µs to persist a 32 B
//! ordering attribute to PMR"). They are deliberately coarse — the goal
//! is to reproduce *relative* behaviour (who wins and by roughly what
//! factor), which EXPERIMENTS.md validates figure by figure.

/// Performance and durability parameters of one simulated SSD.
#[derive(Debug, Clone)]
pub struct SsdProfile {
    /// Human-readable model name.
    pub name: &'static str,
    /// Power-loss protection: writes are durable at completion and
    /// FLUSH is (nearly) free.
    pub plp: bool,
    /// Capacity in 4 KB blocks.
    pub capacity_blocks: u64,
    /// Latency for a 4 KB write to reach the cache (unsaturated).
    pub write_us: f64,
    /// Additional per-block latency beyond the first block.
    pub write_us_per_extra_block: f64,
    /// 4 KB read latency.
    pub read_us: f64,
    /// Sustained media (drain) bandwidth in bytes/second.
    pub media_bw: f64,
    /// Volatile (or PLP-protected) write-cache capacity in bytes.
    pub cache_bytes: u64,
    /// How long a completed write lingers in the volatile cache before
    /// the background drain may persist it (FTL batching). Crash within
    /// this window loses the data unless a FLUSH intervened.
    pub drain_lag_us: f64,
    /// Fixed FLUSH overhead in microseconds (drain time comes on top).
    pub flush_base_us: f64,
    /// Internal command processors (IOPS cap = processors / overhead).
    pub queue_processors: usize,
    /// Per-command processing overhead in microseconds.
    pub cmd_overhead_us: f64,
    /// Largest single transfer in blocks (the paper cites 128 KB for
    /// the 905P, §4.5).
    pub max_transfer_blocks: u32,
    /// PMR region size in bytes (0 disables PMR).
    pub pmr_bytes: usize,
    /// Cost of a persistent 32 B MMIO write to PMR, microseconds.
    pub pmr_persist_us: f64,
    /// Multiplicative service-time jitter amplitude (models internal
    /// reordering across queues).
    pub jitter: f64,
}

impl SsdProfile {
    /// Samsung PM981 (flash, volatile write cache, no PLP).
    ///
    /// ~600 MB/s sustained random write, ~12 µs cached write latency,
    /// multi-millisecond worst-case FLUSH when the cache is full.
    pub fn pm981() -> Self {
        SsdProfile {
            name: "Samsung PM981 (flash)",
            plp: false,
            capacity_blocks: 256 * 1024 * 1024 / 4, // 256 GiB
            write_us: 12.0,
            write_us_per_extra_block: 1.4,
            read_us: 80.0,
            media_bw: 600.0e6,
            cache_bytes: 48 * 1024 * 1024,
            drain_lag_us: 2_000.0,
            flush_base_us: 900.0,
            queue_processors: 8,
            cmd_overhead_us: 1.6,
            max_transfer_blocks: 128,
            pmr_bytes: 2 * 1024 * 1024,
            pmr_persist_us: 0.6,
            jitter: 0.12,
        }
    }

    /// Intel Optane 905P (3D XPoint, PLP).
    ///
    /// ~10 µs write latency, ~2.2 GB/s sustained write, FLUSH is a
    /// no-op beyond command handling.
    pub fn optane905p() -> Self {
        SsdProfile {
            name: "Intel 905P (Optane)",
            plp: true,
            capacity_blocks: 480 * 1024 * 1024 / 4, // 480 GiB
            write_us: 10.0,
            write_us_per_extra_block: 1.2,
            read_us: 10.0,
            media_bw: 2.2e9,
            cache_bytes: 16 * 1024 * 1024,
            drain_lag_us: 0.0,
            flush_base_us: 5.0,
            queue_processors: 7,
            cmd_overhead_us: 1.55,
            max_transfer_blocks: 32,
            pmr_bytes: 2 * 1024 * 1024,
            pmr_persist_us: 0.6,
            jitter: 0.08,
        }
    }

    /// Intel Optane P4800X (3D XPoint, PLP, datacenter).
    pub fn p4800x() -> Self {
        SsdProfile {
            name: "Intel P4800X (Optane)",
            plp: true,
            capacity_blocks: 375 * 1024 * 1024 / 4,
            write_us: 10.0,
            write_us_per_extra_block: 1.1,
            read_us: 10.0,
            media_bw: 2.0e9,
            cache_bytes: 16 * 1024 * 1024,
            drain_lag_us: 0.0,
            flush_base_us: 5.0,
            queue_processors: 7,
            cmd_overhead_us: 1.5,
            max_transfer_blocks: 32,
            pmr_bytes: 2 * 1024 * 1024,
            pmr_persist_us: 0.6,
            jitter: 0.08,
        }
    }

    /// Theoretical peak 4 KB write IOPS from the command-processing cap.
    pub fn iops_cap(&self) -> f64 {
        self.queue_processors as f64 / (self.cmd_overhead_us * 1e-6)
    }

    /// Sustained 4 KB write IOPS from the media bandwidth.
    pub fn bandwidth_iops(&self) -> f64 {
        self.media_bw / 4096.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm981_sustained_iops_matches_figure2a_scale() {
        // Fig. 2(a)'s orderless plateau is ~150 KIOPS of 4 KB blocks.
        let iops = SsdProfile::pm981().bandwidth_iops();
        assert!((120_000.0..180_000.0).contains(&iops), "got {iops}");
    }

    #[test]
    fn optane_iops_cap_matches_figure2b_scale() {
        // Fig. 2(b)'s orderless plateau is ~220 KIOPS; the command cap
        // (not bandwidth) should not be the binding constraint there.
        let p = SsdProfile::optane905p();
        assert!(p.iops_cap() > 220_000.0);
        assert!(p.bandwidth_iops() > 400_000.0);
    }

    #[test]
    fn profiles_have_paper_pmr() {
        for p in [
            SsdProfile::pm981(),
            SsdProfile::optane905p(),
            SsdProfile::p4800x(),
        ] {
            assert_eq!(p.pmr_bytes, 2 * 1024 * 1024, "{}: 2 MB PMR (§6.1)", p.name);
            assert!(
                (p.pmr_persist_us - 0.6).abs() < 1e-9,
                "0.6 us persist (§6.1)"
            );
        }
    }

    #[test]
    fn plp_flags() {
        assert!(!SsdProfile::pm981().plp);
        assert!(SsdProfile::optane905p().plp);
        assert!(SsdProfile::p4800x().plp);
    }
}
