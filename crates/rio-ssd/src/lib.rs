//! An NVMe SSD model faithful to the behaviours Rio's evaluation hinges
//! on.
//!
//! The paper's results are driven by a handful of device properties, and
//! each is a first-class part of this model:
//!
//! * **Write cache + FLUSH** — on a flash SSD without power-loss
//!   protection (PLP), writes complete into a volatile cache and a
//!   device-wide FLUSH drains it to media, stalling the device (the
//!   dominant cost in Fig. 2a/10a). On PLP drives (Optane) FLUSH is
//!   nearly free.
//! * **Finite drain bandwidth** — sustained write throughput is bounded
//!   by media bandwidth even though cache-hit latency is microseconds.
//! * **Command processing concurrency** — a per-command overhead across
//!   `queue_processors` internal units caps IOPS independently of
//!   bandwidth.
//! * **Crash semantics** — on power loss the volatile cache is lost, the
//!   media and the PMR survive; exactly the states Rio's recovery must
//!   handle.
//! * **PMR** — a byte-addressable persistent region with ~0.6 µs 32 B
//!   MMIO persist cost (§6.1).
//!
//! The model is *passive*: every operation takes the current virtual
//! time and returns its completion instant analytically, so it composes
//! with any discrete-event loop without owning one.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod media;
pub mod pmr;
pub mod profile;
pub mod ssd;

pub use media::{BlockImage, BlockStore};
pub use pmr::Pmr;
pub use profile::SsdProfile;
pub use ssd::{Ssd, SsdOpKind, SsdStats};
