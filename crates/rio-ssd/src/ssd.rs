//! The SSD state machine: command processing, cache, FLUSH, crash.
//!
//! Timing model (each `submit_*` returns the completion instant):
//!
//! ```text
//! completion = cmd-processor queueing            (IOPS cap)
//!            ⊔ flush-stall window                (device-wide FLUSH)
//!            + cache-overflow delay              (sustained-bw cap)
//!            + base write latency (+ jitter)
//! ```
//!
//! Durability model:
//!
//! * PLP drives: a write is durable at completion.
//! * Volatile-cache drives: a write is durable when (a) the background
//!   drain has reached it (FIFO at `media_bw`), or (b) a FLUSH submitted
//!   after its completion finishes, or (c) it was submitted with FUA.
//! * [`Ssd::crash`] keeps the media and PMR, loses the volatile cache
//!   and all in-flight commands.
//!
//! Integrity model (opt-in via [`Ssd::set_integrity`]):
//!
//! * every block landing on media carries a CRC-32C seal of its
//!   intended image,
//! * a power failure tears the write the media was absorbing — partial
//!   bytes under the intended seal,
//! * [`Ssd::rot_at_rest`] flips bits in sealed blocks without touching
//!   their seals,
//! * [`Ssd::scrub`] re-checksums every sealed block and reports the
//!   mismatches; with integrity off none of this costs anything.

use std::collections::VecDeque;

use rio_proto::crc32c;
use rio_sim::{MultiServer, SimDuration, SimRng, SimTime};

use crate::media::{BlockImage, BlockStore};
use crate::pmr::Pmr;
use crate::profile::SsdProfile;

/// Block size used throughout the repository.
pub const BLOCK_SIZE: u64 = 4096;

/// What kind of operation an op id refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsdOpKind {
    /// A data write.
    Write,
    /// A device-wide flush.
    Flush,
    /// A read.
    Read,
    /// A discard (TRIM / recovery roll-back).
    Discard,
}

/// Aggregate device statistics.
#[derive(Debug, Default, Clone)]
pub struct SsdStats {
    /// Completed write commands.
    pub writes: u64,
    /// Blocks written.
    pub blocks_written: u64,
    /// Completed FLUSH commands.
    pub flushes: u64,
    /// Total simulated time spent inside FLUSHes.
    pub flush_time: SimDuration,
    /// Completed read commands.
    pub reads: u64,
    /// Completed discards.
    pub discards: u64,
}

/// One cache entry: a write occupying the cache until drained.
///
/// Entries are added at submission (they consume cache space and media
/// bandwidth immediately); `cached_at` is the write's completion time,
/// which decides FLUSH coverage. On PLP drives entries carry no images —
/// durability is handled by the completion-time media write — and exist
/// only to model the bandwidth bound.
#[derive(Debug, Clone)]
struct CacheEntry {
    lba: u64,
    images: Vec<BlockImage>,
    /// Per-block intended-image checksums (integrity runs on volatile
    /// drives only; empty otherwise).
    crcs: Vec<u32>,
    bytes: u64,
    /// Submission time (FLUSH coverage: NVMe flush drains everything
    /// the controller accepted before the flush was submitted).
    submitted_at: SimTime,
    /// Completion time (background-drain eligibility).
    cached_at: SimTime,
}

/// An operation whose effects apply at completion time.
#[derive(Debug, Clone)]
enum PendingOp {
    /// PLP write: blocks move to media at completion. FUA writes on
    /// volatile drives take this path too. `crcs` seals each block on
    /// integrity runs (empty otherwise).
    DurableWrite {
        lba: u64,
        images: Vec<BlockImage>,
        crcs: Vec<u32>,
    },
    /// Volatile write: already sits in the cache; completion is only a
    /// statistics event.
    CachedWrite { blocks: u64 },
    /// FLUSH: cache entries completed at or before `submitted` become
    /// durable.
    Flush { submitted: SimTime },
    /// Bookkeeping only.
    Stat(SsdOpKind),
}

/// The simulated NVMe SSD.
#[derive(Debug)]
pub struct Ssd {
    profile: SsdProfile,
    rng: SimRng,
    cmd_units: MultiServer,
    /// PLP drives: flush serialization unit.
    flush_unit: rio_sim::FifoResource,
    flush_busy_until: SimTime,
    /// FIFO of writes not yet drained to media.
    cache: VecDeque<CacheEntry>,
    /// Total bytes currently occupying the cache.
    cache_sum: u64,
    /// Unspent drain budget in bytes (fractional carry).
    drain_carry: f64,
    last_drain_update: SimTime,
    /// What reads observe (accepted command order).
    logical: BlockStore,
    /// What survives a crash.
    media: BlockStore,
    pmr: Pmr,
    /// Ops whose effects apply at completion time. Nothing consumes
    /// this mid-run (effects are settled by [`Ssd::advance`] at run end
    /// or crash), so submissions are O(1) appends and the list is
    /// sorted lazily when `advance` runs — a `BTreeMap` here would pay
    /// tree churn on every accepted command.
    pending: Vec<((SimTime, u64), PendingOp)>,
    next_op: u64,
    stats: SsdStats,
    /// Whether media landings are checksummed and crashes tear.
    integrity: bool,
}

impl Ssd {
    /// Creates a device from a profile with a deterministic jitter seed.
    pub fn new(profile: SsdProfile, seed: u64) -> Self {
        let pmr = Pmr::new(profile.pmr_bytes);
        Ssd {
            cmd_units: MultiServer::new(profile.queue_processors),
            flush_unit: rio_sim::FifoResource::new(),
            rng: SimRng::seed_from_u64(seed),
            flush_busy_until: SimTime::ZERO,
            cache: VecDeque::new(),
            cache_sum: 0,
            drain_carry: 0.0,
            last_drain_update: SimTime::ZERO,
            logical: BlockStore::new(),
            media: BlockStore::new(),
            pmr,
            pending: Vec::new(),
            next_op: 0,
            stats: SsdStats::default(),
            integrity: false,
            profile,
        }
    }

    /// Turns the end-to-end integrity machinery on or off. With it off
    /// (the default) writes are not checksummed, crashes do not tear,
    /// and nothing here draws randomness or clones bytes.
    pub fn set_integrity(&mut self, on: bool) {
        self.integrity = on;
    }

    /// The device profile.
    pub fn profile(&self) -> &SsdProfile {
        &self.profile
    }

    /// Device statistics.
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// The PMR region.
    pub fn pmr(&self) -> &Pmr {
        &self.pmr
    }

    /// Mutable PMR access (target-driver MMIO writes).
    pub fn pmr_mut(&mut self) -> &mut Pmr {
        &mut self.pmr
    }

    /// Bytes currently occupying the write cache.
    pub fn dirty_bytes(&self) -> u64 {
        self.cache_sum
    }

    fn drain_entry_to_media(media: &mut BlockStore, e: CacheEntry) {
        if e.crcs.is_empty() {
            for (i, img) in e.images.into_iter().enumerate() {
                media.write(e.lba + i as u64, img);
            }
        } else {
            for (i, (img, crc)) in e.images.into_iter().zip(e.crcs).enumerate() {
                media.write_sealed(e.lba + i as u64, img, crc);
            }
        }
    }

    fn update_drain(&mut self, now: SimTime) {
        let elapsed = now.since(self.last_drain_update);
        self.last_drain_update = now;
        if self.cache.is_empty() {
            self.drain_carry = 0.0;
            return;
        }
        self.drain_carry += elapsed.as_secs_f64() * self.profile.media_bw;
        // The device cannot bank idle drain capacity: while the head of
        // the cache is still in flight, budget must not pile up, or a
        // bursty arrival pattern would sidestep the bandwidth bound.
        // A 1 MB allowance keeps sustained drain exact as long as the
        // clock advances at least every ~0.5 ms under load.
        self.drain_carry = self.drain_carry.min(1024.0 * 1024.0);
        let lag = SimDuration::from_micros_f64(self.profile.drain_lag_us);
        while let Some(front) = self.cache.front() {
            // Background drain only touches writes that completed at
            // least `drain_lag` ago (FTL batching window).
            if front.cached_at + lag > now {
                break;
            }
            if (front.bytes as f64) <= self.drain_carry {
                self.drain_carry -= front.bytes as f64;
                let e = self.cache.pop_front().expect("front exists");
                self.cache_sum -= e.bytes;
                Self::drain_entry_to_media(&mut self.media, e);
            } else {
                break;
            }
        }
        if self.cache.is_empty() {
            self.drain_carry = 0.0;
        }
    }

    /// Applies every effect due at or before `now`. Call before querying
    /// durable state and at crash time.
    pub fn advance(&mut self, now: SimTime) {
        // Process due ops in completion order, advancing the drain clock
        // alongside so FLUSH/drain interleavings resolve correctly.
        // Keys (completion, op id) are unique, so the unstable sort is
        // deterministic.
        self.pending.sort_unstable_by_key(|(k, _)| *k);
        let due = self
            .pending
            .partition_point(|(k, _)| *k <= (now, u64::MAX));
        let rest = self.pending.split_off(due);
        let due_ops = std::mem::replace(&mut self.pending, rest);
        for ((done_at, _), op) in due_ops {
            self.update_drain(done_at);
            match op {
                PendingOp::DurableWrite { lba, images, crcs } => {
                    self.stats.writes += 1;
                    self.stats.blocks_written += images.len() as u64;
                    if crcs.is_empty() {
                        for (i, img) in images.into_iter().enumerate() {
                            self.media.write(lba + i as u64, img);
                        }
                    } else {
                        for (i, (img, crc)) in images.into_iter().zip(crcs).enumerate() {
                            self.media.write_sealed(lba + i as u64, img, crc);
                        }
                    }
                }
                PendingOp::CachedWrite { blocks } => {
                    self.stats.writes += 1;
                    self.stats.blocks_written += blocks;
                }
                PendingOp::Flush { submitted } => {
                    self.stats.flushes += 1;
                    // On a volatile-cache drive, everything completed at
                    // or before the flush submission is now durable. On
                    // PLP drives the flush is a durability no-op and the
                    // cache entries stay, so the media-bandwidth bound
                    // cannot be laundered through cheap flushes.
                    if !self.profile.plp {
                        let mut keep = VecDeque::new();
                        while let Some(e) = self.cache.pop_front() {
                            if e.submitted_at <= submitted {
                                self.cache_sum -= e.bytes;
                                Self::drain_entry_to_media(&mut self.media, e);
                            } else {
                                keep.push_back(e);
                            }
                        }
                        self.cache = keep;
                    }
                }
                PendingOp::Stat(kind) => match kind {
                    SsdOpKind::Read => self.stats.reads += 1,
                    SsdOpKind::Discard => self.stats.discards += 1,
                    _ => {}
                },
            }
        }
        self.update_drain(now);
    }

    fn op_id(&mut self) -> u64 {
        self.next_op += 1;
        self.next_op
    }

    fn write_latency(&mut self, blocks: u32) -> SimDuration {
        let us = self.profile.write_us
            + self.profile.write_us_per_extra_block * (blocks.saturating_sub(1)) as f64;
        SimDuration::from_micros_f64(us * self.rng.jitter(self.profile.jitter))
    }

    /// Submits a write of `images` starting at `lba`. Returns the op id
    /// and completion instant; effects apply via [`Ssd::advance`].
    ///
    /// # Panics
    ///
    /// Panics on an empty write, a transfer larger than the device
    /// limit, or an out-of-range LBA.
    pub fn submit_write(
        &mut self,
        now: SimTime,
        lba: u64,
        images: Vec<BlockImage>,
        fua: bool,
    ) -> (u64, SimTime) {
        let blocks = images.len() as u32;
        assert!(blocks > 0, "empty write");
        assert!(
            blocks <= self.profile.max_transfer_blocks,
            "transfer of {blocks} blocks exceeds device limit {}",
            self.profile.max_transfer_blocks
        );
        assert!(
            lba + blocks as u64 <= self.profile.capacity_blocks,
            "write beyond device capacity"
        );
        self.update_drain(now);
        let bytes = blocks as u64 * BLOCK_SIZE;

        let cmd_done = self.cmd_units.admit(
            now,
            SimDuration::from_micros_f64(self.profile.cmd_overhead_us),
        );
        let start = cmd_done.max(self.flush_busy_until);
        // Cache overflow throttling: completion waits for drain space.
        let projected = self.cache_sum + bytes;
        let overflow = projected.saturating_sub(self.profile.cache_bytes);
        let overflow_delay =
            SimDuration::from_micros_f64(overflow as f64 / self.profile.media_bw * 1e6);
        let completion = start + overflow_delay + self.write_latency(blocks);

        // Reads observe the write in submission order immediately.
        for (i, img) in images.iter().enumerate() {
            self.logical.write(lba + i as u64, img.clone());
        }
        let id = self.op_id();
        let durable_at_completion = self.profile.plp || fua;
        // On integrity runs, seal each block with the CRC of the image
        // the submitter intends to land.
        let crcs: Vec<u32> = if self.integrity {
            images
                .iter()
                .map(|img| crc32c(&img.to_bytes(BLOCK_SIZE as usize)))
                .collect()
        } else {
            Vec::new()
        };
        // The cache entry models occupancy and (for volatile drives)
        // holds the images until the drain or a FLUSH reaches them; on
        // the durable path the completion-time media write owns them.
        let (entry_images, entry_crcs, op) = if durable_at_completion {
            (Vec::new(), Vec::new(), PendingOp::DurableWrite { lba, images, crcs })
        } else {
            (
                images,
                crcs,
                PendingOp::CachedWrite {
                    blocks: blocks as u64,
                },
            )
        };
        self.cache.push_back(CacheEntry {
            lba,
            images: entry_images,
            crcs: entry_crcs,
            bytes,
            submitted_at: now,
            cached_at: completion,
        });
        self.cache_sum += bytes;
        self.pending.push(((completion, id), op));
        (id, completion)
    }

    /// Submits a device-wide FLUSH; completion drains the cache.
    ///
    /// On power-loss-protected drives the flush is a cheap no-op that
    /// does not stall other commands; on volatile-cache drives it
    /// drains the cache exclusively (the device-wide stall behind
    /// Fig. 2(a)'s collapse).
    pub fn submit_flush(&mut self, now: SimTime) -> (u64, SimTime) {
        self.update_drain(now);
        let cmd_done = self.cmd_units.admit(
            now,
            SimDuration::from_micros_f64(self.profile.cmd_overhead_us),
        );
        if self.profile.plp {
            // Flushes do not stall writes, but they serialize on one
            // internal unit — many threads flushing contend.
            let dur = SimDuration::from_micros_f64(
                self.profile.flush_base_us * self.rng.jitter(self.profile.jitter),
            );
            let completion = self.flush_unit.admit(cmd_done, dur);
            self.stats.flush_time += dur;
            let id = self.op_id();
            self.pending
                .push(((completion, id), PendingOp::Flush { submitted: now }));
            return (id, completion);
        }
        let start = cmd_done.max(self.flush_busy_until);
        let drain_us = self.dirty_bytes() as f64 / self.profile.media_bw * 1e6;
        let dur = SimDuration::from_micros_f64(
            (self.profile.flush_base_us + drain_us) * self.rng.jitter(self.profile.jitter),
        );
        let completion = start + dur;
        // FLUSH stalls the device: later commands queue behind it.
        self.flush_busy_until = completion;
        self.stats.flush_time += dur;
        let id = self.op_id();
        self.pending
            .push(((completion, id), PendingOp::Flush { submitted: now }));
        (id, completion)
    }

    /// Submits a read of `count` blocks at `lba`; data reflects all
    /// previously submitted writes.
    ///
    /// # Panics
    ///
    /// Panics on an empty or out-of-range read.
    pub fn submit_read(
        &mut self,
        now: SimTime,
        lba: u64,
        count: u32,
    ) -> (u64, SimTime, Vec<BlockImage>) {
        assert!(count > 0, "empty read");
        assert!(
            lba + count as u64 <= self.profile.capacity_blocks,
            "read beyond device capacity"
        );
        self.update_drain(now);
        let cmd_done = self.cmd_units.admit(
            now,
            SimDuration::from_micros_f64(self.profile.cmd_overhead_us),
        );
        let start = cmd_done.max(self.flush_busy_until);
        let us = self.profile.read_us
            + self.profile.write_us_per_extra_block * count.saturating_sub(1) as f64;
        let completion =
            start + SimDuration::from_micros_f64(us * self.rng.jitter(self.profile.jitter));
        let data = (0..count as u64)
            .map(|i| self.logical.read(lba + i))
            .collect();
        let id = self.op_id();
        self.pending
            .push(((completion, id), PendingOp::Stat(SsdOpKind::Read)));
        (id, completion, data)
    }

    /// Discards `count` blocks at `lba` (recovery roll-back). Takes
    /// effect immediately in both views.
    pub fn submit_discard(&mut self, now: SimTime, lba: u64, count: u32) -> (u64, SimTime) {
        self.update_drain(now);
        let cmd_done = self.cmd_units.admit(
            now,
            SimDuration::from_micros_f64(self.profile.cmd_overhead_us),
        );
        self.logical.discard(lba, count as u64);
        self.media.discard(lba, count as u64);
        for e in &mut self.cache {
            // Cheap approximation: a discarded range inside a cache
            // entry zeroes the overlapping images.
            let e_end = e.lba + e.images.len() as u64;
            let d_end = lba + count as u64;
            if e.lba < d_end && lba < e_end {
                for i in 0..e.images.len() {
                    let b = e.lba + i as u64;
                    if b >= lba && b < d_end {
                        e.images[i] = BlockImage::Zero;
                    }
                }
            }
        }
        let id = self.op_id();
        self.pending
            .push(((cmd_done, id), PendingOp::Stat(SsdOpKind::Discard)));
        (id, cmd_done)
    }

    /// Settles every accepted command at its own completion instant and
    /// returns the latest one (or `now` if nothing was pending).
    ///
    /// This is the partial-failure counterpart of [`Ssd::crash`]: when
    /// *other* targets lose power, an alive target keeps its cache and
    /// in-flight queue, and by the time the initiator's recovery (tens
    /// of milliseconds of PMR scanning) reads or discards state here,
    /// every command the device had accepted — microseconds from
    /// completion — has finished. Recovery drivers call this before
    /// issuing discards so a pending write cannot land *after* the
    /// roll-back erased its range and resurrect rolled-back data.
    pub fn quiesce(&mut self, now: SimTime) -> SimTime {
        let settle = self
            .pending
            .iter()
            .map(|((done_at, _), _)| *done_at)
            .max()
            .unwrap_or(now)
            .max(now);
        self.advance(settle);
        settle
    }

    /// Simulates a power failure at `now`: volatile cache and in-flight
    /// commands are lost; media and PMR survive. On PLP drives the
    /// capacitors flush completed writes to media first.
    ///
    /// On integrity runs the power cut additionally *tears* the write
    /// the media was absorbing at the instant of failure: the leading
    /// block of the oldest in-flight command (or, on volatile drives,
    /// of the cache head mid-drain) lands half-written under the seal
    /// its full image would have carried. Returns the number of torn
    /// records (0 or 1 here; always 0 with integrity off).
    pub fn crash(&mut self, now: SimTime) -> u64 {
        // Completed durable writes (PLP / FUA) land in media via advance;
        // volatile entries whose drain point was reached land there too.
        self.advance(now);
        let mut torn = 0u64;
        if self.integrity {
            self.pending.sort_unstable_by_key(|(k, _)| *k);
            let inflight = self.pending.iter().find_map(|(_, op)| match op {
                PendingOp::DurableWrite { lba, images, crcs } if !crcs.is_empty() => {
                    Some((*lba, images[0].clone(), crcs[0]))
                }
                _ => None,
            });
            let mid_drain = self
                .cache
                .front()
                .filter(|e| !e.crcs.is_empty() && !e.images.is_empty())
                .map(|e| (e.lba, e.images[0].clone(), e.crcs[0]));
            if let Some((lba, img, seal)) = inflight.or(mid_drain) {
                let mut bytes = img.to_bytes(BLOCK_SIZE as usize);
                for b in &mut bytes[BLOCK_SIZE as usize / 2..] {
                    *b = 0;
                }
                self.media
                    .write_sealed(lba, BlockImage::Bytes(bytes.into_boxed_slice()), seal);
                torn = 1;
            }
        }
        // Whatever is still in the volatile cache is lost. (PLP entries
        // carry no images; their durability was completion-time.)
        self.cache.clear();
        self.cache_sum = 0;
        self.drain_carry = 0.0;
        self.pending.clear();
        self.cmd_units.reset(now);
        self.flush_unit.reset(now);
        self.flush_busy_until = now;
        // Reads after restart observe only what survived.
        self.logical = self.media.clone();
        torn
    }

    /// Flips one bit in each of up to `flips` *distinct* sealed media
    /// blocks, leaving their seals untouched (at-rest bit rot). Returns
    /// the number of blocks rotted — distinct blocks, and CRC-32C
    /// catches every single-bit error, so a scrub detects exactly this
    /// many. Draws from the device's deterministic jitter RNG.
    pub fn rot_at_rest(&mut self, flips: u32) -> u64 {
        if !self.integrity {
            return 0;
        }
        let mut lbas = self.media.sealed_lbas();
        let n = (flips as usize).min(lbas.len());
        for i in 0..n {
            let j = i + self.rng.below((lbas.len() - i) as u64) as usize;
            lbas.swap(i, j);
            let bit = self.rng.below(BLOCK_SIZE * 8) as usize;
            self.media.flip_bit(lbas[i], bit, BLOCK_SIZE as usize);
        }
        n as u64
    }

    /// Re-checksums every sealed media block. Returns the number of
    /// records scanned and the (ascending) addresses whose bytes no
    /// longer match their seal — torn writes and bit rot.
    pub fn scrub(&self) -> (u64, Vec<u64>) {
        let lbas = self.media.sealed_lbas();
        let mut corrupt = Vec::new();
        for &lba in &lbas {
            let seal = self.media.seal(lba).expect("sealed block has a seal");
            let bytes = self.media.read(lba).to_bytes(BLOCK_SIZE as usize);
            if crc32c(&bytes) != seal {
                corrupt.push(lba);
            }
        }
        (lbas.len() as u64, corrupt)
    }

    /// Whether every sealed media block still matches its seal (the
    /// end-state check integrity tests run after a workload).
    pub fn media_verified(&self) -> bool {
        self.scrub().1.is_empty()
    }

    /// Whether every sealed media block is byte-for-byte the payload
    /// image its embedded seed generates — i.e. exactly what some
    /// submission produced. Only meaningful for stacks that write
    /// [`rio_proto::payload`] blocks (seal checks alone cannot tell a
    /// coherent wrong-data overwrite from the intended write).
    pub fn payload_verified(&self) -> bool {
        self.media.sealed_lbas().iter().all(|&lba| {
            rio_proto::payload::verify_block(&self.media.read(lba).to_bytes(BLOCK_SIZE as usize))
        })
    }

    /// Durable view of a block (what a post-crash read would return).
    pub fn durable_read(&self, lba: u64) -> BlockImage {
        self.media.read(lba)
    }

    /// Whether `lba` has durable content.
    pub fn is_durable(&self, lba: u64) -> bool {
        self.media.version(lba) != 0
    }

    /// Current (pre-crash) logical view of a block.
    pub fn logical_read(&self, lba: u64) -> BlockImage {
        self.logical.read(lba)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn ssd(profile: SsdProfile) -> Ssd {
        Ssd::new(profile, 42)
    }

    fn one_block(tag: u64) -> Vec<BlockImage> {
        vec![BlockImage::Tag(tag)]
    }

    #[test]
    fn unsaturated_write_latency_near_profile() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, done) = s.submit_write(SimTime::ZERO, 0, one_block(1), false);
        let us = done.as_micros_f64();
        // cmd overhead + ~10 us write, ±jitter.
        assert!((9.0..16.0).contains(&us), "latency was {us} us");
    }

    #[test]
    fn plp_write_durable_after_completion() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        s.advance(done);
        assert!(s.is_durable(5));
        assert_eq!(s.durable_read(5), BlockImage::Tag(9));
    }

    #[test]
    fn volatile_write_lost_on_crash_without_flush() {
        let mut s = ssd(SsdProfile::pm981());
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        // Crash shortly after completion: the drain has not reached it.
        s.crash(done + SimDuration::from_micros(1));
        assert!(!s.is_durable(5), "volatile cache must be lost");
        assert_eq!(s.logical_read(5), BlockImage::Zero);
    }

    #[test]
    fn flush_makes_prior_writes_durable() {
        let mut s = ssd(SsdProfile::pm981());
        let (_, w_done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        let (_, f_done) = s.submit_flush(w_done);
        s.advance(f_done);
        s.crash(f_done + SimDuration::from_micros(1));
        assert!(s.is_durable(5), "flushed write survives");
        assert_eq!(s.durable_read(5), BlockImage::Tag(9));
    }

    #[test]
    fn flush_does_not_cover_later_writes() {
        let mut s = ssd(SsdProfile::pm981());
        let (_, f_done) = s.submit_flush(SimTime::ZERO);
        // Submitted after the flush, completes after it too.
        let (_, w_done) = s.submit_write(t(1), 7, one_block(3), false);
        assert!(w_done > f_done, "flush stalls the write");
        s.crash(w_done + SimDuration::from_micros(1));
        assert!(!s.is_durable(7));
    }

    #[test]
    fn fua_write_durable_on_volatile_drive() {
        let mut s = ssd(SsdProfile::pm981());
        let (_, done) = s.submit_write(SimTime::ZERO, 3, one_block(1), true);
        s.crash(done + SimDuration::from_micros(1));
        assert!(s.is_durable(3), "FUA bypasses the volatile cache");
    }

    #[test]
    fn background_drain_eventually_persists() {
        let mut s = ssd(SsdProfile::pm981());
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        // Wait far longer than 4 KB / 600 MB/s.
        s.crash(done + SimDuration::from_millis(100));
        assert!(s.is_durable(5), "drained write survives without FLUSH");
    }

    #[test]
    fn plp_crash_preserves_completed_cache() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        s.crash(done);
        assert!(s.is_durable(5));
    }

    #[test]
    fn in_flight_write_lost_on_crash_even_with_plp() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        // Crash before completion.
        s.crash(SimTime::from_nanos(done.as_nanos() / 2));
        assert!(!s.is_durable(5), "incomplete command has no durability");
    }

    #[test]
    fn sustained_throughput_bounded_by_media_bw() {
        // A small cache makes the steady state dominate quickly.
        let mut p = SsdProfile::pm981();
        p.cache_bytes = 4 * 1024 * 1024;
        let media_bw = p.media_bw;
        let mut s = ssd(p);
        // Stream 128 MB of 16 KB writes back to back (QD 1).
        let mut now = SimTime::ZERO;
        let n: u64 = 8192;
        for i in 0..n {
            let images = vec![BlockImage::Tag(i); 4];
            let (_, done) = s.submit_write(now, i * 4, images, false);
            now = done;
        }
        let achieved = n as f64 * 4.0 * 4096.0 / now.as_secs_f64();
        assert!(
            achieved < media_bw * 1.15,
            "throughput {achieved:.0} B/s exceeds media bw {media_bw:.0}"
        );
        assert!(
            achieved > media_bw * 0.5,
            "throughput {achieved:.0} B/s unreasonably low"
        );
    }

    #[test]
    fn flush_cost_scales_with_dirty_bytes() {
        let mut s = ssd(SsdProfile::pm981());
        // Empty-cache flush.
        let (_, f0) = s.submit_flush(SimTime::ZERO);
        let empty_cost = f0.since(SimTime::ZERO);
        // Dirty ~8 MB, then flush.
        let mut now = f0;
        for i in 0..64 {
            let (_, done) = s.submit_write(now, i * 32, vec![BlockImage::Tag(i); 32], false);
            now = done;
        }
        let (_, f1) = s.submit_flush(now);
        let full_cost = f1.since(now);
        assert!(
            full_cost.as_nanos() > empty_cost.as_nanos() * 3,
            "flush with dirty cache ({full_cost}) must dwarf empty flush ({empty_cost})"
        );
    }

    #[test]
    fn optane_flush_is_cheap() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, w) = s.submit_write(SimTime::ZERO, 0, one_block(1), false);
        let (_, f) = s.submit_flush(w);
        let cost = f.since(w).as_micros_f64();
        assert!(cost < 12.0, "PLP flush should be ~free, got {cost} us");
    }

    #[test]
    fn reads_observe_submission_order() {
        let mut s = ssd(SsdProfile::pm981());
        s.submit_write(SimTime::ZERO, 9, one_block(1), false);
        s.submit_write(SimTime::ZERO, 9, one_block(2), false);
        let (_, _, data) = s.submit_read(t(1), 9, 1);
        assert_eq!(data[0], BlockImage::Tag(2), "last submitted write wins");
    }

    #[test]
    fn discard_erases_everywhere() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, done) = s.submit_write(SimTime::ZERO, 4, one_block(7), false);
        s.advance(done);
        s.submit_discard(done, 4, 1);
        assert!(!s.is_durable(4));
        assert_eq!(s.logical_read(4), BlockImage::Zero);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_transfer_rejected() {
        let mut s = ssd(SsdProfile::optane905p());
        let images = vec![BlockImage::Zero; 33];
        s.submit_write(SimTime::ZERO, 0, images, false);
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn out_of_range_write_rejected() {
        let p = SsdProfile::optane905p();
        let cap = p.capacity_blocks;
        let mut s = ssd(p);
        s.submit_write(SimTime::ZERO, cap, one_block(1), false);
    }

    #[test]
    fn quiesce_settles_in_flight_commands() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        // Quiesce *before* the write's completion instant: the alive
        // device still finishes the accepted command.
        let settled = s.quiesce(SimTime::from_nanos(done.as_nanos() / 2));
        assert!(settled >= done, "quiesce runs to the last completion");
        assert!(s.is_durable(5), "accepted PLP write lands on media");
        // A crash after the quiesce point loses nothing more.
        s.crash(settled);
        assert!(s.is_durable(5));
    }

    #[test]
    fn quiesce_on_idle_device_is_a_no_op() {
        let mut s = ssd(SsdProfile::pm981());
        let t0 = t(5);
        assert_eq!(s.quiesce(t0), t0);
    }

    #[test]
    fn integrity_seals_landed_blocks_and_scrub_is_clean() {
        let mut s = ssd(SsdProfile::optane905p());
        s.set_integrity(true);
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        s.advance(done);
        let (scanned, corrupt) = s.scrub();
        assert_eq!(scanned, 1);
        assert!(corrupt.is_empty());
        assert!(s.media_verified());
    }

    #[test]
    fn integrity_off_records_no_seals() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        s.advance(done);
        assert_eq!(s.scrub(), (0, Vec::new()));
    }

    /// A block whose bytes are nonzero throughout, so a torn (half
    /// written, half zero) landing is visibly different from the
    /// intended image. Tag images have all-zero tails, which a tear
    /// cannot corrupt — and should not report as corrupt.
    fn noisy_block(fill: u8) -> Vec<BlockImage> {
        vec![BlockImage::Bytes(
            vec![fill | 1; BLOCK_SIZE as usize].into_boxed_slice(),
        )]
    }

    #[test]
    fn crash_tears_the_inflight_write_under_its_intended_seal() {
        let mut s = ssd(SsdProfile::optane905p());
        s.set_integrity(true);
        let (_, d0) = s.submit_write(SimTime::ZERO, 1, noisy_block(7), false);
        s.advance(d0);
        let (_, done) = s.submit_write(d0, 5, noisy_block(9), false);
        // Power cut mid-write: the in-flight command tears.
        let torn = s.crash(SimTime::from_nanos(d0.as_nanos() / 2 + done.as_nanos() / 2));
        assert_eq!(torn, 1);
        let (scanned, corrupt) = s.scrub();
        assert_eq!(scanned, 2, "settled block + torn block are sealed");
        assert_eq!(corrupt, vec![5], "only the torn block mismatches");
        assert!(!s.media_verified());
        // The torn image is the half-written prefix of the intended one.
        let bytes = s.durable_read(5).to_bytes(BLOCK_SIZE as usize);
        assert_eq!(bytes[0], 9, "leading half landed");
        assert!(bytes[2048..].iter().all(|&b| b == 0), "tail never landed");
    }

    #[test]
    fn volatile_drain_head_tears_on_crash() {
        let mut s = ssd(SsdProfile::pm981());
        s.set_integrity(true);
        let (_, w) = s.submit_write(SimTime::ZERO, 3, noisy_block(4), false);
        let (_, f) = s.submit_flush(w);
        s.advance(f);
        // A fresh cached write sits at the cache head when power cuts.
        let (_, done) = s.submit_write(f, 8, noisy_block(6), false);
        let torn = s.crash(done + SimDuration::from_nanos(1));
        assert_eq!(torn, 1);
        let (_, corrupt) = s.scrub();
        assert_eq!(corrupt, vec![8]);
    }

    #[test]
    fn quiesced_crash_tears_nothing() {
        let mut s = ssd(SsdProfile::optane905p());
        s.set_integrity(true);
        let (_, done) = s.submit_write(SimTime::ZERO, 5, one_block(9), false);
        s.quiesce(done);
        assert_eq!(s.crash(done), 0, "nothing in flight, nothing torn");
        assert!(s.media_verified());
    }

    #[test]
    fn rot_flips_distinct_sealed_blocks_and_scrub_finds_them_all() {
        let mut s = ssd(SsdProfile::optane905p());
        s.set_integrity(true);
        let mut now = SimTime::ZERO;
        for lba in 0..8 {
            let (_, done) = s.submit_write(now, lba, one_block(lba), false);
            now = done;
        }
        s.advance(now);
        let rotted = s.rot_at_rest(3);
        assert_eq!(rotted, 3);
        let (scanned, corrupt) = s.scrub();
        assert_eq!(scanned, 8);
        assert_eq!(corrupt.len(), 3, "every rotted block detected");
        // Asking for more rot than there are blocks caps out.
        assert_eq!(s.rot_at_rest(100), 8 - 3 + 3);
    }

    #[test]
    fn rot_is_a_no_op_with_integrity_off() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, done) = s.submit_write(SimTime::ZERO, 0, one_block(1), false);
        s.advance(done);
        assert_eq!(s.rot_at_rest(5), 0);
    }

    #[test]
    fn discard_repairs_a_corrupt_block_by_removal() {
        let mut s = ssd(SsdProfile::optane905p());
        s.set_integrity(true);
        let (_, done) = s.submit_write(SimTime::ZERO, 4, one_block(7), false);
        s.advance(done);
        s.rot_at_rest(1);
        assert!(!s.media_verified());
        s.submit_discard(done, 4, 1);
        assert!(s.media_verified(), "discarded block no longer scrubbed");
    }

    #[test]
    fn pmr_survives_crash() {
        let mut s = ssd(SsdProfile::pm981());
        s.pmr_mut().mmio_write(0, &[1, 2, 3, 4]);
        s.crash(t(10));
        assert_eq!(s.pmr().mmio_read(0, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = ssd(SsdProfile::optane905p());
        let (_, w) = s.submit_write(SimTime::ZERO, 0, one_block(1), false);
        let (_, f) = s.submit_flush(w);
        let (_, r, _) = s.submit_read(f, 0, 1);
        s.advance(r + SimDuration::from_micros(100));
        assert_eq!(s.stats().writes, 1);
        assert_eq!(s.stats().flushes, 1);
        assert_eq!(s.stats().reads, 1);
        assert_eq!(s.stats().blocks_written, 1);
    }

    #[test]
    fn iops_cap_enforced_by_cmd_units() {
        let p = SsdProfile::optane905p();
        let cap = p.iops_cap();
        let mut s = ssd(p);
        let n: u64 = 20_000;
        let mut last = SimTime::ZERO;
        for i in 0..n {
            let (_, done) = s.submit_write(SimTime::ZERO, i, one_block(i), false);
            last = last.max(done);
        }
        let achieved = n as f64 / last.as_secs_f64();
        assert!(
            achieved < cap * 1.1,
            "IOPS {achieved:.0} exceeds cap {cap:.0}"
        );
    }
}
