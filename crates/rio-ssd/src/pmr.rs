//! The Persistent Memory Region: byte-addressable, crash-survivable.
//!
//! The paper uses 2 MB of capacitor-backed in-SSD DRAM remapped through
//! a PCIe BAR (§5). The model is a plain byte array that survives
//! [`crate::Ssd::crash`]; the *cost* of a persistent MMIO write
//! (~0.6 µs per 32 B record, §6.1) is charged by the caller, because on
//! real hardware it is the issuing CPU that stalls on the read-after-
//! write, not the SSD.

/// A byte-addressable persistent region.
#[derive(Debug, Clone)]
pub struct Pmr {
    bytes: Vec<u8>,
    writes: u64,
    bytes_written: u64,
}

impl Pmr {
    /// Creates a zeroed region of `len` bytes.
    pub fn new(len: usize) -> Self {
        Pmr {
            bytes: vec![0; len],
            writes: 0,
            bytes_written: 0,
        }
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the region is zero-sized (PMR absent).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Stores `data` at `offset` (a persistent MMIO write).
    ///
    /// # Panics
    ///
    /// Panics if the write exceeds the region.
    pub fn mmio_write(&mut self, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= self.bytes.len(),
            "PMR write out of bounds: {}+{} > {}",
            offset,
            data.len(),
            self.bytes.len()
        );
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
        self.writes += 1;
        self.bytes_written += data.len() as u64;
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the read exceeds the region.
    pub fn mmio_read(&self, offset: usize, len: usize) -> &[u8] {
        assert!(offset + len <= self.bytes.len(), "PMR read out of bounds");
        &self.bytes[offset..offset + len]
    }

    /// The whole region (post-crash scanning).
    pub fn contents(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of MMIO writes performed (stats).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total bytes written (stats).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut p = Pmr::new(64);
        p.mmio_write(8, &[1, 2, 3]);
        assert_eq!(p.mmio_read(8, 3), &[1, 2, 3]);
        assert_eq!(p.mmio_read(0, 2), &[0, 0]);
        assert_eq!(p.write_count(), 1);
        assert_eq!(p.bytes_written(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_rejected() {
        let mut p = Pmr::new(16);
        p.mmio_write(10, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_rejected() {
        let p = Pmr::new(16);
        let _ = p.mmio_read(10, 8);
    }

    #[test]
    fn zero_sized_region() {
        let p = Pmr::new(0);
        assert!(p.is_empty());
        assert_eq!(p.contents().len(), 0);
    }
}
