//! The persistent block store behind the write cache.
//!
//! Stores a [`BlockImage`] per logical block. File-system tests write
//! real bytes; raw block benchmarks use cheap tags, so a simulated
//! multi-gigabyte run costs megabytes of host memory.
//!
//! With end-to-end integrity on, every block that lands on media is
//! *sealed*: the store records the CRC-32C of the intended image next
//! to whatever bytes actually landed. A torn write (partial image,
//! intended seal) or at-rest bit rot (mutated image, original seal)
//! leaves the two inconsistent, which is exactly what a recovery scrub
//! checks for.

use rio_sim::FxHashMap;

/// Contents of one 4 KB block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockImage {
    /// Never written (reads back as zeroes).
    Zero,
    /// A benchmark write identified by a token instead of real bytes.
    Tag(u64),
    /// Real data (file-system paths).
    Bytes(Box<[u8]>),
}

impl BlockImage {
    /// Materialises the block as bytes of length `block_size`.
    pub fn to_bytes(&self, block_size: usize) -> Vec<u8> {
        match self {
            BlockImage::Zero => vec![0; block_size],
            BlockImage::Tag(t) => {
                let mut v = vec![0; block_size];
                v[..8].copy_from_slice(&t.to_le_bytes());
                v
            }
            BlockImage::Bytes(b) => {
                let mut v = b.to_vec();
                v.resize(block_size, 0);
                v
            }
        }
    }
}

/// A sparse persistent store of block images with write versioning.
///
/// Lives on the per-write hot path (every accepted block lands here
/// once in the logical image and once on media), so the map uses the
/// simulator's fast deterministic hasher.
#[derive(Debug, Default, Clone)]
pub struct BlockStore {
    blocks: FxHashMap<u64, (u64, BlockImage)>,
    /// Intended-content CRC-32C per sealed block (integrity runs only;
    /// empty — and cost-free — otherwise).
    seals: FxHashMap<u64, u32>,
    next_version: u64,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Writes one block, returning its new version number. An unsealed
    /// write drops any stale seal: the recorded checksum always belongs
    /// to the last write.
    pub fn write(&mut self, lba: u64, image: BlockImage) -> u64 {
        self.next_version += 1;
        let v = self.next_version;
        self.blocks.insert(lba, (v, image));
        if !self.seals.is_empty() {
            self.seals.remove(&lba);
        }
        v
    }

    /// Writes one block together with the CRC-32C of its *intended*
    /// image. Callers landing clean data pass the checksum of `image`
    /// itself; a torn-write injection passes the intended checksum next
    /// to the partial bytes that actually hit media.
    pub fn write_sealed(&mut self, lba: u64, image: BlockImage, seal: u32) -> u64 {
        let v = self.write(lba, image);
        self.seals.insert(lba, seal);
        v
    }

    /// The recorded seal of `lba`, if the block was written sealed.
    pub fn seal(&self, lba: u64) -> Option<u32> {
        self.seals.get(&lba).copied()
    }

    /// Every sealed block address, ascending (a deterministic scrub
    /// order).
    pub fn sealed_lbas(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.seals.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Flips one bit of the stored image of `lba` without touching its
    /// seal (at-rest bit rot). Returns `false` when the block holds no
    /// data. `bit` indexes into the materialised `block_size`-byte
    /// image.
    pub fn flip_bit(&mut self, lba: u64, bit: usize, block_size: usize) -> bool {
        let Some((_, img)) = self.blocks.get_mut(&lba) else {
            return false;
        };
        let mut bytes = img.to_bytes(block_size);
        bytes[bit / 8] ^= 1 << (bit % 8);
        *img = BlockImage::Bytes(bytes.into_boxed_slice());
        true
    }

    /// Reads one block (unwritten blocks read back as [`BlockImage::Zero`]).
    pub fn read(&self, lba: u64) -> BlockImage {
        self.blocks
            .get(&lba)
            .map(|(_, img)| img.clone())
            .unwrap_or(BlockImage::Zero)
    }

    /// The version of the last write to `lba` (0 when never written).
    pub fn version(&self, lba: u64) -> u64 {
        self.blocks.get(&lba).map(|(v, _)| *v).unwrap_or(0)
    }

    /// Erases `count` blocks starting at `lba` (recovery roll-back /
    /// TRIM). Seals go with their blocks.
    pub fn discard(&mut self, lba: u64, count: u64) {
        for b in lba..lba + count {
            self.blocks.remove(&b);
            if !self.seals.is_empty() {
                self.seals.remove(&b);
            }
        }
    }

    /// Number of written blocks.
    pub fn written_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = BlockStore::new();
        assert_eq!(s.read(42), BlockImage::Zero);
        assert_eq!(s.version(42), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut s = BlockStore::new();
        let v1 = s.write(1, BlockImage::Tag(7));
        assert_eq!(s.read(1), BlockImage::Tag(7));
        let v2 = s.write(1, BlockImage::Tag(8));
        assert!(v2 > v1, "versions increase");
        assert_eq!(s.read(1), BlockImage::Tag(8));
    }

    #[test]
    fn bytes_round_trip() {
        let mut s = BlockStore::new();
        let data: Box<[u8]> = vec![0xAB; 4096].into_boxed_slice();
        s.write(5, BlockImage::Bytes(data.clone()));
        assert_eq!(s.read(5), BlockImage::Bytes(data));
    }

    #[test]
    fn discard_erases_range() {
        let mut s = BlockStore::new();
        for lba in 0..10 {
            s.write(lba, BlockImage::Tag(lba));
        }
        s.discard(2, 3);
        assert_eq!(s.read(1), BlockImage::Tag(1));
        assert_eq!(s.read(2), BlockImage::Zero);
        assert_eq!(s.read(4), BlockImage::Zero);
        assert_eq!(s.read(5), BlockImage::Tag(5));
        assert_eq!(s.written_blocks(), 7);
    }

    #[test]
    fn sealed_write_records_and_clears_checksums() {
        let mut s = BlockStore::new();
        s.write_sealed(3, BlockImage::Tag(9), 0xDEAD_BEEF);
        assert_eq!(s.seal(3), Some(0xDEAD_BEEF));
        assert_eq!(s.sealed_lbas(), vec![3]);
        // An unsealed overwrite drops the stale seal.
        s.write(3, BlockImage::Tag(10));
        assert_eq!(s.seal(3), None);
        assert!(s.sealed_lbas().is_empty());
    }

    #[test]
    fn discard_takes_seals_with_it() {
        let mut s = BlockStore::new();
        s.write_sealed(5, BlockImage::Tag(1), 7);
        s.write_sealed(6, BlockImage::Tag(2), 8);
        s.discard(5, 1);
        assert_eq!(s.seal(5), None);
        assert_eq!(s.seal(6), Some(8));
    }

    #[test]
    fn flip_bit_mutates_image_but_not_seal() {
        let mut s = BlockStore::new();
        let clean = BlockImage::Tag(0xFF).to_bytes(64);
        s.write_sealed(1, BlockImage::Tag(0xFF), 123);
        assert!(s.flip_bit(1, 9, 64));
        let rotten = s.read(1).to_bytes(64);
        assert_ne!(clean, rotten);
        assert_eq!(clean[1] ^ 2, rotten[1], "exactly bit 9 flipped");
        assert_eq!(s.seal(1), Some(123), "seal untouched by rot");
        assert!(!s.flip_bit(99, 0, 64), "absent block cannot rot");
    }

    #[test]
    fn to_bytes_materialisation() {
        assert_eq!(BlockImage::Zero.to_bytes(8), vec![0; 8]);
        let tag = BlockImage::Tag(0x0102).to_bytes(16);
        assert_eq!(tag[0], 0x02);
        assert_eq!(tag[1], 0x01);
        let short = BlockImage::Bytes(vec![9, 9].into_boxed_slice()).to_bytes(4);
        assert_eq!(short, vec![9, 9, 0, 0]);
    }
}
