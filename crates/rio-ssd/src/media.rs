//! The persistent block store behind the write cache.
//!
//! Stores a [`BlockImage`] per logical block. File-system tests write
//! real bytes; raw block benchmarks use cheap tags, so a simulated
//! multi-gigabyte run costs megabytes of host memory.

use rio_sim::FxHashMap;

/// Contents of one 4 KB block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockImage {
    /// Never written (reads back as zeroes).
    Zero,
    /// A benchmark write identified by a token instead of real bytes.
    Tag(u64),
    /// Real data (file-system paths).
    Bytes(Box<[u8]>),
}

impl BlockImage {
    /// Materialises the block as bytes of length `block_size`.
    pub fn to_bytes(&self, block_size: usize) -> Vec<u8> {
        match self {
            BlockImage::Zero => vec![0; block_size],
            BlockImage::Tag(t) => {
                let mut v = vec![0; block_size];
                v[..8].copy_from_slice(&t.to_le_bytes());
                v
            }
            BlockImage::Bytes(b) => {
                let mut v = b.to_vec();
                v.resize(block_size, 0);
                v
            }
        }
    }
}

/// A sparse persistent store of block images with write versioning.
///
/// Lives on the per-write hot path (every accepted block lands here
/// once in the logical image and once on media), so the map uses the
/// simulator's fast deterministic hasher.
#[derive(Debug, Default, Clone)]
pub struct BlockStore {
    blocks: FxHashMap<u64, (u64, BlockImage)>,
    next_version: u64,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Writes one block, returning its new version number.
    pub fn write(&mut self, lba: u64, image: BlockImage) -> u64 {
        self.next_version += 1;
        let v = self.next_version;
        self.blocks.insert(lba, (v, image));
        v
    }

    /// Reads one block (unwritten blocks read back as [`BlockImage::Zero`]).
    pub fn read(&self, lba: u64) -> BlockImage {
        self.blocks
            .get(&lba)
            .map(|(_, img)| img.clone())
            .unwrap_or(BlockImage::Zero)
    }

    /// The version of the last write to `lba` (0 when never written).
    pub fn version(&self, lba: u64) -> u64 {
        self.blocks.get(&lba).map(|(v, _)| *v).unwrap_or(0)
    }

    /// Erases `count` blocks starting at `lba` (recovery roll-back /
    /// TRIM).
    pub fn discard(&mut self, lba: u64, count: u64) {
        for b in lba..lba + count {
            self.blocks.remove(&b);
        }
    }

    /// Number of written blocks.
    pub fn written_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let s = BlockStore::new();
        assert_eq!(s.read(42), BlockImage::Zero);
        assert_eq!(s.version(42), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut s = BlockStore::new();
        let v1 = s.write(1, BlockImage::Tag(7));
        assert_eq!(s.read(1), BlockImage::Tag(7));
        let v2 = s.write(1, BlockImage::Tag(8));
        assert!(v2 > v1, "versions increase");
        assert_eq!(s.read(1), BlockImage::Tag(8));
    }

    #[test]
    fn bytes_round_trip() {
        let mut s = BlockStore::new();
        let data: Box<[u8]> = vec![0xAB; 4096].into_boxed_slice();
        s.write(5, BlockImage::Bytes(data.clone()));
        assert_eq!(s.read(5), BlockImage::Bytes(data));
    }

    #[test]
    fn discard_erases_range() {
        let mut s = BlockStore::new();
        for lba in 0..10 {
            s.write(lba, BlockImage::Tag(lba));
        }
        s.discard(2, 3);
        assert_eq!(s.read(1), BlockImage::Tag(1));
        assert_eq!(s.read(2), BlockImage::Zero);
        assert_eq!(s.read(4), BlockImage::Zero);
        assert_eq!(s.read(5), BlockImage::Tag(5));
        assert_eq!(s.written_blocks(), 7);
    }

    #[test]
    fn to_bytes_materialisation() {
        assert_eq!(BlockImage::Zero.to_bytes(8), vec![0; 8]);
        let tag = BlockImage::Tag(0x0102).to_bytes(16);
        assert_eq!(tag[0], 0x02);
        assert_eq!(tag[1], 0x01);
        let short = BlockImage::Bytes(vec![9, 9].into_boxed_slice()).to_bytes(4);
        assert_eq!(short, vec![9, 9, 0, 0]);
    }
}
