//! An RDMA fabric model with the four properties Rio builds on.
//!
//! 1. **Per-QP in-order delivery** — the reliable connected (RC)
//!    transport delivers SEND operations on one queue pair in order;
//!    across queue pairs there is no ordering (scheduler Principle 2
//!    pins a stream to one QP to exploit exactly this). Go-back-N
//!    recovery weakens this under loss: a message stuck in a
//!    retransmission timeout can be overtaken by later traffic, which
//!    is exactly the reordering Rio's target-side ordering attributes
//!    absorb.
//! 2. **One-sided vs two-sided cost asymmetry** — RDMA READ/WRITE
//!    bypass the remote CPU; SEND/RECV consume it. The model returns
//!    timing; the caller charges CPU where the paper says it burns
//!    (§2.1).
//! 3. **Finite link bandwidth with serialization** — a 200 Gbps link
//!    with per-NIC egress queuing, so large transfers and congestion
//!    shape completion times.
//! 4. **Packetized, lossy, multi-path transport** — messages segment
//!    into MTU packets, each packet samples a deterministic drop, and
//!    every NIC can spread queue pairs over asymmetric paths (distinct
//!    latency/bandwidth/jitter) with optional migration.
//!
//! Like the SSD model, the fabric is passive: operations take `now` and
//! return delivery instants — or, for the event-driven burst APIs, a
//! [`fabric::XferStep::Dropped`] resumption point the caller schedules.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fabric;

pub use fabric::{Fabric, FabricProfile, Nic, NicStats, PathProfile, PathStats, XferStep};
