//! An RDMA fabric model with the three properties Rio builds on.
//!
//! 1. **Per-QP in-order delivery** — the reliable connected (RC)
//!    transport delivers SEND operations on one queue pair in order;
//!    across queue pairs there is no ordering (scheduler Principle 2
//!    pins a stream to one QP to exploit exactly this).
//! 2. **One-sided vs two-sided cost asymmetry** — RDMA READ/WRITE
//!    bypass the remote CPU; SEND/RECV consume it. The model returns
//!    timing; the caller charges CPU where the paper says it burns
//!    (§2.1).
//! 3. **Finite link bandwidth with serialization** — a 200 Gbps link
//!    with per-NIC egress queuing, so large transfers and congestion
//!    shape completion times.
//!
//! Like the SSD model, the fabric is passive: operations take `now` and
//! return delivery instants.

pub mod fabric;

pub use fabric::{Fabric, FabricProfile, Nic, NicStats};
