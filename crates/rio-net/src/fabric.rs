//! The fabric, NICs and queue pairs.

use rio_sim::{BandwidthLink, SimDuration, SimRng, SimTime};

/// Fabric timing parameters.
#[derive(Debug, Clone)]
pub struct FabricProfile {
    /// One-way small-message latency in microseconds.
    pub one_way_latency_us: f64,
    /// Link bandwidth in bytes per second (200 Gbps = 25 GB/s).
    pub bandwidth: f64,
    /// Latency jitter amplitude (drives cross-QP reordering).
    pub jitter: f64,
}

impl FabricProfile {
    /// ConnectX-6 class fabric: 200 Gbps, ~1.8 µs one-way.
    pub fn connectx6() -> Self {
        FabricProfile {
            one_way_latency_us: 1.8,
            bandwidth: 25.0e9,
            jitter: 0.25,
        }
    }

    /// A kernel-TCP fabric on the same 200 Gbps link: an order of
    /// magnitude more one-way latency (socket + softirq path). Each
    /// socket preserves delivery order, so scheduler Principle 2 maps
    /// onto stream-per-socket exactly as §4.5 notes.
    pub fn tcp_200g() -> Self {
        FabricProfile {
            one_way_latency_us: 15.0,
            bandwidth: 25.0e9,
            jitter: 0.35,
        }
    }
}

/// Per-NIC statistics.
#[derive(Debug, Default, Clone)]
pub struct NicStats {
    /// Two-sided SEND operations posted.
    pub sends: u64,
    /// One-sided operations issued.
    pub one_sided: u64,
    /// Total bytes serialized onto the egress link.
    pub bytes_out: u64,
}

/// One reliable-connected queue pair's delivery cursor.
#[derive(Debug, Clone, Copy, Default)]
struct QueuePair {
    last_delivery: SimTime,
}

/// A network interface with an egress link and a set of queue pairs.
#[derive(Debug)]
pub struct Nic {
    egress: BandwidthLink,
    qps: Vec<QueuePair>,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC with `n_qps` queue pairs on a link of `bandwidth`
    /// bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `n_qps` is zero.
    pub fn new(n_qps: usize, bandwidth: f64) -> Self {
        assert!(n_qps > 0, "need at least one queue pair");
        Nic {
            egress: BandwidthLink::new(bandwidth),
            qps: vec![QueuePair::default(); n_qps],
            stats: NicStats::default(),
        }
    }

    /// Number of queue pairs.
    pub fn n_qps(&self) -> usize {
        self.qps.len()
    }

    /// NIC statistics.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Resets in-flight cursors (crash / reconnect).
    pub fn reset(&mut self, now: SimTime) {
        for qp in &mut self.qps {
            qp.last_delivery = now;
        }
    }
}

/// The fabric: latency model plus a deterministic jitter source.
#[derive(Debug)]
pub struct Fabric {
    profile: FabricProfile,
    rng: SimRng,
}

impl Fabric {
    /// Creates a fabric with a deterministic jitter seed.
    pub fn new(profile: FabricProfile, seed: u64) -> Self {
        Fabric {
            profile,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The fabric profile.
    pub fn profile(&self) -> &FabricProfile {
        &self.profile
    }

    fn latency(&mut self) -> SimDuration {
        SimDuration::from_micros_f64(
            self.profile.one_way_latency_us * self.rng.jitter(self.profile.jitter),
        )
    }

    /// Posts a two-sided SEND of `bytes` on `qp` of `src`; returns the
    /// delivery instant at the receiver. Delivery on one QP is in
    /// order; the receiver's CPU cost is charged by the caller.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range queue pair.
    pub fn send(&mut self, src: &mut Nic, qp: usize, now: SimTime, bytes: u64) -> SimTime {
        assert!(qp < src.qps.len(), "queue pair {qp} out of range");
        let wire_done = src.egress.transfer(now, bytes);
        let mut delivery = wire_done + self.latency();
        // RC in-order delivery within the queue pair.
        delivery = delivery.max(src.qps[qp].last_delivery);
        src.qps[qp].last_delivery = delivery;
        src.stats.sends += 1;
        src.stats.bytes_out += bytes;
        delivery
    }

    /// Issues a one-sided RDMA READ: `reader` pulls `bytes` from the
    /// remote `source` NIC's memory. Returns when the data has fully
    /// arrived at the reader. No remote CPU involvement.
    pub fn rdma_read(
        &mut self,
        reader: &mut Nic,
        source: &mut Nic,
        now: SimTime,
        bytes: u64,
    ) -> SimTime {
        // Request travels to the source side...
        let request_at = now + self.latency();
        // ...data serializes on the source's egress and travels back.
        let data_out = source.egress.transfer(request_at, bytes);
        let arrival = data_out + self.latency();
        reader.stats.one_sided += 1;
        source.stats.bytes_out += bytes;
        arrival
    }

    /// Issues a one-sided RDMA WRITE: `writer` pushes `bytes` into the
    /// remote side's memory. Returns when the data is placed remotely.
    pub fn rdma_write(&mut self, writer: &mut Nic, now: SimTime, bytes: u64) -> SimTime {
        let wire_done = writer.egress.transfer(now, bytes);
        let arrival = wire_done + self.latency();
        writer.stats.one_sided += 1;
        writer.stats.bytes_out += bytes;
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(FabricProfile::connectx6(), 7)
    }

    #[test]
    fn send_latency_near_profile() {
        let mut f = fabric();
        let mut nic = Nic::new(4, f.profile().bandwidth);
        let d = f.send(&mut nic, 0, SimTime::ZERO, 64);
        let us = d.as_micros_f64();
        assert!((1.0..3.0).contains(&us), "delivery at {us} us");
    }

    #[test]
    fn same_qp_delivery_is_fifo() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        let mut prev = SimTime::ZERO;
        for i in 0..200 {
            let d = f.send(&mut nic, 0, SimTime::from_nanos(i * 10), 64);
            assert!(d >= prev, "RC in-order delivery violated at send {i}");
            prev = d;
        }
    }

    #[test]
    fn cross_qp_can_reorder() {
        let mut f = fabric();
        let mut nic = Nic::new(8, f.profile().bandwidth);
        // Send on alternating QPs at identical instants; jitter must
        // produce at least one inversion over enough trials.
        let mut inverted = false;
        let mut last_a = SimTime::ZERO;
        for i in 0..100 {
            let now = SimTime::from_nanos(i * 1000);
            let a = f.send(&mut nic, 0, now, 64);
            let b = f.send(&mut nic, 1, now, 64);
            if b < a || a < last_a {
                inverted = true;
            }
            last_a = a;
        }
        assert!(inverted, "expected cross-QP reordering from jitter");
    }

    #[test]
    fn large_transfer_pays_serialization() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        let small = f.send(&mut nic, 0, SimTime::ZERO, 64);
        let mut f2 = fabric();
        let mut nic2 = Nic::new(1, f2.profile().bandwidth);
        // 1 MB at 25 GB/s is 40 us of wire time.
        let large = f2.send(&mut nic2, 0, SimTime::ZERO, 1 << 20);
        let delta = large.as_micros_f64() - small.as_micros_f64();
        assert!(delta > 30.0, "1 MB should add ≥30 us, added {delta}");
    }

    #[test]
    fn egress_is_shared_across_qps() {
        let mut f = fabric();
        let mut nic = Nic::new(2, f.profile().bandwidth);
        // Two 1 MB sends at t=0 on different QPs serialize on the wire.
        let a = f.send(&mut nic, 0, SimTime::ZERO, 1 << 20);
        let b = f.send(&mut nic, 1, SimTime::ZERO, 1 << 20);
        assert!(
            b.as_micros_f64() > a.as_micros_f64() + 25.0,
            "second transfer must queue behind the first"
        );
    }

    #[test]
    fn rdma_read_round_trip_and_no_reader_egress() {
        let mut f = fabric();
        let mut initiator = Nic::new(1, f.profile().bandwidth);
        let mut target = Nic::new(1, f.profile().bandwidth);
        // Target reads 8 KB from the initiator (NVMe-oF write data pull).
        let done = f.rdma_read(&mut target, &mut initiator, SimTime::ZERO, 8192);
        let us = done.as_micros_f64();
        // Two latencies plus ~0.33 us of wire time.
        assert!((2.5..8.0).contains(&us), "read completed at {us} us");
        assert_eq!(target.stats().one_sided, 1);
        assert_eq!(initiator.stats().bytes_out, 8192, "data leaves the source");
        assert_eq!(target.stats().bytes_out, 0, "reader sends no payload");
    }

    #[test]
    fn rdma_write_one_way() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        let done = f.rdma_write(&mut nic, SimTime::ZERO, 4096);
        let us = done.as_micros_f64();
        assert!((1.0..4.0).contains(&us), "write placed at {us} us");
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric();
        let mut nic = Nic::new(2, f.profile().bandwidth);
        f.send(&mut nic, 0, SimTime::ZERO, 100);
        f.send(&mut nic, 1, SimTime::ZERO, 100);
        f.rdma_write(&mut nic, SimTime::ZERO, 100);
        assert_eq!(nic.stats().sends, 2);
        assert_eq!(nic.stats().one_sided, 1);
        assert_eq!(nic.stats().bytes_out, 300);
    }

    #[test]
    fn reset_clears_cursors() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        f.send(&mut nic, 0, SimTime::ZERO, 1 << 20);
        nic.reset(SimTime::from_nanos(500));
        // After reset a send is not held behind the old cursor.
        let d = f.send(&mut nic, 0, SimTime::from_nanos(500), 64);
        assert!(d.as_micros_f64() < 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_qp_rejected() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        f.send(&mut nic, 3, SimTime::ZERO, 64);
    }

    #[test]
    fn tcp_profile_is_slower_but_ordered() {
        let mut f = Fabric::new(FabricProfile::tcp_200g(), 7);
        let mut nic = Nic::new(2, f.profile().bandwidth);
        let d = f.send(&mut nic, 0, SimTime::ZERO, 64);
        assert!(d.as_micros_f64() > 8.0, "TCP latency should dwarf RDMA");
        // Per-socket FIFO still holds.
        let mut prev = SimTime::ZERO;
        for i in 0..50 {
            let d = f.send(&mut nic, 0, SimTime::from_nanos(i * 100), 64);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn determinism_same_seed_same_timing() {
        let run = || {
            let mut f = Fabric::new(FabricProfile::connectx6(), 99);
            let mut nic = Nic::new(4, f.profile().bandwidth);
            (0..50)
                .map(|i| {
                    f.send(&mut nic, i % 4, SimTime::from_nanos(i as u64 * 100), 64)
                        .as_nanos()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
