//! The fabric, NICs, queue pairs, paths, and go-back-N retransmission.
//!
//! Messages are segmented into MTU-sized packets. Each packet samples a
//! deterministic per-packet drop from the fabric's [`SimRng`]; a drop
//! triggers go-back-N recovery: the sender finishes transmitting the
//! current window (the receiver discards everything after the gap),
//! waits one retransmission timeout, and resends from the lost packet.
//! Every NIC carries one or more *paths* — independent egress links
//! with their own latency, bandwidth and jitter — and each queue pair
//! is pinned to a path (with optional migration).
//!
//! The fabric stays passive: operations take `now` and either return a
//! delivery instant or a [`XferStep::Dropped`] resumption point the
//! caller schedules as an event. The convenience wrappers ([`Fabric::send`],
//! [`Fabric::rdma_read`], [`Fabric::rdma_write`]) run the retransmission
//! loop internally and return only the final delivery instant.

use rio_sim::{BandwidthLink, SimDuration, SimRng, SimTime};

/// One physical network path: an independent egress lane with its own
/// latency, bandwidth and jitter (e.g. distinct switch hops in a Clos
/// fabric, or rails of a multi-rail NIC).
#[derive(Debug, Clone, PartialEq)]
pub struct PathProfile {
    /// One-way small-message latency in microseconds on this path.
    pub one_way_latency_us: f64,
    /// Path bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Latency jitter amplitude on this path.
    pub jitter: f64,
}

/// Fabric timing, segmentation and loss parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricProfile {
    /// One-way small-message latency in microseconds (base path).
    pub one_way_latency_us: f64,
    /// Aggregate link bandwidth in bytes per second (200 Gbps = 25 GB/s).
    pub bandwidth: f64,
    /// Latency jitter amplitude (drives cross-QP reordering).
    pub jitter: f64,
    /// Maximum transmission unit: messages are segmented into packets
    /// of at most this many bytes.
    pub mtu_bytes: u32,
    /// Per-packet drop probability, clamped to `[0, 0.995]` so
    /// go-back-N recovery always terminates.
    pub loss_rate: f64,
    /// Per-packet in-flight corruption probability, clamped like
    /// [`FabricProfile::loss_rate`]. A corrupted packet is delivered,
    /// fails the receiver's CRC-32C payload check, and is NAKed into
    /// the same go-back-N recovery a drop takes — the wire cost is
    /// identical, the bookkeeping separates the causes.
    pub corrupt_rate: f64,
    /// Go-back-N recovery latency in microseconds: a lost packet
    /// stalls its message for this long before the window resends.
    /// The default models NAK-triggered recovery (the receiver spots
    /// the sequence gap from later traffic on the QP and NAKs within a
    /// few round trips), not a full RNR/ack timeout.
    pub rto_us: f64,
    /// Messages per queue pair between path migrations; `0` pins each
    /// QP to its initial path forever. When non-zero, a retransmission
    /// timeout also fails the QP over to the next path.
    pub migrate_every: u64,
    /// The paths of this fabric. Never empty; constructors start with a
    /// single path mirroring the base latency/bandwidth/jitter fields.
    pub paths: Vec<PathProfile>,
}

impl FabricProfile {
    fn base(one_way_latency_us: f64, bandwidth: f64, jitter: f64) -> Self {
        FabricProfile {
            one_way_latency_us,
            bandwidth,
            jitter,
            mtu_bytes: 4096,
            loss_rate: 0.0,
            corrupt_rate: 0.0,
            rto_us: 25.0,
            migrate_every: 0,
            paths: vec![PathProfile {
                one_way_latency_us,
                bandwidth,
                jitter,
            }],
        }
    }

    /// ConnectX-6 class fabric: 200 Gbps, ~1.8 µs one-way.
    pub fn connectx6() -> Self {
        FabricProfile::base(1.8, 25.0e9, 0.25)
    }

    /// A kernel-TCP fabric on the same 200 Gbps link: an order of
    /// magnitude more one-way latency (socket + softirq path). Each
    /// socket preserves delivery order, so scheduler Principle 2 maps
    /// onto stream-per-socket exactly as §4.5 notes.
    pub fn tcp_200g() -> Self {
        FabricProfile::base(15.0, 25.0e9, 0.35)
    }

    /// Enables per-packet loss at `rate` with retransmission timeout
    /// `rto_us` microseconds.
    pub fn with_loss(mut self, rate: f64, rto_us: f64) -> Self {
        self.loss_rate = rate.clamp(0.0, 0.995);
        self.rto_us = rto_us.max(0.0);
        self
    }

    /// Enables per-packet in-flight corruption at `rate`. A corrupted
    /// packet rides the wire normally but fails the receiver's payload
    /// digest check, which NAKs it into the same go-back-N window a
    /// drop enters.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate.clamp(0.0, 0.995);
        self
    }

    /// Sets the MTU (at least 256 bytes).
    pub fn with_mtu(mut self, mtu_bytes: u32) -> Self {
        self.mtu_bytes = mtu_bytes.max(256);
        self
    }

    /// Replaces the path set with `n` asymmetric paths: the aggregate
    /// bandwidth is split evenly, and path `i` has latency
    /// `base * (1 + spread * i)` — path 0 is the fastest. Jitter is
    /// inherited from the base profile.
    pub fn with_paths(mut self, n: usize, latency_spread: f64) -> Self {
        let n = n.max(1);
        self.paths = (0..n)
            .map(|i| PathProfile {
                one_way_latency_us: self.one_way_latency_us
                    * (1.0 + latency_spread.max(0.0) * i as f64),
                bandwidth: self.bandwidth / n as f64,
                jitter: self.jitter,
            })
            .collect();
        self
    }

    /// Enables path migration: every `every` messages a queue pair
    /// rotates to the next path, and a retransmission timeout fails the
    /// QP over immediately. `0` disables migration.
    pub fn with_migration(mut self, every: u64) -> Self {
        self.migrate_every = every;
        self
    }

    /// Number of paths.
    pub fn n_paths(&self) -> usize {
        self.paths.len()
    }

    /// Packets needed for a `bytes`-sized message at this MTU.
    pub fn packets_for(&self, bytes: u64) -> u32 {
        let mtu = self.mtu_bytes.max(1) as u64;
        bytes.div_ceil(mtu).max(1) as u32
    }
}

/// Per-path transmit statistics of one NIC.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct PathStats {
    /// Packets transmitted on this path (including discarded tails and
    /// retransmissions).
    pub packets: u64,
    /// Bytes serialized onto this path.
    pub bytes: u64,
    /// Packets the fabric dropped on this path.
    pub drops: u64,
    /// Packets retransmitted on this path after a timeout.
    pub retransmits: u64,
}

/// Per-NIC statistics.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct NicStats {
    /// Two-sided SEND operations posted.
    pub sends: u64,
    /// One-sided operations issued.
    pub one_sided: u64,
    /// Total bytes serialized onto the egress links.
    pub bytes_out: u64,
    /// Packets transmitted (segmentation makes this ≥ message count).
    pub packets: u64,
    /// Packets the fabric dropped.
    pub drops: u64,
    /// Packets retransmitted after a go-back-N timeout.
    pub retransmits: u64,
    /// Recovery rounds entered (timeouts fired).
    pub retx_rounds: u64,
    /// Messages currently stalled awaiting a retransmission timeout.
    pub retx_inflight: u64,
    /// Peak of [`NicStats::retx_inflight`] over the run.
    pub retx_inflight_peak: u64,
    /// Packets the fabric corrupted in flight.
    pub corrupt_injected: u64,
    /// Corrupted packets the receiver's digest check caught and NAKed.
    /// The fabric model delivers no silent corruption, so this always
    /// equals [`NicStats::corrupt_injected`]; keeping both makes the
    /// "every injected corruption is detected" ledger explicit.
    pub corrupt_detected: u64,
    /// Packets re-fetched because a corruption (not a drop) cut the
    /// window: the corrupted packet and the go-back-N tail behind it.
    pub corrupt_refetched: u64,
}

/// One reliable-connected queue pair's delivery cursor and path pin.
#[derive(Debug, Clone, Copy, Default)]
struct QueuePair {
    last_delivery: SimTime,
    path: u32,
    msgs: u64,
}

/// One egress path of a NIC: the wire plus its counters.
#[derive(Debug)]
struct PathPort {
    link: BandwidthLink,
    stats: PathStats,
}

/// A network interface with per-path egress links and queue pairs.
#[derive(Debug)]
pub struct Nic {
    paths: Vec<PathPort>,
    qps: Vec<QueuePair>,
    stats: NicStats,
}

impl Nic {
    /// Creates a single-path NIC with `n_qps` queue pairs on a link of
    /// `bandwidth` bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `n_qps` is zero.
    pub fn new(n_qps: usize, bandwidth: f64) -> Self {
        assert!(n_qps > 0, "need at least one queue pair");
        Nic {
            paths: vec![PathPort {
                link: BandwidthLink::new(bandwidth),
                stats: PathStats::default(),
            }],
            qps: vec![QueuePair::default(); n_qps],
            stats: NicStats::default(),
        }
    }

    /// Creates a NIC with one egress link per path of `profile`, and
    /// queue pairs pinned round-robin across the paths.
    ///
    /// # Panics
    ///
    /// Panics if `n_qps` is zero.
    pub fn for_profile(n_qps: usize, profile: &FabricProfile) -> Self {
        assert!(n_qps > 0, "need at least one queue pair");
        let paths: Vec<PathPort> = profile
            .paths
            .iter()
            .map(|p| PathPort {
                link: BandwidthLink::new(p.bandwidth),
                stats: PathStats::default(),
            })
            .collect();
        let n_paths = paths.len().max(1);
        Nic {
            paths,
            qps: (0..n_qps)
                .map(|q| QueuePair {
                    last_delivery: SimTime::ZERO,
                    path: (q % n_paths) as u32,
                    msgs: 0,
                })
                .collect(),
            stats: NicStats::default(),
        }
    }

    /// Number of queue pairs.
    pub fn n_qps(&self) -> usize {
        self.qps.len()
    }

    /// Number of egress paths.
    pub fn n_paths(&self) -> usize {
        self.paths.len()
    }

    /// NIC statistics.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Per-path transmit statistics, indexed by path.
    pub fn path_stats(&self) -> Vec<PathStats> {
        self.paths.iter().map(|p| p.stats.clone()).collect()
    }

    /// Resets in-flight state (crash / reconnect): delivery cursors,
    /// path pins and message counters return to their initial values,
    /// and messages parked in retransmission are forgotten (their
    /// resend events died with the crash). Cumulative statistics —
    /// including the retransmission-inflight peak — are kept.
    pub fn reset(&mut self, now: SimTime) {
        let n_paths = self.paths.len().max(1);
        for (q, qp) in self.qps.iter_mut().enumerate() {
            qp.last_delivery = now;
            qp.path = (q % n_paths) as u32;
            qp.msgs = 0;
        }
        self.stats.retx_inflight = 0;
    }

    /// The crash entry point: resets in-flight NIC state at a fault.
    ///
    /// Crash handlers must call this whenever they also discard the
    /// simulation events that would have driven this NIC's pending
    /// `resume_*` calls; otherwise [`NicStats::retx_inflight`] leaks the
    /// messages that were parked in retransmission at the crash, and a
    /// stale post-crash delivery would underflow the counter. Semantics
    /// are those of [`Nic::reset`]: queue pairs reconnect fresh at
    /// `now`, cumulative statistics survive.
    pub fn crash_reset(&mut self, now: SimTime) {
        self.reset(now);
    }

    /// Settles one parked message (a retransmission recovery finished).
    /// Guards the decrement: after a crash reset the counter is zero,
    /// and a stale delivery must not wrap it around.
    fn retx_settled(&mut self) {
        debug_assert!(
            self.stats.retx_inflight > 0,
            "retransmission settled with no message parked (stale post-crash delivery?)"
        );
        self.stats.retx_inflight = self.stats.retx_inflight.checked_sub(1).unwrap_or(0);
    }
}

/// Outcome of one transmit round of a message.
///
/// Event-driven callers schedule `Dropped::resume_at` as a simulation
/// event and call the matching `resume_*` method there; the analytic
/// wrappers loop internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum XferStep {
    /// Every packet arrived; the message is delivered at `at`.
    Delivered {
        /// Delivery instant at the receiver.
        at: SimTime,
    },
    /// A packet was dropped or corrupted mid-message; go-back-N
    /// resumes at `resume_at` with `pkts_left` packets still to
    /// deliver.
    Dropped {
        /// Instant the retransmission timeout fires.
        resume_at: SimTime,
        /// Packets not yet delivered (the failed one and its tail).
        pkts_left: u32,
        /// Whether the window was cut by an in-flight corruption the
        /// receiver NAKed (`true`) rather than a silent drop
        /// (`false`). Tracing uses this to attribute the retransmit.
        corrupted: bool,
    },
}

/// The fabric: per-path latency models plus a deterministic drop and
/// jitter source.
#[derive(Debug)]
pub struct Fabric {
    profile: FabricProfile,
    rng: SimRng,
}

impl Fabric {
    /// Creates a fabric with a deterministic jitter/drop seed.
    pub fn new(mut profile: FabricProfile, seed: u64) -> Self {
        profile.loss_rate = profile.loss_rate.clamp(0.0, 0.995);
        profile.corrupt_rate = profile.corrupt_rate.clamp(0.0, 0.995);
        if profile.paths.is_empty() {
            profile.paths.push(PathProfile {
                one_way_latency_us: profile.one_way_latency_us,
                bandwidth: profile.bandwidth,
                jitter: profile.jitter,
            });
        }
        Fabric {
            profile,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The fabric profile.
    pub fn profile(&self) -> &FabricProfile {
        &self.profile
    }

    /// Changes the in-flight corruption rate mid-run (the
    /// `PacketCorrupt` fault injects through this). Clamped like the
    /// constructor.
    pub fn set_corrupt_rate(&mut self, rate: f64) {
        self.profile.corrupt_rate = rate.clamp(0.0, 0.995);
    }

    /// One-way latency sample on path `p`.
    fn latency_on(&mut self, p: usize) -> SimDuration {
        let path = &self.profile.paths[p];
        SimDuration::from_micros_f64(path.one_way_latency_us * self.rng.jitter(path.jitter))
    }

    /// Retransmission timeout.
    fn rto(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.profile.rto_us)
    }

    /// Samples the fate of a header-only pull-request packet charged
    /// to `reader`: `None` if it got through, `Some(corrupted)` if it
    /// failed (dropped, or corrupted and NAKed). One re-fetched packet
    /// is counted on corruption — the request itself.
    fn request_pkt_failure(&mut self, reader: &mut Nic) -> Option<bool> {
        if self.profile.loss_rate > 0.0 && self.rng.chance(self.profile.loss_rate) {
            reader.stats.drops += 1;
            Some(false)
        } else if self.profile.corrupt_rate > 0.0 && self.rng.chance(self.profile.corrupt_rate) {
            reader.stats.corrupt_injected += 1;
            reader.stats.corrupt_detected += 1;
            reader.stats.corrupt_refetched += 1;
            Some(true)
        } else {
            None
        }
    }

    /// Size of packet `idx` of a `bytes` message split into `total`.
    fn pkt_bytes(&self, bytes: u64, total: u32, idx: u32) -> u64 {
        let mtu = self.profile.mtu_bytes.max(1) as u64;
        if idx + 1 < total {
            mtu
        } else {
            bytes - mtu * (total as u64 - 1)
        }
    }

    /// The path `qp` of `nic` currently uses (clamped so profiles and
    /// NICs with different path counts stay compatible).
    fn qp_path(&self, nic: &Nic, qp: usize) -> usize {
        nic.qps[qp].path as usize % nic.paths.len().min(self.profile.paths.len()).max(1)
    }

    /// Rotates `qp` to the next path when migration is enabled.
    fn migrate(&self, nic: &mut Nic, qp: usize) {
        if self.profile.migrate_every > 0 {
            let n = nic.paths.len().min(self.profile.paths.len()).max(1) as u32;
            nic.qps[qp].path = (nic.qps[qp].path + 1) % n;
        }
    }

    /// Transmits the remaining window of a message: packets
    /// `total - pkts_left .. total`. On a drop the sender still
    /// serializes the rest of the window (the receiver discards it —
    /// go-back-N wastes that bandwidth) and times out `rto` later.
    /// `ordered` messages respect and advance the per-QP delivery
    /// cursor; one-sided data bursts do not.
    #[allow(clippy::too_many_arguments)]
    fn xmit_round(
        &mut self,
        nic: &mut Nic,
        qp: usize,
        now: SimTime,
        bytes: u64,
        pkts_left: u32,
        resumed: bool,
        ordered: bool,
    ) -> XferStep {
        let total = self.profile.packets_for(bytes);
        debug_assert!(pkts_left >= 1 && pkts_left <= total);
        let first = total - pkts_left;
        let p = self.qp_path(nic, qp);
        let mut cursor = now;
        // Go-back-N: loss and corruption are sampled per packet until
        // the first failure; the already-queued tail of the window
        // still burns wire time (and is counted) but the receiver
        // discards it. The `rate > 0` short-circuits keep the rng
        // stream identical when a fault class is disabled.
        let mut failed_at: Option<(u32, bool)> = None;
        for i in first..total {
            let pb = self.pkt_bytes(bytes, total, i);
            cursor = nic.paths[p].link.transfer(cursor, pb);
            nic.paths[p].stats.packets += 1;
            nic.paths[p].stats.bytes += pb;
            nic.stats.packets += 1;
            nic.stats.bytes_out += pb;
            if resumed {
                nic.paths[p].stats.retransmits += 1;
                nic.stats.retransmits += 1;
            }
            if failed_at.is_none() {
                if self.profile.loss_rate > 0.0 && self.rng.chance(self.profile.loss_rate) {
                    nic.paths[p].stats.drops += 1;
                    nic.stats.drops += 1;
                    failed_at = Some((i, false));
                } else if self.profile.corrupt_rate > 0.0
                    && self.rng.chance(self.profile.corrupt_rate)
                {
                    // The packet arrives, its payload digest does not
                    // verify, the receiver NAKs the window.
                    nic.stats.corrupt_injected += 1;
                    nic.stats.corrupt_detected += 1;
                    failed_at = Some((i, true));
                }
            }
        }
        if let Some((i, corrupted)) = failed_at {
            if corrupted {
                nic.stats.corrupt_refetched += u64::from(total - i);
            }
            // Timeout, then (optionally) fail over to another path.
            self.migrate(nic, qp);
            return XferStep::Dropped {
                resume_at: cursor + self.rto(),
                pkts_left: total - i,
                corrupted,
            };
        }
        // The message is delivered when its last packet lands; only
        // that packet's propagation latency matters, so sample jitter
        // once per round, not per packet.
        let last_arrival = cursor + self.latency_on(p);
        let at = if ordered {
            // RC in-order delivery within the queue pair: a message never
            // overtakes an earlier *delivered* message of the same QP. A
            // message stuck in retransmission can be overtaken — exactly
            // the reordering Rio's target-side attributes absorb.
            let d = last_arrival.max(nic.qps[qp].last_delivery);
            nic.qps[qp].last_delivery = d;
            d
        } else {
            last_arrival
        };
        XferStep::Delivered { at }
    }

    /// Posts a two-sided SEND of `bytes` on `qp` of `src`. Returns
    /// either the delivery instant or a [`XferStep::Dropped`] point to
    /// resume with [`Fabric::resume_send`]. Delivery of undropped
    /// messages on one QP is in order; the receiver's CPU cost is
    /// charged by the caller.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range queue pair.
    pub fn send_burst(&mut self, src: &mut Nic, qp: usize, now: SimTime, bytes: u64) -> XferStep {
        assert!(qp < src.qps.len(), "queue pair {qp} out of range");
        src.qps[qp].msgs += 1;
        if self.profile.migrate_every > 0 && src.qps[qp].msgs % self.profile.migrate_every == 0 {
            self.migrate(src, qp);
        }
        src.stats.sends += 1;
        let total = self.profile.packets_for(bytes);
        let step = self.xmit_round(src, qp, now, bytes, total, false, true);
        if matches!(step, XferStep::Dropped { .. }) {
            src.stats.retx_inflight += 1;
            src.stats.retx_inflight_peak = src.stats.retx_inflight_peak.max(src.stats.retx_inflight);
            src.stats.retx_rounds += 1;
        }
        step
    }

    /// Resumes a dropped SEND at its timeout: retransmits the window
    /// from the lost packet.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range queue pair.
    pub fn resume_send(
        &mut self,
        src: &mut Nic,
        qp: usize,
        now: SimTime,
        pkts_left: u32,
        bytes: u64,
    ) -> XferStep {
        assert!(qp < src.qps.len(), "queue pair {qp} out of range");
        let step = self.xmit_round(src, qp, now, bytes, pkts_left, true, true);
        match step {
            XferStep::Delivered { .. } => src.retx_settled(),
            XferStep::Dropped { .. } => src.stats.retx_rounds += 1,
        }
        step
    }

    /// Posts a two-sided SEND and runs go-back-N recovery internally,
    /// returning only the final delivery instant (loss and timeouts are
    /// folded into the returned time).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range queue pair.
    pub fn send(&mut self, src: &mut Nic, qp: usize, now: SimTime, bytes: u64) -> SimTime {
        let mut step = self.send_burst(src, qp, now, bytes);
        loop {
            match step {
                XferStep::Delivered { at } => return at,
                XferStep::Dropped {
                    resume_at,
                    pkts_left,
                    ..
                } => step = self.resume_send(src, qp, resume_at, pkts_left, bytes),
            }
        }
    }

    /// Issues a one-sided RDMA READ: `reader` pulls `bytes` from the
    /// remote `source` NIC's memory, using `qp`'s path pin on the
    /// source side. Returns either the instant the data has fully
    /// arrived at the reader or a [`XferStep::Dropped`] point to
    /// resume with [`Fabric::resume_pull`]. No remote CPU involvement.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range source queue pair.
    pub fn pull_burst(
        &mut self,
        reader: &mut Nic,
        source: &mut Nic,
        qp: usize,
        now: SimTime,
        bytes: u64,
    ) -> XferStep {
        assert!(qp < source.qps.len(), "queue pair {qp} out of range");
        reader.stats.one_sided += 1;
        let total = self.profile.packets_for(bytes);
        // The read request is one tiny header-only packet reader →
        // source: counted against the reader NIC (no payload bytes, no
        // path — it rides the reverse direction).
        reader.stats.packets += 1;
        if let Some(corrupted) = self.request_pkt_failure(reader) {
            reader.stats.retx_inflight += 1;
            reader.stats.retx_inflight_peak =
                reader.stats.retx_inflight_peak.max(reader.stats.retx_inflight);
            reader.stats.retx_rounds += 1;
            return XferStep::Dropped {
                resume_at: now + self.rto(),
                pkts_left: total + 1,
                corrupted,
            };
        }
        let p = self.qp_path(source, qp);
        let request_at = now + self.latency_on(p);
        let step = self.xmit_round(source, qp, request_at, bytes, total, false, false);
        if matches!(step, XferStep::Dropped { .. }) {
            reader.stats.retx_inflight += 1;
            reader.stats.retx_inflight_peak =
                reader.stats.retx_inflight_peak.max(reader.stats.retx_inflight);
            reader.stats.retx_rounds += 1;
        }
        step
    }

    /// Resumes a dropped RDMA READ at its timeout. `pkts_left` greater
    /// than the data packet count means the read *request* itself was
    /// lost and is retried first.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range source queue pair.
    pub fn resume_pull(
        &mut self,
        reader: &mut Nic,
        source: &mut Nic,
        qp: usize,
        now: SimTime,
        pkts_left: u32,
        bytes: u64,
    ) -> XferStep {
        assert!(qp < source.qps.len(), "queue pair {qp} out of range");
        let total = self.profile.packets_for(bytes);
        let step = if pkts_left > total {
            // Retry the request packet (a retransmission of the
            // header-only request, charged to the reader NIC).
            reader.stats.packets += 1;
            reader.stats.retransmits += 1;
            if let Some(corrupted) = self.request_pkt_failure(reader) {
                reader.stats.retx_rounds += 1;
                return XferStep::Dropped {
                    resume_at: now + self.rto(),
                    pkts_left: total + 1,
                    corrupted,
                };
            }
            let p = self.qp_path(source, qp);
            let request_at = now + self.latency_on(p);
            // The data packets were never transmitted (only the
            // request was lost), so this round is a first try.
            self.xmit_round(source, qp, request_at, bytes, total, false, false)
        } else {
            self.xmit_round(source, qp, now, bytes, pkts_left, true, false)
        };
        match step {
            XferStep::Delivered { .. } => reader.retx_settled(),
            XferStep::Dropped { .. } => reader.stats.retx_rounds += 1,
        }
        step
    }

    /// Issues a one-sided RDMA READ and runs recovery internally,
    /// returning when the data has fully arrived at the reader.
    pub fn rdma_read(
        &mut self,
        reader: &mut Nic,
        source: &mut Nic,
        now: SimTime,
        bytes: u64,
    ) -> SimTime {
        let mut step = self.pull_burst(reader, source, 0, now, bytes);
        loop {
            match step {
                XferStep::Delivered { at } => return at,
                XferStep::Dropped {
                    resume_at,
                    pkts_left,
                    ..
                } => step = self.resume_pull(reader, source, 0, resume_at, pkts_left, bytes),
            }
        }
    }

    /// Issues a one-sided RDMA WRITE: `writer` pushes `bytes` into the
    /// remote side's memory. Returns when the data is placed remotely
    /// (recovery runs internally).
    pub fn rdma_write(&mut self, writer: &mut Nic, now: SimTime, bytes: u64) -> SimTime {
        writer.stats.one_sided += 1;
        let total = self.profile.packets_for(bytes);
        let mut step = self.xmit_round(writer, 0, now, bytes, total, false, false);
        let mut parked = false;
        loop {
            match step {
                XferStep::Delivered { at } => {
                    if parked {
                        writer.retx_settled();
                    }
                    return at;
                }
                XferStep::Dropped {
                    resume_at,
                    pkts_left,
                    ..
                } => {
                    if !parked {
                        parked = true;
                        writer.stats.retx_inflight += 1;
                        writer.stats.retx_inflight_peak = writer
                            .stats
                            .retx_inflight_peak
                            .max(writer.stats.retx_inflight);
                    }
                    writer.stats.retx_rounds += 1;
                    step = self.xmit_round(writer, 0, resume_at, bytes, pkts_left, true, false);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fabric() -> Fabric {
        Fabric::new(FabricProfile::connectx6(), 7)
    }

    #[test]
    fn send_latency_near_profile() {
        let mut f = fabric();
        let mut nic = Nic::new(4, f.profile().bandwidth);
        let d = f.send(&mut nic, 0, SimTime::ZERO, 64);
        let us = d.as_micros_f64();
        assert!((1.0..3.0).contains(&us), "delivery at {us} us");
    }

    #[test]
    fn same_qp_delivery_is_fifo() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        let mut prev = SimTime::ZERO;
        for i in 0..200 {
            let d = f.send(&mut nic, 0, SimTime::from_nanos(i * 10), 64);
            assert!(d >= prev, "RC in-order delivery violated at send {i}");
            prev = d;
        }
    }

    #[test]
    fn cross_qp_can_reorder() {
        let mut f = fabric();
        let mut nic = Nic::new(8, f.profile().bandwidth);
        // Send on alternating QPs at identical instants; jitter must
        // produce at least one inversion over enough trials.
        let mut inverted = false;
        let mut last_a = SimTime::ZERO;
        for i in 0..100 {
            let now = SimTime::from_nanos(i * 1000);
            let a = f.send(&mut nic, 0, now, 64);
            let b = f.send(&mut nic, 1, now, 64);
            if b < a || a < last_a {
                inverted = true;
            }
            last_a = a;
        }
        assert!(inverted, "expected cross-QP reordering from jitter");
    }

    #[test]
    fn large_transfer_pays_serialization() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        let small = f.send(&mut nic, 0, SimTime::ZERO, 64);
        let mut f2 = fabric();
        let mut nic2 = Nic::new(1, f2.profile().bandwidth);
        // 1 MB at 25 GB/s is 40 us of wire time.
        let large = f2.send(&mut nic2, 0, SimTime::ZERO, 1 << 20);
        let delta = large.as_micros_f64() - small.as_micros_f64();
        assert!(delta > 30.0, "1 MB should add ≥30 us, added {delta}");
    }

    #[test]
    fn egress_is_shared_across_qps() {
        let mut f = fabric();
        let mut nic = Nic::new(2, f.profile().bandwidth);
        // Two 1 MB sends at t=0 on different QPs serialize on the wire.
        let a = f.send(&mut nic, 0, SimTime::ZERO, 1 << 20);
        let b = f.send(&mut nic, 1, SimTime::ZERO, 1 << 20);
        assert!(
            b.as_micros_f64() > a.as_micros_f64() + 25.0,
            "second transfer must queue behind the first"
        );
    }

    #[test]
    fn rdma_read_round_trip_and_no_reader_egress() {
        let mut f = fabric();
        let mut initiator = Nic::new(1, f.profile().bandwidth);
        let mut target = Nic::new(1, f.profile().bandwidth);
        // Target reads 8 KB from the initiator (NVMe-oF write data pull).
        let done = f.rdma_read(&mut target, &mut initiator, SimTime::ZERO, 8192);
        let us = done.as_micros_f64();
        // Two latencies plus ~0.33 us of wire time.
        assert!((2.5..8.0).contains(&us), "read completed at {us} us");
        assert_eq!(target.stats().one_sided, 1);
        assert_eq!(initiator.stats().bytes_out, 8192, "data leaves the source");
        assert_eq!(target.stats().bytes_out, 0, "reader sends no payload");
    }

    #[test]
    fn rdma_write_one_way() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        let done = f.rdma_write(&mut nic, SimTime::ZERO, 4096);
        let us = done.as_micros_f64();
        assert!((1.0..4.0).contains(&us), "write placed at {us} us");
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric();
        let mut nic = Nic::new(2, f.profile().bandwidth);
        f.send(&mut nic, 0, SimTime::ZERO, 100);
        f.send(&mut nic, 1, SimTime::ZERO, 100);
        f.rdma_write(&mut nic, SimTime::ZERO, 100);
        assert_eq!(nic.stats().sends, 2);
        assert_eq!(nic.stats().one_sided, 1);
        assert_eq!(nic.stats().bytes_out, 300);
        assert_eq!(nic.stats().packets, 3, "one packet per small message");
        assert_eq!(nic.stats().drops, 0);
    }

    #[test]
    fn reset_clears_cursors() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        f.send(&mut nic, 0, SimTime::ZERO, 1 << 20);
        nic.reset(SimTime::from_nanos(500));
        // After reset a send is not held behind the old cursor.
        let d = f.send(&mut nic, 0, SimTime::from_nanos(500), 64);
        assert!(d.as_micros_f64() < 50.0);
    }

    #[test]
    fn crash_reset_forgets_parked_retransmissions() {
        let profile = FabricProfile::connectx6().with_loss(0.995, 10.0);
        let mut f = Fabric::new(profile, 1);
        let mut nic = Nic::new(1, f.profile().bandwidth);
        // Park a message in go-back-N recovery, then crash before its
        // resend timeout: the parked message must be forgotten.
        let step = f.send_burst(&mut nic, 0, SimTime::ZERO, 64);
        if matches!(step, XferStep::Delivered { .. }) {
            return; // 0.5% chance; nothing parked, nothing to test.
        }
        assert_eq!(nic.stats().retx_inflight, 1);
        let drops_before = nic.stats().drops;
        nic.crash_reset(SimTime::from_nanos(1_000));
        assert_eq!(nic.stats().retx_inflight, 0, "crash forgets the window");
        assert_eq!(nic.stats().drops, drops_before, "cumulative stats survive");
        // Post-crash traffic must not underflow the settled counter: a
        // fresh lossless fabric delivers and the counter stays at zero.
        let mut clean = Fabric::new(FabricProfile::connectx6(), 2);
        let d = clean.send(&mut nic, 0, SimTime::from_nanos(1_000), 64);
        assert!(d >= SimTime::from_nanos(1_000));
        assert_eq!(nic.stats().retx_inflight, 0);
    }

    #[test]
    fn multi_round_retransmits_count_windows_not_window_times_rounds() {
        // A go-back-N resend retransmits only the window from the lost
        // packet onward (`pkts_left`), never the whole message again.
        // Scan seeds for a send needing >= 3 recovery rounds with at
        // least one mid-window drop, then check the NIC retransmit
        // counter equals the sum of the resumed windows — the same
        // quantity the stage-trace layer annotates per command, so any
        // double-count here would unbalance the trace/wire ledger.
        let bytes = 64 * 1024; // 16 packets at the 4 KB MTU.
        for seed in 0..1_000u64 {
            let profile = FabricProfile::connectx6().with_loss(0.25, 10.0);
            let mut f = Fabric::new(profile, seed);
            let mut nic = Nic::new(1, f.profile().bandwidth);
            let total = f.profile().packets_for(bytes);
            assert!(total >= 8, "need a multi-packet message");
            let mut step = f.send_burst(&mut nic, 0, SimTime::ZERO, bytes);
            let mut windows: Vec<u32> = Vec::new();
            while let XferStep::Dropped {
                resume_at,
                pkts_left,
                ..
            } = step
            {
                assert!(pkts_left >= 1 && pkts_left <= total);
                windows.push(pkts_left);
                step = f.resume_send(&mut nic, 0, resume_at, pkts_left, bytes);
            }
            let rounds = windows.len() as u64;
            if rounds < 3 || !windows.iter().any(|w| *w < total) {
                continue;
            }
            let expected: u64 = windows.iter().map(|w| u64::from(*w)).sum();
            assert_eq!(nic.stats().retransmits, expected, "seed {seed}");
            assert_eq!(nic.stats().retx_rounds, rounds, "seed {seed}");
            assert!(
                nic.stats().retransmits < u64::from(total) * rounds,
                "full-message resends every round would inflate the count (seed {seed})"
            );
            assert_eq!(nic.stats().retx_inflight, 0, "recovery settled (seed {seed})");
            return;
        }
        panic!("no seed produced a 3-round retransmission with a mid-window drop");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_qp_rejected() {
        let mut f = fabric();
        let mut nic = Nic::new(1, f.profile().bandwidth);
        f.send(&mut nic, 3, SimTime::ZERO, 64);
    }

    #[test]
    fn tcp_profile_is_slower_but_ordered() {
        let mut f = Fabric::new(FabricProfile::tcp_200g(), 7);
        let mut nic = Nic::new(2, f.profile().bandwidth);
        let d = f.send(&mut nic, 0, SimTime::ZERO, 64);
        assert!(d.as_micros_f64() > 8.0, "TCP latency should dwarf RDMA");
        // Per-socket FIFO still holds.
        let mut prev = SimTime::ZERO;
        for i in 0..50 {
            let d = f.send(&mut nic, 0, SimTime::from_nanos(i * 100), 64);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn determinism_same_seed_same_timing() {
        let run = || {
            let mut f = Fabric::new(FabricProfile::connectx6(), 99);
            let mut nic = Nic::new(4, f.profile().bandwidth);
            (0..50)
                .map(|i| {
                    f.send(&mut nic, i % 4, SimTime::from_nanos(i as u64 * 100), 64)
                        .as_nanos()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    // ---- lossy / multi-path behavior ----------------------------------

    #[test]
    fn segmentation_counts_packets() {
        let p = FabricProfile::connectx6();
        assert_eq!(p.packets_for(0), 1);
        assert_eq!(p.packets_for(1), 1);
        assert_eq!(p.packets_for(4096), 1);
        assert_eq!(p.packets_for(4097), 2);
        assert_eq!(p.packets_for(1 << 20), 256);
    }

    #[test]
    fn loss_triggers_timeout_and_retransmit() {
        let profile = FabricProfile::connectx6().with_loss(0.4, 50.0);
        let mut f = Fabric::new(profile, 11);
        let mut nic = Nic::new(1, f.profile().bandwidth);
        // Enough sends that some are certainly dropped at 40% loss.
        let mut any_slow = false;
        for i in 0..64 {
            let now = SimTime::from_nanos(i * 100_000);
            let d = f.send(&mut nic, 0, now, 64);
            if d.since(now).as_micros_f64() > 45.0 {
                any_slow = true;
            }
        }
        assert!(any_slow, "some send must pay the 50 us timeout");
        assert!(nic.stats().drops > 0, "drops counted");
        assert!(nic.stats().retransmits > 0, "retransmits counted");
        assert_eq!(
            nic.stats().retx_inflight,
            0,
            "all recoveries completed synchronously"
        );
    }

    #[test]
    fn burst_api_reports_resume_points() {
        let profile = FabricProfile::connectx6().with_loss(0.995, 10.0);
        let mut f = Fabric::new(profile, 1);
        let mut nic = Nic::new(1, f.profile().bandwidth);
        // At 99.5% loss the first round almost surely drops.
        let step = f.send_burst(&mut nic, 0, SimTime::ZERO, 64);
        match step {
            XferStep::Dropped {
                resume_at,
                pkts_left,
                ..
            } => {
                assert_eq!(pkts_left, 1);
                assert!(resume_at.as_micros_f64() >= 10.0);
                assert_eq!(nic.stats().retx_inflight, 1);
                // Drive recovery to completion via resume_send.
                let mut step = f.resume_send(&mut nic, 0, resume_at, pkts_left, 64);
                while let XferStep::Dropped {
                    resume_at,
                    pkts_left,
                    ..
                } = step
                {
                    step = f.resume_send(&mut nic, 0, resume_at, pkts_left, 64);
                }
                assert_eq!(nic.stats().retx_inflight, 0);
            }
            XferStep::Delivered { .. } => {
                // Unlikely but legal; nothing to check.
            }
        }
    }

    #[test]
    fn corruption_naks_into_goback_n_and_balances_ledger() {
        let profile = FabricProfile::connectx6().with_corruption(0.3);
        let mut f = Fabric::new(profile, 21);
        let mut nic = Nic::new(1, f.profile().bandwidth);
        for i in 0..64 {
            let now = SimTime::from_nanos(i * 100_000);
            let d = f.send(&mut nic, 0, now, 64 * 1024);
            assert!(d >= now, "corrupted sends still deliver eventually");
        }
        let s = nic.stats().clone();
        assert!(s.corrupt_injected > 0, "30% corruption must hit");
        assert_eq!(s.corrupt_injected, s.corrupt_detected, "no silent corruption");
        assert!(
            s.corrupt_refetched >= s.corrupt_injected,
            "each NAK re-fetches at least the corrupted packet"
        );
        assert_eq!(s.drops, 0, "corruption is not loss");
        assert!(s.retransmits > 0, "NAKs drive go-back-N retransmits");
        assert_eq!(s.retx_inflight, 0, "all recoveries settled");
    }

    #[test]
    fn corrupted_pull_request_parks_with_request_marker() {
        let profile = FabricProfile::connectx6().with_corruption(0.995);
        let mut f = Fabric::new(profile, 3);
        let mut reader = Nic::new(1, f.profile().bandwidth);
        let mut source = Nic::new(1, f.profile().bandwidth);
        let total = f.profile().packets_for(8192);
        let step = f.pull_burst(&mut reader, &mut source, 0, SimTime::ZERO, 8192);
        match step {
            XferStep::Dropped {
                pkts_left,
                corrupted,
                ..
            } => {
                // At 99.5% the request packet itself is corrupted.
                assert_eq!(pkts_left, total + 1, "request loss marker");
                assert!(corrupted);
                assert_eq!(reader.stats().corrupt_injected, 1);
                assert_eq!(reader.stats().corrupt_refetched, 1);
                assert_eq!(reader.stats().drops, 0);
            }
            XferStep::Delivered { .. } => panic!("0.5% survival twice in a row"),
        }
    }

    #[test]
    fn corruption_off_leaves_rng_stream_untouched() {
        // A lossy profile with corrupt_rate 0 must produce exactly the
        // timings it produced before corruption existed: the disabled
        // class draws nothing from the rng.
        let run = |corrupt: f64| {
            let p = FabricProfile::connectx6().with_loss(0.2, 25.0).with_corruption(corrupt);
            let mut f = Fabric::new(p, 123);
            let mut nic = Nic::new(2, f.profile().bandwidth);
            (0..100)
                .map(|i| {
                    f.send(&mut nic, (i % 2) as usize, SimTime::from_nanos(i * 500), 8192)
                        .as_nanos()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0.0), run(0.0));
        assert_ne!(
            run(0.0),
            run(0.4),
            "enabled corruption must perturb recovery timing"
        );
    }

    #[test]
    fn multipath_splits_bandwidth_and_staggers_latency() {
        let p = FabricProfile::connectx6().with_paths(4, 0.2);
        assert_eq!(p.n_paths(), 4);
        assert!((p.paths[0].bandwidth - 25.0e9 / 4.0).abs() < 1.0);
        assert!(p.paths[3].one_way_latency_us > p.paths[0].one_way_latency_us);
        let mut f = Fabric::new(p.clone(), 3);
        let mut nic = Nic::for_profile(8, &p);
        assert_eq!(nic.n_paths(), 4);
        // QPs 0..8 round-robin over paths; sends land on all four.
        for qp in 0..8 {
            f.send(&mut nic, qp, SimTime::ZERO, 4096);
        }
        let per_path = nic.path_stats();
        assert_eq!(per_path.len(), 4);
        assert!(per_path.iter().all(|s| s.packets == 2), "{per_path:?}");
    }

    #[test]
    fn migration_rotates_paths() {
        let p = FabricProfile::connectx6()
            .with_paths(2, 0.1)
            .with_migration(1);
        let mut f = Fabric::new(p.clone(), 5);
        let mut nic = Nic::for_profile(1, &p);
        for i in 0..10 {
            f.send(&mut nic, 0, SimTime::from_nanos(i * 10_000), 64);
        }
        let per_path = nic.path_stats();
        assert!(
            per_path[0].packets > 0 && per_path[1].packets > 0,
            "migration must move traffic across paths: {per_path:?}"
        );
    }

    #[test]
    fn lossy_runs_are_deterministic() {
        let run = || {
            let p = FabricProfile::connectx6()
                .with_loss(0.2, 25.0)
                .with_paths(3, 0.15);
            let mut f = Fabric::new(p.clone(), 123);
            let mut nic = Nic::for_profile(6, &p);
            let times: Vec<u64> = (0..200)
                .map(|i| {
                    f.send(&mut nic, (i % 6) as usize, SimTime::from_nanos(i * 500), 8192)
                        .as_nanos()
                })
                .collect();
            (times, nic.stats().clone(), nic.path_stats())
        };
        assert_eq!(run(), run());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// For any loss rate < 1 every message is eventually delivered
        /// exactly once, at or after its posting instant, and recovery
        /// always settles (no message left in retransmission limbo).
        #[test]
        fn prop_lossy_sends_always_deliver(
            loss in 0.0f64..0.95,
            seed in any::<u64>(),
            msgs in 1u64..40,
            bytes in 1u64..65536,
        ) {
            let p = FabricProfile::connectx6().with_loss(loss, 20.0);
            let mut f = Fabric::new(p, seed);
            let mut nic = Nic::new(2, f.profile().bandwidth);
            for i in 0..msgs {
                let now = SimTime::from_nanos(i * 10_000);
                let d = f.send(&mut nic, (i % 2) as usize, now, bytes);
                prop_assert!(d >= now, "delivery before posting");
            }
            prop_assert_eq!(nic.stats().sends, msgs);
            prop_assert_eq!(nic.stats().retx_inflight, 0);
            // Packet conservation: everything transmitted is either a
            // first try or a retransmission.
            prop_assert!(nic.stats().packets >= msgs * f.profile().packets_for(bytes) as u64);
        }
    }
}
