//! FIO-style microbenchmark driver: append + fsync to private files.
//!
//! The §6.3 workload: each "thread" (job) appends 4 KB to its own file
//! and calls fsync, which always triggers metadata journaling.

use rio_fs::{BlockDev, RioFs};

/// One FIO job against a mounted file system.
#[derive(Debug, Clone)]
pub struct FioJob {
    /// File name this job owns.
    pub file: String,
    /// Bytes per write.
    pub write_size: usize,
    /// Journal area (core) this job commits through.
    pub core: usize,
    offset: u64,
}

impl FioJob {
    /// Creates a job writing `write_size` bytes per operation.
    pub fn new(id: usize, write_size: usize) -> Self {
        FioJob {
            file: format!("fio.{id}"),
            write_size,
            core: id,
            offset: 0,
        }
    }

    /// Ensures the job's file exists.
    pub fn setup<D: BlockDev>(&self, fs: &mut RioFs<D>) {
        if fs.stat(&self.file).is_none() {
            fs.create(&self.file).expect("create fio file");
        }
    }

    /// One append + fsync; wraps when the file reaches its size cap.
    pub fn step<D: BlockDev>(&mut self, fs: &mut RioFs<D>) {
        let payload = vec![(self.offset % 251) as u8; self.write_size];
        if self.offset + self.write_size as u64 > rio_fs::layout::Inode::max_size() {
            self.offset = 0;
        }
        fs.write(&self.file, self.offset, &payload).expect("write");
        fs.fsync(&self.file, self.core).expect("fsync");
        self.offset += self.write_size as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_fs::MemDev;

    #[test]
    fn job_appends_and_persists() {
        let mut fs = RioFs::mkfs(MemDev::new(2048), 2);
        let mut job = FioJob::new(0, 4096);
        job.setup(&mut fs);
        for _ in 0..4 {
            job.step(&mut fs);
        }
        assert_eq!(fs.stat("fio.0"), Some(4 * 4096));
        assert_eq!(fs.fsyncs, 4);
        assert!(fs.fsck().is_empty());
    }

    #[test]
    fn job_wraps_at_max_size() {
        let mut fs = RioFs::mkfs(MemDev::new(2048), 1);
        let mut job = FioJob::new(1, 4096);
        job.setup(&mut fs);
        let max_blocks = rio_fs::layout::Inode::max_size() / 4096;
        for _ in 0..max_blocks + 3 {
            job.step(&mut fs);
        }
        assert!(fs.fsck().is_empty());
    }
}
