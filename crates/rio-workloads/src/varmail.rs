//! The Filebench Varmail personality (§6.4).
//!
//! Varmail models a mail server: a pool of mail files receives a mix of
//! create+append+fsync (new mail), append+fsync (reply), whole-file
//! reads, and delete operations. It is metadata- and fsync-intensive —
//! exactly the load where an order-preserving fsync path pays off.

use rio_fs::{BlockDev, FsError, RioFs};
use rio_sim::SimRng;

/// Operation counters.
#[derive(Debug, Default, Clone)]
pub struct VarmailStats {
    /// Files created (new mail).
    pub creates: u64,
    /// Appends + fsync (delivery or reply).
    pub appends: u64,
    /// Whole-file reads.
    pub reads: u64,
    /// Files deleted.
    pub deletes: u64,
    /// Operations that found no target file (empty pool reads/deletes).
    pub noops: u64,
}

/// A Varmail driver over one mounted file system.
pub struct Varmail {
    rng: SimRng,
    /// Live mail files.
    pool: Vec<String>,
    /// Upper bound on the pool (Filebench's `nfiles`).
    nfiles: usize,
    next_id: u64,
    /// Journal area to commit through.
    core: usize,
    /// Stats.
    pub stats: VarmailStats,
}

impl Varmail {
    /// Creates a driver with a target pool of `nfiles` mail files.
    pub fn new(seed: u64, nfiles: usize, core: usize) -> Self {
        Varmail {
            rng: SimRng::seed_from_u64(seed),
            pool: Vec::new(),
            nfiles: nfiles.max(1),
            next_id: 0,
            core,
            stats: VarmailStats::default(),
        }
    }

    fn mail_body(&mut self) -> Vec<u8> {
        // 1-3 blocks of "mail".
        let blocks = self.rng.between(1, 3) as usize;
        vec![b'm'; blocks * 4096 - 100]
    }

    /// Runs one Varmail operation (the Filebench op mix).
    pub fn step<D: BlockDev>(&mut self, fs: &mut RioFs<D>) -> Result<(), FsError> {
        let roll = self.rng.below(100);
        match roll {
            // 40%: new mail — create, write, fsync.
            0..=39 => {
                if self.pool.len() >= self.nfiles {
                    self.delete_one(fs)?;
                }
                let name = format!("mail.{}", self.next_id);
                self.next_id += 1;
                fs.create(&name)?;
                let body = self.mail_body();
                fs.write(&name, 0, &body)?;
                fs.fsync(&name, self.core)?;
                self.pool.push(name);
                self.stats.creates += 1;
            }
            // 30%: reply — append to an existing mail, fsync.
            40..=69 => match self.pick(fs) {
                Some(name) => {
                    let size = fs.stat(&name).unwrap_or(0);
                    let add = b"Re: re: re".to_vec();
                    if size + add.len() as u64 <= rio_fs::layout::Inode::max_size() {
                        fs.write(&name, size, &add)?;
                        fs.fsync(&name, self.core)?;
                        self.stats.appends += 1;
                    }
                }
                None => self.stats.noops += 1,
            },
            // 20%: read a whole mail.
            70..=89 => match self.pick(fs) {
                Some(name) => {
                    let size = fs.stat(&name).unwrap_or(0) as usize;
                    let _ = fs.read(&name, 0, size)?;
                    self.stats.reads += 1;
                }
                None => self.stats.noops += 1,
            },
            // 10%: delete.
            _ => {
                if self.pool.is_empty() {
                    self.stats.noops += 1;
                } else {
                    self.delete_one(fs)?;
                }
            }
        }
        Ok(())
    }

    fn pick<D: BlockDev>(&mut self, _fs: &RioFs<D>) -> Option<String> {
        let idx = self.rng.pick_index(self.pool.len())?;
        Some(self.pool[idx].clone())
    }

    fn delete_one<D: BlockDev>(&mut self, fs: &mut RioFs<D>) -> Result<(), FsError> {
        let idx = self
            .rng
            .pick_index(self.pool.len())
            .expect("non-empty pool");
        let name = self.pool.swap_remove(idx);
        fs.unlink(&name)?;
        fs.fsync(&name.clone(), self.core).ok(); // Metadata-only commit.
        self.stats.deletes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rio_fs::MemDev;

    #[test]
    fn thousand_ops_stay_consistent() {
        let mut fs = RioFs::mkfs(MemDev::new(8192), 4);
        let mut vm = Varmail::new(7, 16, 0);
        for _ in 0..1000 {
            vm.step(&mut fs).expect("varmail op");
        }
        assert!(fs.fsck().is_empty(), "fsck after 1000 ops");
        assert!(vm.stats.creates > 100);
        assert!(vm.stats.appends > 50);
        assert!(vm.stats.reads > 50);
        assert!(vm.stats.deletes > 20);
        // The pool respects its bound.
        assert!(fs.readdir().len() <= 17);
    }

    #[test]
    fn survives_remount_mid_run() {
        let mut fs = RioFs::mkfs(MemDev::new(8192), 2);
        let mut vm = Varmail::new(3, 8, 0);
        for _ in 0..200 {
            vm.step(&mut fs).expect("varmail op");
        }
        let files_before = fs.readdir().len();
        let fs2 = RioFs::mount(fs.into_device()).expect("remount");
        assert!(fs2.fsck().is_empty());
        assert_eq!(fs2.readdir().len(), files_before);
    }
}
